//! Concurrent-observability stress: per-thread registries merged at node
//! completion must lose no counts, and merged histogram quantiles must
//! equal a single-threaded reference recording the same samples. The
//! record path takes no locks — correctness rests entirely on the merge,
//! so the merge is what gets stressed here.

use std::rc::Rc;
use std::sync::mpsc;

use slash_core::RunConfig;
use slash_exec::{JobSpec, Scheduler, ThreadBackend};
use slash_obs::{MetricsRegistry, Obs};
use slash_state::SplitLedger;
use slash_workloads::{ysb_hot, GenConfig};

/// Deterministic per-thread sample stream (splitmix-style), so the
/// threaded recording and the single-threaded reference see the exact
/// same multiset of values.
fn sample(thread: u64, i: u64) -> u64 {
    let mut z = (thread << 32).wrapping_add(i).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % 1_000_000
}

#[test]
fn threaded_registry_merge_loses_no_counts_and_matches_reference_quantiles() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 25_000;

    // Threaded half: each OS thread records into a private Obs (no
    // locks), snapshots its registry, ships the (Send) snapshot back.
    let (tx, rx) = mpsc::channel::<MetricsRegistry>();
    let mut joins = Vec::new();
    for t in 0..THREADS {
        let tx = tx.clone();
        joins.push(std::thread::spawn(move || {
            let obs = Obs::enabled(64);
            for i in 0..PER_THREAD {
                obs.hist_record("stress_ns", "all", sample(t, i));
                obs.counter_add("stress_events", "all", 1);
                obs.hist_record("stress_ns", &format!("thread{t}"), sample(t, i));
            }
            let snap = obs.registry_snapshot().expect("enabled handle");
            tx.send(snap).expect("driver alive");
        }));
    }
    drop(tx);
    let merged = Obs::enabled(64);
    for snap in rx {
        merged.absorb_registry(&snap);
    }
    for j in joins {
        j.join().expect("recorder thread");
    }

    // Reference half: one handle records every sample sequentially.
    let reference = Obs::enabled(64);
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            reference.hist_record("stress_ns", "all", sample(t, i));
            reference.counter_add("stress_events", "all", 1);
            reference.hist_record("stress_ns", &format!("thread{t}"), sample(t, i));
        }
    }

    merged
        .with_registry(|m| {
            reference.with_registry(|r| {
                assert_eq!(
                    m.counter("stress_events", "all"),
                    THREADS * PER_THREAD,
                    "merge must lose no counter increments"
                );
                let mh = m.hist("stress_ns", "all").expect("merged hist");
                let rh = r.hist("stress_ns", "all").expect("reference hist");
                assert_eq!(mh.count(), rh.count(), "merge must lose no samples");
                assert_eq!(mh.sum(), rh.sum());
                assert_eq!(mh.min(), rh.min());
                assert_eq!(mh.max(), rh.max());
                for q in [0.0, 0.5, 0.9, 0.99, 0.999, 0.9999, 1.0] {
                    assert_eq!(
                        mh.quantile(q),
                        rh.quantile(q),
                        "quantile {q} must match the single-threaded reference"
                    );
                }
                // Per-thread series survive the merge individually too.
                for t in 0..THREADS {
                    let label = format!("thread{t}");
                    assert_eq!(
                        m.hist("stress_ns", &label).map(|h| h.count()),
                        Some(PER_THREAD),
                        "{label} series lost samples in the merge"
                    );
                }
            })
        })
        .flatten()
        .expect("both handles enabled");
}

/// SpaceSaving `count - err <= true <= count` must survive the
/// ThreadBackend merge path — per-thread registries recording salted
/// split-key streams, shipped as snapshots and folded with
/// `absorb_registry` — with more live keys than sketch capacity, so
/// evictions charge real error on both sides of the merge.
#[test]
fn heat_bounds_hold_across_absorb_registry_merges() {
    const THREADS: u64 = 6;
    const PER_THREAD: u64 = 30_000;
    const HOT: u64 = 5;
    const BACKGROUND: u64 = 300; // ≫ HEAT_CAPACITY: forces evictions
    let ledger = {
        let mut l = SplitLedger::new(THREADS as usize);
        assert!(l.split(HOT));
        l
    };

    // Each worker thread records its node's salted stream into a private
    // registry — exactly what a ThreadBackend node does before shipping
    // its snapshot to the driver.
    let (tx, rx) = mpsc::channel::<MetricsRegistry>();
    let mut joins = Vec::new();
    for t in 0..THREADS {
        let tx = tx.clone();
        let sub = ledger.sub_for(HOT, t as usize).expect("split active");
        joins.push(std::thread::spawn(move || {
            let obs = Obs::enabled(64);
            for i in 0..PER_THREAD {
                // Every third record is hot and salts to this replica's
                // sub-key; the rest spread over a wide background domain.
                let key = if i % 3 == 0 { sub } else { sample(t, i) % BACKGROUND };
                obs.heat_observe("key_heat", "all", key, 1);
            }
            let snap = obs.registry_snapshot().expect("enabled handle");
            tx.send(snap).expect("driver alive");
        }));
    }
    drop(tx);
    let merged = Obs::enabled(64);
    for snap in rx {
        merged.absorb_registry(&snap);
    }
    for j in joins {
        j.join().expect("recorder thread");
    }

    // Brute-force truth over the identical deterministic streams.
    let mut truth = std::collections::HashMap::new();
    for t in 0..THREADS {
        let sub = ledger.sub_for(HOT, t as usize).expect("split active");
        for i in 0..PER_THREAD {
            let key = if i % 3 == 0 { sub } else { sample(t, i) % BACKGROUND };
            *truth.entry(key).or_insert(0u64) += 1;
        }
    }

    merged
        .with_registry(|reg| {
            let sketch = reg.heat("key_heat", "all").expect("merged sketch");
            assert_eq!(
                sketch.total(),
                THREADS * PER_THREAD,
                "merge must lose no observed weight"
            );
            let top = sketch.top(sketch.capacity());
            let mut saw_error = false;
            for e in &top {
                let t = truth.get(&e.key).copied().unwrap_or(0);
                assert!(e.count >= t, "key {}: count {} < true {t}", e.key, e.count);
                assert!(
                    e.count - e.err <= t,
                    "key {}: lower bound {} > true {t}",
                    e.key,
                    e.count - e.err
                );
                saw_error |= e.err > 0;
            }
            assert!(
                saw_error,
                "domain exceeds capacity: some entry must carry eviction error \
                 or the bound check is vacuous"
            );
            // Every sub-key is provably hot in the merged sketch: its
            // SpaceSaving lower bound clears the uniform background.
            for r in 0..THREADS as usize {
                let sub = ledger.sub_for(HOT, r).expect("split active");
                let e = top.iter().find(|e| e.key == sub).expect("sub-key monitored");
                assert!(
                    e.count - e.err >= PER_THREAD / 4,
                    "replica {r} sub-key lower bound too weak: {} - {}",
                    e.count,
                    e.err
                );
            }
        })
        .expect("enabled handle");
}

#[test]
fn threaded_run_publishes_merged_engine_metrics() {
    // End-to-end: a ThreadBackend run with obs enabled must surface the
    // per-node counters and latency histograms through the merged
    // registry, and the counters must agree with the report.
    let mut gc = GenConfig::new(4, 4_000);
    gc.seed = 0x0B5;
    let parts: Vec<Vec<u8>> = ysb_hot(&gc)
        .partitions
        .into_iter()
        .map(|p| Rc::try_unwrap(p).unwrap_or_else(|p| (*p).clone()))
        .collect();
    let mut cfg = RunConfig::new(2, 2);
    cfg.epoch_bytes = 64 * 1024;
    let obs = Obs::enabled(4096);
    let report = ThreadBackend::new().run_with_obs(
        JobSpec::new(|| ysb_hot(&GenConfig::new(1, 1)).plan, parts, cfg),
        obs.clone(),
    );
    let (recorded, latency_samples, tx_bytes) = obs
        .with_registry(|reg| {
            let recorded: u64 = (0..2).map(|n| reg.counter("records", &format!("node{n}"))).sum();
            let latency: u64 = (0..2)
                .filter_map(|n| reg.hist("record_latency_ns", &format!("node{n}")))
                .map(|h| h.count())
                .sum();
            (recorded, latency, reg.counter("net_tx_bytes", "fabric"))
        })
        .expect("enabled handle");
    assert_eq!(recorded, report.records, "merged counters must match the report");
    assert!(latency_samples > 0, "workers must record latency samples");
    assert_eq!(tx_bytes, report.net_tx_bytes);
    assert!(report.net_tx_bytes > 0);
}
