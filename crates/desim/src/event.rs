//! The event queue: a binary heap of timestamped, sequence-ordered entries.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::clock::SimTime;
use crate::process::ProcId;
use crate::sim::Sim;

/// Monotone sequence number used to break ties between events scheduled for
/// the same virtual time. First scheduled fires first (FIFO among equals),
/// which is what makes the simulation deterministic.
pub(crate) type EventSeq = u64;

/// Policy for ordering events that share a virtual timestamp.
///
/// Real hardware gives no ordering guarantee between *independent* events
/// that happen "at the same time" (deliveries on different links, polls on
/// different endpoints). The kernel's default FIFO tie-break silently picks
/// one legal order and hides bugs that only surface under another. The race
/// checker in `slash-verify` replays protocol scenarios under many seeded
/// permutations of exactly these ties — a bounded, deterministic
/// exploration of the schedule space (DPOR-lite).
///
/// Every policy is fully deterministic: two runs with the same policy and
/// inputs produce byte-identical schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// First-scheduled fires first (the default; matches historic behavior).
    #[default]
    Fifo,
    /// Last-scheduled fires first (an adversarial stack order).
    Lifo,
    /// Deterministic pseudo-random permutation keyed by the seed: each
    /// distinct seed yields a distinct (but reproducible) interleaving of
    /// same-timestamp events.
    Seeded(u64),
}

impl TieBreak {
    /// Priority key for an event with schedule sequence `seq`; among events
    /// at the same virtual time, the smallest key fires first.
    fn key(self, seq: EventSeq) -> u64 {
        match self {
            TieBreak::Fifo => seq,
            TieBreak::Lifo => !seq,
            TieBreak::Seeded(s) => {
                // SplitMix64 over (seed, seq): a high-quality deterministic
                // permutation of the tie order.
                let mut z = seq
                    .wrapping_add(s.wrapping_mul(0x9E3779B97F4A7C15))
                    .wrapping_add(0x9E3779B97F4A7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            }
        }
    }
}

/// Structural label describing which part of the modelled system an event
/// touches. Labels carry no semantics inside the kernel; they exist so the
/// exhaustive race explorer in `slash-verify` can prove that two
/// same-instant events *commute* (their firing order cannot affect any
/// reachable state) and prune one of the two orders.
///
/// The independence relation is deliberately conservative: only
/// channel-labeled deliveries with disjoint endpoint sets are ever treated
/// as independent. Node-labeled and unlabeled events are dependent with
/// everything, because they may touch shared fabric or oracle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EventLabel(u64);

impl EventLabel {
    /// No structural information; conservatively dependent with everything.
    pub const NONE: EventLabel = EventLabel(0);

    const KIND_MASK: u64 = 3 << 62;
    const KIND_NODE: u64 = 1 << 62;
    const KIND_CHANNEL: u64 = 2 << 62;

    /// An event local to one node (an actor tick, a local timer). Still
    /// conservatively dependent with everything — the label is for trace
    /// readability, not reduction.
    pub fn node(node: u32) -> Self {
        EventLabel(Self::KIND_NODE | node as u64)
    }

    /// A delivery on the directed channel `src → dst`: the event only reads
    /// or writes endpoint state of those two nodes (QP delivery fences,
    /// rings, completion queues) plus read-only topology. `src` is truncated
    /// to 30 bits to stay clear of the kind tag (node ids are tiny).
    pub fn channel(src: u32, dst: u32) -> Self {
        EventLabel(Self::KIND_CHANNEL | ((src as u64 & 0x3FFF_FFFF) << 32) | dst as u64)
    }

    /// Raw encoding, stable across runs (used in explorer state signatures).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The `(src, dst)` endpoints if this is a channel label.
    pub fn channel_endpoints(self) -> Option<(u32, u32)> {
        if self.0 & Self::KIND_MASK == Self::KIND_CHANNEL {
            Some((((self.0 >> 32) & 0x3FFF_FFFF) as u32, self.0 as u32))
        } else {
            None
        }
    }

    /// Whether two events provably commute: both are channel deliveries and
    /// their endpoint node sets are disjoint. Anything else — node-labeled,
    /// unlabeled, or channels sharing a node — is treated as dependent.
    pub fn independent(self, other: EventLabel) -> bool {
        match (self.channel_endpoints(), other.channel_endpoints()) {
            (Some((a, b)), Some((c, d))) => a != c && a != d && b != c && b != d,
            _ => false,
        }
    }
}

/// What happens when an event fires.
pub(crate) enum EventKind {
    /// Wake a parked or yielded process.
    Wake(ProcId),
    /// Run an arbitrary closure against the simulator. Used by the fabric to
    /// deliver messages, post completions, and so on.
    Closure(Box<dyn FnOnce(&mut Sim)>),
}

pub(crate) struct Scheduled {
    pub at: SimTime,
    pub seq: EventSeq,
    /// Tie-break priority among same-time events (smallest fires first).
    /// Computed once at push from the queue's [`TieBreak`] policy so that
    /// changing the policy mid-run never reorders already-queued events.
    pub key: u64,
    /// Structural label for the explorer's independence relation.
    pub label: EventLabel,
    pub kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, key, seq)
        // pops first. `seq` remains the final tie so the order stays total
        // and deterministic even when keys collide.
        (other.at, other.key, other.seq).cmp(&(self.at, self.key, self.seq))
    }
}

/// A deterministic min-queue of scheduled events with a pluggable policy
/// for ordering same-timestamp entries.
#[derive(Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: EventSeq,
    policy: TieBreak,
}

impl EventQueue {
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        self.push_labeled(at, EventLabel::NONE, kind);
    }

    pub fn push_labeled(&mut self, at: SimTime, label: EventLabel, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = self.policy.key(seq);
        self.heap.push(Scheduled { at, seq, key, label, kind });
    }

    /// Re-insert an entry previously popped by [`EventQueue::pop_ties`],
    /// keeping its original sequence number and priority key so the queue
    /// order stays exactly what it was before the tie set was drained.
    pub fn push_back(&mut self, s: Scheduled) {
        self.heap.push(s);
    }

    /// Pop *every* event tied at the earliest virtual time, returned in
    /// schedule (seq) order. This is the enabled-event-set enumeration hook
    /// the exhaustive explorer branches on: among these, any could fire
    /// first on real hardware.
    pub fn pop_ties(&mut self) -> Vec<Scheduled> {
        let Some(t) = self.peek_time() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        while self.heap.peek().map(|s| s.at) == Some(t) {
            out.push(self.heap.pop().expect("peeked entry must pop"));
        }
        out.sort_by_key(|s| s.seq);
        out
    }

    /// Set the tie-break policy for events pushed from now on.
    pub fn set_policy(&mut self, policy: TieBreak) {
        self.policy = policy;
    }

    /// The active tie-break policy.
    pub fn policy(&self) -> TieBreak {
        self.policy
    }

    pub fn pop(&mut self) -> Option<Scheduled> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wake(at: u64, q: &mut EventQueue) {
        q.push(SimTime(at), EventKind::Wake(ProcId(0)));
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::default();
        wake(30, &mut q);
        wake(10, &mut q);
        wake(20, &mut q);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|s| s.at.0)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::default();
        for i in 0..16u64 {
            q.push(SimTime(42), EventKind::Wake(ProcId(i as u32)));
        }
        let seqs: Vec<EventSeq> = std::iter::from_fn(|| q.pop().map(|s| s.seq)).collect();
        let sorted = {
            let mut s = seqs.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(seqs, sorted, "same-time events must fire in schedule order");
    }

    #[test]
    fn lifo_reverses_same_time_order() {
        let mut q = EventQueue::default();
        q.set_policy(TieBreak::Lifo);
        for i in 0..8u64 {
            q.push(SimTime(42), EventKind::Wake(ProcId(i as u32)));
        }
        let seqs: Vec<EventSeq> = std::iter::from_fn(|| q.pop().map(|s| s.seq)).collect();
        assert_eq!(seqs, (0..8u64).rev().collect::<Vec<_>>());
    }

    #[test]
    fn seeded_policy_permutes_ties_deterministically() {
        let order_for = |tb: TieBreak| -> Vec<EventSeq> {
            let mut q = EventQueue::default();
            q.set_policy(tb);
            for _ in 0..32u64 {
                q.push(SimTime(7), EventKind::Wake(ProcId(0)));
            }
            std::iter::from_fn(|| q.pop().map(|s| s.seq)).collect()
        };
        let fifo = order_for(TieBreak::Fifo);
        let a1 = order_for(TieBreak::Seeded(1));
        let a2 = order_for(TieBreak::Seeded(1));
        let b = order_for(TieBreak::Seeded(2));
        assert_eq!(a1, a2, "same seed must reproduce the same schedule");
        assert_ne!(a1, fifo, "seeded order should differ from FIFO");
        assert_ne!(a1, b, "different seeds should explore different orders");
        let mut sorted = a1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, fifo, "a permutation: no event lost or duplicated");
    }

    #[test]
    fn time_order_beats_tie_break_key() {
        let mut q = EventQueue::default();
        q.set_policy(TieBreak::Lifo);
        wake(30, &mut q);
        wake(10, &mut q);
        wake(20, &mut q);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|s| s.at.0)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn labels_commute_only_on_disjoint_channels() {
        let ab = EventLabel::channel(0, 1);
        let cd = EventLabel::channel(2, 3);
        let bc = EventLabel::channel(1, 2);
        assert!(ab.independent(cd) && cd.independent(ab));
        assert!(!ab.independent(bc), "shared endpoint 1 → dependent");
        assert!(!ab.independent(ab), "an event never commutes with itself");
        assert!(!ab.independent(EventLabel::NONE));
        assert!(!EventLabel::node(7).independent(EventLabel::node(8)));
        assert!(!EventLabel::node(0).independent(cd));
        assert_eq!(ab.channel_endpoints(), Some((0, 1)));
        assert_eq!(EventLabel::node(7).channel_endpoints(), None);
        assert_eq!(EventLabel::NONE.channel_endpoints(), None);
    }

    #[test]
    fn pop_ties_returns_full_tie_set_in_seq_order() {
        let mut q = EventQueue::default();
        q.set_policy(TieBreak::Lifo); // adversarial heap order
        wake(10, &mut q);
        wake(10, &mut q);
        wake(10, &mut q);
        wake(20, &mut q);
        let ties = q.pop_ties();
        assert_eq!(ties.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(q.len(), 1);
        // Push two back; they must still pop before the later event.
        let mut it = ties.into_iter();
        it.next();
        for s in it {
            q.push_back(s);
        }
        let again = q.pop_ties();
        assert_eq!(again.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(q.pop_ties().len(), 1);
        assert!(q.pop_ties().is_empty());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::default();
        wake(7, &mut q);
        wake(3, &mut q);
        assert_eq!(q.peek_time(), Some(SimTime(3)));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
