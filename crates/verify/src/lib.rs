#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # slash-verify — verification tooling for the Slash reproduction
//!
//! Two halves, one goal: catch protocol bugs that ordinary unit tests and
//! `clippy` structurally cannot.
//!
//! 1. **`slash-lint`** ([`lint`]): a self-contained static-analysis pass
//!    over the workspace sources. No `syn`, no `rustc` plumbing — a small
//!    comment/string-aware token scanner that enforces repo-specific
//!    hygiene rules: no `unwrap`/`expect`/`panic!`/`todo!` in library code
//!    of the protocol crates, no silent truncating `as` casts in
//!    wire-format files, mandatory `#![forbid(unsafe_code)]` +
//!    `#![deny(missing_docs)]` crate roots, and no debug printing in
//!    library code. Grandfathered violations live in a checked-in
//!    allowlist whose budgets can only shrink (burn-down).
//!
//! 2. **The interleaving race checker** ([`race`] + [`scenarios`]): a
//!    bounded schedule explorer layered on `slash-desim`'s pluggable
//!    [`slash_desim::TieBreak`] policy. The simulation's default FIFO
//!    tie-break picks *one* legal order among same-timestamp events; the
//!    checker replays channel, multi-port fabric, coherence, and
//!    crash-recovery scenarios under many seeded permutations of exactly
//!    those ties (a DPOR-lite exploration) and asserts the protocol
//!    invariants under every explored schedule: FIFO delivery, credit
//!    conservation, no slot overwritten before consumption, vector-clock
//!    monotonicity, epoch convergence, and recovery convergence (a
//!    crashed node restored from an epoch-aligned checkpoint ends in
//!    exactly the no-fault state). On top of the random sweep sits the
//!    bounded **exhaustive model checker** ([`explorer`]): a DFS over the
//!    explicit per-branch-point choice vectors of `slash-desim`'s explore
//!    mode, with sleep-set reduction, state-digest deduplication, budget
//!    accounting, and greedy counterexample minimization
//!    (`slash-race --exhaustive`).
//!
//! Both run in CI via `scripts/ci.sh` (`slash-lint`, `slash-race`).

pub mod explorer;
pub mod lint;
pub mod race;
pub mod scenarios;
