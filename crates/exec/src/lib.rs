#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # slash-exec — scheduler backends for the Slash engine
//!
//! The engine's operator, channel, SSB, and hot-path code is written
//! against cooperative worker steps ([`slash_core::SlashWorker`]) and
//! makes no assumption about *who* drives those steps. This crate makes
//! the driver pluggable behind one [`Scheduler`] trait with two
//! implementations:
//!
//! * [`SimBackend`] — the existing deterministic discrete-event
//!   simulator. One OS thread, one global virtual clock, bit-identical
//!   replay. Everything the verification stack leans on (slash-race,
//!   golden traces, chaos, exhaustive exploration) runs here, unchanged.
//! * [`ThreadBackend`] — a shared-nothing thread-per-core runtime: each
//!   node's worker loop, SSB instance, delta channels, and observability
//!   handle live on one OS thread with a *private* simulator for that
//!   node's virtual-time bookkeeping. Cross-node delta traffic rides
//!   bounded SPSC queues ([`slash_net::spsc`]) that keep the per-channel
//!   FIFO order the RC fence in `rdma/qp.rs` guarantees on the simulated
//!   wire.
//!
//! ## What the threaded backend does and does not promise
//!
//! Final state is backend-independent: CRDT delta merges commute,
//! epochs carry per-channel sequence ids, and window triggers fire on
//! watermarks — so for a given seed and workload, both backends converge
//! to **bit-identical state digests and result multisets** (the CI digest
//! smoke pins this). *Timing* is not shared: the threaded backend's
//! virtual clocks advance per node, its schedules depend on OS thread
//! interleaving, and its spans/flight-recorder output is per-node. Use
//! the simulator for replay and race checking; use threads for wall-clock
//! throughput on real cores.

pub mod threaded;

use std::rc::Rc;
use std::sync::Arc;

use slash_core::{QueryPlan, RunConfig, RunReport, SinkResult, SlashCluster};
use slash_obs::Obs;

pub use threaded::ThreadBackend;

/// Builds one fresh [`QueryPlan`] per call. Plans hold non-[`Send`]
/// filter closures (`Rc<dyn Fn..>`), so the threaded backend cannot ship
/// one plan across threads; instead every node thread materializes its
/// own identical copy through this factory. The factory must be pure:
/// two calls must yield plans with identical semantics, or the backends
/// (and the node threads among themselves) would compute different
/// queries.
pub type PlanFactory = Arc<dyn Fn() -> QueryPlan + Send + Sync>;

/// One schedulable query run: the plan, the pre-generated input, and the
/// cluster configuration. Partitions are owned byte buffers in node-major
/// order (`partitions[node * workers_per_node + worker]`), exactly as
/// [`slash_core::SlashCluster::run`] expects them — owned rather than
/// `Rc` so the threaded backend can move each node's inputs into its
/// thread.
pub struct JobSpec {
    /// Plan factory; see [`PlanFactory`] for the purity contract.
    pub plan: PlanFactory,
    /// One input partition per worker, node-major.
    pub partitions: Vec<Vec<u8>>,
    /// Cluster/run configuration.
    pub cfg: RunConfig,
}

impl JobSpec {
    /// Build a spec from a closure producing the plan.
    pub fn new(
        plan: impl Fn() -> QueryPlan + Send + Sync + 'static,
        partitions: Vec<Vec<u8>>,
        cfg: RunConfig,
    ) -> Self {
        JobSpec {
            plan: Arc::new(plan),
            partitions,
            cfg,
        }
    }
}

/// A query-run driver. Both backends accept the same [`JobSpec`] and
/// produce the same [`RunReport`] shape; the digest smoke in CI holds
/// them to identical state digests and result multisets.
pub trait Scheduler {
    /// Run the job with an observability handle. The threaded backend
    /// gives each node thread a private handle and merges the metric
    /// registries into `obs` when the run completes (per-thread record
    /// paths take no locks); trace rings are per-node and not merged.
    fn run_with_obs(&self, spec: JobSpec, obs: Obs) -> RunReport;

    /// Run the job without observability.
    fn run(&self, spec: JobSpec) -> RunReport {
        self.run_with_obs(spec, Obs::disabled())
    }
}

/// The deterministic discrete-event backend: delegates to
/// [`SlashCluster`], which this crate treats as the reference semantics.
#[derive(Debug, Default, Clone, Copy)]
pub struct SimBackend;

impl Scheduler for SimBackend {
    fn run_with_obs(&self, spec: JobSpec, obs: Obs) -> RunReport {
        let partitions = spec.partitions.into_iter().map(Rc::new).collect();
        SlashCluster::run_with_obs((spec.plan)(), partitions, spec.cfg, obs)
    }
}

/// Order-independent digest of a result multiset. Backends emit results
/// in different orders (per-node sinks drain on independent clocks), so
/// cross-backend comparison sorts first; `f64` values compare by bit
/// pattern, which is exact because both backends compute them with the
/// same operations in the same per-key order.
pub fn results_fingerprint(results: &[SinkResult]) -> u64 {
    let mut rows: Vec<(u64, u64, u64, u64)> = results
        .iter()
        .map(|r| match r {
            SinkResult::Agg {
                window_id,
                key,
                value,
            } => (0u64, *window_id, *key, value.to_bits()),
            SinkResult::Join {
                window_id,
                key,
                pairs,
            } => (1u64, *window_id, *key, *pairs),
        })
        .collect();
    rows.sort_unstable();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (tag, w, k, v) in rows {
        for part in [tag, w, k, v] {
            h ^= part;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use slash_core::{AggSpec, RecordSchema, StreamDef, WindowAssigner};

    fn count_plan(window: u64) -> QueryPlan {
        QueryPlan::Aggregate {
            input: StreamDef::new(RecordSchema::plain(16)),
            window: WindowAssigner::Tumbling { size: window },
            agg: AggSpec::Count,
        }
    }

    fn gen(n: u64, dt: u64, keys: u64) -> Vec<u8> {
        let mut buf = Vec::with_capacity((n * 16) as usize);
        for i in 0..n {
            buf.extend_from_slice(&(i * dt).to_le_bytes());
            buf.extend_from_slice(&(i % keys).to_le_bytes());
        }
        buf
    }

    #[test]
    fn sim_backend_matches_direct_cluster_run() {
        let mut cfg = RunConfig::new(2, 2);
        cfg.collect_results = true;
        cfg.epoch_bytes = 4096;
        let parts: Vec<Vec<u8>> = (0..4).map(|_| gen(300, 3, 16)).collect();
        let via_trait = SimBackend.run(JobSpec::new(
            || count_plan(100),
            parts.clone(),
            cfg,
        ));
        let direct = SlashCluster::run(
            count_plan(100),
            parts.into_iter().map(Rc::new).collect(),
            cfg,
        );
        assert_eq!(via_trait.records, direct.records);
        assert_eq!(via_trait.emitted, direct.emitted);
        assert_eq!(via_trait.state_digests, direct.state_digests);
        assert_eq!(
            results_fingerprint(&via_trait.results),
            results_fingerprint(&direct.results)
        );
    }

    #[test]
    fn fingerprint_is_order_independent_but_value_sensitive() {
        let a = SinkResult::Agg {
            window_id: 1,
            key: 2,
            value: 3.0,
        };
        let b = SinkResult::Join {
            window_id: 1,
            key: 2,
            pairs: 9,
        };
        assert_eq!(
            results_fingerprint(&[a.clone(), b.clone()]),
            results_fingerprint(&[b.clone(), a.clone()])
        );
        let c = SinkResult::Agg {
            window_id: 1,
            key: 2,
            value: 4.0,
        };
        assert_ne!(
            results_fingerprint(&[a, b.clone()]),
            results_fingerprint(&[c, b])
        );
    }
}
