//! Replayable protocol scenarios for the race checker.
//!
//! Each scenario builds a fresh simulation under a given
//! [`TieBreak`] policy, drives the protocol with *actors* — closures
//! rescheduled at a fixed tick period, so every tick all actors land on
//! the same virtual nanosecond and the tie-break policy decides their
//! order — and checks the protocol invariants both during the run and at
//! quiescence. The op sequence itself is drawn from fixed-seed
//! [`DetRng`]s, so across policies only the *interleaving* varies, never
//! the workload.
//!
//! Most scenarios use the default single-port NIC configuration on
//! purpose: with one port per direction, two WRITEs on the same queue
//! pair always serialize on the link and can never land on the same
//! nanosecond, so permuting same-timestamp events cannot violate RC
//! ordering — every explored schedule is one real hardware could produce.
//! The **multi-port family** ([`ChannelScenario::multi_port`]) flips that
//! deliberately: with two rails per node, messages striped across ports
//! genuinely tie at the receiver, and the tie-break policy decides which
//! delivery lands first — the multi-rail races a bonded NIC would expose.
//!
//! The **recovery family** ([`RecoveryScenario`]) crashes a node in the
//! middle of epoch traffic, restores it from an epoch-aligned checkpoint
//! (snapshot + vector clock + receiver horizons + retained epochs), replays
//! its deterministic op stream, and asserts
//! [`Invariant::RecoveryConvergence`]: the cluster ends in exactly the
//! no-fault state, with no epoch applied twice.
//!
//! [`Mutation`]s inject protocol bugs (via `#[doc(hidden)]` fault hooks in
//! `slash-net`/`slash-state`, or scenario-level tampering) so tests can
//! prove each invariant check actually fires instead of passing vacuously.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use slash_desim::{ChoicePoint, DetRng, EventLabel, Sim, SimTime, TieBreak};
use slash_net::{create_channel, ChannelConfig, ChannelReceiver, ChannelSender, MsgFlags};
use slash_obs::Obs;
use slash_rdma::{Fabric, FabricConfig, NicConfig, NodeId};
use slash_state::backend::{build_cluster_obs, SsbConfig, SsbNode};
use slash_state::hash::{pack_key, partition_of};
use slash_state::{CounterCrdt, DeltaReceiver, DeltaSender, RetainedEpoch};

use crate::race::{Invariant, Outcome};

/// An injected protocol bug for mutation testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// The receiver of channel 0 consumes buffers but never returns
    /// credit (net fault hook) → credit conservation must fire.
    SkipCreditReturn,
    /// The sender of channel 0 ignores the credit window and overwrites
    /// unconsumed slots (net fault hook) → no-overwrite must fire.
    IgnoreCreditWindow,
    /// The consumer of channel 0 processes one polled batch out of order
    /// (detector-level tamper) → FIFO must fire.
    ReorderDelivered,
    /// Node 0's vector clock is forced backwards mid-run (state fault
    /// hook) → vclock monotonicity must fire.
    RegressVclock,
    /// One update is counted in the sequential oracle but never applied
    /// to the backend → epoch convergence must fire.
    DropUpdate,
    /// The restored node skips requeueing retained epochs from one helper
    /// after its crash, losing the replay range → recovery convergence
    /// must fire.
    SkipReplay,
}

// ---------------------------------------------------------------------------
// Channel scenario
// ---------------------------------------------------------------------------

const PAYLOAD: usize = 64;
const TICK_NS: u64 = 5_000;
const MAX_TICKS: u64 = 600;

/// Fold one value into a running SplitMix64 digest. Used by the scenario
/// state-digest hooks the exhaustive explorer deduplicates prefixes with.
pub(crate) fn fold_digest(h: u64, v: u64) -> u64 {
    let mut z = h
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(v)
        .wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Configuration of the channel scenario: one producer node fanning out to
/// `channels` consumer nodes over credit-limited channels that share the
/// producer's NIC port(s).
#[derive(Debug, Clone)]
pub struct ChannelScenario {
    /// Messages sent per channel before EOS.
    pub messages: u64,
    /// Channel credit budget (small, to stress the window).
    pub credits: usize,
    /// Full-duplex NIC ports per node (1 = the paper's testbed; 2 =
    /// multi-rail striping, where deliveries can genuinely tie).
    pub ports: usize,
    /// Fan-out: number of consumer nodes, one channel each.
    pub channels: usize,
    /// Optional injected bug.
    pub mutation: Option<Mutation>,
}

impl Default for ChannelScenario {
    fn default() -> Self {
        ChannelScenario {
            messages: 24,
            credits: 4,
            ports: 1,
            channels: 2,
            mutation: None,
        }
    }
}

impl ChannelScenario {
    /// The multi-port fabric family: two full-duplex ports per node, so
    /// the producer's channels stripe across rails and deliveries to the
    /// two consumers can land on the same nanosecond — ties the
    /// single-port configuration can never produce. The tie-break policy
    /// then decides which delivery is processed first; FIFO-per-channel,
    /// credit conservation and no-overwrite must hold under every
    /// resolution.
    pub fn multi_port() -> Self {
        ChannelScenario {
            ports: 2,
            ..ChannelScenario::default()
        }
    }

    /// The exhaustive-enumeration family: two nodes, one channel, a
    /// handful of messages through a two-slot credit window. Small enough
    /// that the DFS explorer can enumerate *every* distinct same-instant
    /// schedule within its budget, turning the FIFO/credit invariants from
    /// spot-checked into checked-on-all-schedules.
    pub fn small() -> Self {
        ChannelScenario {
            messages: 3,
            credits: 2,
            ports: 1,
            channels: 1,
            mutation: None,
        }
    }
}

fn fill_byte(ch: usize, id: u64) -> u8 {
    (id as u8) ^ ((ch as u8) << 4) ^ 0x5A
}

struct ChanWorld {
    txs: Vec<ChannelSender>,
    rxs: Vec<ChannelReceiver>,
    nchan: usize,
    msgs: u64,
    credits: usize,
    mutation: Option<Mutation>,
    sent: Vec<u64>,
    eos_sent: Vec<bool>,
    expected: Vec<u64>,
    eos_seen: Vec<bool>,
    reordered: bool,
    violations: Vec<(Invariant, String)>,
    flagged: HashSet<(&'static str, usize)>,
    obs: Obs,
    cur_fp: u64,
}

impl ChanWorld {
    /// Record a violation once per (invariant, channel) pair, capturing a
    /// flight-recorder dump (verb-event tail + schedule fingerprint) the
    /// moment the invariant trips.
    fn flag(&mut self, inv: Invariant, ch: usize, detail: String) {
        if self.flagged.insert((inv.name(), ch)) {
            self.obs.record_failure(
                &format!("[{}] channel {ch}: {detail}", inv.name()),
                &format!("schedule fingerprint={:#018x}", self.cur_fp),
            );
            self.violations.push((inv, format!("channel {ch}: {detail}")));
        }
    }

    fn check_credits(&mut self, ch: usize) {
        let acked = self.txs[ch].acked();
        let txn = self.txs[ch].next_seq();
        let rxn = self.rxs[ch].next_seq();
        if !(acked <= rxn && rxn <= txn) {
            self.flag(
                Invariant::CreditConservation,
                ch,
                format!("counter order broken: acked={acked} rx={rxn} tx={txn}"),
            );
        }
        if txn.saturating_sub(acked) > self.credits as u64 {
            self.flag(
                Invariant::NoOverwrite,
                ch,
                format!(
                    "window overrun: {} buffers in flight > {} credits (slot reused before ack)",
                    txn - acked,
                    self.credits
                ),
            );
        }
    }

    /// Order-insensitive digest of every protocol-visible counter: sender
    /// and receiver sequence numbers, acked credit, per-channel detector
    /// progress, and the violation count. Two explored prefixes with equal
    /// digests have converged to the same channel state.
    fn digest(&self) -> u64 {
        let mut h = 0xC4A2_17E5_D00D_F00Du64;
        for ch in 0..self.nchan {
            h = fold_digest(h, self.txs[ch].next_seq());
            h = fold_digest(h, self.txs[ch].acked());
            h = fold_digest(h, self.rxs[ch].next_seq());
            h = fold_digest(h, self.rxs[ch].unreturned() as u64);
            h = fold_digest(h, self.sent[ch]);
            h = fold_digest(h, self.expected[ch]);
            let bits = (self.eos_sent[ch] as u64) | ((self.eos_seen[ch] as u64) << 1);
            h = fold_digest(h, bits);
        }
        fold_digest(h, self.violations.len() as u64)
    }

    fn producer_tick(&mut self, sim: &mut Sim) -> bool {
        self.cur_fp = sim.schedule_fingerprint();
        for ch in 0..self.nchan {
            // Bursty producer: each tick it offers more messages than the
            // credit window holds, so a healthy sender must stall on
            // credits mid-burst; one that ignores the window overruns the
            // ring within a single tick (acks need at least one link RTT).
            for _ in 0..self.credits + 2 {
                if self.sent[ch] < self.msgs {
                    let id = self.sent[ch];
                    let res = self.txs[ch].try_send_with(sim, MsgFlags::DATA, PAYLOAD, |buf| {
                        buf[..8].copy_from_slice(&id.to_le_bytes());
                        for b in &mut buf[8..] {
                            *b = fill_byte(ch, id);
                        }
                    });
                    match res {
                        Ok(true) => self.sent[ch] += 1,
                        Ok(false) => break,
                        Err(e) => {
                            self.flag(Invariant::Fifo, ch, format!("transport error: {e:?}"));
                            break;
                        }
                    }
                } else if !self.eos_sent[ch] {
                    if let Ok(true) = self.txs[ch].try_send_eos(sim) {
                        self.eos_sent[ch] = true;
                    }
                    break;
                } else {
                    break;
                }
            }
            self.check_credits(ch);
        }
        self.eos_sent.iter().all(|&e| e)
    }

    fn observe(&mut self, ch: usize, flags: MsgFlags, payload: &[u8]) {
        if flags.contains(MsgFlags::EOS) {
            self.eos_seen[ch] = true;
            if self.expected[ch] != self.msgs {
                let (got, want) = (self.expected[ch], self.msgs);
                self.flag(Invariant::Fifo, ch, format!("EOS after {got} of {want} messages"));
            }
            return;
        }
        if payload.len() != PAYLOAD {
            let len = payload.len();
            self.flag(Invariant::NoOverwrite, ch, format!("payload length {len} ≠ {PAYLOAD}"));
            return;
        }
        let mut idb = [0u8; 8];
        idb.copy_from_slice(&payload[..8]);
        let id = u64::from_le_bytes(idb);
        if id != self.expected[ch] {
            let want = self.expected[ch];
            self.flag(Invariant::Fifo, ch, format!("received message {id}, expected {want}"));
        }
        let fb = fill_byte(ch, id);
        if payload[8..].iter().any(|&b| b != fb) {
            self.flag(
                Invariant::NoOverwrite,
                ch,
                format!("message {id} payload corrupted (expected fill {fb:#04x})"),
            );
        }
        self.expected[ch] = id + 1;
    }

    fn consumer_tick(&mut self, sim: &mut Sim, ch: usize) -> bool {
        self.cur_fp = sim.schedule_fingerprint();
        let mut batch: Vec<(MsgFlags, Vec<u8>)> = Vec::new();
        loop {
            match self.rxs[ch].try_recv(sim) {
                Ok(Some(m)) => {
                    let eos = m.0.contains(MsgFlags::EOS);
                    batch.push(m);
                    if eos {
                        break;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    self.flag(Invariant::Fifo, ch, format!("transport error: {e:?}"));
                    break;
                }
            }
        }
        if self.mutation == Some(Mutation::ReorderDelivered)
            && ch == 0
            && !self.reordered
            && batch.len() >= 2
        {
            batch.swap(0, 1);
            self.reordered = true;
        }
        for (flags, payload) in batch {
            self.observe(ch, flags, &payload);
        }
        self.check_credits(ch);
        self.eos_seen[ch]
    }

    fn quiescence(&mut self) {
        for ch in 0..self.nchan {
            if !self.eos_seen[ch] {
                let (got, want) = (self.expected[ch], self.msgs);
                self.flag(
                    Invariant::Fifo,
                    ch,
                    format!("stream incomplete at quiescence: {got} of {want}, no EOS"),
                );
            }
            let acked = self.txs[ch].acked();
            let txn = self.txs[ch].next_seq();
            let rxn = self.rxs[ch].next_seq();
            let unret = self.rxs[ch].unreturned();
            if !(acked == rxn && rxn == txn && unret == 0) {
                self.flag(
                    Invariant::CreditConservation,
                    ch,
                    format!(
                        "credits not conserved at quiescence: acked={acked} rx={rxn} tx={txn} unreturned={unret}"
                    ),
                );
            }
        }
    }
}

#[derive(Clone, Copy)]
enum ChanActor {
    Producer,
    Consumer(usize),
}

fn schedule_chan_actor(
    sim: &mut Sim,
    world: Rc<RefCell<ChanWorld>>,
    actor: ChanActor,
    at: SimTime,
    tick: u64,
) {
    // Node labels are informational only (actors touch shared world state,
    // so the explorer treats them as dependent with everything); they make
    // minimized counterexample schedules readable.
    let label = match actor {
        ChanActor::Producer => EventLabel::node(0),
        ChanActor::Consumer(ch) => EventLabel::node(ch as u32 + 1),
    };
    sim.schedule_at_labeled(at, label, move |sim| {
        let done = {
            let mut w = world.borrow_mut();
            match actor {
                ChanActor::Producer => w.producer_tick(sim),
                ChanActor::Consumer(ch) => w.consumer_tick(sim, ch),
            }
        };
        if !done && tick < MAX_TICKS {
            let next = sim.now() + SimTime::from_nanos(TICK_NS);
            schedule_chan_actor(sim, world, actor, next, tick + 1);
        }
    });
}

impl ChannelScenario {
    /// Run the scenario under one tie-break policy.
    pub fn run(&self, policy: TieBreak) -> Outcome {
        self.run_sim(Sim::with_tie_break(policy)).0
    }

    /// Run the scenario in explore mode under an explicit same-instant
    /// choice schedule (see [`Sim::with_schedule`]), returning the outcome
    /// plus the recorded branch-point trace the explorer branches on.
    pub fn run_schedule(&self, choices: &[u32]) -> (Outcome, Vec<ChoicePoint>) {
        let (out, mut sim) = self.run_sim(Sim::with_schedule(choices));
        let trace = sim.take_choice_trace();
        (out, trace)
    }

    /// Exhaustively enumerate this scenario's same-instant schedules (see
    /// [`crate::explorer::explore_exhaustive`]).
    pub fn exhaustive(
        &self,
        name: &'static str,
        budget: crate::explorer::Budget,
        minimize: bool,
    ) -> crate::explorer::ExhaustiveReport {
        crate::explorer::explore_exhaustive(name, budget, minimize, |c| {
            let (outcome, trace) = self.run_schedule(c);
            crate::explorer::ScheduleRun { outcome, trace }
        })
    }

    fn run_sim(&self, mut sim: Sim) -> (Outcome, Sim) {
        let nchan = self.channels.max(1);
        let fabric = Fabric::new(FabricConfig {
            nic: NicConfig {
                ports: self.ports.max(1),
                ..NicConfig::default()
            },
        });
        let a = fabric.add_node();
        let chan_cfg = ChannelConfig {
            credits: self.credits,
            buffer_size: 256,
            credit_batch: 1,
        };
        // The flight recorder rides along on every run: channel verb events
        // stream into a bounded ring, and any invariant failure snapshots
        // the tail together with the schedule fingerprint.
        let obs = Obs::enabled(4096);
        let mut txs = Vec::with_capacity(nchan);
        let mut rxs = Vec::with_capacity(nchan);
        for ch in 0..nchan {
            let consumer = fabric.add_node();
            let (mut tx, mut rx) = create_channel(&fabric, a, consumer, chan_cfg);
            tx.instrument(obs.clone(), 0, ch as u32 + 1);
            rx.instrument(obs.clone(), ch as u32 + 1, 0);
            txs.push(tx);
            rxs.push(rx);
        }
        match self.mutation {
            Some(Mutation::SkipCreditReturn) => rxs[0].fault_skip_credit_return(),
            Some(Mutation::IgnoreCreditWindow) => txs[0].fault_ignore_credit_window(),
            _ => {}
        }
        let world = Rc::new(RefCell::new(ChanWorld {
            txs,
            rxs,
            nchan,
            msgs: self.messages,
            credits: self.credits,
            mutation: self.mutation,
            sent: vec![0; nchan],
            eos_sent: vec![false; nchan],
            expected: vec![0; nchan],
            eos_seen: vec![false; nchan],
            reordered: false,
            violations: Vec::new(),
            flagged: HashSet::new(),
            obs: obs.clone(),
            cur_fp: 0,
        }));
        // State-digest hook (explore mode only): lets the explorer
        // recognize converged prefixes. Sampled between events, so no
        // borrow of the world can be live.
        let digest_world = Rc::clone(&world);
        sim.set_state_digest(move || digest_world.borrow().digest());
        // All actors land on the same nanosecond every tick; the tie-break
        // policy (or the explored schedule) decides who runs first.
        let t0 = SimTime::from_nanos(TICK_NS);
        schedule_chan_actor(&mut sim, Rc::clone(&world), ChanActor::Producer, t0, 0);
        for ch in 0..nchan {
            schedule_chan_actor(&mut sim, Rc::clone(&world), ChanActor::Consumer(ch), t0, 0);
        }
        sim.run();
        // Bounded final drain: late deliveries may still be in flight when
        // the last scheduled tick fires.
        for _ in 0..64 {
            {
                let mut w = world.borrow_mut();
                for ch in 0..nchan {
                    w.consumer_tick(&mut sim, ch);
                }
                w.producer_tick(&mut sim);
            }
            sim.run();
            if world.borrow().eos_seen.iter().all(|&e| e) {
                break;
            }
        }
        let mut w = world.borrow_mut();
        w.cur_fp = sim.schedule_fingerprint();
        w.quiescence();
        let outcome = Outcome {
            fingerprint: sim.schedule_fingerprint(),
            violations: std::mem::take(&mut w.violations),
            dumps: obs.take_failures().iter().map(|d| d.render()).collect(),
        };
        drop(w);
        (outcome, sim)
    }
}

// ---------------------------------------------------------------------------
// Coherence scenario
// ---------------------------------------------------------------------------

const C_TICK_NS: u64 = 5_000;
const OP_TICKS: u64 = 12;
const SETTLE_TICKS: u64 = 10;
const KEYS: u64 = 16;
const OPS_PER_TICK: usize = 4;
const EPOCH_EVERY: u64 = 4;
const FINAL_WM: u64 = 10_000;

/// Configuration of the epoch-coherence scenario: an `n`-node SSB cluster
/// where every node updates random keys, periodically closes epochs, and
/// pumps delta shipping — with all per-node actors tying on every tick.
#[derive(Debug, Clone)]
pub struct CoherenceScenario {
    /// Cluster size.
    pub nodes: usize,
    /// Optional injected bug.
    pub mutation: Option<Mutation>,
}

impl Default for CoherenceScenario {
    fn default() -> Self {
        CoherenceScenario {
            nodes: 3,
            mutation: None,
        }
    }
}

struct CohWorld {
    ssb: Vec<SsbNode>,
    oracle: HashMap<u64, u64>,
    rngs: Vec<DetRng>,
    prev_vc: Vec<Vec<u64>>,
    mutation: Option<Mutation>,
    dropped: bool,
    regressed: bool,
    final_closed: Vec<bool>,
    violations: Vec<(Invariant, String)>,
    flagged: HashSet<(&'static str, usize)>,
    obs: Obs,
    cur_fp: u64,
}

impl CohWorld {
    /// Record a violation once per (invariant, node) pair, capturing a
    /// flight-recorder dump with the schedule fingerprint and the failing
    /// node's vector clock.
    fn flag(&mut self, inv: Invariant, node: usize, detail: String) {
        if self.flagged.insert((inv.name(), node)) {
            let vc = self.ssb[node].vclock().snapshot();
            self.obs.record_failure(
                &format!("[{}] node {node}: {detail}", inv.name()),
                &format!("schedule fingerprint={:#018x} vclock[{node}]={vc:?}", self.cur_fp),
            );
            self.violations.push((inv, format!("node {node}: {detail}")));
        }
    }

    fn check_vclock(&mut self, i: usize) {
        let n = self.ssb.len();
        for j in 0..n {
            let cur = self.ssb[i].vclock().get(j);
            let prev = self.prev_vc[i][j];
            if cur < prev {
                self.flag(
                    Invariant::VclockMonotonic,
                    i,
                    format!("vclock slot {j} regressed from {prev} to {cur}"),
                );
            }
            self.prev_vc[i][j] = cur;
        }
    }

    fn node_tick(&mut self, sim: &mut Sim, i: usize, tick: u64) -> bool {
        self.cur_fp = sim.schedule_fingerprint();
        if tick < OP_TICKS {
            for _ in 0..OPS_PER_TICK {
                let k = self.rngs[i].next_below(KEYS);
                let v = 1 + self.rngs[i].next_below(5);
                *self.oracle.entry(k).or_insert(0) += v;
                if self.mutation == Some(Mutation::DropUpdate) && i == 1 && !self.dropped {
                    // Counted in the oracle, never applied to the backend.
                    self.dropped = true;
                } else {
                    self.ssb[i].rmw(pack_key(1, k), |buf| CounterCrdt::add(buf, v));
                }
            }
            if (tick + 1).is_multiple_of(EPOCH_EVERY) {
                self.ssb[i].note_progress((tick + 1) * 100);
                if let Err(e) = self.ssb[i].close_epoch(sim) {
                    self.flag(Invariant::EpochConvergence, i, format!("close_epoch failed: {e:?}"));
                }
            }
        } else if !self.final_closed[i] {
            self.ssb[i].note_progress(FINAL_WM);
            if let Err(e) = self.ssb[i].close_epoch(sim) {
                self.flag(Invariant::EpochConvergence, i, format!("close_epoch failed: {e:?}"));
            }
            self.final_closed[i] = true;
        }
        if self.mutation == Some(Mutation::RegressVclock) && i == 0 && tick == 6 && !self.regressed
        {
            self.regressed = true;
            self.ssb[0].fault_vclock_mut().fault_force_set(0, 1);
        }
        if let Err(e) = self.ssb[i].pump(sim) {
            self.flag(Invariant::EpochConvergence, i, format!("pump failed: {e:?}"));
        }
        self.check_vclock(i);
        tick >= OP_TICKS + SETTLE_TICKS
    }

    fn convergence(&mut self) {
        let n = self.ssb.len();
        let oracle: Vec<(u64, u64)> = self.oracle.iter().map(|(&k, &v)| (k, v)).collect();
        for (k, total) in oracle {
            let key = pack_key(1, k);
            let leader = partition_of(key, n);
            let got = self.ssb[leader].local_get(key).map(CounterCrdt::get);
            if got != Some(total) {
                self.flag(
                    Invariant::EpochConvergence,
                    leader,
                    format!("key {k}: leader holds {got:?}, sequential oracle says {total}"),
                );
            }
        }
        for i in 0..n {
            for j in 0..n {
                let got = self.ssb[i].vclock().get(j);
                if got != FINAL_WM {
                    self.flag(
                        Invariant::EpochConvergence,
                        i,
                        format!("vclock slot {j} = {got} ≠ final watermark {FINAL_WM}"),
                    );
                }
            }
        }
    }
}

fn schedule_coh_actor(sim: &mut Sim, world: Rc<RefCell<CohWorld>>, node: usize, at: SimTime, tick: u64) {
    sim.schedule_at_labeled(at, EventLabel::node(node as u32), move |sim| {
        let done = world.borrow_mut().node_tick(sim, node, tick);
        if !done {
            let next = sim.now() + SimTime::from_nanos(C_TICK_NS);
            schedule_coh_actor(sim, world, node, next, tick + 1);
        }
    });
}

impl CohWorld {
    /// Order-insensitive digest of the cluster's protocol-visible state:
    /// every node's backend digest and vector clock, plus a commutative
    /// fold of the oracle (its `HashMap` iteration order must not leak
    /// into the digest).
    fn digest(&self) -> u64 {
        let mut h = 0xC0DE_5EED_0B5E_55EDu64;
        for (i, node) in self.ssb.iter().enumerate() {
            h = fold_digest(h, node.state_digest());
            for v in node.vclock().snapshot() {
                h = fold_digest(h, v);
            }
            h = fold_digest(h, i as u64);
        }
        let mut acc = 0u64;
        for (&k, &v) in &self.oracle {
            acc ^= fold_digest(fold_digest(0x0AC1_E0AC_1E0A_C1E0, k), v);
        }
        h = fold_digest(h, acc);
        fold_digest(h, self.violations.len() as u64)
    }
}

impl CoherenceScenario {
    /// Run the scenario under one tie-break policy.
    pub fn run(&self, policy: TieBreak) -> Outcome {
        self.run_sim(Sim::with_tie_break(policy)).0
    }

    /// Run in explore mode under an explicit choice schedule; see
    /// [`ChannelScenario::run_schedule`].
    pub fn run_schedule(&self, choices: &[u32]) -> (Outcome, Vec<ChoicePoint>) {
        let (out, mut sim) = self.run_sim(Sim::with_schedule(choices));
        let trace = sim.take_choice_trace();
        (out, trace)
    }

    /// Exhaustively enumerate this scenario's same-instant schedules (see
    /// [`crate::explorer::explore_exhaustive`]).
    pub fn exhaustive(
        &self,
        name: &'static str,
        budget: crate::explorer::Budget,
        minimize: bool,
    ) -> crate::explorer::ExhaustiveReport {
        crate::explorer::explore_exhaustive(name, budget, minimize, |c| {
            let (outcome, trace) = self.run_schedule(c);
            crate::explorer::ScheduleRun { outcome, trace }
        })
    }

    fn run_sim(&self, mut sim: Sim) -> (Outcome, Sim) {
        let n = self.nodes;
        let fabric = Fabric::new(FabricConfig::default());
        let nodes = fabric.add_nodes(n);
        let cfg = SsbConfig {
            nodes: n,
            epoch_bytes: u64::MAX, // epochs closed explicitly by the actors
            channel: ChannelConfig {
                credits: 8,
                buffer_size: 4096,
                credit_batch: 1,
            },
        };
        // Instrumented cluster: delta-channel verbs and epoch phase spans
        // stream into the flight recorder's ring.
        let obs = Obs::enabled(4096);
        let ssb = build_cluster_obs(&fabric, &nodes, CounterCrdt::descriptor(), cfg, obs.clone());
        let world = Rc::new(RefCell::new(CohWorld {
            ssb,
            oracle: HashMap::new(),
            // Fixed per-node op seeds: the workload is identical across
            // policies; only the interleaving varies.
            rngs: (0..n).map(|i| DetRng::new(0xC0DE ^ (i as u64) << 8)).collect(),
            prev_vc: vec![vec![0; n]; n],
            mutation: self.mutation,
            dropped: false,
            regressed: false,
            final_closed: vec![false; n],
            violations: Vec::new(),
            flagged: HashSet::new(),
            obs: obs.clone(),
            cur_fp: 0,
        }));
        let digest_world = Rc::clone(&world);
        sim.set_state_digest(move || digest_world.borrow().digest());
        let t0 = SimTime::from_nanos(C_TICK_NS);
        for i in 0..n {
            schedule_coh_actor(&mut sim, Rc::clone(&world), i, t0, 0);
        }
        sim.run();
        // Settle: pump everything until fully quiescent (same pattern the
        // backend's own tests use, bounded).
        for _ in 0..10_000 {
            let mut progress = 0u64;
            {
                let mut w = world.borrow_mut();
                for i in 0..n {
                    if let Ok((s, m)) = w.ssb[i].pump(&mut sim) {
                        progress += s + m;
                    }
                }
            }
            sim.run();
            let flushed = world.borrow().ssb.iter().all(|nd| nd.flushed());
            if progress == 0 && flushed {
                break;
            }
        }
        let mut w = world.borrow_mut();
        w.cur_fp = sim.schedule_fingerprint();
        w.convergence();
        let outcome = Outcome {
            fingerprint: sim.schedule_fingerprint(),
            violations: std::mem::take(&mut w.violations),
            dumps: obs.take_failures().iter().map(|d| d.render()).collect(),
        };
        drop(w);
        (outcome, sim)
    }
}

// ---------------------------------------------------------------------------
// Recovery scenario
// ---------------------------------------------------------------------------

const R_OP_TICKS: u64 = 16;
const R_CRASH_TICK: u64 = 9;
const VICTIM: usize = 1;

/// Configuration of the snapshot/restore-during-epoch-traffic scenario:
/// an SSB cluster runs the coherence workload with epoch retention on;
/// every node named in the crash schedule checkpoints at each of its
/// epoch closes (primary snapshot, vector clock, per-helper receiver
/// horizons, retained epochs, op-stream RNG). At its scheduled tick a
/// victim crashes and is rebuilt in place from its last checkpoint —
/// channels torn down and re-established, retained epochs requeued from
/// the survivors' committed horizons, the victim's deterministic op
/// stream replayed — all while the survivors keep closing and shipping
/// epochs. At quiescence [`Invariant::RecoveryConvergence`] requires the
/// merged state to equal the sequential oracle exactly: nothing lost, no
/// epoch applied twice.
///
/// The schedule makes this a *family*: the default is the single crash of
/// node `VICTIM` at `R_CRASH_TICK`; [`RecoveryScenario::concurrent_crash`]
/// crashes two nodes on the same tick (the tie-break policy orders the
/// overlapping restores); [`RecoveryScenario::reentrant`] crashes the same
/// node twice, so the second restore starts from a checkpoint captured by
/// the first restored incarnation.
#[derive(Debug, Clone)]
pub struct RecoveryScenario {
    /// Cluster size (must be ≥ 2 so every victim has surviving helpers).
    pub nodes: usize,
    /// Crash schedule: `(tick, node)` pairs, in any order. Two entries
    /// with the same tick on distinct nodes crash *concurrently* — the
    /// tie-break policy decides which crash-and-restore runs first, so
    /// the sweep explores every ordering of overlapping recoveries. Two
    /// entries for the same node crash it *again* after its first
    /// recovery.
    pub crashes: Vec<(u64, usize)>,
    /// Planned-handoff schedule: `(tick, node)` pairs. A handoff is a
    /// *promotion without a crash* — the elastic-rescaling cutover: at
    /// its tick the node halts, closes an epoch (the cutover point),
    /// captures the epoch-aligned checkpoint at that very instant, and
    /// is rebuilt from it with an **empty** replay range — channels
    /// re-established and requeued from committed horizons exactly like
    /// a crash restore, but nothing was lost, so epoch-id dedup is the
    /// only thing standing between the reconnect and double-apply. An
    /// entry sharing its tick with a `crashes` entry on another node
    /// interleaves a live migration with a concurrent crash recovery;
    /// the tie-break policy orders the two rebuilds.
    pub handoffs: Vec<(u64, usize)>,
    /// Canonical group keys hot-split before any traffic: every node's
    /// ledger copy activates these at build, so each replica's updates
    /// for a split key land under its own salted sub-key (the oracle
    /// keeps counting the canonical key). Convergence then checks the
    /// *fold* — canonical plus every sub-key entry at the leader — and a
    /// crash or handoff of any node must commute with the split: the
    /// restored incarnation adopts a survivor's ledger copy exactly like
    /// production promotion does.
    pub pre_split: Vec<u64>,
    /// Optional injected bug.
    pub mutation: Option<Mutation>,
}

impl Default for RecoveryScenario {
    fn default() -> Self {
        RecoveryScenario {
            nodes: 3,
            crashes: vec![(R_CRASH_TICK, VICTIM)],
            handoffs: vec![],
            pre_split: vec![],
            mutation: None,
        }
    }
}

impl RecoveryScenario {
    /// The concurrent-crash family: nodes 1 and 2 of a 4-node cluster
    /// crash on the same tick. Whichever restore the tie-break policy
    /// runs first reads the other victim's pre-crash endpoints and has
    /// its freshly-built channels toward that victim torn down again by
    /// the second restore; the later restore must re-ship from the
    /// earlier one's checkpointed horizons. Convergence must hold under
    /// every ordering.
    pub fn concurrent_crash() -> Self {
        RecoveryScenario {
            nodes: 4,
            crashes: vec![(R_CRASH_TICK, 1), (R_CRASH_TICK, 2)],
            ..RecoveryScenario::default()
        }
    }

    /// The re-entrant recovery family: node `VICTIM` crashes at
    /// `R_CRASH_TICK` and again four ticks later — after its restored
    /// incarnation has replayed its op stream, shipped fresh epochs, and
    /// captured a new checkpoint of its own. The second restore composes
    /// with the first: two generations of requeued deltas land at the
    /// survivors, and epoch-id dedup must keep the merge exactly-once.
    pub fn reentrant() -> Self {
        RecoveryScenario {
            crashes: vec![(R_CRASH_TICK, VICTIM), (R_CRASH_TICK + 4, VICTIM)],
            ..RecoveryScenario::default()
        }
    }

    /// The minimal recovery family for exhaustive exploration: two nodes,
    /// one crash. Its schedule space is still combinatorially deep (two
    /// actors tie on every tick for dozens of ticks), so the explorer is
    /// expected to hit its budget here and *report* frontier truncation —
    /// the budget-semantics counterpart to [`ChannelScenario::small`],
    /// which it fully enumerates.
    pub fn small() -> Self {
        RecoveryScenario {
            nodes: 2,
            crashes: vec![(R_CRASH_TICK, VICTIM)],
            handoffs: vec![],
            pre_split: vec![],
            mutation: None,
        }
    }

    /// The planned-handoff family: node `VICTIM` of a 3-node cluster
    /// migrates at `R_CRASH_TICK` — cutover close, checkpoint at that
    /// instant, rebuild with empty replay — while the other two nodes
    /// keep closing and shipping epochs. Exactly-once across the
    /// reconnect must hold under every interleaving of the cutover with
    /// the survivors' in-flight deltas.
    pub fn planned_handoff() -> Self {
        RecoveryScenario {
            crashes: vec![],
            handoffs: vec![(R_CRASH_TICK, VICTIM)],
            ..RecoveryScenario::default()
        }
    }

    /// The handoff-vs-crash family: in a 4-node cluster, node 1 starts a
    /// planned handoff on the same tick node 2 crashes. The tie-break
    /// policy decides whether the migration cutover or the crash restore
    /// rebuilds first; each rebuild tears down and re-establishes
    /// channels toward the other's current incarnation, and both
    /// convergence and exactly-once must hold under every ordering.
    pub fn handoff_vs_crash() -> Self {
        RecoveryScenario {
            nodes: 4,
            crashes: vec![(R_CRASH_TICK, 2)],
            handoffs: vec![(R_CRASH_TICK, 1)],
            ..RecoveryScenario::default()
        }
    }

    /// The minimal handoff family for exhaustive exploration: two nodes,
    /// one planned handoff. The state-digest dedup collapses converged
    /// tick interleavings the same way `small()` does, so the explorer
    /// drains the frontier and turns the reconnect-dedup invariant into
    /// checked-on-all-schedules.
    pub fn rescale_small() -> Self {
        RecoveryScenario {
            nodes: 2,
            crashes: vec![],
            handoffs: vec![(R_CRASH_TICK, VICTIM)],
            pre_split: vec![],
            mutation: None,
        }
    }

    /// The hot-split crash family: the default single-crash schedule with
    /// two keys split across every replica. Salted sub-key deltas ride
    /// the same epochs the crash interrupts, the victim's checkpoint and
    /// replay cover sub-key entries like any other state, and the
    /// restored incarnation must adopt split custody from a survivor —
    /// convergence checks the canonical-plus-sub-keys fold against the
    /// unsalted oracle under every interleaving.
    pub fn hot_split() -> Self {
        RecoveryScenario {
            pre_split: vec![1, 3],
            ..RecoveryScenario::default()
        }
    }

    /// The hot-split handoff family: a planned cutover (promotion without
    /// a crash) while two keys are split. The cutover checkpoint captures
    /// sub-key entries mid-window; exactly-once across the reconnect must
    /// keep the fold exact with zero replayed ops.
    pub fn hot_split_handoff() -> Self {
        RecoveryScenario {
            crashes: vec![],
            handoffs: vec![(R_CRASH_TICK, VICTIM)],
            pre_split: vec![1, 3],
            ..RecoveryScenario::default()
        }
    }

    /// The minimal hot-split family for exhaustive exploration: two
    /// nodes, one crash, one split key — [`RecoveryScenario::small`] with
    /// split/fold in the schedule space, so the model checker proves the
    /// fold commutes with crash promotion on *every* schedule it drains.
    pub fn hot_split_small() -> Self {
        RecoveryScenario {
            nodes: 2,
            crashes: vec![(R_CRASH_TICK, VICTIM)],
            handoffs: vec![],
            pre_split: vec![1],
            mutation: None,
        }
    }
}

/// The victim's epoch-aligned checkpoint, captured at every epoch close
/// before the crash — exactly the state a durable buddy copy would hold.
struct RecCkpt {
    snapshot: Vec<Vec<u8>>,
    vclock: Vec<u64>,
    /// Committed-epoch horizon of the victim's receiver from each helper.
    receiver_next: Vec<u64>,
    /// The victim's own retained epochs toward each leader (its sender
    /// memory, lost in the crash unless checkpointed).
    retained: Vec<Vec<RetainedEpoch>>,
    epochs_closed: u64,
    /// Clone of the victim's op-stream RNG: replaying from here
    /// regenerates the exact same updates and epoch contents.
    rng: DetRng,
    resume_tick: u64,
}

struct RecWorld {
    ssb: Vec<SsbNode>,
    fabric: Fabric,
    fab: Vec<NodeId>,
    cfg: SsbConfig,
    oracle: HashMap<u64, u64>,
    rngs: Vec<DetRng>,
    prev_vc: Vec<Vec<u64>>,
    mutation: Option<Mutation>,
    /// Latest checkpoint per node (only victims capture).
    ckpts: Vec<Option<RecCkpt>>,
    /// Crash events not yet executed.
    pending: Vec<(u64, usize)>,
    /// Planned handoffs not yet executed.
    pending_handoffs: Vec<(u64, usize)>,
    /// Nodes that appear anywhere in the crash schedule.
    victims: Vec<usize>,
    /// Crash-and-restore cycles completed.
    recovered: usize,
    crashes_total: usize,
    skip_used: bool,
    final_closed: Vec<bool>,
    violations: Vec<(Invariant, String)>,
    flagged: HashSet<(&'static str, usize)>,
    obs: Obs,
    cur_fp: u64,
}

impl RecWorld {
    fn flag(&mut self, inv: Invariant, node: usize, detail: String) {
        if self.flagged.insert((inv.name(), node)) {
            let vc = self.ssb[node].vclock().snapshot();
            self.obs.record_failure(
                &format!("[{}] node {node}: {detail}", inv.name()),
                &format!("schedule fingerprint={:#018x} vclock[{node}]={vc:?}", self.cur_fp),
            );
            self.violations.push((inv, format!("node {node}: {detail}")));
        }
    }

    fn check_vclock(&mut self, i: usize) {
        let n = self.ssb.len();
        for j in 0..n {
            let cur = self.ssb[i].vclock().get(j);
            let prev = self.prev_vc[i][j];
            if cur < prev {
                self.flag(
                    Invariant::VclockMonotonic,
                    i,
                    format!("vclock slot {j} regressed from {prev} to {cur}"),
                );
            }
            self.prev_vc[i][j] = cur;
        }
    }

    /// One tick of workload for node `i`. Replayed ops skip the oracle:
    /// they were counted in their first life, and the RNG clone makes the
    /// replayed stream identical.
    fn do_ops(&mut self, i: usize, count_oracle: bool) {
        for _ in 0..OPS_PER_TICK {
            let k = self.rngs[i].next_below(KEYS);
            let v = 1 + self.rngs[i].next_below(5);
            if count_oracle {
                *self.oracle.entry(k).or_insert(0) += v;
            }
            // A split key's update lands under this replica's salted
            // sub-key (the hot-path routing); the oracle keeps counting
            // the canonical key, so convergence checks the fold.
            let gk = self.ssb[i]
                .split_ledger()
                .and_then(|l| l.sub_for(k, i))
                .unwrap_or(k);
            self.ssb[i].rmw(pack_key(1, gk), |buf| CounterCrdt::add(buf, v));
        }
    }

    fn close_if_due(&mut self, sim: &mut Sim, i: usize, tick: u64) -> bool {
        if (tick + 1).is_multiple_of(EPOCH_EVERY) {
            self.ssb[i].note_progress((tick + 1) * 100);
            if let Err(e) = self.ssb[i].close_epoch(sim) {
                self.flag(
                    Invariant::RecoveryConvergence,
                    i,
                    format!("close_epoch failed: {e:?}"),
                );
            }
            return true;
        }
        false
    }

    /// Checkpoint a victim at an epoch close — the epoch-aligned
    /// consistency point: primary snapshot, vector clock, receiver
    /// horizons and retained sender memory all from the same instant.
    /// Victims keep capturing after a recovery, so a second crash of the
    /// same node restores from its restored incarnation's checkpoint.
    fn capture(&mut self, victim: usize, tick: u64) {
        let n = self.ssb.len();
        let v = &self.ssb[victim];
        self.ckpts[victim] = Some(RecCkpt {
            snapshot: v.snapshot_primary(4096),
            vclock: v.vclock().snapshot(),
            receiver_next: (0..n)
                .map(|h| if h == victim { 0 } else { v.receiver_next_epoch(h) })
                .collect(),
            retained: (0..n)
                .map(|l| {
                    v.retained_for(l).map(<[_]>::to_vec).unwrap_or_default()
                })
                .collect(),
            epochs_closed: v.epochs_closed(),
            rng: self.rngs[victim].clone(),
            resume_tick: tick + 1,
        });
    }

    /// Crash a victim and rebuild it from its last checkpoint while the
    /// survivors' epoch traffic is still in flight: fresh detached node,
    /// snapshot + vclock restore, channel teardown/re-establishment with
    /// retained-epoch requeue from each side's committed horizon, then a
    /// deterministic replay of the op stream lost since the checkpoint.
    ///
    /// Under a concurrent-crash schedule the "survivor" loop may visit
    /// the *other* victim in whatever incarnation it currently holds —
    /// pre-crash if this restore was ordered first, post-restore
    /// otherwise. Both are correct sources: the later restore replaces
    /// any channel built here and re-ships from its own checkpointed
    /// horizons, and retention means every epoch id at or past those
    /// horizons is still requeue-able.
    fn crash_restore(&mut self, sim: &mut Sim, victim: usize, crash_tick: u64) {
        let Some(ckpt) = self.ckpts[victim].take() else {
            self.flag(
                Invariant::RecoveryConvergence,
                victim,
                "no checkpoint captured before crash".into(),
            );
            return;
        };
        let n = self.ssb.len();
        let mut repl = SsbNode::detached(victim, CounterCrdt::descriptor(), self.cfg);
        repl.restore_primary(&ckpt.snapshot);
        repl.restore_vclock(&ckpt.vclock);
        // The replacement must not reuse epoch ids its predecessor
        // shipped with different content; replayed closes regenerate the
        // same ids with the same content, which the survivors dedup.
        repl.resume_fragments_at(ckpt.epochs_closed);
        // Split custody survives the replacement the same way it does in
        // production promotion: adopt a survivor's ledger copy
        // (deterministic replicated control state, identical everywhere).
        if let Some(ledger) = (0..n)
            .filter(|&s| s != victim)
            .find_map(|s| self.ssb[s].split_ledger().cloned())
        {
            repl.set_split_ledger(ledger);
        }
        for s in 0..n {
            if s == victim {
                continue;
            }
            // victim → survivor: new channel, sender memory from the
            // checkpoint, resend from the survivor's committed horizon.
            let (tx, rx) = create_channel(&self.fabric, self.fab[victim], self.fab[s], self.cfg.channel);
            let mut sender = DeltaSender::new(tx);
            sender.restore_retained(ckpt.retained[s].clone());
            let resume = self.ssb[s].receiver_next_epoch(victim);
            sender.requeue_from(resume);
            repl.replace_sender(s, sender);
            self.ssb[s].replace_receiver(victim, DeltaReceiver::new(rx, victim));
            self.ssb[s].seed_receiver(victim, resume);
            // survivor → victim: the helper is alive, so its live retained
            // list replays everything the restored primary is missing.
            let (tx2, rx2) = create_channel(&self.fabric, self.fab[s], self.fab[victim], self.cfg.channel);
            let mut sender2 = DeltaSender::new(tx2);
            sender2.restore_retained(
                self.ssb[s].retained_for(victim).map(<[_]>::to_vec).unwrap_or_default(),
            );
            if self.mutation == Some(Mutation::SkipReplay) && !self.skip_used {
                // Injected bug: the replay range from this helper is lost.
                self.skip_used = true;
            } else {
                sender2.requeue_from(ckpt.receiver_next[s]);
            }
            self.ssb[s].replace_sender(victim, sender2);
            repl.replace_receiver(s, DeltaReceiver::new(rx2, s));
            repl.seed_receiver(s, ckpt.receiver_next[s]);
            self.ssb[s].instrument(self.obs.clone());
        }
        repl.set_retention(true);
        repl.instrument(self.obs.clone());
        self.ssb[victim] = repl;
        // Monotonicity restarts with the new incarnation: the restored
        // vector clock legitimately sits behind the crashed one's.
        self.prev_vc[victim] = vec![0; n];
        // Deterministic replay of the lost op stream.
        self.rngs[victim] = ckpt.rng.clone();
        for t in ckpt.resume_tick..crash_tick {
            self.do_ops(victim, false);
            self.close_if_due(sim, victim, t);
        }
        self.recovered += 1;
    }

    /// Execute a planned handoff: the elastic cutover. Halt, close the
    /// cutover epoch at an off-cycle watermark, capture the checkpoint at
    /// that exact instant, and rebuild through the *same* restore surface
    /// a crash uses — except the replay range `resume_tick..crash_tick`
    /// is empty by construction, because nothing ran between the capture
    /// and the "crash". Promotion without a crash, literally: the crash
    /// path minus staleness.
    fn handoff(&mut self, sim: &mut Sim, i: usize, tick: u64) {
        self.ssb[i].note_progress(tick * 100 + 50);
        if let Err(e) = self.ssb[i].close_epoch(sim) {
            self.flag(
                Invariant::RecoveryConvergence,
                i,
                format!("cutover close_epoch failed: {e:?}"),
            );
        }
        self.capture(i, tick);
        self.crash_restore(sim, i, tick);
    }

    fn node_tick(&mut self, sim: &mut Sim, i: usize, tick: u64) -> bool {
        self.cur_fp = sim.schedule_fingerprint();
        if let Some(pos) = self.pending.iter().position(|&(t, v)| t == tick && v == i) {
            self.pending.remove(pos);
            self.crash_restore(sim, i, tick);
        }
        if let Some(pos) = self
            .pending_handoffs
            .iter()
            .position(|&(t, v)| t == tick && v == i)
        {
            self.pending_handoffs.remove(pos);
            self.handoff(sim, i, tick);
        }
        if tick < R_OP_TICKS {
            self.do_ops(i, true);
            let closed = self.close_if_due(sim, i, tick);
            if closed && self.victims.contains(&i) {
                self.capture(i, tick);
            }
        } else if !self.final_closed[i] {
            self.ssb[i].note_progress(FINAL_WM);
            if let Err(e) = self.ssb[i].close_epoch(sim) {
                self.flag(
                    Invariant::RecoveryConvergence,
                    i,
                    format!("final close_epoch failed: {e:?}"),
                );
            }
            self.final_closed[i] = true;
        }
        if let Err(e) = self.ssb[i].pump(sim) {
            self.flag(Invariant::RecoveryConvergence, i, format!("pump failed: {e:?}"));
        }
        self.check_vclock(i);
        tick >= R_OP_TICKS + SETTLE_TICKS
    }

    /// Leader-side read of a group key's total: the canonical entry
    /// merged with every sub-key entry when the key is split — the same
    /// fold the engine's trigger path applies at window close. `None`
    /// only when no constituent entry exists at all.
    fn folded_get(&self, leader: usize, k: u64) -> Option<u64> {
        let node = &self.ssb[leader];
        let mut parts: Vec<u64> = node
            .local_get(pack_key(1, k))
            .map(CounterCrdt::get)
            .into_iter()
            .collect();
        if let Some(ledger) = node.split_ledger().filter(|l| l.is_split(k)) {
            for r in 0..ledger.nodes() {
                if let Some(sub) = ledger.sub_for(k, r) {
                    if let Some(v) = node.local_get(pack_key(1, sub)).map(CounterCrdt::get) {
                        parts.push(v);
                    }
                }
            }
        }
        if parts.is_empty() {
            None
        } else {
            Some(parts.iter().sum())
        }
    }

    fn convergence(&mut self) {
        if self.recovered != self.crashes_total {
            let (got, want) = (self.recovered, self.crashes_total);
            self.flag(
                Invariant::RecoveryConvergence,
                VICTIM,
                format!("only {got} of {want} scheduled crash/restores executed"),
            );
        }
        let n = self.ssb.len();
        let oracle: Vec<(u64, u64)> = self.oracle.iter().map(|(&k, &v)| (k, v)).collect();
        for (k, total) in oracle {
            let key = pack_key(1, k);
            let leader = partition_of(key, n);
            let got = self.folded_get(leader, k);
            if got != Some(total) {
                self.flag(
                    Invariant::RecoveryConvergence,
                    leader,
                    format!(
                        "key {k}: leader holds {got:?}, no-fault oracle says {total} \
                         (lost or double-applied epoch)"
                    ),
                );
            }
        }
        for i in 0..n {
            for j in 0..n {
                let got = self.ssb[i].vclock().get(j);
                if got != FINAL_WM {
                    self.flag(
                        Invariant::RecoveryConvergence,
                        i,
                        format!("vclock slot {j} = {got} ≠ final watermark {FINAL_WM}"),
                    );
                }
            }
        }
    }
}

fn schedule_rec_actor(sim: &mut Sim, world: Rc<RefCell<RecWorld>>, node: usize, at: SimTime, tick: u64) {
    sim.schedule_at_labeled(at, EventLabel::node(node as u32), move |sim| {
        let done = world.borrow_mut().node_tick(sim, node, tick);
        if !done {
            let next = sim.now() + SimTime::from_nanos(C_TICK_NS);
            schedule_rec_actor(sim, world, node, next, tick + 1);
        }
    });
}

impl RecWorld {
    /// Order-insensitive digest of cluster state plus recovery progress
    /// (checkpoints captured, crashes and handoffs still pending, cycles
    /// completed).
    fn digest(&self) -> u64 {
        let mut h = 0xFA11_BACC_D16E_5721u64;
        for (i, node) in self.ssb.iter().enumerate() {
            h = fold_digest(h, node.state_digest());
            for v in node.vclock().snapshot() {
                h = fold_digest(h, v);
            }
            h = fold_digest(h, i as u64);
        }
        let mut acc = 0u64;
        for (&k, &v) in &self.oracle {
            acc ^= fold_digest(fold_digest(0x0AC1_E0AC_1E0A_C1E0, k), v);
        }
        h = fold_digest(h, acc);
        h = fold_digest(h, self.ckpts.iter().filter(|c| c.is_some()).count() as u64);
        h = fold_digest(h, self.pending.len() as u64);
        h = fold_digest(h, self.pending_handoffs.len() as u64);
        h = fold_digest(h, self.recovered as u64);
        fold_digest(h, self.violations.len() as u64)
    }
}

impl RecoveryScenario {
    /// Run the scenario under one tie-break policy.
    pub fn run(&self, policy: TieBreak) -> Outcome {
        self.run_sim(Sim::with_tie_break(policy)).0
    }

    /// Run in explore mode under an explicit choice schedule; see
    /// [`ChannelScenario::run_schedule`].
    pub fn run_schedule(&self, choices: &[u32]) -> (Outcome, Vec<ChoicePoint>) {
        let (out, mut sim) = self.run_sim(Sim::with_schedule(choices));
        let trace = sim.take_choice_trace();
        (out, trace)
    }

    /// Exhaustively enumerate this scenario's same-instant schedules (see
    /// [`crate::explorer::explore_exhaustive`]).
    pub fn exhaustive(
        &self,
        name: &'static str,
        budget: crate::explorer::Budget,
        minimize: bool,
    ) -> crate::explorer::ExhaustiveReport {
        crate::explorer::explore_exhaustive(name, budget, minimize, |c| {
            let (outcome, trace) = self.run_schedule(c);
            crate::explorer::ScheduleRun { outcome, trace }
        })
    }

    fn run_sim(&self, mut sim: Sim) -> (Outcome, Sim) {
        let n = self.nodes.max(2);
        let fabric = Fabric::new(FabricConfig::default());
        let nodes = fabric.add_nodes(n);
        let cfg = SsbConfig {
            nodes: n,
            epoch_bytes: u64::MAX, // epochs closed explicitly by the actors
            channel: ChannelConfig {
                credits: 8,
                buffer_size: 4096,
                credit_batch: 1,
            },
        };
        let obs = Obs::enabled(4096);
        let mut ssb = build_cluster_obs(&fabric, &nodes, CounterCrdt::descriptor(), cfg, obs.clone());
        // Fault-tolerant run: every sender retains closed epochs so the
        // recovery can replay them.
        for node in &mut ssb {
            node.set_retention(true);
        }
        // Hot-split families: activate the scheduled keys on every
        // node's ledger copy before any traffic, so each replica salts
        // its updates from the first op.
        if !self.pre_split.is_empty() {
            for node in &mut ssb {
                node.split_enable();
                for &gk in &self.pre_split {
                    node.split_activate(gk);
                }
            }
        }
        let mut victims: Vec<usize> = self.crashes.iter().map(|&(_, v)| v).collect();
        victims.sort_unstable();
        victims.dedup();
        let world = Rc::new(RefCell::new(RecWorld {
            ssb,
            fabric: fabric.clone(),
            fab: nodes,
            cfg,
            oracle: HashMap::new(),
            rngs: (0..n).map(|i| DetRng::new(0xFA11 ^ (i as u64) << 8)).collect(),
            prev_vc: vec![vec![0; n]; n],
            mutation: self.mutation,
            ckpts: (0..n).map(|_| None).collect(),
            pending: self.crashes.clone(),
            pending_handoffs: self.handoffs.clone(),
            victims,
            recovered: 0,
            crashes_total: self.crashes.len() + self.handoffs.len(),
            skip_used: false,
            final_closed: vec![false; n],
            violations: Vec::new(),
            flagged: HashSet::new(),
            obs: obs.clone(),
            cur_fp: 0,
        }));
        let digest_world = Rc::clone(&world);
        sim.set_state_digest(move || digest_world.borrow().digest());
        let t0 = SimTime::from_nanos(C_TICK_NS);
        for i in 0..n {
            schedule_rec_actor(&mut sim, Rc::clone(&world), i, t0, 0);
        }
        sim.run();
        // Settle: pump everything until fully quiescent (bounded).
        for _ in 0..10_000 {
            let mut progress = 0u64;
            {
                let mut w = world.borrow_mut();
                for i in 0..n {
                    if let Ok((s, m)) = w.ssb[i].pump(&mut sim) {
                        progress += s + m;
                    }
                }
            }
            sim.run();
            let flushed = world.borrow().ssb.iter().all(|nd| nd.flushed());
            if progress == 0 && flushed {
                break;
            }
        }
        let mut w = world.borrow_mut();
        w.cur_fp = sim.schedule_fingerprint();
        w.convergence();
        let outcome = Outcome {
            fingerprint: sim.schedule_fingerprint(),
            violations: std::mem::take(&mut w.violations),
            dumps: obs.take_failures().iter().map(|d| d.render()).collect(),
        };
        drop(w);
        (outcome, sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_scenario_clean_under_fifo_and_lifo() {
        for policy in [TieBreak::Fifo, TieBreak::Lifo, TieBreak::Seeded(7)] {
            let out = ChannelScenario::default().run(policy);
            assert!(
                out.violations.is_empty(),
                "unexpected violations under {policy:?}: {:?}",
                out.violations
            );
            assert_ne!(out.fingerprint, 0);
        }
    }

    #[test]
    fn coherence_scenario_clean_under_fifo_and_lifo() {
        for policy in [TieBreak::Fifo, TieBreak::Lifo, TieBreak::Seeded(7)] {
            let out = CoherenceScenario::default().run(policy);
            assert!(
                out.violations.is_empty(),
                "unexpected violations under {policy:?}: {:?}",
                out.violations
            );
        }
    }

    #[test]
    fn multi_port_scenario_clean_under_policies() {
        for policy in [TieBreak::Fifo, TieBreak::Lifo, TieBreak::Seeded(7)] {
            let out = ChannelScenario::multi_port().run(policy);
            assert!(
                out.violations.is_empty(),
                "unexpected violations under {policy:?}: {:?}",
                out.violations
            );
        }
    }

    #[test]
    fn recovery_scenario_clean_under_policies() {
        for policy in [TieBreak::Fifo, TieBreak::Lifo, TieBreak::Seeded(7)] {
            let out = RecoveryScenario::default().run(policy);
            assert!(
                out.violations.is_empty(),
                "unexpected violations under {policy:?}: {:?}",
                out.violations
            );
        }
    }

    #[test]
    fn concurrent_crash_scenario_clean_under_policies() {
        for policy in [TieBreak::Fifo, TieBreak::Lifo, TieBreak::Seeded(7)] {
            let out = RecoveryScenario::concurrent_crash().run(policy);
            assert!(
                out.violations.is_empty(),
                "unexpected violations under {policy:?}: {:?}",
                out.violations
            );
        }
    }

    #[test]
    fn reentrant_recovery_scenario_clean_under_policies() {
        for policy in [TieBreak::Fifo, TieBreak::Lifo, TieBreak::Seeded(7)] {
            let out = RecoveryScenario::reentrant().run(policy);
            assert!(
                out.violations.is_empty(),
                "unexpected violations under {policy:?}: {:?}",
                out.violations
            );
        }
    }

    #[test]
    fn planned_handoff_scenario_clean_under_policies() {
        for policy in [TieBreak::Fifo, TieBreak::Lifo, TieBreak::Seeded(7)] {
            let out = RecoveryScenario::planned_handoff().run(policy);
            assert!(
                out.violations.is_empty(),
                "unexpected violations under {policy:?}: {:?}",
                out.violations
            );
        }
    }

    #[test]
    fn handoff_vs_crash_scenario_clean_under_policies() {
        for policy in [TieBreak::Fifo, TieBreak::Lifo, TieBreak::Seeded(7)] {
            let out = RecoveryScenario::handoff_vs_crash().run(policy);
            assert!(
                out.violations.is_empty(),
                "unexpected violations under {policy:?}: {:?}",
                out.violations
            );
        }
    }

    #[test]
    fn rescale_small_scenario_clean_under_policies() {
        for policy in [TieBreak::Fifo, TieBreak::Lifo, TieBreak::Seeded(7)] {
            let out = RecoveryScenario::rescale_small().run(policy);
            assert!(
                out.violations.is_empty(),
                "unexpected violations under {policy:?}: {:?}",
                out.violations
            );
        }
    }

    #[test]
    fn unreached_crash_tick_trips_the_executed_check() {
        // A crash scheduled past the end of the run must not silently
        // vacuously pass: the convergence check counts executed cycles.
        let s = RecoveryScenario {
            crashes: vec![(R_CRASH_TICK, VICTIM), (10_000, VICTIM)],
            ..RecoveryScenario::default()
        };
        let out = s.run(TieBreak::Fifo);
        assert!(
            out.violations
                .iter()
                .any(|(inv, d)| *inv == Invariant::RecoveryConvergence && d.contains("1 of 2")),
            "missing-crash check did not fire: {:?}",
            out.violations
        );
    }

    #[test]
    fn skip_replay_mutation_trips_recovery_convergence() {
        let s = RecoveryScenario {
            mutation: Some(Mutation::SkipReplay),
            ..RecoveryScenario::default()
        };
        let out = s.run(TieBreak::Fifo);
        assert!(
            out.violations
                .iter()
                .any(|(inv, _)| *inv == Invariant::RecoveryConvergence),
            "skip-replay mutation not detected: {:?}",
            out.violations
        );
        assert!(!out.dumps.is_empty(), "flight recorder did not dump");
    }

    #[test]
    fn different_policies_yield_different_fingerprints() {
        let a = ChannelScenario::default().run(TieBreak::Fifo).fingerprint;
        let b = ChannelScenario::default().run(TieBreak::Lifo).fingerprint;
        let c = ChannelScenario::default().run(TieBreak::Seeded(3)).fingerprint;
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And reruns are bit-identical.
        assert_eq!(a, ChannelScenario::default().run(TieBreak::Fifo).fingerprint);
    }
}
