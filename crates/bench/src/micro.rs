//! The drill-down micro-harness (paper §8.3.2): producer instances stream
//! the RO workload to consumer instances over RDMA channels, either
//! **direct** (one producer thread → one consumer thread — Slash's
//! no-partitioning data flow) or **hash-fanout** (every producer thread →
//! every consumer thread by key hash — UpPar's exchange).
//!
//! Modeling note (recorded in EXPERIMENTS.md): the direct consumer folds
//! records into thread-local partial state with sequential, cache-friendly
//! accumulation (cheap per record), whereas the fanout consumer maintains
//! the authoritative co-partitioned hash table for its key range (index
//! probe + RMW per record). This asymmetry is the paper's own explanation
//! of the two designs' receiver costs (§8.3.3–8.3.4) and is what makes
//! UpPar's receivers the skew-sensitive bottleneck.

use std::cell::RefCell;
use std::rc::Rc;

use slash_core::{CostCategory, CostModel, EngineMetrics};
use slash_desim::{DetRng, ProcId, Process, Sim, SimTime, Step};
use slash_net::{create_channel, ChannelConfig, ChannelReceiver, ChannelSender, MsgFlags};
use slash_obs::Histogram;
use slash_rdma::{Fabric, FabricConfig};
use slash_state::hash::hash_u64;
use slash_workloads::{Uniform, Zipf};

/// Record size of the RO benchmark.
pub const RO_RECORD: usize = 16;

/// How producers route records to consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteMode {
    /// One producer thread → one consumer thread (Slash).
    Direct,
    /// Hash over all consumer threads (UpPar).
    HashFanout,
}

/// Key distribution of the generated records.
#[derive(Debug, Clone, Copy)]
pub enum KeyDist {
    /// Uniform over `n` keys.
    Uniform(u64),
    /// Zipf over `n` keys with exponent `z`.
    Zipf(u64, f64),
}

/// Micro-benchmark configuration.
#[derive(Debug, Clone, Copy)]
pub struct MicroConfig {
    /// Producer/consumer node pairs (1 pair = the paper's 2-server setup).
    pub pairs: usize,
    /// Threads per producer node (== consumer threads per consumer node).
    pub threads: usize,
    /// Channel buffer size (the Fig. 8a/8b sweep variable).
    pub buffer_size: usize,
    /// Channel credits (paper: c = 8).
    pub credits: usize,
    /// Return credits every `credit_batch` consumed buffers.
    pub credit_batch: usize,
    /// Routing.
    pub mode: RouteMode,
    /// Records each producer thread sends.
    pub records_per_thread: u64,
    /// Key distribution.
    pub keys: KeyDist,
    /// Cost model.
    pub cost: CostModel,
    /// Fabric.
    pub fabric: FabricConfig,
}

impl MicroConfig {
    /// The paper's drill-down defaults: 2 servers, RO records, c = 8.
    pub fn new(mode: RouteMode, threads: usize) -> Self {
        MicroConfig {
            pairs: 1,
            threads,
            buffer_size: 64 * 1024,
            credits: 8,
            credit_batch: 1,
            mode,
            records_per_thread: 200_000,
            keys: KeyDist::Uniform(100_000_000),
            cost: CostModel::default(),
            fabric: FabricConfig::default(),
        }
    }
}

/// Outcome of a micro-benchmark run.
#[derive(Debug)]
pub struct MicroReport {
    /// Payload bytes received by consumers.
    pub payload_bytes: u64,
    /// Records received.
    pub records: u64,
    /// Virtual time when the last consumer finished.
    pub elapsed: SimTime,
    /// Mean producer→consumer buffer latency.
    pub mean_latency: Option<SimTime>,
    /// Full producer→consumer buffer-latency distribution (tail quantiles
    /// via [`Histogram::quantile`]).
    pub latency: Histogram,
    /// Producer-side counters.
    pub sender_metrics: EngineMetrics,
    /// Consumer-side counters.
    pub receiver_metrics: EngineMetrics,
    /// Consumer with the most records (load-imbalance diagnostics).
    pub hottest_consumer_records: u64,
}

impl MicroReport {
    /// Goodput in GB/s of virtual time.
    pub fn throughput_gbs(&self) -> f64 {
        if self.elapsed == SimTime::ZERO {
            return 0.0;
        }
        self.payload_bytes as f64 / self.elapsed.as_secs_f64() / 1e9
    }
}

struct SharedStats {
    sender: EngineMetrics,
    receiver: EngineMetrics,
    consumer_records: Vec<u64>,
    payload_bytes: u64,
    latency: Histogram,
    finished_consumers: usize,
    last_finish: SimTime,
}

/// Per-record consumer cost: thread-local partial accumulation (direct) vs
/// authoritative partitioned hash table (fanout).
fn consumer_ns(cost: &CostModel, mode: RouteMode) -> f64 {
    match mode {
        RouteMode::Direct => 2.0,
        RouteMode::HashFanout => cost.rmw_base_ns,
    }
}

struct Producer {
    stats: Rc<RefCell<SharedStats>>,
    /// Outbound channels (1 for direct; all consumers for fanout).
    txs: Vec<Rc<RefCell<ChannelSender>>>,
    staging: Vec<Vec<u8>>,
    remaining: u64,
    rng: DetRng,
    keys: KeyDist,
    mode: RouteMode,
    cost: CostModel,
    payload_cap: usize,
    eos_pending: Vec<bool>,
}

impl Producer {
    fn sample_key(&mut self) -> u64 {
        match self.keys {
            KeyDist::Uniform(n) => Uniform::new(n).sample(&mut self.rng),
            KeyDist::Zipf(n, z) => Zipf::new(n, z).sample(&mut self.rng),
        }
    }

    /// Try to flush staging buffer `c`; true if flushed or empty.
    fn try_flush(&mut self, sim: &mut Sim, c: usize) -> bool {
        if self.staging[c].is_empty() {
            return true;
        }
        let mut tx = self.txs[c].borrow_mut();
        let buf = &self.staging[c];
        match tx.try_send(sim, MsgFlags::DATA, buf) {
            Ok(true) => {
                self.staging[c].clear();
                true
            }
            Ok(false) => false,
            Err(e) => panic!("channel error: {e}"),
        }
    }
}

impl Process for Producer {
    fn step(&mut self, sim: &mut Sim, _me: ProcId) -> Step {
        let stats = Rc::clone(&self.stats);
        let mut cpu = 0.0;

        if self.remaining == 0 {
            // Flush leftovers, then EOS every channel.
            let mut all_done = true;
            for c in 0..self.txs.len() {
                if !self.try_flush(sim, c) {
                    all_done = false;
                    continue;
                }
                if self.eos_pending[c] {
                    let sent = self.txs[c]
                        .borrow_mut()
                        .try_send_eos(sim)
                        .expect("eos send");
                    if sent {
                        self.eos_pending[c] = false;
                    } else {
                        all_done = false;
                    }
                }
            }
            if all_done {
                return Step::Done;
            }
            stats
                .borrow_mut()
                .sender
                .charge(CostCategory::CoreBound, self.cost.poll_empty_ns * 8.0);
            return Step::Yield(SimTime::from_nanos(1_000));
        }

        // Produce up to one buffer's worth of records.
        let per_batch = (self.payload_cap / RO_RECORD) as u64;
        let n = per_batch.min(self.remaining);
        let mut blocked = false;
        for _ in 0..n {
            let key = self.sample_key();
            let c = match self.mode {
                RouteMode::Direct => 0,
                RouteMode::HashFanout => {
                    // The partitioning step: hash + scattered staging write.
                    cpu += 16.0;
                    (hash_u64(key) % self.txs.len() as u64) as usize
                }
            };
            if self.staging[c].len() + RO_RECORD > self.payload_cap {
                if !self.try_flush(sim, c) {
                    // Head-of-line blocking: in-order partitioning cannot
                    // proceed past a stalled destination.
                    blocked = true;
                    break;
                }
                cpu += self.cost.post_wr_ns;
            }
            let ts = self.remaining; // monotone enough for the I/O bench
            self.staging[c].extend_from_slice(&ts.to_le_bytes());
            self.staging[c].extend_from_slice(&key.to_le_bytes());
            cpu += RO_RECORD as f64 * self.cost.copy_per_byte_ns;
            self.remaining -= 1;
        }
        {
            let mut st = stats.borrow_mut();
            match self.mode {
                RouteMode::Direct => st.sender.charge(CostCategory::MemoryBound, cpu),
                RouteMode::HashFanout => {
                    st.sender.charge(CostCategory::FrontEnd, cpu * 0.5);
                    st.sender.charge(CostCategory::BadSpeculation, cpu * 0.2);
                    st.sender.charge(CostCategory::MemoryBound, cpu * 0.3);
                }
            }
            if blocked {
                st.sender
                    .charge(CostCategory::CoreBound, self.cost.poll_empty_ns * 8.0);
            }
        }
        if self.remaining == 0 {
            for p in &mut self.eos_pending {
                *p = true;
            }
        }
        let busy = CostModel::to_time(cpu).max(SimTime::from_nanos(1));
        if blocked {
            return Step::Yield(busy.saturating_add(SimTime::from_nanos(800)));
        }
        Step::Yield(busy)
    }

    fn name(&self) -> &str {
        "micro-producer"
    }
}

struct Consumer {
    idx: usize,
    stats: Rc<RefCell<SharedStats>>,
    rxs: Vec<ChannelReceiver>,
    eos_seen: usize,
    mode: RouteMode,
    cost: CostModel,
    done: bool,
}

impl Process for Consumer {
    fn step(&mut self, sim: &mut Sim, _me: ProcId) -> Step {
        if self.done {
            return Step::Done;
        }
        let stats = Rc::clone(&self.stats);
        let mut cpu = 0.0;
        let mut bytes = 0u64;
        let mut recs = 0u64;
        let per_rec = consumer_ns(&self.cost, self.mode);
        // Bounded consumption per step: a buffer's credit only returns
        // once the consumer *takes* it, and the consumer can only take
        // what its CPU budget allows — this is what makes backpressure
        // (and thus skew-induced hot-consumer collapse) real.
        const STEP_BUDGET_NS: f64 = 12_000.0;
        'sweep: loop {
            let mut any = false;
            for rx in &mut self.rxs {
                if cpu >= STEP_BUDGET_NS {
                    break 'sweep;
                }
                let polled = rx
                    .poll_with(sim, |flags, payload| (flags, payload.len()))
                    .expect("channel error");
                match polled {
                    Some((flags, len)) => {
                        if flags.contains(MsgFlags::EOS) {
                            self.eos_seen += 1;
                        }
                        let n = (len / RO_RECORD) as u64;
                        bytes += len as u64;
                        recs += n;
                        cpu += n as f64 * per_rec;
                        any = true;
                    }
                    None => {
                        cpu += self.cost.poll_empty_ns;
                    }
                }
            }
            if !any {
                break;
            }
        }
        {
            let mut st = stats.borrow_mut();
            st.payload_bytes += bytes;
            st.consumer_records[self.idx] += recs;
            st.receiver.add_records(recs);
            st.receiver
                .charge(CostCategory::MemoryBound, recs as f64 * per_rec);
            st.receiver.charge(
                CostCategory::CoreBound,
                self.cost.poll_empty_ns * self.rxs.len() as f64,
            );
            if self.eos_seen == self.rxs.len() {
                // Collect latency stats before retiring.
                for rx in &self.rxs {
                    st.latency.merge(&rx.stats.latency);
                }
                st.finished_consumers += 1;
                st.last_finish = sim.now();
                self.done = true;
            }
        }
        if self.done {
            return Step::Done;
        }
        let busy = CostModel::to_time(cpu).max(SimTime::from_nanos(200));
        Step::Yield(busy)
    }

    fn name(&self) -> &str {
        "micro-consumer"
    }
}

/// Run the micro-benchmark.
pub fn run_micro(cfg: MicroConfig) -> MicroReport {
    let mut sim = Sim::new();
    let fabric = Fabric::new(cfg.fabric);
    let chan_cfg = ChannelConfig {
        credits: cfg.credits,
        buffer_size: cfg.buffer_size,
        credit_batch: cfg.credit_batch.min(cfg.credits),
    };
    let n_consumers = cfg.pairs * cfg.threads;
    let stats = Rc::new(RefCell::new(SharedStats {
        sender: EngineMetrics::default(),
        receiver: EngineMetrics::default(),
        consumer_records: vec![0; n_consumers],
        payload_bytes: 0,
        latency: Histogram::new(),
        finished_consumers: 0,
        last_finish: SimTime::ZERO,
    }));

    // Nodes: pair p = (producer node 2p, consumer node 2p+1).
    let nodes = fabric.add_nodes(cfg.pairs * 2);
    // rx_of[consumer global idx] collects that consumer's channels.
    let mut rx_of: Vec<Vec<ChannelReceiver>> = (0..n_consumers).map(|_| Vec::new()).collect();
    let mut producers: Vec<Producer> = Vec::new();
    for p in 0..cfg.pairs {
        for t in 0..cfg.threads {
            let prod_node = nodes[2 * p];
            let mut txs = Vec::new();
            match cfg.mode {
                RouteMode::Direct => {
                    let consumer = p * cfg.threads + t;
                    let cons_node = nodes[2 * p + 1];
                    let (tx, rx) = create_channel(&fabric, prod_node, cons_node, chan_cfg);
                    txs.push(Rc::new(RefCell::new(tx)));
                    rx_of[consumer].push(rx);
                }
                RouteMode::HashFanout => {
                    for consumer in 0..n_consumers {
                        let cons_node = nodes[2 * (consumer / cfg.threads) + 1];
                        let (tx, rx) = create_channel(&fabric, prod_node, cons_node, chan_cfg);
                        txs.push(Rc::new(RefCell::new(tx)));
                        rx_of[consumer].push(rx);
                    }
                }
            }
            let n_tx = txs.len();
            producers.push(Producer {
                stats: Rc::clone(&stats),
                txs,
                staging: (0..n_tx).map(|_| Vec::new()).collect(),
                remaining: cfg.records_per_thread,
                rng: DetRng::new(0xC0FFEE ^ ((p * cfg.threads + t) as u64) << 8),
                keys: cfg.keys,
                mode: cfg.mode,
                cost: cfg.cost,
                payload_cap: chan_cfg.payload_capacity() / RO_RECORD * RO_RECORD,
                eos_pending: vec![false; n_tx],
            });
        }
    }
    for producer in producers {
        sim.spawn(producer);
    }
    for (idx, rxs) in rx_of.into_iter().enumerate() {
        sim.spawn(Consumer {
            idx,
            stats: Rc::clone(&stats),
            rxs,
            eos_seen: 0,
            mode: cfg.mode,
            cost: cfg.cost,
            done: false,
        });
    }

    loop {
        {
            let st = stats.borrow();
            if st.finished_consumers == n_consumers {
                break;
            }
        }
        assert!(
            sim.pending_events() > 0,
            "micro-benchmark deadlocked (credit protocol bug)"
        );
        let horizon = sim.now() + SimTime::from_millis(5);
        sim.run_until(horizon);
    }

    let st = stats.borrow();
    let mut sender = st.sender.clone();
    sender.set_records(st.receiver.records);
    MicroReport {
        payload_bytes: st.payload_bytes,
        records: st.receiver.records,
        elapsed: st.last_finish,
        mean_latency: st.latency.mean().map(SimTime::from_nanos),
        latency: st.latency.clone(),
        sender_metrics: sender,
        receiver_metrics: st.receiver.clone(),
        hottest_consumer_records: st.consumer_records.iter().copied().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(mode: RouteMode, threads: usize) -> MicroConfig {
        let mut cfg = MicroConfig::new(mode, threads);
        cfg.records_per_thread = 30_000;
        cfg
    }

    #[test]
    fn direct_mode_approaches_line_rate_with_two_threads() {
        let report = run_micro(small(RouteMode::Direct, 2));
        let gbs = report.throughput_gbs();
        // The paper: 95% of the measured 11.8 GB/s ceiling with 2 threads.
        assert!(gbs > 0.80 * 11.8, "direct 2-thread goodput {gbs:.1} GB/s");
        assert!(gbs <= 11.8 + 0.1);
    }

    #[test]
    fn fanout_mode_is_producer_bound_at_low_parallelism() {
        let direct = run_micro(small(RouteMode::Direct, 2)).throughput_gbs();
        let fanout = run_micro(small(RouteMode::HashFanout, 2)).throughput_gbs();
        assert!(
            fanout < 0.5 * direct,
            "fanout {fanout:.2} vs direct {direct:.2} GB/s"
        );
    }

    #[test]
    fn fanout_catches_up_with_more_threads() {
        let few = run_micro(small(RouteMode::HashFanout, 2)).throughput_gbs();
        let many = run_micro(small(RouteMode::HashFanout, 6)).throughput_gbs();
        assert!(many > 2.0 * few, "{few:.2} -> {many:.2} GB/s");
    }

    #[test]
    fn skew_collapses_fanout_but_not_direct() {
        let mk = |mode, z: Option<f64>| {
            let mut cfg = small(mode, 4);
            if let Some(z) = z {
                cfg.keys = KeyDist::Zipf(100_000_000, z);
            }
            run_micro(cfg)
        };
        let fan_uniform = mk(RouteMode::HashFanout, None);
        let fan_skewed = mk(RouteMode::HashFanout, Some(1.6));
        // Load imbalance is real: the hottest consumer dominates.
        assert!(
            fan_skewed.hottest_consumer_records > fan_skewed.records / 2,
            "hot consumer got {} of {}",
            fan_skewed.hottest_consumer_records,
            fan_skewed.records
        );
        let drop = 1.0 - fan_skewed.throughput_gbs() / fan_uniform.throughput_gbs();
        assert!(drop > 0.2, "fanout skew drop only {:.0}%", drop * 100.0);

        let dir_uniform = mk(RouteMode::Direct, None).throughput_gbs();
        let dir_skewed = mk(RouteMode::Direct, Some(1.6)).throughput_gbs();
        let dir_change = (dir_uniform - dir_skewed).abs() / dir_uniform;
        assert!(
            dir_change < 0.1,
            "direct routing must be skew-agnostic: {:.0}%",
            dir_change * 100.0
        );
    }

    #[test]
    fn latency_grows_with_buffer_size() {
        let lat = |buf: usize| {
            let mut cfg = small(RouteMode::Direct, 2);
            cfg.buffer_size = buf;
            run_micro(cfg).mean_latency.expect("samples").as_nanos()
        };
        let small_buf = lat(16 * 1024);
        let big_buf = lat(1024 * 1024);
        assert!(
            big_buf > 4 * small_buf,
            "latency {small_buf}ns -> {big_buf}ns"
        );
    }

    #[test]
    fn deterministic() {
        let run = || {
            let r = run_micro(small(RouteMode::HashFanout, 3));
            (r.payload_bytes, r.elapsed, r.hottest_consumer_records)
        };
        assert_eq!(run(), run());
    }
}
