//! Property test of the epoch-based coherence protocol (§7.2.2):
//! distributed instances of the SSB that follow the protocol converge, at
//! the end of each epoch, to the state a sequential execution would have
//! produced — for arbitrary schedules of updates, epoch tokens, and
//! simulation progress. Schedules are drawn from seeded `DetRng` loops so
//! the suite runs fully offline and failures reproduce from their seed.

use std::collections::HashMap;

use slash_desim::{DetRng, Sim};
use slash_net::ChannelConfig;
use slash_rdma::{Fabric, FabricConfig};
use slash_state::backend::{build_cluster, SsbConfig, SsbNode};
use slash_state::hash::{pack_key, partition_of};
use slash_state::CounterCrdt;

#[derive(Debug, Clone)]
enum Op {
    /// Node `who` adds `amount` to key `g`.
    Update { who: usize, g: u64, amount: u64 },
    /// Node `who` closes its epoch.
    Epoch { who: usize },
    /// Pump all nodes and run the simulation to quiescence.
    Settle,
}

/// Draw one schedule step with the proptest version's weights
/// (6 update : 2 epoch : 1 settle) over 4 logical node slots.
fn draw_op(rng: &mut DetRng) -> Op {
    match rng.next_below(9) {
        0..=5 => Op::Update {
            who: rng.next_below(4) as usize,
            g: rng.next_below(16),
            amount: 1 + rng.next_below(99),
        },
        6..=7 => Op::Epoch {
            who: rng.next_below(4) as usize,
        },
        _ => Op::Settle,
    }
}

fn settle(sim: &mut Sim, ssb: &mut [SsbNode]) {
    for _ in 0..10_000 {
        let mut progress = 0;
        for node in ssb.iter_mut() {
            let (s, m) = node.pump(sim).unwrap();
            progress += s + m;
        }
        let in_flight = sim.pending_events() > 0;
        sim.run();
        if progress == 0 && !in_flight && ssb.iter().all(|x| x.flushed()) {
            return;
        }
    }
    panic!("did not settle");
}

#[test]
fn distributed_equals_sequential() {
    for seed in 0..64u64 {
        let mut rng = DetRng::new(0xE90C ^ seed.wrapping_mul(0x9E3779B9));
        let n = 2 + rng.next_below(3) as usize;
        let n_ops = 1 + rng.next_below(149) as usize;

        let mut sim = Sim::new();
        let fabric = Fabric::new(FabricConfig::default());
        let nodes = fabric.add_nodes(n);
        let cfg = SsbConfig {
            nodes: n,
            epoch_bytes: u64::MAX,
            channel: ChannelConfig { credits: 4, buffer_size: 512, credit_batch: 1 },
        };
        let mut ssb = build_cluster(&fabric, &nodes, CounterCrdt::descriptor(), cfg);
        let mut expected: HashMap<u64, u64> = HashMap::new();

        for _ in 0..n_ops {
            match draw_op(&mut rng) {
                Op::Update { who, g, amount } => {
                    let who = who % n;
                    ssb[who].rmw(pack_key(1, g), |v| CounterCrdt::add(v, amount));
                    *expected.entry(g).or_default() += amount;
                }
                Op::Epoch { who } => {
                    let who = who % n;
                    ssb[who].close_epoch(&mut sim).unwrap();
                }
                Op::Settle => settle(&mut sim, &mut ssb),
            }
        }
        // Final epoch on every node, then settle: all partials reach their
        // leaders.
        for node in ssb.iter_mut() {
            node.close_epoch(&mut sim).unwrap();
        }
        settle(&mut sim, &mut ssb);

        for (g, want) in &expected {
            let key = pack_key(1, *g);
            let leader = partition_of(key, n);
            let got = ssb[leader].local_get(key).map(CounterCrdt::get);
            assert_eq!(
                got,
                Some(*want),
                "key {g} on leader {leader}, seed {seed}"
            );
        }
    }
}
