//! Online hot-key splitting: detection, record forwarding, and the run
//! driver (DESIGN.md §20).
//!
//! A zipfian-hot key defeats both of Slash's load balancers: with keyed
//! ingress every record for the key lands on one node, and even with
//! balanced ingress every *delta* funnels into one partition leader. The
//! state-plane half of the fix lives in `slash-state`
//! ([`SplitLedger`](slash_state::SplitLedger)): updates of a split key
//! divert to per-replica sub-keys that the leader folds back at window
//! close. This module adds the control and data planes:
//!
//! * [`SplitDirector`] / [`HeatSplitDirector`] — decide *which* keys to
//!   split, from the merged per-node [`HeatSketch`] telemetry (the same
//!   SpaceSaving sketch the obs registry publishes as `key_heat`),
//!   mirroring how [`ScaleDirector`](crate::elastic::ScaleDirector)
//!   decides migrations from cluster telemetry.
//! * [`ForwardFabric`] — a record-forwarding plane for skew-balanced
//!   ingest: a node that owns a split key's input stream round-robins the
//!   key's records across the cluster, so the *pipeline* cost spreads too
//!   (the state plane alone only spreads the RMWs, which are already
//!   local). Fault-free runs only; chaos runs split state without
//!   forwarding.
//! * `SplitDriver` — the simulation process that samples heat, ticks
//!   the director, activates splits on every node's ledger copy in one
//!   step, and confirms forwarded-record custody (see below).
//!
//! ## Why forwarding needs a watermark floor
//!
//! Slash's window release rule is `vclock.min()`: a leader fires window
//! `W` once every node advertised a watermark past `W`'s end. That is
//! sound because each node's updates carry timestamps at or below the
//! watermark it advertises *next* — per-source timestamps are monotone.
//! Forwarding breaks the premise: a record can arrive at a node whose
//! advertised watermark already passed the record's window, and the
//! contribution would merge at the leader *after* the window fired —
//! a lost update or a duplicate result.
//!
//! Instead of clamping advertisements (which cannot be retracted), the
//! trigger rule becomes `min(vclock.min(), fabric.floor())`, where the
//! floor tracks a chain of custody for every forwarded record's
//! timestamp:
//!
//! 1. **queued** — enqueued to the destination, not yet processed;
//! 2. **unshipped** — applied to the destination's fragments, not yet
//!    inside a closed epoch;
//! 3. **in flight** — inside a closed epoch whose merge is not yet
//!    confirmed. Confirmation is conservative: an epoch advertised with
//!    watermark `w` by node `i` is merged everywhere once every other
//!    node's vector-clock slot for `i` reaches `w` (slots advance only
//!    after merge, FIFO per channel). The `SplitDriver` prunes these;
//!    pruning late only delays triggers, never unsoundly releases them.
//!
//! The floor is `u64::MAX` exactly when no forwarded timestamp is
//! outstanding anywhere, which is also the completion gate.

use std::cell::RefCell;
use std::collections::{BTreeSet, VecDeque};
use std::rc::Rc;

use slash_desim::{ProcId, Process, Sim, SimTime, Step};
use slash_obs::{HeatEntry, HeatSketch, Obs, HEAT_CAPACITY};
use slash_rdma::Fabric;
use slash_state::backend::{build_cluster_obs, SsbConfig};
use slash_state::SUB_KEY_TAG;

use crate::cluster::{assemble_report, spawn_node_workers, RunConfig, RunReport};
use crate::query::QueryPlan;
use crate::worker::NodeShared;
use crate::SlashCluster;

/// What the split director sees each tick: the cluster-merged heat
/// sketch, cumulative over the run so far.
#[derive(Debug, Clone)]
pub struct SplitTelemetry {
    /// Hottest canonical keys, `(count desc, key asc)`; sub-keys (whose
    /// updates re-enter the sketch after a split) are filtered out.
    pub top: Vec<HeatEntry>,
    /// Total observed update weight across the cluster.
    pub total: u64,
}

/// Policy hook deciding which keys to split, given heat telemetry.
/// Mirrors [`ScaleDirector`](crate::elastic::ScaleDirector): the driver
/// ticks it periodically and applies whatever it returns to every node's
/// ledger copy in the same simulation step.
pub trait SplitDirector {
    /// Keys to activate splitting for at this tick (may be empty).
    fn tick(&mut self, t: &SplitTelemetry) -> Vec<u64>;
}

/// A director that never splits (used for split-off baselines and for
/// runs driven purely by [`SplitRunConfig::pre_split`]).
#[derive(Debug, Default)]
pub struct StaticSplitDirector;

impl SplitDirector for StaticSplitDirector {
    fn tick(&mut self, _t: &SplitTelemetry) -> Vec<u64> {
        Vec::new()
    }
}

/// Threshold policy for [`HeatSplitDirector`].
#[derive(Debug, Clone, Copy)]
pub struct HeatPolicy {
    /// Split a key once its *lower-bound* share of all observed updates
    /// (`(count - err) / total`) reaches this many parts per million.
    pub hot_ppm: u64,
    /// Ignore ticks before this many updates have been observed — early
    /// samples are too noisy to act on.
    pub min_total: u64,
    /// At most this many keys ever split in one run (a split is
    /// irreversible for the run; the sketch de-escalates naturally
    /// because a split key's updates re-enter under its sub-keys).
    pub max_splits: usize,
}

impl Default for HeatPolicy {
    fn default() -> Self {
        HeatPolicy {
            // A key carrying >5% of a cluster's updates is pathological
            // for any realistic key domain.
            hot_ppm: 50_000,
            min_total: 10_000,
            max_splits: 8,
        }
    }
}

/// Online detection: splits every key whose SpaceSaving lower bound
/// crosses [`HeatPolicy::hot_ppm`] of the total observed weight.
#[derive(Debug)]
pub struct HeatSplitDirector {
    policy: HeatPolicy,
    requested: BTreeSet<u64>,
}

impl HeatSplitDirector {
    /// A director enforcing `policy`.
    pub fn new(policy: HeatPolicy) -> Self {
        HeatSplitDirector {
            policy,
            requested: BTreeSet::new(),
        }
    }
}

impl SplitDirector for HeatSplitDirector {
    fn tick(&mut self, t: &SplitTelemetry) -> Vec<u64> {
        if t.total < self.policy.min_total {
            return Vec::new();
        }
        let mut out = Vec::new();
        for e in &t.top {
            if self.requested.len() >= self.policy.max_splits {
                break;
            }
            // `count - err` is the guaranteed-true share: a key only
            // splits when it is *provably* hot, so the decision is
            // deterministic and immune to sketch overestimation.
            let floor = e.count.saturating_sub(e.err);
            if floor.saturating_mul(1_000_000) >= t.total.saturating_mul(self.policy.hot_ppm)
                && !self.requested.contains(&e.key)
            {
                self.requested.insert(e.key);
                out.push(e.key);
            }
        }
        out
    }
}

/// One forwarded record batch: a contiguous run of raw records bound for
/// one destination node, with the batch's minimum timestamp (its floor
/// contribution while queued).
#[derive(Debug)]
pub struct FwdBatch {
    /// Minimum record timestamp in `data`.
    pub min_ts: u64,
    /// Record count in `data`.
    pub records: u64,
    /// Raw record bytes (whole records, schema-aligned).
    pub data: Vec<u8>,
}

#[derive(Debug)]
struct FwdInner {
    queues: Vec<VecDeque<FwdBatch>>,
    /// Per node: min forwarded timestamp applied to its fragments since
    /// its last epoch close (`u64::MAX` = none).
    unshipped: Vec<u64>,
    /// Per node: `(min_ts, epoch_wm)` of closed-but-unconfirmed epochs
    /// carrying forwarded contributions, FIFO in close order.
    inflight: Vec<VecDeque<(u64, u64)>>,
    source_done: Vec<bool>,
    forwarded_records: u64,
    forwarded_bytes: u64,
}

/// The record-forwarding plane: per-destination inboxes plus the
/// watermark floor (see the module docs for the custody chain). One
/// instance is shared by every node of a [`SlashCluster::run_split`] run.
#[derive(Debug)]
pub struct ForwardFabric {
    inner: RefCell<FwdInner>,
}

impl ForwardFabric {
    /// A fabric for `nodes` executors.
    pub fn new(nodes: usize) -> Self {
        ForwardFabric {
            inner: RefCell::new(FwdInner {
                queues: (0..nodes).map(|_| VecDeque::new()).collect(),
                unshipped: vec![u64::MAX; nodes],
                inflight: (0..nodes).map(|_| VecDeque::new()).collect(),
                source_done: vec![false; nodes],
                forwarded_records: 0,
                forwarded_bytes: 0,
            }),
        }
    }

    /// Executor count this fabric routes across.
    pub fn nodes(&self) -> usize {
        self.inner.borrow().queues.len()
    }

    /// Enqueue a batch for `dest`. Enqueue is synchronous (same
    /// simulation step), so the batch is floor-covered the moment the
    /// sender's own watermark stops covering it.
    pub fn enqueue(&self, dest: usize, batch: FwdBatch) {
        let mut inner = self.inner.borrow_mut();
        inner.forwarded_records += batch.records;
        inner.forwarded_bytes += batch.data.len() as u64;
        if let Some(q) = inner.queues.get_mut(dest) {
            q.push_back(batch);
        }
    }

    /// Pop the next inbound batch for `node`, if any.
    pub fn pop(&self, node: usize) -> Option<FwdBatch> {
        self.inner.borrow_mut().queues.get_mut(node)?.pop_front()
    }

    /// Whether `node`'s inbox is empty.
    pub fn inbox_empty(&self, node: usize) -> bool {
        self.inner.borrow().queues.get(node).is_none_or(VecDeque::is_empty)
    }

    /// Custody handoff queued → unshipped: `node` applied a forwarded
    /// batch with minimum timestamp `min_ts` to its fragments.
    pub fn note_processed(&self, node: usize, min_ts: u64) {
        let mut inner = self.inner.borrow_mut();
        if let Some(u) = inner.unshipped.get_mut(node) {
            *u = (*u).min(min_ts);
        }
    }

    /// Custody handoff unshipped → in flight: `node` closed an epoch
    /// advertising watermark `epoch_wm`. The epoch's chunks carry every
    /// unshipped forwarded contribution (they were applied before the
    /// close), so the floor entry now waits on merge confirmation.
    pub fn note_epoch_closed(&self, node: usize, epoch_wm: u64) {
        let mut inner = self.inner.borrow_mut();
        let Some(u) = inner.unshipped.get_mut(node) else {
            return;
        };
        let min_ts = *u;
        *u = u64::MAX;
        if min_ts != u64::MAX {
            if let Some(q) = inner.inflight.get_mut(node) {
                q.push_back((min_ts, epoch_wm));
            }
        }
    }

    /// Release in-flight entries of `node` whose epochs are confirmed
    /// merged everywhere: `min_peer_slot` is the minimum, over all other
    /// nodes, of their vector-clock slot for `node` (slots advance only
    /// after merge, FIFO per channel).
    pub fn confirm(&self, node: usize, min_peer_slot: u64) {
        let mut inner = self.inner.borrow_mut();
        if let Some(q) = inner.inflight.get_mut(node) {
            while q.front().is_some_and(|&(_, wm)| wm <= min_peer_slot) {
                q.pop_front();
            }
        }
    }

    /// Mark `node`'s source exhausted (no further forwards from it).
    pub fn note_source_done(&self, node: usize) {
        let mut inner = self.inner.borrow_mut();
        if let Some(d) = inner.source_done.get_mut(node) {
            *d = true;
        }
    }

    /// Whether every node's source is exhausted.
    pub fn all_sources_done(&self) -> bool {
        self.inner.borrow().source_done.iter().all(|&d| d)
    }

    /// The watermark floor: the minimum timestamp of any forwarded record
    /// not yet confirmed merged at its leader; `u64::MAX` when none is
    /// outstanding. Window triggers use `min(vclock.min(), floor())`.
    pub fn floor(&self) -> u64 {
        let inner = self.inner.borrow();
        let mut floor = u64::MAX;
        for q in &inner.queues {
            for b in q {
                floor = floor.min(b.min_ts);
            }
        }
        for &u in &inner.unshipped {
            floor = floor.min(u);
        }
        for q in &inner.inflight {
            for &(ts, _) in q {
                floor = floor.min(ts);
            }
        }
        floor
    }

    /// `(records, bytes)` forwarded so far.
    pub fn forwarded(&self) -> (u64, u64) {
        let inner = self.inner.borrow();
        (inner.forwarded_records, inner.forwarded_bytes)
    }
}

/// Configuration for a [`SlashCluster::run_split`] run.
#[derive(Debug, Clone)]
pub struct SplitRunConfig {
    /// Keys split before the first record (deterministic scenarios and
    /// the race families use this; online detection uses `auto`).
    pub pre_split: Vec<u64>,
    /// Online detection policy; `None` runs only the pre-splits.
    pub auto: Option<HeatPolicy>,
    /// Driver tick period (heat sampling, director, floor confirmation).
    pub sample_every: SimTime,
    /// Forward split-key records round-robin across nodes (requires one
    /// worker per node; fault-free runs only).
    pub forward: bool,
}

impl Default for SplitRunConfig {
    fn default() -> Self {
        SplitRunConfig {
            pre_split: Vec::new(),
            auto: Some(HeatPolicy::default()),
            sample_every: SimTime::from_millis(1),
            forward: false,
        }
    }
}

/// What a split run did beyond the base [`RunReport`].
#[derive(Debug, Clone, Default)]
pub struct SplitReport {
    /// Keys split online, with activation (virtual) times; pre-splits are
    /// recorded at time zero.
    pub splits: Vec<(u64, SimTime)>,
    /// Records moved by the forwarding plane.
    pub forwarded_records: u64,
    /// Bytes moved by the forwarding plane.
    pub forwarded_bytes: u64,
}

/// The split control-loop process: samples heat, ticks the director,
/// activates splits on every ledger copy in one step, and confirms
/// forwarded-epoch merges to advance the watermark floor.
struct SplitDriver {
    shareds: Vec<Rc<RefCell<NodeShared>>>,
    fwd: Option<Rc<ForwardFabric>>,
    director: Box<dyn SplitDirector>,
    sample_every: SimTime,
    report: Rc<RefCell<SplitReport>>,
    /// False until the first full sampling interval has elapsed — the
    /// spawn-time step sees only whatever the workers did at t=0, which
    /// is not a representative sample.
    primed: bool,
}

impl Process for SplitDriver {
    fn step(&mut self, sim: &mut Sim, _me: ProcId) -> Step {
        if self.shareds.iter().all(|s| s.borrow().finished) {
            return Step::Done;
        }
        if !self.primed {
            self.primed = true;
            return Step::Yield(self.sample_every);
        }
        // Floor confirmation: an epoch of node i advertised at wm is
        // merged everywhere once every peer's slot for i reaches wm.
        if let Some(fwd) = &self.fwd {
            for node in 0..self.shareds.len() {
                let min_peer_slot = self
                    .shareds
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != node)
                    .map(|(_, s)| s.borrow().ssb.vclock().get(node))
                    .min()
                    .unwrap_or(u64::MAX);
                fwd.confirm(node, min_peer_slot);
            }
        }
        // Merge per-node sketches fresh each tick (sketches are
        // cumulative; re-merging into a held accumulator would double
        // count).
        let mut merged = HeatSketch::new(HEAT_CAPACITY);
        for s in &self.shareds {
            if let Some(h) = s.borrow().ssb.heat_snapshot() {
                merged.merge(h);
            }
        }
        let telemetry = SplitTelemetry {
            top: merged
                .top(HEAT_CAPACITY)
                .into_iter()
                .filter(|e| e.key & SUB_KEY_TAG == 0)
                .collect(),
            total: merged.total(),
        };
        for gk in self.director.tick(&telemetry) {
            // Ledger copies are deterministic: activation either succeeds
            // on every node or (gate/salt rejection) on none. Probe the
            // first copy so a rejected key leaves all copies untouched.
            let Some(first) = self.shareds.first() else {
                break;
            };
            if !first.borrow_mut().ssb.split_activate(gk) {
                continue;
            }
            for s in self.shareds.iter().skip(1) {
                let ok = s.borrow_mut().ssb.split_activate(gk);
                debug_assert!(ok, "ledger copies must agree on activation");
            }
            self.report.borrow_mut().splits.push((gk, sim.now()));
        }
        Step::Yield(self.sample_every)
    }

    fn name(&self) -> &str {
        "split-driver"
    }
}

impl SlashCluster {
    /// Run `plan` with hot-key splitting: every node carries a split
    /// ledger and a heat sketch, a `SplitDriver` activates splits
    /// (pre-configured and/or detected online), and — when
    /// `scfg.forward` is set — split-key records are round-robined
    /// across nodes through a [`ForwardFabric`].
    ///
    /// Results and final state are bit-exact against the unsplit
    /// [`SlashCluster::run`] of the same inputs (the headline invariant;
    /// the hotpath-bench `--zipf` sweep cross-checks it on every config).
    ///
    /// Restrictions: tumbling windows only (the sliding-window sibling
    /// merge peeks canonical keys in live state, which a split would
    /// bypass), and forwarding additionally requires one worker per node
    /// (the floor custody chain tracks per-node epochs).
    pub fn run_split(
        plan: QueryPlan,
        partitions: Vec<Rc<Vec<u8>>>,
        cfg: RunConfig,
        scfg: &SplitRunConfig,
        obs: Obs,
    ) -> (RunReport, SplitReport) {
        assert_eq!(
            partitions.len(),
            cfg.nodes * cfg.workers_per_node,
            "need one partition per worker"
        );
        assert_eq!(
            plan.window().slices_per_window(),
            1,
            "hot-key splitting requires tumbling windows"
        );
        if scfg.forward {
            assert_eq!(
                cfg.workers_per_node, 1,
                "record forwarding requires one worker per node"
            );
        }
        let mut sim = Sim::new();
        let fabric = Fabric::new(cfg.fabric);
        let node_ids = fabric.add_nodes(cfg.nodes);
        let ssb_cfg = SsbConfig {
            nodes: cfg.nodes,
            epoch_bytes: cfg.epoch_bytes,
            channel: cfg.channel,
        };
        let ssb_nodes =
            build_cluster_obs(&fabric, &node_ids, plan.descriptor(), ssb_cfg, obs.clone());

        let fwd = scfg
            .forward
            .then(|| Rc::new(ForwardFabric::new(cfg.nodes)));
        let report = Rc::new(RefCell::new(SplitReport::default()));
        let plan = Rc::new(plan);
        let schema = plan.input().schema;
        let mut shareds = Vec::with_capacity(cfg.nodes);
        for (node, ssb) in ssb_nodes.into_iter().enumerate() {
            let shared = Rc::new(RefCell::new(NodeShared::new(
                ssb,
                cfg.workers_per_node,
                cfg.cost.mem_bandwidth,
                cfg.collect_results,
            )));
            {
                let mut sh = shared.borrow_mut();
                sh.metrics.set_clock_ghz(cfg.cost.clock_ghz);
                if obs.is_enabled() {
                    sh.instrument(obs.clone(), node);
                }
                sh.ssb.split_enable();
                for &gk in &scfg.pre_split {
                    if sh.ssb.split_activate(gk) && node == 0 {
                        report.borrow_mut().splits.push((gk, SimTime::ZERO));
                    }
                }
                sh.fwd = fwd.clone();
            }
            spawn_node_workers(&mut sim, node, &shared, &partitions, schema, &plan, &cfg, None);
            shareds.push(shared);
        }

        let director: Box<dyn SplitDirector> = match scfg.auto {
            Some(policy) => Box::new(HeatSplitDirector::new(policy)),
            None => Box::new(StaticSplitDirector),
        };
        sim.spawn(SplitDriver {
            shareds: shareds.clone(),
            fwd: fwd.clone(),
            director,
            sample_every: scfg.sample_every.max(SimTime::from_nanos(1)),
            report: Rc::clone(&report),
            primed: false,
        });

        loop {
            if shareds.iter().all(|s| s.borrow().finished) {
                break;
            }
            assert!(
                sim.now() <= cfg.max_virtual_time,
                "query did not complete within the virtual-time budget \
                 (possible protocol livelock)"
            );
            assert!(
                sim.pending_events() > 0,
                "simulation quiesced before the query completed (deadlock)"
            );
            let horizon = sim.now() + SimTime::from_millis(10);
            sim.run_until(horizon);
        }
        let completion_time = sim.now();
        let run = assemble_report(&shareds, &fabric, &obs, completion_time);
        let mut split_report = report.borrow().clone();
        if let Some(f) = &fwd {
            let (recs, bytes) = f.forwarded();
            split_report.forwarded_records = recs;
            split_report.forwarded_bytes = bytes;
        }
        (run, split_report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_floor_follows_the_custody_chain() {
        let f = ForwardFabric::new(3);
        assert_eq!(f.floor(), u64::MAX);
        f.enqueue(
            1,
            FwdBatch {
                min_ts: 500,
                records: 2,
                data: vec![0; 32],
            },
        );
        assert_eq!(f.floor(), 500, "queued batches hold the floor");
        let b = f.pop(1).map(|b| b.min_ts);
        assert_eq!(b, Some(500));
        assert_eq!(f.floor(), u64::MAX, "popped but not yet processed");
        f.note_processed(1, 500);
        assert_eq!(f.floor(), 500, "unshipped contributions hold the floor");
        f.note_epoch_closed(1, 9_000);
        assert_eq!(f.floor(), 500, "in-flight epochs hold the floor");
        f.confirm(1, 8_999);
        assert_eq!(f.floor(), 500, "unconfirmed below the epoch watermark");
        f.confirm(1, 9_000);
        assert_eq!(f.floor(), u64::MAX, "confirmation releases the floor");
        assert_eq!(f.forwarded(), (2, 32));
    }

    #[test]
    fn fabric_close_without_unshipped_is_inert() {
        let f = ForwardFabric::new(2);
        f.note_epoch_closed(0, 100);
        assert_eq!(f.floor(), u64::MAX);
        f.confirm(0, 0);
        assert_eq!(f.floor(), u64::MAX);
    }

    #[test]
    fn fabric_tracks_source_completion() {
        let f = ForwardFabric::new(2);
        assert!(!f.all_sources_done());
        f.note_source_done(0);
        assert!(!f.all_sources_done());
        f.note_source_done(1);
        assert!(f.all_sources_done());
        assert!(f.inbox_empty(0) && f.inbox_empty(1));
    }

    #[test]
    fn heat_director_splits_on_the_lower_bound_only() {
        let mut d = HeatSplitDirector::new(HeatPolicy {
            hot_ppm: 100_000, // 10%
            min_total: 1_000,
            max_splits: 2,
        });
        // Below min_total: no action even for a dominating key.
        let quiet = SplitTelemetry {
            top: vec![HeatEntry {
                key: 7,
                count: 500,
                err: 0,
            }],
            total: 500,
        };
        assert!(d.tick(&quiet).is_empty());
        // Overestimated key: count clears the bar, count-err does not.
        let noisy = SplitTelemetry {
            top: vec![HeatEntry {
                key: 9,
                count: 2_000,
                err: 1_950,
            }],
            total: 10_000,
        };
        assert!(d.tick(&noisy).is_empty(), "must not split on sketch noise");
        // Provably hot: splits once, never re-requested, cap honoured.
        let hot = SplitTelemetry {
            top: vec![
                HeatEntry {
                    key: 1,
                    count: 4_000,
                    err: 0,
                },
                HeatEntry {
                    key: 2,
                    count: 3_000,
                    err: 0,
                },
                HeatEntry {
                    key: 3,
                    count: 2_000,
                    err: 0,
                },
            ],
            total: 10_000,
        };
        assert_eq!(d.tick(&hot), vec![1, 2], "cap at max_splits");
        assert!(d.tick(&hot).is_empty(), "no re-requests");
    }

    use crate::agg::AggSpec;
    use crate::query::StreamDef;
    use crate::record::RecordSchema;
    use crate::recovery::results_digest;
    use crate::window::WindowAssigner;

    /// `n` 16-byte records of (ts, key): ts += dt, keys zipf-ish skewed —
    /// every other record hits `hot_key`, the rest round-robin `keys`.
    fn gen_skewed(n: u64, dt: u64, keys: u64, hot_key: u64) -> Rc<Vec<u8>> {
        let mut buf = Vec::with_capacity((n * 16) as usize);
        for i in 0..n {
            let k = if i % 2 == 0 { hot_key } else { i % keys };
            buf.extend_from_slice(&(i * dt).to_le_bytes());
            buf.extend_from_slice(&k.to_le_bytes());
        }
        Rc::new(buf)
    }

    fn count_plan(window: u64) -> QueryPlan {
        QueryPlan::Aggregate {
            input: StreamDef::new(RecordSchema::plain(16)),
            window: WindowAssigner::Tumbling { size: window },
            agg: AggSpec::Count,
        }
    }

    fn exactness_config(nodes: usize) -> RunConfig {
        let mut cfg = RunConfig::new(nodes, 1);
        cfg.collect_results = true;
        cfg.epoch_bytes = 2048;
        cfg
    }

    /// The headline invariant, state-plane only: pre-splitting a hot key
    /// (no forwarding) leaves every `(window, key, value)` result
    /// bit-exact against the plain run.
    #[test]
    fn run_split_is_exact_without_forwarding() {
        let nodes = 3;
        let parts: Vec<Rc<Vec<u8>>> = (0..nodes as u64)
            .map(|p| gen_skewed(600, 3, 8, 5 + (p % 2)))
            .collect();
        let cfg = exactness_config(nodes);
        let plain = SlashCluster::run(count_plan(300), parts.clone(), cfg);
        let scfg = SplitRunConfig {
            pre_split: vec![5, 6],
            auto: None,
            ..SplitRunConfig::default()
        };
        let (split, rep) =
            SlashCluster::run_split(count_plan(300), parts, cfg, &scfg, Obs::disabled());
        assert_eq!(rep.splits.len(), 2, "both pre-splits must activate");
        assert_eq!(rep.forwarded_records, 0, "forwarding was off");
        assert_eq!(split.records, plain.records);
        assert_eq!(split.emitted, plain.emitted);
        assert_eq!(
            results_digest(&split.results),
            results_digest(&plain.results),
            "split-path results must be bit-exact vs the unsplit run"
        );
        for r in &split.results {
            if let crate::sink::SinkResult::Agg { key, .. } = r {
                assert_eq!(key & SUB_KEY_TAG, 0, "sub-key escaped the fold");
            }
        }
    }

    /// Exactness with the full data plane: forwarded records and the
    /// watermark floor must not lose, duplicate, or early-release
    /// anything.
    #[test]
    fn run_split_is_exact_with_forwarding() {
        let nodes = 4;
        let parts: Vec<Rc<Vec<u8>>> = (0..nodes as u64)
            .map(|_| gen_skewed(800, 2, 16, 3))
            .collect();
        let cfg = exactness_config(nodes);
        let plain = SlashCluster::run(count_plan(400), parts.clone(), cfg);
        let scfg = SplitRunConfig {
            pre_split: vec![3],
            auto: None,
            forward: true,
            ..SplitRunConfig::default()
        };
        let (split, rep) =
            SlashCluster::run_split(count_plan(400), parts, cfg, &scfg, Obs::disabled());
        assert!(
            rep.forwarded_records > 0,
            "a pre-split hot key must actually forward records"
        );
        assert_eq!(split.records, plain.records, "sender-counted records");
        assert_eq!(split.emitted, plain.emitted);
        assert_eq!(
            results_digest(&split.results),
            results_digest(&plain.results),
            "forwarding must stay bit-exact vs the unsplit run"
        );
    }

    /// The online path: the heat director detects the hot key mid-run,
    /// activates the split on every node, and the run stays exact.
    #[test]
    fn online_detection_splits_and_stays_exact() {
        let nodes = 3;
        let parts: Vec<Rc<Vec<u8>>> = (0..nodes as u64)
            .map(|_| gen_skewed(1200, 2, 32, 7))
            .collect();
        let cfg = exactness_config(nodes);
        let plain = SlashCluster::run(count_plan(600), parts.clone(), cfg);
        let scfg = SplitRunConfig {
            auto: Some(HeatPolicy {
                hot_ppm: 200_000, // 20%; the hot key carries ~50%
                min_total: 200,
                max_splits: 4,
            }),
            sample_every: SimTime::from_micros(2),
            ..SplitRunConfig::default()
        };
        let (split, rep) =
            SlashCluster::run_split(count_plan(600), parts, cfg, &scfg, Obs::disabled());
        assert!(
            rep.splits.iter().any(|&(k, at)| k == 7 && at > SimTime::ZERO),
            "director must detect key 7 online; got {:?}",
            rep.splits
        );
        assert_eq!(
            results_digest(&split.results),
            results_digest(&plain.results),
            "online split must stay bit-exact vs the unsplit run"
        );
    }
}
