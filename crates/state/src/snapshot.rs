//! Epoch-aligned state snapshots — the fault-tolerance extension.
//!
//! The paper's epoch protocol is the classic mechanism for consistent
//! checkpoints (§7.2.2 cites epoch-based synchronization for
//! "checkpointing"; the authors' companion system Rhino builds state
//! migration on the same idea). This module adds what the paper leaves
//! as engineering: serializing a partition's content at an epoch boundary
//! and rebuilding it elsewhere.
//!
//! The snapshot format *is* the delta wire format ([`crate::delta`]):
//! a snapshot is simply "the delta from the empty state", so restore is
//! the leader-side merge path — one code path, one set of invariants.

use crate::delta::{parse_chunk, ChunkBuilder};
use crate::descriptor::StateDescriptor;
use crate::entry::EntryKind;
use crate::partition::Partition;

/// Serialize a partition's full live content into delta-format chunks of
/// at most `max_chunk` bytes. The partition is not modified.
pub fn snapshot_chunks(part: &Partition, watermark: u64, max_chunk: usize) -> Vec<Vec<u8>> {
    // Snapshots carry no epoch-close time stamp (`sent_us = 0`): they are
    // produced outside the coherence protocol's clock.
    let mut builder = ChunkBuilder::new(part.id as u32, part.epoch(), watermark, 0, max_chunk);
    let appended = part.descriptor().is_appended();
    part.for_each_key(|key, _| {
        if appended {
            part.for_each_element(key, |elem| {
                builder.push(key, EntryKind::Appended, elem);
            });
        } else if let Some(value) = part.get(key) {
            builder.push(key, EntryKind::Fixed, value);
        } else {
            // `for_each_key` only lists live keys; absence would mean index
            // corruption. Skip rather than panic — the snapshot then simply
            // omits the unreadable key.
            debug_assert!(false, "listed key has a value");
        }
    });
    builder.finish()
}

/// Content digest of a chunk set (SplitMix64 fold over lengths and
/// bytes). A checkpoint records the digest of its snapshot at capture
/// time; recovery verifies the copy it is about to restore against it —
/// the model's stand-in for an end-to-end checksum over the shipped
/// chunks, catching a copy corrupted or truncated by a mid-transfer
/// fault before it is installed as primary state.
pub fn chunks_digest(chunks: &[Vec<u8>]) -> u64 {
    let mut h: u64 = 0x0C4E_C5D1_6E57;
    let mut fold = |v: u64| {
        let mut z = h.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(v);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h = z ^ (z >> 31);
    };
    for chunk in chunks {
        fold(chunk.len() as u64);
        for window in chunk.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..window.len()].copy_from_slice(window);
            fold(u64::from_le_bytes(buf));
        }
    }
    h
}

/// Rebuild a partition from snapshot chunks. Returns the partition and
/// the snapshot's watermark.
pub fn restore(
    id: usize,
    desc: StateDescriptor,
    chunks: &[Vec<u8>],
) -> (Partition, u64) {
    let mut part = Partition::new(id, desc);
    let mut watermark = 0;
    for chunk in chunks {
        let header = parse_chunk(chunk, |key, kind, value| match kind {
            EntryKind::Fixed => part.merge_fixed(key, value),
            EntryKind::Appended => part.append(key, value),
        });
        assert_eq!(header.partition as usize, id, "chunk for wrong partition");
        watermark = watermark.max(header.watermark);
    }
    (part, watermark)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crdts::{CounterCrdt, MeanCrdt};
    use crate::descriptor::appended_descriptor;
    use crate::hash::pack_key;

    #[test]
    fn counter_state_roundtrips() {
        let desc = CounterCrdt::descriptor();
        let mut part = Partition::new(3, desc);
        for k in 0..500u64 {
            part.rmw(pack_key(1, k), |v| CounterCrdt::add(v, k + 1));
        }
        let chunks = snapshot_chunks(&part, 777, 4096);
        assert!(chunks.len() > 1, "should span several chunks");

        let (restored, wm) = restore(3, desc, &chunks);
        assert_eq!(wm, 777);
        assert_eq!(restored.key_count(), 500);
        for k in 0..500u64 {
            assert_eq!(
                restored.get(pack_key(1, k)).map(CounterCrdt::get),
                Some(k + 1)
            );
        }
    }

    #[test]
    fn chunk_digest_is_stable_and_corruption_sensitive() {
        let desc = CounterCrdt::descriptor();
        let mut part = Partition::new(0, desc);
        for k in 0..64u64 {
            part.rmw(pack_key(1, k), |v| CounterCrdt::add(v, k));
        }
        let chunks = snapshot_chunks(&part, 9, 512);
        assert_eq!(chunks_digest(&chunks), chunks_digest(&chunks.clone()));
        let mut flipped = chunks.clone();
        flipped[0][0] ^= 1;
        assert_ne!(chunks_digest(&chunks), chunks_digest(&flipped));
        let truncated = &chunks[..chunks.len() - 1];
        assert_ne!(chunks_digest(&chunks), chunks_digest(truncated));
    }

    #[test]
    fn holistic_state_roundtrips_as_a_multiset() {
        let desc = appended_descriptor();
        let mut part = Partition::new(0, desc);
        for i in 0..50u64 {
            part.append(pack_key(2, i % 5), &i.to_le_bytes());
        }
        let chunks = snapshot_chunks(&part, 1, 1024);
        let (restored, _) = restore(0, desc, &chunks);
        // Same multiset of elements per key (order within a chain is not
        // semantic).
        for key in 0..5u64 {
            let collect = |p: &Partition| {
                let mut v: Vec<Vec<u8>> = Vec::new();
                p.for_each_element(pack_key(2, key), |e| v.push(e.to_vec()));
                v.sort();
                v
            };
            assert_eq!(collect(&part), collect(&restored), "key {key}");
        }
    }

    #[test]
    fn snapshot_of_empty_partition_restores_empty() {
        let desc = MeanCrdt::descriptor();
        let part = Partition::new(1, desc);
        let chunks = snapshot_chunks(&part, 42, 1024);
        assert_eq!(chunks.len(), 1, "just the fin header");
        let (restored, wm) = restore(1, desc, &chunks);
        assert_eq!(restored.key_count(), 0);
        assert_eq!(wm, 42);
    }

    #[test]
    fn snapshot_does_not_perturb_the_source() {
        let desc = CounterCrdt::descriptor();
        let mut part = Partition::new(0, desc);
        part.rmw(pack_key(1, 9), |v| CounterCrdt::add(v, 5));
        let before_epoch = part.epoch();
        let _ = snapshot_chunks(&part, 0, 1024);
        assert_eq!(part.epoch(), before_epoch);
        assert_eq!(part.get(pack_key(1, 9)).map(CounterCrdt::get), Some(5));
        assert!(part.is_dirty(), "snapshot must not close the open epoch");
    }

    #[test]
    fn restored_state_keeps_merging_correctly() {
        // Crash-recovery scenario: restore a leader, then merge a
        // late-arriving helper delta into it.
        let desc = CounterCrdt::descriptor();
        let mut part = Partition::new(0, desc);
        part.rmw(pack_key(1, 1), |v| CounterCrdt::add(v, 10));
        let chunks = snapshot_chunks(&part, 100, 1024);
        let (mut restored, _) = restore(0, desc, &chunks);
        restored.merge_fixed(pack_key(1, 1), &32u64.to_le_bytes());
        assert_eq!(
            restored.get(pack_key(1, 1)).map(CounterCrdt::get),
            Some(42)
        );
    }

    #[test]
    #[should_panic(expected = "wrong partition")]
    fn restoring_into_the_wrong_partition_fails() {
        let desc = CounterCrdt::descriptor();
        let mut part = Partition::new(4, desc);
        part.rmw(pack_key(1, 1), |v| CounterCrdt::add(v, 1));
        let chunks = snapshot_chunks(&part, 0, 1024);
        let _ = restore(5, desc, &chunks);
    }
}
