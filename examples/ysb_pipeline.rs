//! The Yahoo! Streaming Benchmark on a 4-node Slash cluster, with the
//! RDMA UpPar and Flink-sim baselines run on the identical workload for
//! comparison — a miniature of the paper's Fig. 6a.
//!
//! ```sh
//! cargo run --release --example ysb_pipeline
//! ```

use slash::baselines::flinksim::flink_config;
use slash::baselines::partitioned::run_partitioned;
use slash::baselines::uppar::uppar_config;
use slash::core::{RunConfig, SlashCluster};
use slash::workloads::{ysb, GenConfig};

fn main() {
    let nodes = 4;
    let workers = 4;
    let records_per_worker = 25_000u64;

    // --- Slash: every thread runs filter → project → window-update. ---
    let w = ysb(&GenConfig::new(nodes * workers, records_per_worker));
    println!(
        "YSB: {} records ({} MB), filter(1/3) -> project -> 10min tumbling count per campaign",
        w.records,
        w.records * 78 / 1_000_000
    );
    let slash = SlashCluster::run(w.plan, w.partitions, RunConfig::new(nodes, workers));
    println!(
        "\nSlash      @{nodes} nodes: {:>8.1} M records/s   ({} windows emitted, {} KiB state traffic)",
        slash.throughput() / 1e6,
        slash.emitted,
        slash.net_tx_bytes / 1024
    );

    // --- RDMA UpPar: half the threads partition, half process. ---
    let senders = workers / 2;
    let w = ysb(&GenConfig::new(
        nodes * senders,
        records_per_worker * workers as u64 / senders as u64,
    ));
    let uppar = run_partitioned(w.plan, w.partitions, uppar_config(nodes, workers));
    println!(
        "RDMA UpPar @{nodes} nodes: {:>8.1} M records/s   ({} windows emitted, {} MiB re-partitioned)",
        uppar.throughput() / 1e6,
        uppar.emitted,
        uppar.net_tx_bytes / 1024 / 1024
    );

    // --- Flink-sim: same topology over IPoIB sockets + managed runtime. ---
    let w = ysb(&GenConfig::new(
        nodes * senders,
        records_per_worker * workers as u64 / senders as u64,
    ));
    let flink = run_partitioned(w.plan, w.partitions, flink_config(nodes, workers));
    println!(
        "Flink-sim  @{nodes} nodes: {:>8.1} M records/s   ({} windows emitted)",
        flink.throughput() / 1e6,
        flink.emitted
    );

    println!(
        "\nSlash vs UpPar: {:.1}x    Slash vs Flink: {:.1}x",
        slash.throughput() / uppar.throughput(),
        slash.throughput() / flink.throughput()
    );
    assert!(slash.throughput() > uppar.throughput());
    assert!(uppar.throughput() > flink.throughput());
}
