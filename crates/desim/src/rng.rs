//! Deterministic random number generation for the simulation.
//!
//! A thin, seedable xoshiro256** implementation. We deliberately do not pull
//! the full `rand` ecosystem into the kernel: determinism across `rand`
//! version bumps is a reproducibility requirement for this repository, and
//! the generator below is ~40 lines. (Workload generators in
//! `slash-workloads` still use `rand` where distribution quality matters.)

/// xoshiro256** — fast, high-quality, seedable PRNG.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Seed the generator. Any seed (including 0) is valid; the state is
    /// expanded with SplitMix64 as recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        DetRng {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fork a statistically independent generator (e.g. one per node).
    pub fn fork(&mut self, stream: u64) -> DetRng {
        DetRng::new(self.next_u64() ^ stream.wrapping_mul(0xA24BAED4963EE407))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut r = DetRng::new(7);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_f64_in_unit_interval_and_roughly_uniform() {
        let mut r = DetRng::new(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut root = DetRng::new(5);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same <= 1);
    }
}
