//! Work request types — the verbs vocabulary.

use crate::memory::{Mr, RemoteKey};

/// A local scatter/gather entry: a sub-range of a registered region.
#[derive(Clone)]
pub struct LocalSlice {
    /// The registered region the data lives in.
    pub mr: Mr,
    /// Byte offset into the region.
    pub offset: usize,
    /// Length in bytes.
    pub len: usize,
}

impl LocalSlice {
    /// Convenience constructor covering a whole region.
    pub fn whole(mr: &Mr) -> Self {
        LocalSlice {
            mr: mr.clone(),
            offset: 0,
            len: mr.len(),
        }
    }

    /// A sub-range of a region.
    pub fn range(mr: &Mr, offset: usize, len: usize) -> Self {
        LocalSlice {
            mr: mr.clone(),
            offset,
            len,
        }
    }
}

impl std::fmt::Debug for LocalSlice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LocalSlice[{}..{}]", self.offset, self.offset + self.len)
    }
}

/// A remote address: rkey plus offset within the remote region.
#[derive(Debug, Clone, Copy)]
pub struct RemoteSlice {
    /// Remote region token.
    pub key: RemoteKey,
    /// Byte offset into the remote region.
    pub offset: usize,
}

/// A work request posted to a queue pair's send queue.
///
/// `wr_id` is an opaque caller cookie returned in the matching completion;
/// `signaled` implements selective signaling (unsignaled requests complete
/// silently, saving completion-queue processing — §6 of the paper relies on
/// this for data buffers and signals only credit-carrying writes).
#[derive(Debug, Clone)]
pub enum WorkRequest {
    /// One-sided write of `local` into `remote` on the peer node.
    Write {
        /// Caller cookie echoed in the completion.
        wr_id: u64,
        /// Source bytes.
        local: LocalSlice,
        /// Destination on the peer.
        remote: RemoteSlice,
        /// Whether to generate a send-side completion.
        signaled: bool,
    },
    /// One-sided write that additionally consumes a posted receive on the
    /// peer and delivers `imm` in its completion (used for control signals).
    WriteImm {
        /// Caller cookie echoed in the completion.
        wr_id: u64,
        /// Source bytes.
        local: LocalSlice,
        /// Destination on the peer.
        remote: RemoteSlice,
        /// Immediate data delivered to the peer's receive completion.
        imm: u32,
        /// Whether to generate a send-side completion.
        signaled: bool,
    },
    /// Two-sided send into the peer's next posted receive buffer.
    Send {
        /// Caller cookie echoed in the completion.
        wr_id: u64,
        /// Source bytes.
        local: LocalSlice,
        /// Whether to generate a send-side completion.
        signaled: bool,
    },
    /// One-sided read of `remote` into `local`. Always signaled: the caller
    /// must learn when the data has landed.
    Read {
        /// Caller cookie echoed in the completion.
        wr_id: u64,
        /// Landing buffer.
        local: LocalSlice,
        /// Source on the peer.
        remote: RemoteSlice,
    },
}

impl WorkRequest {
    /// Caller cookie.
    pub fn wr_id(&self) -> u64 {
        match self {
            WorkRequest::Write { wr_id, .. }
            | WorkRequest::WriteImm { wr_id, .. }
            | WorkRequest::Send { wr_id, .. }
            | WorkRequest::Read { wr_id, .. } => *wr_id,
        }
    }

    /// Payload length in bytes.
    pub fn byte_len(&self) -> usize {
        match self {
            WorkRequest::Write { local, .. }
            | WorkRequest::WriteImm { local, .. }
            | WorkRequest::Send { local, .. }
            | WorkRequest::Read { local, .. } => local.len,
        }
    }

    /// Whether a completion must be generated on the requester side.
    pub fn signaled(&self) -> bool {
        match self {
            WorkRequest::Write { signaled, .. }
            | WorkRequest::WriteImm { signaled, .. }
            | WorkRequest::Send { signaled, .. } => *signaled,
            WorkRequest::Read { .. } => true,
        }
    }
}

/// A receive work request: a buffer waiting for an inbound SEND (or the
/// notification slot for a WRITE_WITH_IMM).
#[derive(Clone)]
pub struct RecvWr {
    /// Caller cookie echoed in the completion.
    pub wr_id: u64,
    /// Landing buffer.
    pub local: LocalSlice,
}

impl std::fmt::Debug for RecvWr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RecvWr(wr_id={}, {:?})", self.wr_id, self.local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::NodeId;

    #[test]
    fn accessors() {
        let mr = Mr::new(NodeId(0), 7, 128);
        let wr = WorkRequest::Write {
            wr_id: 42,
            local: LocalSlice::range(&mr, 0, 64),
            remote: RemoteSlice {
                key: RemoteKey {
                    node: NodeId(1),
                    rkey: 9,
                },
                offset: 0,
            },
            signaled: false,
        };
        assert_eq!(wr.wr_id(), 42);
        assert_eq!(wr.byte_len(), 64);
        assert!(!wr.signaled());

        let rd = WorkRequest::Read {
            wr_id: 1,
            local: LocalSlice::whole(&mr),
            remote: RemoteSlice {
                key: RemoteKey {
                    node: NodeId(1),
                    rkey: 9,
                },
                offset: 8,
            },
        };
        assert!(rd.signaled(), "READs are always signaled");
        assert_eq!(rd.byte_len(), 128);
    }
}
