//! HDR-style log-bucketed histogram.
//!
//! Values are bucketed with a fixed relative error of at most `1/32`
//! (5 sub-bucket bits per octave), using only integer arithmetic so that
//! recording, merging, and quantile queries are bit-for-bit deterministic
//! across platforms. This replaces the lossy `latency_sum / latency_samples`
//! averages that previously lived in `ChannelStats`: a mean hides exactly
//! the tail behaviour (p99, p99.9) that matters for a streaming engine.
//!
//! Layout: values `< 32` map to unit-width buckets `0..32`; a value with
//! most-significant bit `m >= 5` lands in octave group `m - 4`, sub-bucket
//! `(v >> (m - 5)) - 32`. With 64-bit values this is at most
//! `60 * 32 = 1920` buckets; storage grows lazily so an idle histogram is
//! a few machine words.

/// Sub-bucket resolution bits: 32 sub-buckets per octave, relative error <= 1/32.
const SUB_BITS: u32 = 5;
/// Number of sub-buckets per octave (`1 << SUB_BITS`).
const SUB: u64 = 1 << SUB_BITS;

/// A log-bucketed histogram over `u64` values (typically nanoseconds).
///
/// All operations are O(1) or O(buckets); none allocate after the bucket
/// vector has grown to cover the largest recorded value. Merging is
/// associative and commutative (element-wise bucket addition), which the
/// property tests in this module verify against exact sorted samples.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Bucket index for a value. Total over all of `u64`.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let group = (msb - SUB_BITS + 1) as usize;
        let sub = ((v >> (msb - SUB_BITS)) - SUB) as usize;
        group * SUB as usize + sub
    }
}

/// Inclusive lower bound of a bucket.
fn bucket_lower(idx: usize) -> u64 {
    let sub_n = SUB as usize;
    if idx < sub_n {
        idx as u64
    } else {
        let group = idx / sub_n;
        let sub = (idx % sub_n) as u64;
        (SUB + sub) << (group - 1)
    }
}

/// Inclusive upper bound of a bucket.
fn bucket_upper(idx: usize) -> u64 {
    let sub_n = SUB as usize;
    if idx < sub_n {
        idx as u64
    } else {
        // `lower - 1 + width` instead of `lower + width - 1`: the topmost
        // bucket's upper bound is exactly `u64::MAX`, which the latter
        // form would overflow computing.
        let group = idx / sub_n;
        bucket_lower(idx) - 1 + (1u64 << (group - 1))
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean of recorded values, if any.
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum / self.count)
    }

    /// Value at quantile `q` in `[0, 1]`.
    ///
    /// Returns the upper bound of the bucket holding the `ceil(q * count)`-th
    /// smallest sample (clamped to the observed maximum), so the estimate `e`
    /// for an exact quantile `x` satisfies `x <= e <= x + x/32 + 1`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(idx).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram into this one (element-wise bucket addition).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        if self.count != other.count || self.sum != other.sum {
            return false;
        }
        if self.count > 0 && (self.min != other.min || self.max != other.max) {
            return false;
        }
        let longest = self.counts.len().max(other.counts.len());
        (0..longest).all(|i| {
            self.counts.get(i).copied().unwrap_or(0) == other.counts.get(i).copied().unwrap_or(0)
        })
    }
}

impl Eq for Histogram {}

#[cfg(test)]
mod tests {
    use super::*;
    use slash_desim::DetRng;

    #[test]
    fn bucket_bounds_cover_values() {
        let mut rng = DetRng::new(0x0B5);
        for _ in 0..10_000 {
            let shift = rng.next_below(64) as u32;
            let v = rng.next_u64() >> shift;
            let idx = bucket_index(v);
            assert!(bucket_lower(idx) <= v, "lower bound for {v}");
            assert!(v <= bucket_upper(idx), "upper bound for {v}");
        }
    }

    #[test]
    fn relative_error_bounded() {
        let mut rng = DetRng::new(0x0B6);
        for _ in 0..10_000 {
            let shift = rng.next_below(64) as u32;
            let v = rng.next_u64() >> shift;
            let idx = bucket_index(v);
            let width = bucket_upper(idx) - bucket_lower(idx);
            assert!(
                width <= bucket_lower(idx) / 32 + 1,
                "width {width} too wide for value {v}"
            );
        }
    }

    /// Quantile estimates vs. an exact sort, over seeded loops mixing
    /// uniform and heavy-tailed samples (satellite: property tests).
    #[test]
    fn quantiles_bounded_vs_exact_sort() {
        for seed in 0..8u64 {
            let mut rng = DetRng::new(0x9A11 + seed);
            let n = 1 + rng.next_below(10_000) as usize;
            let mut hist = Histogram::new();
            let mut exact: Vec<u64> = Vec::with_capacity(n);
            for _ in 0..n {
                let v = if rng.next_below(4) == 0 {
                    rng.next_u64() >> rng.next_below(48)
                } else {
                    rng.next_below(1_000_000)
                };
                hist.record(v);
                exact.push(v);
            }
            exact.sort_unstable();
            assert_eq!(hist.count(), n as u64);
            assert_eq!(hist.max(), exact.last().copied());
            assert_eq!(hist.min(), exact.first().copied());
            for &q in &[0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
                let x = exact[rank - 1];
                let e = hist.quantile(q).unwrap();
                assert!(x <= e, "seed {seed} q {q}: exact {x} > est {e}");
                assert!(
                    e - x <= x / 32 + 1,
                    "seed {seed} q {q}: est {e} beyond bound of exact {x}"
                );
            }
        }
    }

    /// Merging is associative and equals recording the concatenation
    /// (satellite: property tests).
    #[test]
    fn merge_is_associative_and_matches_concat() {
        for seed in 0..8u64 {
            let mut rng = DetRng::new(0x3E6 + seed);
            let mut parts: Vec<Histogram> = Vec::new();
            let mut all = Histogram::new();
            for _ in 0..3 {
                let mut h = Histogram::new();
                for _ in 0..rng.next_below(2_000) {
                    let v = rng.next_u64() >> rng.next_below(40);
                    h.record(v);
                    all.record(v);
                }
                parts.push(h);
            }
            // (a + b) + c
            let mut left = parts[0].clone();
            left.merge(&parts[1]);
            left.merge(&parts[2]);
            // a + (b + c)
            let mut bc = parts[1].clone();
            bc.merge(&parts[2]);
            let mut right = parts[0].clone();
            right.merge(&bc);
            assert_eq!(left, right, "seed {seed}: merge not associative");
            assert_eq!(left, all, "seed {seed}: merge differs from concat");
        }
    }

    #[test]
    fn empty_histogram_reports_nothing() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }
}
