//! SpaceSaving top-k heat sketch for per-key load telemetry.
//!
//! Tracks the hottest keys of an unbounded stream in O(capacity) memory
//! with the classic SpaceSaving guarantee: every reported `count` is an
//! upper bound on the key's true frequency and overestimates it by at
//! most the entry's `err`, so `count - err <= true <= count`. Entries
//! with `err == 0` are *exact* — on skewed (zipfian) streams the hottest
//! keys enter the sketch before any eviction and stay exact, which the
//! DetRng property test in this module verifies against brute-force
//! counts.
//!
//! Everything is integer arithmetic over `BTreeMap`-ordered state, so
//! observation order aside, the sketch is deterministic: ties on
//! eviction break toward the smallest key, and [`HeatSketch::top`]
//! orders by `(count desc, key asc)`. No panics, no wall clock.

use std::collections::BTreeMap;

/// Default monitored-set capacity used by the registry for engine
/// key-heat sketches. 64 slots comfortably covers the top-k any
/// rescaling or key-splitting controller would act on while keeping the
/// O(capacity) eviction scan trivial.
pub const HEAT_CAPACITY: usize = 64;

/// One monitored key with its SpaceSaving count and error bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeatEntry {
    /// The tracked key (Slash uses the packed group key).
    pub key: u64,
    /// Upper bound on the key's true observed weight.
    pub count: u64,
    /// Overestimation bound: `count - err <= true count <= count`.
    pub err: u64,
}

/// SpaceSaving sketch over `u64` keys with saturating `u64` weights.
#[derive(Debug, Clone, Default)]
pub struct HeatSketch {
    cap: usize,
    total: u64,
    slots: BTreeMap<u64, (u64, u64)>,
}

impl HeatSketch {
    /// An empty sketch monitoring at most `capacity` keys (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            cap: capacity.max(1),
            total: 0,
            slots: BTreeMap::new(),
        }
    }

    /// Record `weight` observations of `key`.
    pub fn observe(&mut self, key: u64, weight: u64) {
        self.observe_with_err(key, weight, 0);
    }

    /// Record `weight` observations of `key` carrying `err` of prior
    /// overestimation (used by [`merge`](Self::merge)).
    fn observe_with_err(&mut self, key: u64, weight: u64, err: u64) {
        if weight == 0 {
            return;
        }
        self.total = self.total.saturating_add(weight);
        if let Some((count, e)) = self.slots.get_mut(&key) {
            *count = count.saturating_add(weight);
            *e = e.saturating_add(err);
            return;
        }
        if self.slots.len() < self.cap {
            self.slots.insert(key, (weight, err));
            return;
        }
        // Evict the minimum-count entry (ties break to the smallest key,
        // which BTreeMap iteration order gives us for free) and charge its
        // count to the newcomer as error.
        let victim = self
            .slots
            .iter()
            .min_by_key(|(k, (c, _))| (*c, **k))
            .map(|(k, (c, _))| (*k, *c));
        if let Some((vk, vc)) = victim {
            self.slots.remove(&vk);
            self.slots.insert(
                key,
                (vc.saturating_add(weight), vc.saturating_add(err)),
            );
        }
    }

    /// Merge another sketch into this one. The union keeps the
    /// SpaceSaving bound: each entry arrives with its own accumulated
    /// error, and evictions charge error as usual.
    pub fn merge(&mut self, other: &HeatSketch) {
        for (&key, &(count, err)) in &other.slots {
            self.observe_with_err(key, count, err);
        }
    }

    /// The hottest `n` entries, ordered by `(count desc, key asc)`.
    pub fn top(&self, n: usize) -> Vec<HeatEntry> {
        let mut all: Vec<HeatEntry> = self
            .slots
            .iter()
            .map(|(&key, &(count, err))| HeatEntry { key, count, err })
            .collect();
        all.sort_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
        all.truncate(n);
        all
    }

    /// Number of keys currently monitored.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no keys are monitored.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Monitored-set capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total observed weight (saturating).
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slash_desim::DetRng;

    /// Deterministic zipf(s) sampler over keys `0..n` via inverse CDF.
    struct TestZipf {
        cdf: Vec<f64>,
    }

    impl TestZipf {
        fn new(n: usize, s: f64) -> Self {
            let mut cdf = Vec::with_capacity(n);
            let mut acc = 0.0;
            for r in 1..=n {
                acc += 1.0 / (r as f64).powf(s);
                cdf.push(acc);
            }
            let norm = acc;
            for c in &mut cdf {
                *c /= norm;
            }
            Self { cdf }
        }

        fn sample(&self, rng: &mut DetRng) -> u64 {
            let u = rng.next_u64() as f64 / u64::MAX as f64;
            match self.cdf.binary_search_by(|c| {
                c.partial_cmp(&u).unwrap_or(std::cmp::Ordering::Equal)
            }) {
                Ok(i) | Err(i) => i.min(self.cdf.len() - 1) as u64,
            }
        }
    }

    /// Acceptance: top-k is exact (keys, order, and counts) on a DetRng
    /// zipfian stream vs. brute-force counts.
    #[test]
    fn zipf_top_k_is_exact_vs_brute_force() {
        const KEYS: usize = 500;
        const SAMPLES: usize = 200_000;
        const K: usize = 8;
        let zipf = TestZipf::new(KEYS, 1.2);
        let mut rng = DetRng::new(0x4EA7);
        let mut sketch = HeatSketch::new(HEAT_CAPACITY);
        let mut brute = vec![0u64; KEYS];
        for _ in 0..SAMPLES {
            let key = zipf.sample(&mut rng);
            sketch.observe(key, 1);
            brute[key as usize] += 1;
        }
        assert_eq!(sketch.total(), SAMPLES as u64);
        assert_eq!(sketch.len(), HEAT_CAPACITY);
        let mut expected: Vec<(u64, u64)> =
            brute.iter().enumerate().map(|(k, &c)| (k as u64, c)).collect();
        expected.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let top = sketch.top(K);
        for (i, entry) in top.iter().enumerate() {
            assert_eq!(entry.key, expected[i].0, "rank {i}: wrong key");
            assert_eq!(entry.err, 0, "rank {i}: hot key should be exact");
            assert_eq!(entry.count, expected[i].1, "rank {i}: wrong count");
        }
        // Every monitored entry honours the SpaceSaving bound.
        for e in sketch.top(HEAT_CAPACITY) {
            let truth = brute[e.key as usize];
            assert!(e.count >= truth, "count is an upper bound");
            assert!(e.count - e.err <= truth, "err bounds the overestimate");
        }
    }

    #[test]
    fn eviction_charges_error_and_keeps_capacity() {
        let mut s = HeatSketch::new(2);
        s.observe(1, 10);
        s.observe(2, 5);
        s.observe(3, 1); // evicts key 2 (min count), inherits its count
        assert_eq!(s.len(), 2);
        let top = s.top(2);
        assert_eq!(top[0], HeatEntry { key: 1, count: 10, err: 0 });
        assert_eq!(top[1], HeatEntry { key: 3, count: 6, err: 5 });
        assert_eq!(s.total(), 16);
    }

    #[test]
    fn ties_break_deterministically_toward_smallest_key() {
        let mut s = HeatSketch::new(2);
        s.observe(7, 3);
        s.observe(4, 3);
        s.observe(9, 1); // tie on count 3: key 4 (smaller) is evicted
        let keys: Vec<u64> = s.top(2).iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![9, 7]); // 9 inherited count 3+1=4
    }

    #[test]
    fn top_counts_are_non_increasing() {
        let mut rng = DetRng::new(0x70C);
        let mut s = HeatSketch::new(16);
        for _ in 0..10_000 {
            s.observe(rng.next_below(100), 1 + rng.next_below(4));
        }
        let top = s.top(16);
        for w in top.windows(2) {
            assert!(w[0].count >= w[1].count, "top-k must be non-increasing");
        }
    }

    #[test]
    fn merge_preserves_bounds_vs_single_stream() {
        let mut rng = DetRng::new(0xE26);
        let mut brute = vec![0u64; 64];
        let mut a = HeatSketch::new(8);
        let mut b = HeatSketch::new(8);
        for i in 0..20_000 {
            let key = rng.next_below(64);
            brute[key as usize] += 1;
            if i % 2 == 0 {
                a.observe(key, 1);
            } else {
                b.observe(key, 1);
            }
        }
        a.merge(&b);
        assert_eq!(a.total(), 20_000);
        for e in a.top(8) {
            let truth = brute[e.key as usize];
            assert!(e.count >= truth, "merged count stays an upper bound");
            assert!(e.count - e.err <= truth, "merged err stays a bound");
        }
    }

    #[test]
    fn empty_and_zero_weight_are_inert() {
        let mut s = HeatSketch::new(4);
        assert!(s.is_empty());
        assert_eq!(s.top(4), Vec::new());
        s.observe(1, 0);
        assert!(s.is_empty());
        assert_eq!(s.total(), 0);
        assert_eq!(s.capacity(), 4);
    }
}
