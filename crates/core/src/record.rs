//! Record schemas: fixed-size binary records, as in all of the paper's
//! workloads (YSB 78 B, NEXMark 32–269 B, CM 64 B, RO 16 B).

/// Layout of one stream's records. All paper workloads use fixed-size
/// records with an 8-byte primary key and an 8-byte event-time timestamp
/// at known offsets; remaining bytes are workload-specific attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordSchema {
    /// Record size in bytes.
    pub size: usize,
    /// Byte offset of the little-endian u64 event-time timestamp.
    pub ts_off: usize,
    /// Byte offset of the little-endian u64 primary key.
    pub key_off: usize,
}

/// Read eight little-endian bytes at `off`, zero-filling past the end of
/// `rec`. Sources hand the schema whole records (`chunks_exact`), so the
/// zero-fill path only triggers on a mis-declared offset; decoding stays
/// total without a panic site on the per-record hot path.
#[inline]
fn le8(rec: &[u8], off: usize) -> [u8; 8] {
    let mut out = [0u8; 8];
    if let Some(src) = rec.get(off..off + 8) {
        out.copy_from_slice(src);
    } else {
        debug_assert!(false, "record field at {off} out of bounds");
    }
    out
}

impl RecordSchema {
    /// A schema with timestamp at 0 and key at 8 (the common layout).
    pub const fn plain(size: usize) -> Self {
        RecordSchema {
            size,
            ts_off: 0,
            key_off: 8,
        }
    }

    /// Event-time timestamp of a record.
    #[inline]
    pub fn ts(&self, rec: &[u8]) -> u64 {
        u64::from_le_bytes(le8(rec, self.ts_off))
    }

    /// Primary key of a record.
    #[inline]
    pub fn key(&self, rec: &[u8]) -> u64 {
        u64::from_le_bytes(le8(rec, self.key_off))
    }

    /// A little-endian u64 field at an arbitrary offset (aggregation
    /// inputs: prices, CPU shares, ...).
    #[inline]
    pub fn field_u64(&self, rec: &[u8], off: usize) -> u64 {
        u64::from_le_bytes(le8(rec, off))
    }

    /// An f64 field at an arbitrary offset.
    #[inline]
    pub fn field_f64(&self, rec: &[u8], off: usize) -> f64 {
        f64::from_le_bytes(le8(rec, off))
    }

    /// Number of whole records in a byte buffer.
    pub fn count(&self, buf: &[u8]) -> usize {
        debug_assert_eq!(buf.len() % self.size, 0, "torn record buffer");
        buf.len() / self.size
    }

    /// Iterate records of a buffer.
    pub fn for_each<'a>(&self, buf: &'a [u8], mut f: impl FnMut(&'a [u8])) {
        for chunk in buf.chunks_exact(self.size) {
            f(chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_access() {
        let schema = RecordSchema::plain(24);
        let mut rec = vec![0u8; 24];
        rec[0..8].copy_from_slice(&111u64.to_le_bytes());
        rec[8..16].copy_from_slice(&222u64.to_le_bytes());
        rec[16..24].copy_from_slice(&3.5f64.to_le_bytes());
        assert_eq!(schema.ts(&rec), 111);
        assert_eq!(schema.key(&rec), 222);
        assert_eq!(schema.field_f64(&rec, 16), 3.5);
        assert_eq!(schema.field_u64(&rec, 0), 111);
    }

    #[test]
    fn buffer_iteration() {
        let schema = RecordSchema::plain(16);
        let mut buf = Vec::new();
        for i in 0..5u64 {
            buf.extend_from_slice(&i.to_le_bytes());
            buf.extend_from_slice(&(i * 10).to_le_bytes());
        }
        assert_eq!(schema.count(&buf), 5);
        let mut keys = Vec::new();
        schema.for_each(&buf, |r| keys.push(schema.key(r)));
        assert_eq!(keys, vec![0, 10, 20, 30, 40]);
    }
}
