//! The shared-nothing thread-per-core backend.
//!
//! One OS thread per node. Each thread owns everything its node touches —
//! worker loop, SSB instance, delta endpoints, observability handle, and
//! a *private* [`Sim`] that provides the node's virtual-time bookkeeping
//! (cost charging, pacing, epoch instants). Nothing is shared between
//! threads except the bounded SPSC queues carrying epoch deltas, so the
//! record path takes no locks and no atomics.
//!
//! ## Why the result still matches the simulator
//!
//! Thread interleaving changes *when* deltas arrive, not *what* they
//! mean: CRDT merges commute, each channel delivers epochs FIFO with
//! consecutive ids (the same guarantee the RC fence gives the simulated
//! wire), and windows trigger on watermarks — event time, not wall or
//! virtual time. The per-node state digests and the result multiset are
//! therefore bit-identical across backends; per-node virtual clocks,
//! span traces, and completion instants are not comparable and are
//! reported as such.
//!
//! ## Wall-clock usage
//!
//! This file is the one non-bench place allowed to read the host clock
//! (see `WALLCLOCK_EXEMPT_FILES` in `slash-verify`): a node waiting on a
//! peer *thread* cannot bound the wait in virtual time, so the hang
//! watchdog must measure real elapsed time. Nothing else in the crate
//! touches the wall clock.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::{Duration, Instant};

use slash_core::{
    spawn_node_workers, EngineMetrics, NodeShared, RunReport, SinkResult,
};
use slash_desim::{Sim, SimTime};
use slash_net::spsc::{spsc_channel, SpscReceiver, SpscSender};
use slash_obs::{MetricsRegistry, Obs};
use slash_state::backend::{SsbConfig, SsbNode};
use slash_state::{DeltaReceiver, DeltaSender};

use crate::{JobSpec, Scheduler};

/// Per-thread trace-ring capacity (events). Node threads keep private
/// rings; only the metric registries are merged back.
const OBS_RING: usize = 4096;

/// Virtual-time slice a node thread advances per drive iteration before
/// re-checking completion and yielding the core.
const HORIZON: SimTime = SimTime::from_millis(10);

/// What one node thread sends back when its node completes. Everything
/// here is plain data (`Send`); the `Rc`-laden engine structures never
/// leave their thread.
struct NodeReport {
    node: usize,
    records: u64,
    last_ingest: SimTime,
    completion: SimTime,
    emitted: u64,
    total_pairs: u64,
    results: Vec<SinkResult>,
    metrics: EngineMetrics,
    state_digest: u64,
    tx_bytes: u64,
    registry: Option<MetricsRegistry>,
}

/// The thread-per-core scheduler. `cfg.nodes` determines the thread
/// count: one pinned worker loop per node (pinning is delegated to the
/// OS scheduler — with one runnable thread per core and no blocking,
/// threads settle on distinct cores; the workspace builds with no
/// affinity syscall dependency).
#[derive(Debug, Clone, Copy)]
pub struct ThreadBackend {
    /// Hang watchdog: a node thread panics (tearing the run down
    /// loudly) if its node has made no progress toward completion for
    /// this long in real time. Generous by default — the protocol owes
    /// liveness, the watchdog only converts a deadlock into a
    /// diagnosable failure instead of a silent hang.
    pub watchdog: Duration,
}

impl Default for ThreadBackend {
    fn default() -> Self {
        ThreadBackend {
            watchdog: Duration::from_secs(300),
        }
    }
}

impl ThreadBackend {
    /// A backend with the default watchdog.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for ThreadBackend {
    fn run_with_obs(&self, spec: JobSpec, obs: Obs) -> RunReport {
        let cfg = spec.cfg;
        assert_eq!(
            spec.partitions.len(),
            cfg.nodes * cfg.workers_per_node,
            "need one partition per worker"
        );
        let n = cfg.nodes;
        let obs_on = obs.is_enabled();
        let watchdog = self.watchdog;

        // Wire the full mesh of directed SPSC links up front:
        // `senders[i][j]` carries node i's deltas toward leader j.
        let mut senders: Vec<Vec<Option<SpscSender>>> = (0..n)
            .map(|_| (0..n).map(|_| None).collect())
            .collect();
        let mut receivers: Vec<Vec<(usize, SpscReceiver)>> =
            (0..n).map(|_| Vec::new()).collect();
        for (i, row) in senders.iter_mut().enumerate() {
            for (j, slot) in row.iter_mut().enumerate() {
                if i == j {
                    continue;
                }
                let (tx, rx) = spsc_channel(cfg.channel);
                *slot = Some(tx);
                receivers[j].push((i, rx));
            }
        }

        // Split the node-major partition list into per-node chunks that
        // move into their threads.
        let mut parts = spec.partitions;
        let mut per_node_parts: Vec<Vec<Vec<u8>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let rest = parts.split_off(cfg.workers_per_node.min(parts.len()));
            per_node_parts.push(parts);
            parts = rest;
        }

        let mut handles = Vec::with_capacity(n);
        for (node, (own_parts, (tx_row, rx_row))) in per_node_parts
            .into_iter()
            .zip(senders.into_iter().zip(receivers))
            .enumerate()
        {
            let factory = spec.plan.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("slash-node{node}"))
                    .spawn(move || {
                        drive_node(
                            node, cfg, factory, own_parts, tx_row, rx_row, obs_on, watchdog,
                        )
                    })
                    .unwrap_or_else(|e| panic!("spawning node thread {node}: {e}")),
            );
        }

        let mut reports: Vec<NodeReport> = handles
            .into_iter()
            .enumerate()
            .map(|(node, h)| {
                h.join()
                    .unwrap_or_else(|_| panic!("node thread {node} panicked"))
            })
            .collect();
        reports.sort_by_key(|r| r.node);
        assemble(reports, &obs)
    }
}

/// Body of one node thread: build the node's private engine stack, drive
/// its simulator until the completion protocol fires, ship back a
/// [`NodeReport`].
#[allow(clippy::too_many_arguments)]
fn drive_node(
    node: usize,
    cfg: slash_core::RunConfig,
    factory: crate::PlanFactory,
    own_parts: Vec<Vec<u8>>,
    tx_row: Vec<Option<SpscSender>>,
    rx_row: Vec<(usize, SpscReceiver)>,
    obs_on: bool,
    watchdog: Duration,
) -> NodeReport {
    let plan = Rc::new((factory)());
    let schema = plan.input().schema;
    let ssb_cfg = SsbConfig {
        nodes: cfg.nodes,
        epoch_bytes: cfg.epoch_bytes,
        channel: cfg.channel,
    };
    let mut ssb = SsbNode::detached(node, plan.descriptor(), ssb_cfg);
    for (leader, tx) in tx_row.into_iter().enumerate() {
        if let Some(tx) = tx {
            ssb.replace_sender(leader, DeltaSender::over_spsc(tx));
        }
    }
    for (helper, rx) in rx_row {
        ssb.replace_receiver(helper, DeltaReceiver::over_spsc(rx, helper));
    }

    let obs = if obs_on {
        Obs::enabled(OBS_RING)
    } else {
        Obs::disabled()
    };
    let shared = Rc::new(RefCell::new(NodeShared::new(
        ssb,
        cfg.workers_per_node,
        cfg.cost.mem_bandwidth,
        cfg.collect_results,
    )));
    {
        let mut sh = shared.borrow_mut();
        sh.metrics.set_clock_ghz(cfg.cost.clock_ghz);
        if obs.is_enabled() {
            sh.instrument(obs.clone(), node);
        }
    }

    // `spawn_node_workers` indexes partitions node-major across the whole
    // cluster; pad the prefix so this node's slots land where it looks.
    let mut padded: Vec<Rc<Vec<u8>>> = (0..node * cfg.workers_per_node)
        .map(|_| Rc::new(Vec::new()))
        .collect();
    padded.extend(own_parts.into_iter().map(Rc::new));

    let mut sim = Sim::new();
    spawn_node_workers(&mut sim, node, &shared, &padded, schema, &plan, &cfg, None);

    // Drive until the trigger worker observes cluster-wide completion.
    // No virtual-time budget here: a node waiting on a peer *thread*
    // races through virtual time at poll speed, so only the wall clock
    // bounds a genuine hang. Progress resets the watchdog.
    let mut last_progress = Instant::now();
    let mut last_records = 0u64;
    loop {
        {
            let sh = shared.borrow();
            if sh.finished {
                break;
            }
            if sh.records != last_records {
                last_records = sh.records;
                last_progress = Instant::now();
            }
        }
        assert!(
            sim.pending_events() > 0,
            "node {node} quiesced before completing (worker wiring bug)"
        );
        assert!(
            last_progress.elapsed() < watchdog,
            "node {node} made no progress for {watchdog:?} — \
             completion protocol deadlock or a stuck peer thread"
        );
        let horizon = sim.now() + HORIZON;
        sim.run_until(horizon);
        // One runnable thread per core is the design point, but on
        // smaller hosts (and while draining at end-of-stream) ceding the
        // core lets peers flush the epochs this node is waiting for.
        std::thread::yield_now();
    }
    let completion = sim.now();

    let sh = shared.borrow();
    if obs.is_enabled() {
        let label = format!("node{node}");
        obs.counter_add("records", &label, sh.records);
        obs.counter_add("instructions", &label, sh.metrics.instructions);
        obs.counter_add("mem_bytes", &label, sh.metrics.mem_bytes);
        obs.counter_add("combiner_folds", &label, sh.metrics.combiner_folds);
        obs.counter_add("combiner_flushes", &label, sh.metrics.combiner_flushes);
        obs.counter_add("state_updates", &label, sh.metrics.state_updates);
        obs.gauge_set("ipc", &label, sh.metrics.ipc());
        sh.ssb.publish_obs();
    }
    NodeReport {
        node,
        records: sh.records,
        last_ingest: sh.last_ingest,
        completion,
        emitted: sh.sink.emitted,
        total_pairs: sh.sink.total_pairs,
        results: sh.sink.results.clone(),
        metrics: sh.metrics.clone(),
        state_digest: sh.ssb.state_digest(),
        tx_bytes: sh.ssb.tx_payload_bytes(),
        registry: obs.registry_snapshot(),
    }
}

/// Fold per-node reports into the same [`RunReport`] shape the simulator
/// produces. Virtual times are per-node maxima (each node has its own
/// clock); byte counts come from the SPSC links instead of the fabric.
fn assemble(reports: Vec<NodeReport>, obs: &Obs) -> RunReport {
    let mut report = RunReport {
        records: 0,
        processing_time: SimTime::ZERO,
        completion_time: SimTime::ZERO,
        emitted: 0,
        total_pairs: 0,
        results: Vec::new(),
        metrics: EngineMetrics::default(),
        per_node: Vec::new(),
        state_digests: Vec::new(),
        net_tx_bytes: 0,
    };
    for r in reports {
        report.records += r.records;
        report.processing_time = report.processing_time.max(r.last_ingest);
        report.completion_time = report.completion_time.max(r.completion);
        report.emitted += r.emitted;
        report.total_pairs += r.total_pairs;
        report.results.extend(r.results);
        report.metrics.absorb(&r.metrics);
        report.per_node.push(r.metrics);
        report.state_digests.push(r.state_digest);
        report.net_tx_bytes += r.tx_bytes;
        if let Some(reg) = &r.registry {
            obs.absorb_registry(reg);
        }
    }
    if obs.is_enabled() {
        obs.counter_add("net_tx_bytes", "fabric", report.net_tx_bytes);
    }
    report.metrics.set_records(report.records);
    report
}
