//! Benches of the experiment kernels themselves — one bench per paper
//! artifact, at reduced scale. `cargo bench` therefore re-exercises every
//! figure/table code path and tracks regressions in the simulation's
//! host-side performance; the `repro` binary produces the full tables.
//! Runs on the self-contained `slash_bench::harness` (fully offline).

use slash_bench::harness::{black_box, Harness};
use slash_bench::micro::{run_micro, MicroConfig, RouteMode};
use slash_bench::{fig6, fig7, fig8, fig9, Scale};

fn bench_scale() -> Scale {
    Scale {
        workers: 2,
        records: 4_000,
    }
}

fn bench_fig6(h: &mut Harness) {
    for query in ["ysb", "cm", "nb7", "nb8", "nb11"] {
        h.bench(&format!("fig6/{query}"), || {
            black_box(fig6::run(query, bench_scale(), &[2]));
        });
    }
}

fn bench_fig7(h: &mut Harness) {
    h.bench("fig7/cost_ysb", || {
        black_box(fig7::run("ysb", bench_scale(), &[2]));
    });
}

fn bench_fig8(h: &mut Harness) {
    h.bench("fig8/channel_direct_64k", || {
        let mut cfg = MicroConfig::new(RouteMode::Direct, 2);
        cfg.records_per_thread = 20_000;
        black_box(run_micro(cfg));
    });
    h.bench("fig8/channel_fanout_64k", || {
        let mut cfg = MicroConfig::new(RouteMode::HashFanout, 2);
        cfg.records_per_thread = 20_000;
        black_box(run_micro(cfg));
    });
    h.bench("fig8/skew_point", || {
        black_box(fig8::run_skew_sweep(bench_scale(), &[1.0]));
    });
}

fn bench_fig9(h: &mut Harness) {
    h.bench("fig9_10_table1/breakdown_ro", || {
        black_box(fig9::run_fig9(bench_scale()));
    });
    h.bench("fig9_10_table1/table1_ysb", || {
        black_box(fig9::run_table1(bench_scale()));
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_fig6(&mut h);
    bench_fig7(&mut h);
    bench_fig8(&mut h);
    bench_fig9(&mut h);
}
