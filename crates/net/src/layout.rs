//! Slot and footer layout of the RDMA channel's circular queue.
//!
//! ```text
//! slot k (size m):
//! +--------------------------+-----------------+----------------+
//! | padding (m-16-len bytes) | payload (len B) | footer (16 B)  |
//! +--------------------------+-----------------+----------------+
//!                                               ^ len | seq | flags | gen
//! ```
//!
//! The footer sits at the *end* of the slot and the payload is
//! right-aligned against it, so one contiguous `RDMA WRITE` of
//! `len + 16` bytes moves both. The consumer polls the last footer byte
//! (`gen`); because WRITEs land low-to-high, observing the expected
//! generation implies the payload is complete (paper §6.3, "message
//! layout").

/// Footer size in bytes.
pub const FOOTER_SIZE: usize = 16;

/// Message kind / control flags carried in the footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgFlags(pub u16);

impl MsgFlags {
    /// Ordinary data buffer.
    pub const DATA: MsgFlags = MsgFlags(1);
    /// End of stream: the producer will send nothing further.
    pub const EOS: MsgFlags = MsgFlags(1 << 1);
    /// Epoch synchronization token (paper §7.2.2). The payload carries the
    /// epoch number and the sender's low watermark.
    pub const EPOCH: MsgFlags = MsgFlags(1 << 2);
    /// Watermark-only progress message.
    pub const WATERMARK: MsgFlags = MsgFlags(1 << 3);
    /// State-delta chunk (SSB coherence traffic).
    pub const STATE_DELTA: MsgFlags = MsgFlags(1 << 4);

    /// Whether all bits of `other` are set in `self`.
    #[inline]
    pub fn contains(self, other: MsgFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    #[inline]
    pub fn union(self, other: MsgFlags) -> MsgFlags {
        MsgFlags(self.0 | other.0)
    }
}

/// Decoded footer of a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footer {
    /// Payload length in bytes.
    pub len: u32,
    /// Low 32 bits of the message sequence number (debugging/assertions).
    pub seq32: u32,
    /// Message flags.
    pub flags: MsgFlags,
    /// Wrap generation; the poll byte.
    pub gen: u8,
}

impl Footer {
    /// Encode into a 16-byte array.
    pub fn encode(&self) -> [u8; FOOTER_SIZE] {
        let mut f = [0u8; FOOTER_SIZE];
        f[0..4].copy_from_slice(&self.len.to_le_bytes());
        f[4..8].copy_from_slice(&self.seq32.to_le_bytes());
        f[8..10].copy_from_slice(&self.flags.0.to_le_bytes());
        // f[10..15] reserved.
        f[15] = self.gen;
        f
    }

    /// Decode from a 16-byte slice.
    pub fn decode(bytes: &[u8]) -> Footer {
        debug_assert_eq!(bytes.len(), FOOTER_SIZE);
        Footer {
            len: u32::from_le_bytes(le_bytes(bytes, 0)),
            seq32: u32::from_le_bytes(le_bytes(bytes, 4)),
            flags: MsgFlags(u16::from_le_bytes(le_bytes(bytes, 8))),
            gen: bytes.get(15).copied().unwrap_or(0),
        }
    }
}

/// Copy `N` little-endian bytes starting at `at`, zero-filling past the end
/// of `bytes` so footer decoding is total (the slot layout guarantees 16
/// bytes; short reads only happen on corrupt input).
fn le_bytes<const N: usize>(bytes: &[u8], at: usize) -> [u8; N] {
    let mut out = [0u8; N];
    for (i, dst) in out.iter_mut().enumerate() {
        if let Some(b) = bytes.get(at + i) {
            *dst = *b;
        }
    }
    out
}

/// The generation (poll byte) for sequence number `seq` on a queue of `c`
/// slots. Nonzero so a freshly zeroed queue never looks ready, and cycling
/// with period 255 so a slot's previous content can never alias the next
/// expected generation.
#[inline]
pub fn generation(seq: u64, credits: usize) -> u8 {
    // `% 255` bounds the value to 0..=254, so +1 fits u8 exactly.
    ((seq / credits as u64) % 255) as u8 + 1 // lint:ok(no-truncating-cast)
}

/// Byte offset of slot `k`'s start within the ring region.
#[inline]
pub fn slot_offset(slot: usize, buf_size: usize) -> usize {
    slot * buf_size
}

/// Byte offset of slot `k`'s footer within the ring region.
#[inline]
pub fn footer_offset(slot: usize, buf_size: usize) -> usize {
    slot_offset(slot, buf_size) + buf_size - FOOTER_SIZE
}

/// Maximum payload a slot of `buf_size` bytes can carry.
#[inline]
pub fn payload_capacity(buf_size: usize) -> usize {
    buf_size - FOOTER_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footer_roundtrip() {
        let f = Footer {
            len: 4096,
            seq32: 0xDEAD_BEEF,
            flags: MsgFlags::DATA.union(MsgFlags::EPOCH),
            gen: 7,
        };
        let enc = f.encode();
        assert_eq!(Footer::decode(&enc), f);
        assert_eq!(enc[15], 7, "poll byte must be the final byte");
    }

    #[test]
    fn flags_ops() {
        let f = MsgFlags::DATA.union(MsgFlags::EOS);
        assert!(f.contains(MsgFlags::DATA));
        assert!(f.contains(MsgFlags::EOS));
        assert!(!f.contains(MsgFlags::EPOCH));
    }

    #[test]
    fn generation_cycles_and_is_nonzero() {
        let c = 8;
        // First wrap uses generation 1.
        for seq in 0..8u64 {
            assert_eq!(generation(seq, c), 1);
        }
        for seq in 8..16u64 {
            assert_eq!(generation(seq, c), 2);
        }
        // Never zero, even after many wraps.
        for wrap in 0..1000u64 {
            let g = generation(wrap * c as u64, c);
            assert!(g >= 1);
        }
        // Adjacent wraps always differ.
        for wrap in 0..1000u64 {
            let g1 = generation(wrap * c as u64, c);
            let g2 = generation((wrap + 1) * c as u64, c);
            assert_ne!(g1, g2);
        }
    }

    #[test]
    fn offsets() {
        let m = 1024;
        assert_eq!(slot_offset(0, m), 0);
        assert_eq!(slot_offset(3, m), 3072);
        assert_eq!(footer_offset(0, m), 1008);
        assert_eq!(payload_capacity(m), 1008);
    }
}
