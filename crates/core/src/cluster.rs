//! The virtual cluster driver: wires fabric, SSB, workers; runs a query
//! end to end; reports throughput and counters.

use std::cell::RefCell;
use std::rc::Rc;

use slash_desim::{Sim, SimTime};
use slash_net::ChannelConfig;
use slash_obs::Obs;
use slash_rdma::{Fabric, FabricConfig};
use slash_state::backend::{build_cluster_obs, SsbConfig};

use crate::cost::CostModel;
use crate::metrics::EngineMetrics;
use crate::query::QueryPlan;
use crate::sink::SinkResult;
use crate::source::MemorySource;
use crate::worker::{NodeShared, SlashWorker};

/// Cluster/run configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Executor nodes.
    pub nodes: usize,
    /// Worker threads per node (the paper uses 10).
    pub workers_per_node: usize,
    /// Cost model.
    pub cost: CostModel,
    /// Fabric (NIC) configuration.
    pub fabric: FabricConfig,
    /// Delta-channel configuration.
    pub channel: ChannelConfig,
    /// Epoch size in state-update bytes (paper default: 64 MiB).
    pub epoch_bytes: u64,
    /// Records per scheduling batch.
    pub batch_records: usize,
    /// Enable the batch-vectorized hot path: write-combining
    /// pre-aggregation for combinable CRDTs and batched join appends.
    /// Results are identical either way (the combiner only activates for
    /// exactly-associative states); off reproduces the per-record path.
    pub combine: bool,
    /// Write-combiner capacity in slots (rounded up to a power of two;
    /// 1024 × 8-byte values stays comfortably L1-resident).
    pub combiner_slots: usize,
    /// Retain full results (tests) or just count them (benchmarks).
    pub collect_results: bool,
    /// Per-source arrival-rate curve (records/second of virtual time).
    /// `None` streams the pre-generated dataset at full speed; `Some`
    /// releases records over virtual time — the load model behind the
    /// elastic-rescaling scenarios. Applies to every worker's source,
    /// including respawns after promotion or handoff.
    pub pacing: Option<crate::source::RateCurve>,
    /// Safety valve: abort if virtual time exceeds this.
    pub max_virtual_time: SimTime,
}

impl RunConfig {
    /// Sensible defaults for `nodes × workers` executors.
    pub fn new(nodes: usize, workers_per_node: usize) -> Self {
        RunConfig {
            nodes,
            workers_per_node,
            cost: CostModel::default(),
            fabric: FabricConfig::default(),
            channel: ChannelConfig::default(),
            epoch_bytes: 64 * 1024 * 1024,
            batch_records: 512,
            combine: true,
            combiner_slots: 1024,
            collect_results: false,
            pacing: None,
            max_virtual_time: SimTime::from_secs(3600),
        }
    }
}

/// Outcome of one end-to-end run.
#[derive(Debug)]
pub struct RunReport {
    /// Source records processed across the cluster.
    pub records: u64,
    /// Virtual time at which the last node finished ingesting.
    pub processing_time: SimTime,
    /// Virtual time at which everything (merge + trigger) completed.
    pub completion_time: SimTime,
    /// Results emitted.
    pub emitted: u64,
    /// Join pairs across all results.
    pub total_pairs: u64,
    /// Collected results (when configured).
    pub results: Vec<SinkResult>,
    /// Aggregated engine counters.
    pub metrics: EngineMetrics,
    /// Per-node engine counters.
    pub per_node: Vec<EngineMetrics>,
    /// Per-node primary-partition state digests (order-independent fold
    /// over sorted keys) — lets tests compare end state across runs
    /// without draining it.
    pub state_digests: Vec<u64>,
    /// Bytes the fabric moved (all nodes, TX side).
    pub net_tx_bytes: u64,
}

impl RunReport {
    /// Sustained processing throughput, records/second of virtual time.
    pub fn throughput(&self) -> f64 {
        if self.processing_time == SimTime::ZERO {
            return 0.0;
        }
        self.records as f64 / self.processing_time.as_secs_f64()
    }
}

/// The Slash virtual cluster.
pub struct SlashCluster;

impl SlashCluster {
    /// Run `plan` over pre-generated input partitions (one per worker,
    /// node-major order: `partitions[node * workers + worker]`).
    pub fn run(plan: QueryPlan, partitions: Vec<Rc<Vec<u8>>>, cfg: RunConfig) -> RunReport {
        Self::run_with_obs(plan, partitions, cfg, Obs::disabled())
    }

    /// Like [`SlashCluster::run`], threading an observability handle
    /// through every node: workers emit batch spans and record-latency
    /// samples, delta channels trace verbs and epoch phases, and the final
    /// per-node counters are published into the metrics registry.
    pub fn run_with_obs(
        plan: QueryPlan,
        partitions: Vec<Rc<Vec<u8>>>,
        cfg: RunConfig,
        obs: Obs,
    ) -> RunReport {
        assert_eq!(
            partitions.len(),
            cfg.nodes * cfg.workers_per_node,
            "need one partition per worker"
        );
        let mut sim = Sim::new();
        let fabric = Fabric::new(cfg.fabric);
        let node_ids = fabric.add_nodes(cfg.nodes);
        let ssb_cfg = SsbConfig {
            nodes: cfg.nodes,
            epoch_bytes: cfg.epoch_bytes,
            channel: cfg.channel,
        };
        let ssb_nodes =
            build_cluster_obs(&fabric, &node_ids, plan.descriptor(), ssb_cfg, obs.clone());

        let plan = Rc::new(plan);
        let schema = plan.input().schema;
        let mut shareds = Vec::with_capacity(cfg.nodes);
        for (node, ssb) in ssb_nodes.into_iter().enumerate() {
            let shared = Rc::new(RefCell::new(NodeShared::new(
                ssb,
                cfg.workers_per_node,
                cfg.cost.mem_bandwidth,
                cfg.collect_results,
            )));
            {
                let mut sh = shared.borrow_mut();
                sh.metrics.set_clock_ghz(cfg.cost.clock_ghz);
                if obs.is_enabled() {
                    sh.instrument(obs.clone(), node);
                }
            }
            spawn_node_workers(&mut sim, node, &shared, &partitions, schema, &plan, &cfg, None);
            shareds.push(shared);
        }

        // Drive until every node declares completion.
        loop {
            if shareds.iter().all(|s| s.borrow().finished) {
                break;
            }
            assert!(
                sim.now() <= cfg.max_virtual_time,
                "query did not complete within the virtual-time budget \
                 (possible protocol livelock)"
            );
            assert!(
                sim.pending_events() > 0,
                "simulation quiesced before the query completed (deadlock)"
            );
            let horizon = sim.now() + SimTime::from_millis(10);
            sim.run_until(horizon);
        }
        let completion_time = sim.now();
        assemble_report(&shareds, &fabric, &obs, completion_time)
    }
}

/// Spawn (or respawn) every worker of `node` against its partitions. Used
/// by the fault-free driver, the chaos driver, promotion, and the
/// threaded executor (`slash-exec`): a promoted node resurrects *all* of
/// its worker partitions through this one path, with `resume_pos` seeking
/// each worker's source to its checkpointed byte position (fresh starts
/// pass `None`). The threaded backend calls it once per node against that
/// node's private `Sim`, so the exact same worker code runs under both
/// schedulers.
#[allow(clippy::too_many_arguments)]
pub fn spawn_node_workers(
    sim: &mut Sim,
    node: usize,
    shared: &Rc<RefCell<NodeShared>>,
    partitions: &[Rc<Vec<u8>>],
    schema: crate::record::RecordSchema,
    plan: &Rc<QueryPlan>,
    cfg: &RunConfig,
    resume_pos: Option<&[usize]>,
) {
    for w in 0..cfg.workers_per_node {
        let part = Rc::clone(&partitions[node * cfg.workers_per_node + w]);
        let mut source = MemorySource::new(part, schema, cfg.batch_records);
        if let Some(curve) = cfg.pacing {
            source.set_pacing(curve);
        }
        if let Some(pos) = resume_pos {
            source.seek(pos[w]);
        }
        sim.spawn(SlashWorker::new(
            node,
            w,
            Rc::clone(shared),
            source,
            Rc::clone(plan),
            cfg.cost,
            cfg.combine,
            cfg.combiner_slots,
        ));
    }
}

/// Assemble a [`RunReport`] from the per-node shared state (used by both
/// the fault-free driver and the chaos driver in [`crate::recovery`]).
pub(crate) fn assemble_report(
    shareds: &[Rc<RefCell<NodeShared>>],
    fabric: &Fabric,
    obs: &Obs,
    completion_time: SimTime,
) -> RunReport {
    let mut report = RunReport {
        records: 0,
        processing_time: SimTime::ZERO,
        completion_time,
        emitted: 0,
        total_pairs: 0,
        results: Vec::new(),
        metrics: EngineMetrics::default(),
        per_node: Vec::new(),
        state_digests: Vec::new(),
        net_tx_bytes: fabric.total_tx_bytes(),
    };
    for (node, shared) in shareds.iter().enumerate() {
        let sh = shared.borrow();
        report.records += sh.records;
        report.processing_time = report.processing_time.max(sh.last_ingest);
        report.emitted += sh.sink.emitted;
        report.total_pairs += sh.sink.total_pairs;
        report.results.extend(sh.sink.results.iter().cloned());
        report.metrics.absorb(&sh.metrics);
        report.per_node.push(sh.metrics.clone());
        report.state_digests.push(sh.ssb.state_digest());
        if obs.is_enabled() {
            let label = format!("node{node}");
            obs.counter_add("records", &label, sh.records);
            obs.counter_add("instructions", &label, sh.metrics.instructions);
            obs.counter_add("mem_bytes", &label, sh.metrics.mem_bytes);
            obs.counter_add("combiner_folds", &label, sh.metrics.combiner_folds);
            obs.counter_add("combiner_flushes", &label, sh.metrics.combiner_flushes);
            obs.counter_add("state_updates", &label, sh.metrics.state_updates);
            obs.gauge_set("ipc", &label, sh.metrics.ipc());
            sh.ssb.publish_obs();
        }
    }
    if obs.is_enabled() {
        obs.counter_add("net_tx_bytes", "fabric", report.net_tx_bytes);
    }
    report.metrics.set_records(report.records);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggSpec;
    use crate::query::StreamDef;
    use crate::record::RecordSchema;
    use crate::window::WindowAssigner;

    /// Generate `n` records of (ts, key): ts increments by `dt`, keys
    /// round-robin over `keys`.
    fn gen(n: u64, dt: u64, keys: u64, start_ts: u64) -> Rc<Vec<u8>> {
        let mut buf = Vec::with_capacity((n * 16) as usize);
        for i in 0..n {
            buf.extend_from_slice(&(start_ts + i * dt).to_le_bytes());
            buf.extend_from_slice(&(i % keys).to_le_bytes());
        }
        Rc::new(buf)
    }

    fn count_plan(window: u64) -> QueryPlan {
        QueryPlan::Aggregate {
            input: StreamDef::new(RecordSchema::plain(16)),
            window: WindowAssigner::Tumbling { size: window },
            agg: AggSpec::Count,
        }
    }

    #[test]
    fn single_node_single_worker_counts_correctly() {
        let mut cfg = RunConfig::new(1, 1);
        cfg.collect_results = true;
        cfg.epoch_bytes = 4096;
        let report = SlashCluster::run(count_plan(100), vec![gen(1000, 1, 4, 0)], cfg);
        assert_eq!(report.records, 1000);
        // 1000 records, ts 0..999, windows of 100 → 10 windows × 4 keys.
        assert_eq!(report.emitted, 40);
        let total: f64 = report
            .results
            .iter()
            .map(|r| match r {
                SinkResult::Agg { value, .. } => *value,
                _ => 0.0,
            })
            .sum();
        assert_eq!(total as u64, 1000);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn multi_node_counts_match_sequential_semantics() {
        let n_nodes = 3;
        let workers = 2;
        let mut cfg = RunConfig::new(n_nodes, workers);
        cfg.collect_results = true;
        cfg.epoch_bytes = 2048;
        // Same key space across all partitions: state is genuinely shared.
        let partitions: Vec<Rc<Vec<u8>>> = (0..n_nodes * workers)
            .map(|_| gen(500, 2, 8, 0))
            .collect();
        let report = SlashCluster::run(count_plan(200), partitions, cfg);
        assert_eq!(report.records, 6 * 500);
        // ts span 0..1000 step 2 → windows 0..4 (5 windows) × 8 keys.
        assert_eq!(report.emitted, 5 * 8);
        // Every window×key count: 500 records per partition spread over
        // 5 windows × 8 keys = 12.5 → 100 per window per... per partition:
        // each window has 100 records, split over 8 keys round-robin.
        // Just check the grand total.
        let total: f64 = report
            .results
            .iter()
            .map(|r| match r {
                SinkResult::Agg { value, .. } => *value,
                _ => 0.0,
            })
            .sum();
        assert_eq!(total as u64, 6 * 500);
        assert!(report.net_tx_bytes > 0, "state deltas must cross the wire");
    }

    #[test]
    fn windows_never_fire_early_or_twice() {
        let mut cfg = RunConfig::new(2, 1);
        cfg.collect_results = true;
        cfg.epoch_bytes = 1024;
        let partitions = vec![gen(400, 5, 4, 0), gen(400, 5, 4, 0)];
        let report = SlashCluster::run(count_plan(500), partitions, cfg);
        // Each (window, key) appears exactly once.
        let mut seen = std::collections::HashSet::new();
        for r in &report.results {
            if let SinkResult::Agg { window_id, key, .. } = r {
                assert!(seen.insert((*window_id, *key)), "duplicate trigger");
            }
        }
        assert_eq!(report.emitted as usize, seen.len());
    }

    #[test]
    fn join_pairs_match_expectation() {
        // Unified join records: [ts, key, side, pad] = 32 bytes.
        let schema_size = 32;
        let mk = |n: u64, side: u64| -> Vec<u8> {
            let mut buf = Vec::new();
            for i in 0..n {
                buf.extend_from_slice(&(i * 10).to_le_bytes());
                buf.extend_from_slice(&(i % 2).to_le_bytes()); // 2 keys
                buf.extend_from_slice(&side.to_le_bytes());
                buf.extend_from_slice(&0u64.to_le_bytes());
            }
            buf
        };
        // Node 0 streams lefts, node 1 streams rights; same keys and ts.
        let plan = QueryPlan::Join {
            input: StreamDef::new(RecordSchema::plain(schema_size)),
            side_off: 16,
            window: WindowAssigner::Tumbling { size: 1_000_000 },
            retain_bytes: 16,
        };
        let mut cfg = RunConfig::new(2, 1);
        cfg.collect_results = true;
        let report = SlashCluster::run(
            plan,
            vec![Rc::new(mk(10, 0)), Rc::new(mk(10, 1))],
            cfg,
        );
        // One window; per key: 5 lefts × 5 rights = 25 pairs, 2 keys.
        assert_eq!(report.total_pairs, 50);
        assert_eq!(report.emitted, 2);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut cfg = RunConfig::new(2, 2);
            cfg.epoch_bytes = 4096;
            let partitions: Vec<Rc<Vec<u8>>> =
                (0..4).map(|_| gen(300, 3, 16, 0)).collect();
            let r = SlashCluster::run(count_plan(100), partitions, cfg);
            (r.records, r.emitted, r.completion_time, r.net_tx_bytes)
        };
        assert_eq!(run(), run(), "virtual-time runs must be bit-identical");
    }
}
