//! # slash-obs — deterministic observability for the Slash engine
//!
//! Zero-dependency tracing, metrics, and flight recording, all keyed on
//! the desim virtual clock. The crate provides:
//!
//! * [`trace`] — typed spans/instants for operator pipelines, RDMA channel
//!   verbs, epoch-coherence phases, and [`Stage`]-segmented latency
//!   attribution, in a bounded O(1) ring buffer;
//! * [`hist`] — an HDR-style log-bucketed [`Histogram`] for tail-latency
//!   metrics (p50/p90/p99/p99.9/p99.99) with bounded relative error;
//! * [`heat`] — a SpaceSaving top-k [`HeatSketch`] for per-key load
//!   telemetry (the feed for rescaling / key-splitting controllers);
//! * [`registry`] — a central [`MetricsRegistry`] of counters, gauges,
//!   histograms, and heat sketches labeled by node/operator/channel;
//! * [`export`] — Chrome trace-event JSON (Perfetto) and the `slash-top`
//!   text summary;
//! * [`flight`] — a flight recorder that snapshots the last N events with
//!   schedule-fingerprint, vector-clock context, and a full registry
//!   snapshot on invariant failures.
//!
//! Determinism rules: no wall clock anywhere, timestamps are [`SimTime`]
//! only, registry iteration is `BTreeMap`-ordered, and exports sort by
//! `(virtual time, sequence)` — so the same seed produces byte-identical
//! artifacts.
//!
//! The entry point is the [`Obs`] handle: a cheaply cloneable reference
//! that is either *enabled* (shared ring + registry + dump store) or
//! *disabled* (every call is a no-op and nothing allocates). Engine code
//! takes an `Obs` unconditionally and never branches on configuration.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod export;
pub mod flight;
pub mod heat;
pub mod hist;
pub mod registry;
pub mod trace;

pub use flight::{FlightDump, FLIGHT_TAIL};
pub use heat::{HeatEntry, HeatSketch, HEAT_CAPACITY};
pub use hist::Histogram;
pub use registry::MetricsRegistry;
pub use trace::{Cat, Stage, TraceEvent, TraceRing};

use slash_desim::SimTime;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Registry histogram name holding per-stage latency attribution.
pub const STAGE_HIST: &str = "stage_latency_ns";

struct ObsInner {
    ring: RefCell<TraceRing>,
    registry: RefCell<MetricsRegistry>,
    dumps: RefCell<Vec<FlightDump>>,
    /// Stage spans opened but not yet closed, keyed `(stage, pid, tid)`.
    /// BTreeMap keeps drain order deterministic.
    opens: RefCell<BTreeMap<(u8, u32, u32), SimTime>>,
}

/// Shared observability handle threaded through the engine.
///
/// Cloning is O(1) (an `Rc` bump, or nothing when disabled). All methods
/// on a disabled handle are no-ops, so instrumented code pays only a
/// branch when tracing is off.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Rc<ObsInner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Obs {
    /// A disabled handle: every call is a no-op.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled handle with a trace ring of `capacity` events.
    pub fn enabled(capacity: usize) -> Self {
        Self {
            inner: Some(Rc::new(ObsInner {
                ring: RefCell::new(TraceRing::new(capacity)),
                registry: RefCell::new(MetricsRegistry::new()),
                dumps: RefCell::new(Vec::new()),
                opens: RefCell::new(BTreeMap::new()),
            })),
        }
    }

    /// Whether tracing is live.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record an instant event at virtual time `at`.
    pub fn instant(
        &self,
        cat: Cat,
        name: &'static str,
        pid: u32,
        tid: u32,
        at: SimTime,
        args: &[(&'static str, u64)],
    ) {
        if let Some(inner) = &self.inner {
            inner.ring.borrow_mut().record(cat, name, pid, tid, at, 0, args);
        }
    }

    /// Record a complete span from `start` to `end` (clamped non-negative).
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        cat: Cat,
        name: &'static str,
        pid: u32,
        tid: u32,
        start: SimTime,
        end: SimTime,
        args: &[(&'static str, u64)],
    ) {
        if let Some(inner) = &self.inner {
            let dur = end.as_nanos().saturating_sub(start.as_nanos()).max(1);
            inner
                .ring
                .borrow_mut()
                .record(cat, name, pid, tid, start, dur, args);
        }
    }

    /// Open a [`Stage`] latency span on lane `(pid, tid)` at virtual time
    /// `at`. Must be matched by a [`span_close`](Self::span_close) with
    /// the same stage and lane — the `latency-span-pairs` lint enforces
    /// the pairing statically in instrumented crates. Re-opening an
    /// already-open span moves its start (the earlier open is dropped).
    pub fn span_open(&self, stage: Stage, pid: u32, tid: u32, at: SimTime) {
        if let Some(inner) = &self.inner {
            inner.opens.borrow_mut().insert((stage as u8, pid, tid), at);
        }
    }

    /// Close the matching open [`Stage`] span at virtual time `at`.
    ///
    /// Emits a `Cat::Stage` trace span and records the duration divided
    /// by `units` (e.g. records in the batch, min 1) into the per-stage
    /// [`STAGE_HIST`] histogram labeled `stage.name()`. A close without a
    /// matching open increments the `span_mismatch` counter instead of
    /// failing: attribution must never take the engine down.
    pub fn span_close(&self, stage: Stage, pid: u32, tid: u32, at: SimTime, units: u64) {
        if let Some(inner) = &self.inner {
            let open = inner.opens.borrow_mut().remove(&(stage as u8, pid, tid));
            match open {
                Some(start) => {
                    let dur = at.as_nanos().saturating_sub(start.as_nanos());
                    inner.ring.borrow_mut().record(
                        Cat::Stage,
                        stage.name(),
                        pid,
                        tid,
                        start,
                        dur.max(1),
                        &[("units", units)],
                    );
                    inner.registry.borrow_mut().hist_record(
                        STAGE_HIST,
                        stage.name(),
                        dur / units.max(1),
                    );
                }
                None => {
                    inner
                        .registry
                        .borrow_mut()
                        .counter_add("span_mismatch", stage.name(), 1);
                }
            }
        }
    }

    /// Number of stage spans currently open (test/diagnostic hook: a
    /// clean run ends with zero).
    pub fn open_span_count(&self) -> usize {
        self.inner
            .as_ref()
            .map(|inner| inner.opens.borrow().len())
            .unwrap_or(0)
    }

    /// Add to a registry counter.
    pub fn counter_add(&self, name: &str, label: &str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.borrow_mut().counter_add(name, label, v);
        }
    }

    /// Set a registry gauge.
    pub fn gauge_set(&self, name: &str, label: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.borrow_mut().gauge_set(name, label, v);
        }
    }

    /// Record one value into a registry histogram.
    pub fn hist_record(&self, name: &str, label: &str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.borrow_mut().hist_record(name, label, v);
        }
    }

    /// Merge a histogram into a registry histogram.
    pub fn hist_merge(&self, name: &str, label: &str, h: &Histogram) {
        if let Some(inner) = &self.inner {
            inner.registry.borrow_mut().hist_merge(name, label, h);
        }
    }

    /// Record `weight` observations of key `k` into a registry heat sketch.
    pub fn heat_observe(&self, name: &str, label: &str, k: u64, weight: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.borrow_mut().heat_observe(name, label, k, weight);
        }
    }

    /// Merge a locally-accumulated heat sketch into the registry.
    pub fn heat_merge(&self, name: &str, label: &str, sketch: &HeatSketch) {
        if let Some(inner) = &self.inner {
            inner.registry.borrow_mut().heat_merge(name, label, sketch);
        }
    }

    /// The hottest `n` entries of a registry heat sketch.
    pub fn heat_top(&self, name: &str, label: &str, n: usize) -> Vec<HeatEntry> {
        self.inner
            .as_ref()
            .map(|inner| inner.registry.borrow().heat_top(name, label, n))
            .unwrap_or_default()
    }

    /// Quantile of a registry histogram, if present.
    pub fn quantile(&self, name: &str, label: &str, q: f64) -> Option<u64> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.registry.borrow().quantile(name, label, q))
    }

    /// Run `f` against the registry (read-only snapshot access).
    pub fn with_registry<R>(&self, f: impl FnOnce(&MetricsRegistry) -> R) -> Option<R> {
        self.inner.as_ref().map(|inner| f(&inner.registry.borrow()))
    }

    /// Clone the registry contents. The threaded executor calls this on a
    /// worker thread's private handle when its node completes, then ships
    /// the (Send) snapshot to the driver for [`Obs::absorb_registry`].
    pub fn registry_snapshot(&self) -> Option<MetricsRegistry> {
        self.with_registry(MetricsRegistry::clone)
    }

    /// Merge a whole registry into this handle's registry (see
    /// [`MetricsRegistry::absorb`]). This is the merge-at-epoch-close
    /// half of the per-thread observability design: record paths touch
    /// only their thread-local registry, and the driver absorbs the
    /// snapshots once per completed node — no locks anywhere.
    pub fn absorb_registry(&self, other: &MetricsRegistry) {
        if let Some(inner) = &self.inner {
            inner.registry.borrow_mut().absorb(other);
        }
    }

    /// Capture a flight-recorder dump: the last [`FLIGHT_TAIL`] events plus
    /// `reason` and `context` (schedule fingerprint, vector clocks). A
    /// `fault` instant is also appended to the trace so the failure is
    /// visible in Perfetto. No-op when disabled.
    pub fn record_failure(&self, reason: &str, context: &str) {
        if let Some(inner) = &self.inner {
            let events = inner.ring.borrow().tail(FLIGHT_TAIL);
            let at = events.last().map(|e| e.ts).unwrap_or(SimTime::ZERO);
            inner
                .ring
                .borrow_mut()
                .record(Cat::Fault, "failure", 0, 0, at, 0, &[]);
            let registry = {
                let reg = inner.registry.borrow();
                if reg.is_empty() {
                    String::new()
                } else {
                    export::top_summary(&reg)
                }
            };
            inner.dumps.borrow_mut().push(FlightDump {
                reason: reason.to_string(),
                context: context.to_string(),
                events,
                registry,
            });
        }
    }

    /// Drain captured flight-recorder dumps.
    pub fn take_failures(&self) -> Vec<FlightDump> {
        match &self.inner {
            Some(inner) => std::mem::take(&mut *inner.dumps.borrow_mut()),
            None => Vec::new(),
        }
    }

    /// Number of captured (undrained) flight-recorder dumps.
    pub fn failure_count(&self) -> usize {
        self.inner
            .as_ref()
            .map(|inner| inner.dumps.borrow().len())
            .unwrap_or(0)
    }

    /// Total trace events recorded so far (including overwritten ones).
    pub fn event_count(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|inner| inner.ring.borrow().recorded())
            .unwrap_or(0)
    }

    /// Snapshot of retained trace events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner
            .as_ref()
            .map(|inner| inner.ring.borrow().snapshot())
            .unwrap_or_default()
    }

    /// Export retained events as Chrome trace-event JSON (Perfetto).
    pub fn chrome_trace_json(&self) -> String {
        export::chrome_trace_json(&self.events())
    }

    /// Render the registry as the `slash-top` text summary.
    pub fn summary(&self) -> String {
        match self.with_registry(export::top_summary) {
            Some(s) => s,
            None => export::top_summary(&MetricsRegistry::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.instant(Cat::Verb, "write", 0, 0, SimTime::ZERO, &[]);
        obs.counter_add("x", "y", 1);
        obs.hist_record("h", "l", 5);
        obs.record_failure("nope", "");
        assert_eq!(obs.event_count(), 0);
        assert_eq!(obs.failure_count(), 0);
        assert!(obs.take_failures().is_empty());
        assert!(obs.chrome_trace_json().contains("traceEvents"));
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::enabled(64);
        let clone = obs.clone();
        clone.instant(Cat::Epoch, "epoch-propose", 1, 0, SimTime::from_micros(3), &[]);
        clone.counter_add("records", "node=1", 7);
        assert_eq!(obs.event_count(), 1);
        assert_eq!(
            obs.with_registry(|r| r.counter("records", "node=1")),
            Some(7)
        );
    }

    #[test]
    fn record_failure_captures_tail_and_marks_trace() {
        let obs = Obs::enabled(128);
        for i in 0..100u64 {
            obs.instant(
                Cat::Verb,
                "write",
                0,
                1,
                SimTime::from_nanos(i * 5),
                &[("seq", i)],
            );
        }
        obs.record_failure("credit window exceeded", "fingerprint=0x1");
        assert_eq!(obs.failure_count(), 1);
        let dumps = obs.take_failures();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].events.len(), FLIGHT_TAIL);
        assert_eq!(dumps[0].events.last().unwrap().args()[0], ("seq", 99));
        assert!(obs.take_failures().is_empty(), "drained");
        assert!(obs
            .events()
            .iter()
            .any(|e| e.cat == Cat::Fault && e.name == "failure"));
    }

    #[test]
    fn stage_span_pairs_record_trace_and_histogram() {
        let obs = Obs::enabled(64);
        obs.span_open(Stage::Source, 0, 1, SimTime::from_nanos(100));
        obs.span_close(Stage::Source, 0, 1, SimTime::from_nanos(1_100), 10);
        assert_eq!(obs.open_span_count(), 0);
        // 1000ns over 10 units = 100ns per record.
        assert_eq!(obs.quantile(STAGE_HIST, "source", 1.0), Some(100));
        let events = obs.events();
        let span = events
            .iter()
            .find(|e| e.cat == Cat::Stage && e.name == "source")
            .expect("stage span recorded");
        assert_eq!(span.ts, SimTime::from_nanos(100));
        assert_eq!(span.dur, 1_000);
        assert_eq!(span.args()[0], ("units", 10));
    }

    #[test]
    fn mismatched_span_close_counts_not_fails() {
        let obs = Obs::enabled(16);
        obs.span_close(Stage::EpochMerge, 3, 0, SimTime::from_nanos(50), 1);
        assert_eq!(
            obs.with_registry(|r| r.counter("span_mismatch", "epoch_merge")),
            Some(1)
        );
        assert!(obs.quantile(STAGE_HIST, "epoch_merge", 0.5).is_none());
        // Lanes are independent: same stage on another (pid, tid) pairs fine.
        obs.span_open(Stage::SsbApply, 0, 0, SimTime::ZERO);
        obs.span_open(Stage::SsbApply, 0, 1, SimTime::from_nanos(5));
        assert_eq!(obs.open_span_count(), 2);
        obs.span_close(Stage::SsbApply, 0, 0, SimTime::from_nanos(10), 1);
        obs.span_close(Stage::SsbApply, 0, 1, SimTime::from_nanos(10), 1);
        assert_eq!(obs.open_span_count(), 0);
        assert_eq!(
            obs.with_registry(|r| r.hist(STAGE_HIST, "ssb_apply").map(|h| h.count())),
            Some(Some(2))
        );
    }

    #[test]
    fn span_durations_clamp_and_export() {
        let obs = Obs::enabled(16);
        obs.span(
            Cat::Operator,
            "batch",
            0,
            2,
            SimTime::from_nanos(10),
            SimTime::from_nanos(10),
            &[],
        );
        let json = obs.chrome_trace_json();
        assert!(json.contains("\"dur\":0.001"), "zero-length span clamps to 1ns");
    }
}
