#!/usr/bin/env bash
# Full verification gate for the workspace. Run from anywhere inside the
# repo; every step is offline and deterministic. Order is cheapest-first
# so failures surface fast.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> [1/11] build (release, all targets)"
cargo build --release --workspace

echo "==> [2/11] tests (unit + integration + fixtures + mutations)"
cargo test --workspace -q

echo "==> [3/11] clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> [4/11] slash-lint (custom static analysis, burn-down allowlist)"
cargo run --release -p slash-verify --bin slash-lint

echo "==> [5/11] slash-race (schedule exploration smoke: 128 tie-breaks)"
cargo run --release -p slash-verify --bin slash-race -- --seeds 128

echo "==> [6/11] flight recorder (planted bug must be caught and dumped)"
cargo run --release -p slash-verify --bin slash-race -- --mutation ignore-credit-window >/dev/null
cargo run --release -p slash-verify --bin slash-race -- --mutation regress-vclock >/dev/null
echo "flight recorder: both planted bugs caught with dumps"

echo "==> [7/11] traced example (deterministic trace, validated JSON)"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
SLASH_TRACE_OUT="$trace_dir/a.json" cargo run --release --example ysb_pipeline >/dev/null
SLASH_TRACE_OUT="$trace_dir/b.json" cargo run --release --example ysb_pipeline >/dev/null
cmp "$trace_dir/a.json" "$trace_dir/b.json"
echo "trace: two same-seed runs byte-identical"
cargo run --release -p slash-verify --bin slash-trace-check -- "$trace_dir/a.json"

echo "==> [8/11] chaos suite (every fault type recovers to the no-fault state)"
cargo run --release --bin chaos-suite

echo "==> [9/11] recovery golden trace (failover example, byte-identical + validated)"
SLASH_TRACE_OUT="$trace_dir/f_a.json" cargo run --release --example failover >/dev/null
SLASH_TRACE_OUT="$trace_dir/f_b.json" cargo run --release --example failover >/dev/null
cmp "$trace_dir/f_a.json" "$trace_dir/f_b.json"
echo "recovery trace: two same-seed chaos runs byte-identical"
cargo run --release -p slash-verify --bin slash-trace-check -- "$trace_dir/f_a.json"

echo "==> [10/11] hot-path perf smoke (wall-clock, combiner on vs off)"
# Writes BENCH_hotpath.json and exits non-zero if the combiner-on hot
# loop is below 1.3x the per-record path on ysb_hot, or if any
# workload's on/off state digests diverge.
cargo run --release -p slash-bench --bin hotpath-bench -- --quick --out BENCH_hotpath.json

echo "==> [11/11] cascading-fault matrix (compound faults converge exactly, golden traces)"
# Release-mode run of the compound-fault tests: concurrent crashes,
# buddy-dead re-selection, crash-during-recovery re-entrancy, wpn=2
# promotion, and the same-seed byte-identical cascade trace. (Stage 8's
# chaos-suite run covers the same matrix as a binary gate; this stage adds
# the trace-level golden assertions.)
cargo test --release --test chaos -q

echo "ci: all gates green"
