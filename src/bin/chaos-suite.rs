//! `chaos-suite` — the CI fault-injection gate.
//!
//! Runs the YSB pipeline under fault tolerance with every built-in fault
//! type injected mid-run — node crash, link flap, link degradation,
//! delayed completions — plus seeded multi-fault plans over fixed seeds,
//! and requires each run to *recover and verify*: the processed-record
//! count, the per-window results digest, and every node's final
//! primary-state digest must match the same-seed no-fault run bit-exactly.
//! Crashes must additionally be detected and repaired by promotion.
//!
//! A second section runs the cascading-fault matrix: concurrent crashes on
//! distinct nodes, a crash whose designated checkpoint buddy is already
//! dead (single-copy shipping, forcing buddy re-selection), a crash aimed
//! mid-promotion (probed to virtual-time precision, requiring a promotion
//! restart), a crash under `workers_per_node = 2`, and a same-seed golden
//! determinism check over a three-crash cascade.
//!
//! Everything is virtual-time deterministic; exit 0 when every case
//! verifies, 1 otherwise.

use std::process::ExitCode;

use slash::chaos::{ChaosConfig, FaultPlan, FtConfig};
use slash::core::{RecoveryAction, RecoveryReport, RunConfig, RunReport, SlashCluster};
use slash::desim::SimTime;
use slash::obs::Obs;
use slash::workloads::{ysb, GenConfig};

const NODES: usize = 3;
const RECORDS_PER_PARTITION: u64 = 20_000;
/// Seeds for the multi-fault plans; fixed so CI is reproducible.
const SEEDS: [u64; 3] = [11, 23, 47];

fn run_with(
    nodes: usize,
    workers_per_node: usize,
    ckpt_copies: usize,
    plan: &FaultPlan,
) -> (RunReport, RecoveryReport) {
    let mut cfg = RunConfig::new(nodes, workers_per_node);
    cfg.collect_results = true;
    cfg.epoch_bytes = 16 * 1024;
    let w = ysb(&GenConfig::new(nodes * workers_per_node, RECORDS_PER_PARTITION));
    let chaos = ChaosConfig {
        plan: plan.clone(),
        ft: FtConfig {
            detect_timeout: SimTime::from_micros(300),
            ckpt_max_chunk: 16 * 1024,
            ckpt_copies,
        },
        pre_split: Vec::new(),
    };
    SlashCluster::run_chaos(w.plan, w.partitions, cfg, &chaos, Obs::disabled())
}

fn run(plan: &FaultPlan) -> (RunReport, RecoveryReport) {
    run_with(NODES, 1, 2, plan)
}

/// One case: compare an already-run plan against its baseline, print a
/// verdict line. Returns whether the case verified.
fn case(
    name: &str,
    plan: &FaultPlan,
    out: &(RunReport, RecoveryReport),
    base: &(RunReport, RecoveryReport),
    require_promotion: bool,
) -> bool {
    let (report, rec) = out;
    let exact = report.records == base.0.records
        && rec.results_digest == base.1.results_digest
        && rec.state_digests == base.1.state_digests;
    let promoted = rec
        .events
        .iter()
        .any(|e| matches!(e.action, RecoveryAction::Promoted { .. }));
    let ok = exact && (!require_promotion || promoted);
    let ttr = rec
        .max_time_to_recover()
        .map(|t| format!("{:.1} us", t.as_nanos() as f64 / 1_000.0))
        .unwrap_or_else(|| "-".to_string());
    println!(
        "  {:<28} faults={} repaired={} ttr={:<10} exact={} {}",
        name,
        plan.events().len(),
        rec.events.len(),
        ttr,
        if exact { "yes" } else { "NO" },
        if ok { "PASS" } else { "FAIL" }
    );
    if !ok && require_promotion && !promoted {
        println!("    crash was never detected/promoted");
    }
    ok
}

/// The restart counter of node `victim`'s promotion, if it was promoted.
fn promotion_restarts(rec: &RecoveryReport, victim: usize) -> Option<u32> {
    rec.events.iter().find_map(|e| match e.action {
        RecoveryAction::Promoted { restarts, .. } if e.node == victim => Some(restarts),
        _ => None,
    })
}

/// The cascading-fault matrix: compound faults whose recovery paths
/// overlap. Each shape (node count, workers-per-node) gets its own
/// no-fault baseline; exactness is judged against that.
fn cascade_matrix(base3: &(RunReport, RecoveryReport)) -> bool {
    println!("cascade matrix:");
    let at = SimTime::from_micros(200);
    let mut ok = true;

    // Two nodes die on the same virtual nanosecond (4-node cluster).
    let base4 = run_with(4, 1, 2, &FaultPlan::new());
    let conc = FaultPlan::new().concurrent(at, &[1, 2]);
    ok &= case("concurrent-crash [1,2] (4n)", &conc, &run_with(4, 1, 2, &conc), &base4, true);

    // The victim's designated ring buddy dies first; with a single
    // checkpoint copy the shipper must re-select a buddy before the
    // owner's own crash lands.
    let buddy = FaultPlan::new()
        .crash(SimTime::from_micros(150), 2)
        .crash(SimTime::from_micros(900), 1);
    ok &= case(
        "buddy-dead (copies=1)",
        &buddy,
        &run_with(NODES, 1, 1, &buddy),
        base3,
        true,
    );

    // Crash aimed mid-promotion: probe a plain single-crash run for its
    // detection→commit span, then kill the in-flight promotion's host at
    // the midpoint. The promotion must restart (restarts >= 1).
    let probe = run(&FaultPlan::new().crash(at, 1));
    let probe_evt = probe
        .1
        .events
        .iter()
        .find_map(|e| match e.action {
            RecoveryAction::Promoted { host, .. } => {
                Some((host, e.detected_at, e.recovered_at))
            }
            _ => None,
        });
    match probe_evt {
        Some((host, detected, recovered)) => {
            let mid = SimTime::from_nanos((detected.as_nanos() + recovered.as_nanos()) / 2);
            let dr = FaultPlan::new().during_recovery(at, 1, mid - at, host);
            let out = run(&dr);
            let restarted = promotion_restarts(&out.1, 1).is_some_and(|r| r >= 1);
            ok &= case("crash-during-recovery", &dr, &out, base3, true);
            if !restarted {
                println!("    promotion was never interrupted/restarted");
                ok = false;
            }
        }
        None => {
            println!("  crash-during-recovery        probe promotion missing  FAIL");
            ok = false;
        }
    }

    // Crash with two worker partitions per node: promotion must resurrect
    // both of the dead node's partitions.
    let base_w2 = run_with(NODES, 2, 2, &FaultPlan::new());
    let crash = FaultPlan::new().crash(at, 1);
    ok &= case(
        "multi-worker (wpn=2)",
        &crash,
        &run_with(NODES, 2, 2, &crash),
        &base_w2,
        true,
    );

    // Golden determinism over a three-crash cascade: two same-seed runs
    // must agree on every count and digest.
    let casc = FaultPlan::new()
        .concurrent(at, &[1, 2])
        .crash(SimTime::from_micros(900), 3);
    let a = run_with(5, 1, 2, &casc);
    let b = run_with(5, 1, 2, &casc);
    let golden = a.0.records == b.0.records
        && a.1.state_digests == b.1.state_digests
        && a.1.results_digest == b.1.results_digest
        && a.1.events.len() == b.1.events.len();
    println!(
        "  {:<28} two same-seed runs {} {}",
        "cascade-golden x3 (5n)",
        if golden { "agree" } else { "DIVERGED" },
        if golden { "PASS" } else { "FAIL" }
    );
    ok &= golden;
    let base5 = run_with(5, 1, 2, &FaultPlan::new());
    ok &= case("cascade x3 (5n)", &casc, &a, &base5, true);

    ok
}

fn main() -> ExitCode {
    println!(
        "chaos-suite: YSB, {NODES} nodes, {RECORDS_PER_PARTITION} records/partition, \
         exactness vs the no-fault fault-tolerant baseline"
    );
    let base = run(&FaultPlan::new());
    if !base.1.events.is_empty() || base.1.checkpoints_durable == 0 {
        println!("  baseline unhealthy: events={}, durable ckpts={}", base.1.events.len(), base.1.checkpoints_durable);
        return ExitCode::FAILURE;
    }
    println!(
        "  baseline: {} records, {} durable checkpoints, completion {:.1} us",
        base.0.records,
        base.1.checkpoints_durable,
        base.0.completion_time.as_nanos() as f64 / 1_000.0
    );

    let at = SimTime::from_micros(200);
    let down = SimTime::from_micros(60);
    let extra = SimTime::from_micros(2);
    let span = SimTime::from_micros(120);
    let mut ok = true;
    let crash = FaultPlan::new().crash(at, 1);
    ok &= case("node-crash", &crash, &run(&crash), &base, true);
    let flap = FaultPlan::new().link_flap(at, 1, down);
    ok &= case("link-flap", &flap, &run(&flap), &base, false);
    let deg = FaultPlan::new().degrade(at, 1, extra, span);
    ok &= case("link-degrade", &deg, &run(&deg), &base, false);
    let delay = FaultPlan::new().delay_completions(at, 1, extra, span);
    ok &= case("delayed-completions", &delay, &run(&delay), &base, false);
    for seed in SEEDS {
        let plan = FaultPlan::seeded(seed, NODES, 3, SimTime::from_micros(500));
        ok &= case(&format!("seeded({seed}) x3"), &plan, &run(&plan), &base, false);
        let with_crash = plan.crash(SimTime::from_micros(250), 1);
        ok &= case(
            &format!("seeded({seed}) x3 + crash"),
            &with_crash,
            &run(&with_crash),
            &base,
            true,
        );
    }

    ok &= cascade_matrix(&base);

    if ok {
        println!("chaos-suite: PASS (every fault recovered to the no-fault state)");
        ExitCode::SUCCESS
    } else {
        println!("chaos-suite: FAIL");
        ExitCode::FAILURE
    }
}
