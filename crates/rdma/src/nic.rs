//! NIC model: full-duplex port with bandwidth pacing and latency.

use slash_desim::{Link, SimTime};

/// Configuration of one NIC port.
///
/// Defaults model the paper's testbed: Mellanox ConnectX-4 EDR, for which
/// the authors measure 11.8 GB/s of achievable bandwidth with
/// `ib_write_bw`, sub-microsecond wire latency, and a per-message
/// processing overhead that bounds small-message rates.
#[derive(Debug, Clone, Copy)]
pub struct NicConfig {
    /// Achievable bandwidth per direction *per port*, bytes/second.
    pub bandwidth: u64,
    /// One-way propagation + switch latency.
    pub latency: SimTime,
    /// Fixed per-message processing overhead (doorbell, DMA setup, WQE
    /// fetch). Bounds the message rate for tiny messages.
    pub per_message_overhead: SimTime,
    /// Full-duplex ports per node. The paper's testbed has one; its
    /// discussion of Slash becoming network-bound with few threads notes
    /// that "increasing the number of threads and RDMA NICs per node
    /// results in higher processing throughput" — the multi-port model
    /// lets the reproduction test that claim (see the ablation harness).
    pub ports: usize,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            // ib_write_bw ceiling measured by the paper on ConnectX-4 EDR.
            bandwidth: 11_800_000_000,
            latency: SimTime::from_nanos(600),
            per_message_overhead: SimTime::from_nanos(150),
            ports: 1,
        }
    }
}

/// Per-NIC transfer statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct NicStats {
    /// Bytes serialized out of this port.
    pub tx_bytes: u64,
    /// Bytes serialized into this port.
    pub rx_bytes: u64,
    /// Messages sent.
    pub tx_msgs: u64,
    /// Messages received.
    pub rx_msgs: u64,
}

/// A node's network interface: one or more full-duplex ports. Messages
/// are placed on the earliest-free port in each direction (multi-rail
/// striping at message granularity, like RDMA bonding).
pub(crate) struct Nic {
    pub cfg: NicConfig,
    pub tx: Vec<Link>,
    pub rx: Vec<Link>,
    pub stats: NicStats,
}

impl Nic {
    pub fn new(cfg: NicConfig) -> Self {
        assert!(cfg.ports >= 1, "a node needs at least one port");
        Nic {
            cfg,
            tx: (0..cfg.ports).map(|_| Link::new(cfg.bandwidth)).collect(),
            rx: (0..cfg.ports).map(|_| Link::new(cfg.bandwidth)).collect(),
            stats: NicStats::default(),
        }
    }

    /// Index of the earliest-free link in `links`.
    fn freest(links: &[Link]) -> usize {
        let mut best = 0;
        for (i, l) in links.iter().enumerate().skip(1) {
            if l.busy_until() < links[best].busy_until() {
                best = i;
            }
        }
        best
    }

    /// Aggregate TX utilization across ports.
    pub fn tx_utilization(&self, now: SimTime) -> f64 {
        self.tx.iter().map(|l| l.utilization(now)).sum::<f64>() / self.tx.len() as f64
    }

    /// Aggregate RX utilization across ports.
    pub fn rx_utilization(&self, now: SimTime) -> f64 {
        self.rx.iter().map(|l| l.utilization(now)).sum::<f64>() / self.rx.len() as f64
    }
}

/// Plan a cut-through transfer from `src` to `dst` starting no earlier than
/// `now`. Returns the delivery time (payload fully landed in the receiver's
/// memory). Reserves both links so subsequent transfers queue behind it.
pub(crate) fn plan_transfer(now: SimTime, src: &mut Nic, dst: &mut Nic, bytes: u64) -> SimTime {
    let post = now + src.cfg.per_message_overhead;
    let tx_port = Nic::freest(&src.tx);
    let (tx_start, tx_end) = src.tx[tx_port].reserve(post, bytes);
    // Cut-through: the head of the message reaches the receiver one latency
    // after it starts leaving; the receiver's RX link then serializes the
    // whole message, queuing behind other inbound traffic (incast).
    let arrival_head = tx_start + src.cfg.latency;
    let arrival_tail = tx_end + src.cfg.latency;
    let rx_port = Nic::freest(&dst.rx);
    let (_rx_start, rx_end) = dst.rx[rx_port].reserve(arrival_head, bytes);
    src.stats.tx_bytes += bytes;
    src.stats.tx_msgs += 1;
    dst.stats.rx_bytes += bytes;
    dst.stats.rx_msgs += 1;
    rx_end.max(arrival_tail)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nic() -> Nic {
        Nic::new(NicConfig {
            bandwidth: 1_000_000_000, // 1 byte/ns
            latency: SimTime::from_nanos(100),
            per_message_overhead: SimTime::from_nanos(10),
            ports: 1,
        })
    }

    #[test]
    fn single_transfer_time() {
        let mut a = nic();
        let mut b = nic();
        // 1000 bytes at 1 B/ns: 10 (overhead) + 1000 (serialize) + 100 (lat).
        let t = plan_transfer(SimTime::ZERO, &mut a, &mut b, 1000);
        assert_eq!(t.as_nanos(), 1110);
        assert_eq!(a.stats.tx_bytes, 1000);
        assert_eq!(b.stats.rx_bytes, 1000);
    }

    #[test]
    fn sender_serializes_back_to_back() {
        let mut a = nic();
        let mut b = nic();
        let t1 = plan_transfer(SimTime::ZERO, &mut a, &mut b, 1000);
        let t2 = plan_transfer(SimTime::ZERO, &mut a, &mut b, 1000);
        // The second message queues behind the first on the TX link; its
        // per-message overhead is hidden under the first serialization
        // (pipelining), so deliveries are spaced by exactly one
        // serialization time.
        assert_eq!(t2.as_nanos() - t1.as_nanos(), 1000);
        assert!(t2 > t1);
    }

    #[test]
    fn incast_serializes_on_receiver() {
        let mut dst = nic();
        let mut senders: Vec<Nic> = (0..4).map(|_| nic()).collect();
        let mut deliveries = Vec::new();
        for s in &mut senders {
            deliveries.push(plan_transfer(SimTime::ZERO, s, &mut dst, 1000));
        }
        // Four concurrent senders into one port: deliveries must be spaced
        // by at least the RX serialization time of one message.
        deliveries.sort();
        for w in deliveries.windows(2) {
            assert!(
                w[1].as_nanos() - w[0].as_nanos() >= 1000,
                "incast must serialize: {deliveries:?}"
            );
        }
        assert_eq!(dst.stats.rx_msgs, 4);
    }

    #[test]
    fn zero_byte_message_costs_overhead_and_latency() {
        let mut a = nic();
        let mut b = nic();
        let t = plan_transfer(SimTime::ZERO, &mut a, &mut b, 0);
        assert_eq!(t.as_nanos(), 110);
    }

    #[test]
    fn default_config_is_the_papers_testbed() {
        let c = NicConfig::default();
        assert_eq!(c.bandwidth, 11_800_000_000);
        assert_eq!(c.latency, SimTime::from_nanos(600));
    }
}

#[cfg(test)]
mod multiport_tests {
    use super::*;

    fn nic_with_ports(ports: usize) -> Nic {
        Nic::new(NicConfig {
            bandwidth: 1_000_000_000,
            latency: SimTime::from_nanos(100),
            per_message_overhead: SimTime::from_nanos(10),
            ports,
        })
    }

    #[test]
    fn two_ports_double_concurrent_throughput() {
        let mut dual = nic_with_ports(2);
        let mut dst = nic_with_ports(2);
        // Two messages posted at t=0 serialize concurrently on two ports.
        let t1 = plan_transfer(SimTime::ZERO, &mut dual, &mut dst, 1000);
        let t2 = plan_transfer(SimTime::ZERO, &mut dual, &mut dst, 1000);
        assert_eq!(t1, t2, "both ride their own port");

        let mut single = nic_with_ports(1);
        let mut dst1 = nic_with_ports(1);
        let s1 = plan_transfer(SimTime::ZERO, &mut single, &mut dst1, 1000);
        let s2 = plan_transfer(SimTime::ZERO, &mut single, &mut dst1, 1000);
        assert_eq!(s1, t1, "first message identical");
        assert!(s2 > s1, "single port serializes");
    }

    #[test]
    fn striping_picks_the_freest_port() {
        let mut src = nic_with_ports(2);
        let mut dst = nic_with_ports(2);
        // Fill port 0 with a long transfer, then a short one must use
        // port 1 and finish earlier.
        let long = plan_transfer(SimTime::ZERO, &mut src, &mut dst, 100_000);
        let short = plan_transfer(SimTime::ZERO, &mut src, &mut dst, 100);
        assert!(short < long);
    }
}
