#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # slash-baselines — the paper's comparison systems (§8.1.1)
//!
//! Three systems-under-test, built to be compared head-to-head with Slash
//! on identical workloads over the identical simulated fabric:
//!
//! * **RDMA UpPar** ([`uppar`]) — the *lightweight integration* straw man:
//!   a classic scale-out SPE that hash-re-partitions every record across
//!   the cluster, with its exchange layer swapped onto one-sided RDMA
//!   channels. Half of each node's threads partition, half process
//!   (the paper's configuration for partitioned SUTs).
//! * **Flink-sim** ([`flinksim`]) — the *plug-and-play integration*:
//!   the same re-partitioning topology over socket-style IPoIB channels
//!   (kernel copies, syscalls, reduced goodput) with a managed-runtime
//!   cost factor on every CPU operation, per the paper's observations
//!   about Flink 1.9 on IPoIB.
//! * **LightSaber-sim** ([`lightsaber`]) — the scale-up SPE: single node,
//!   task-based parallelism over one *shared* task queue, late merge,
//!   no networking, no epochs. Used by the COST analysis (Fig. 7).
//!
//! UpPar and Flink share one engine ([`partitioned`]) parameterized by
//! transport and runtime factor, which keeps the comparison structural:
//! the *only* differences between them are the ones the paper names.

pub mod exchange;
pub mod flinksim;
pub mod lightsaber;
pub mod partitioned;
pub mod sut;
pub mod uppar;

pub use flinksim::run_flink;
pub use lightsaber::run_lightsaber;
pub use sut::CommonReport;
pub use uppar::run_uppar;
