//! Golden determinism test for the observability layer: the whole engine
//! runs on virtual time with seeded randomness only, so two identical
//! runs must produce *byte-identical* trace JSON and `slash-top`
//! summaries — not merely equivalent ones. Any nondeterminism smuggled in
//! (wall clock, hash-order iteration, address-keyed IDs) fails here.

use slash::core::{RunConfig, SlashCluster};
use slash::obs::Obs;
use slash::workloads::{ysb, GenConfig};

/// One traced YSB run on a small cluster; returns every observable
/// artifact the obs layer can emit.
fn traced_run() -> (String, String, u64, Vec<u64>) {
    let nodes = 2;
    let workers = 2;
    let w = ysb(&GenConfig::new(nodes * workers, 4_000));
    let obs = Obs::enabled(16_384);
    let report =
        SlashCluster::run_with_obs(w.plan, w.partitions, RunConfig::new(nodes, workers), obs.clone());
    let quantiles = [0.5, 0.9, 0.99, 0.999, 0.9999]
        .iter()
        .filter_map(|&q| obs.quantile("record_latency_ns", "node0", q))
        .collect();
    (obs.chrome_trace_json(), obs.summary(), report.records, quantiles)
}

#[test]
fn same_seed_produces_byte_identical_traces() {
    let (json_a, top_a, records_a, q_a) = traced_run();
    let (json_b, top_b, records_b, q_b) = traced_run();
    assert_eq!(records_a, records_b);
    assert_eq!(q_a, q_b);
    assert_eq!(top_a, top_b, "slash-top summary must be byte-identical");
    assert_eq!(json_a, json_b, "chrome trace must be byte-identical");
}

#[test]
fn trace_json_has_events_and_monotone_timestamps() {
    let (json, top, _, quantiles) = traced_run();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"X\""), "at least one span event");
    assert!(json.contains("\"cat\":\"operator\""));
    assert!(json.contains("\"cat\":\"verb\""));
    assert!(json.contains("\"cat\":\"epoch\""));
    assert!(json.contains("\"cat\":\"stage\""), "stage attribution spans present");
    // `ts` values appear in non-decreasing file order (export sorts them).
    let mut last = 0f64;
    for chunk in json.split("\"ts\":").skip(1) {
        let num: String = chunk
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        let ts: f64 = num.parse().expect("ts literal");
        assert!(ts >= last, "ts went backwards: {ts} < {last}");
        last = ts;
    }
    assert_eq!(quantiles.len(), 5, "record-latency quantiles all present");
    assert!(top.contains("record_latency_ns"));
    assert!(top.contains("epoch_merge_latency_ns"));
    assert!(top.contains("stage_latency_ns"), "per-stage attribution in summary");
    assert!(top.contains("p99.99"));
}

/// The disabled handle must not change engine results — tracing is an
/// observer, never a participant.
#[test]
fn tracing_does_not_perturb_the_engine() {
    let nodes = 2;
    let workers = 2;
    let run = |obs: Obs| {
        let w = ysb(&GenConfig::new(nodes * workers, 4_000));
        SlashCluster::run_with_obs(w.plan, w.partitions, RunConfig::new(nodes, workers), obs)
    };
    let traced = run(Obs::enabled(16_384));
    let dark = run(Obs::disabled());
    assert_eq!(traced.records, dark.records);
    assert_eq!(traced.emitted, dark.emitted);
    assert_eq!(traced.net_tx_bytes, dark.net_tx_bytes);
    assert_eq!(traced.completion_time, dark.completion_time);
}
