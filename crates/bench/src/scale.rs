//! Experiment scale knobs.

/// How big the experiments run.
///
/// The paper's setup is 10 worker threads per node and 1 GB of input per
/// thread; the default here is scaled down so the full reproduction runs
/// in minutes on one host core. Throughput is measured in *virtual* time,
/// so the scale mainly controls statistical smoothness, not the trends.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Worker threads per node (paper: 10).
    pub workers: usize,
    /// Records per worker thread (paper: 1 GB / record-size).
    pub records: u64,
}

impl Scale {
    /// Read the scale from `SLASH_WORKERS` / `SLASH_RECORDS`, with
    /// laptop-friendly defaults.
    pub fn from_env() -> Self {
        let get = |name: &str, default: u64| -> u64 {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Scale {
            workers: get("SLASH_WORKERS", 4) as usize,
            records: get("SLASH_RECORDS", 20_000),
        }
    }

    /// A small scale for tests.
    pub fn tiny() -> Self {
        Scale {
            workers: 2,
            records: 4_000,
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            workers: 4,
            records: 20_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let s = Scale::default();
        assert_eq!(s.workers, 4);
        assert_eq!(s.records, 20_000);
        assert_eq!(Scale::tiny().workers, 2);
    }
}
