//! Central metrics registry: counters, gauges, and histograms, labeled by
//! node / operator / channel.
//!
//! The registry absorbs what used to be scattered across `EngineMetrics`,
//! `ChannelStats`, and ad-hoc report fields into one queryable namespace.
//! Storage is `BTreeMap`-keyed by `(name, label)` so iteration order — and
//! therefore every export — is deterministic.

use crate::hist::Histogram;
use std::collections::BTreeMap;

type Key = (String, String);

/// Deterministic store of named, labeled metrics.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    hists: BTreeMap<Key, Histogram>,
}

fn key(name: &str, label: &str) -> Key {
    (name.to_string(), label.to_string())
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `v` to the counter `(name, label)`, creating it at zero.
    pub fn counter_add(&mut self, name: &str, label: &str, v: u64) {
        *self.counters.entry(key(name, label)).or_insert(0) += v;
    }

    /// Read a counter.
    pub fn counter(&self, name: &str, label: &str) -> u64 {
        self.counters.get(&key(name, label)).copied().unwrap_or(0)
    }

    /// Set the gauge `(name, label)` to `v` (last write wins).
    pub fn gauge_set(&mut self, name: &str, label: &str, v: f64) {
        self.gauges.insert(key(name, label), v);
    }

    /// Read a gauge.
    pub fn gauge(&self, name: &str, label: &str) -> Option<f64> {
        self.gauges.get(&key(name, label)).copied()
    }

    /// Record one value into the histogram `(name, label)`.
    pub fn hist_record(&mut self, name: &str, label: &str, v: u64) {
        self.hists.entry(key(name, label)).or_default().record(v);
    }

    /// Merge a whole histogram into `(name, label)`.
    pub fn hist_merge(&mut self, name: &str, label: &str, h: &Histogram) {
        self.hists.entry(key(name, label)).or_default().merge(h);
    }

    /// Read a histogram.
    pub fn hist(&self, name: &str, label: &str) -> Option<&Histogram> {
        self.hists.get(&key(name, label))
    }

    /// Quantile of a histogram, if present and non-empty.
    pub fn quantile(&self, name: &str, label: &str, q: f64) -> Option<u64> {
        self.hist(name, label).and_then(|h| h.quantile(q))
    }

    /// Iterate counters in deterministic `(name, label)` order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.counters
            .iter()
            .map(|((n, l), &v)| (n.as_str(), l.as_str(), v))
    }

    /// Iterate gauges in deterministic `(name, label)` order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &str, f64)> {
        self.gauges
            .iter()
            .map(|((n, l), &v)| (n.as_str(), l.as_str(), v))
    }

    /// Iterate histograms in deterministic `(name, label)` order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &str, &Histogram)> {
        self.hists
            .iter()
            .map(|((n, l), h)| (n.as_str(), l.as_str(), h))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("records", "node=0", 10);
        reg.counter_add("records", "node=0", 5);
        reg.counter_add("records", "node=1", 1);
        assert_eq!(reg.counter("records", "node=0"), 15);
        assert_eq!(reg.counter("records", "node=1"), 1);
        assert_eq!(reg.counter("records", "node=2"), 0);
        reg.gauge_set("ipc", "node=0", 0.5);
        reg.gauge_set("ipc", "node=0", 0.75);
        assert_eq!(reg.gauge("ipc", "node=0"), Some(0.75));
    }

    #[test]
    fn hist_record_and_merge_share_namespace() {
        let mut reg = MetricsRegistry::new();
        reg.hist_record("lat", "chan=0->1", 100);
        let mut extra = Histogram::new();
        extra.record(200);
        extra.record(300);
        reg.hist_merge("lat", "chan=0->1", &extra);
        assert_eq!(reg.hist("lat", "chan=0->1").unwrap().count(), 3);
        assert!(reg.quantile("lat", "chan=0->1", 1.0).unwrap() >= 300);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("b", "x", 1);
        reg.counter_add("a", "y", 2);
        reg.counter_add("a", "x", 3);
        let names: Vec<(String, String)> = reg
            .counters()
            .map(|(n, l, _)| (n.to_string(), l.to_string()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("a".to_string(), "x".to_string()),
                ("a".to_string(), "y".to_string()),
                ("b".to_string(), "x".to_string())
            ]
        );
    }
}
