//! A partition fragment: hash index + log + epoch boundary.
//!
//! Every node holds one `Partition` object per SSB partition: the one it
//! leads (its *primary* partition, where deltas from helpers are merged and
//! windows trigger) and a *fragment* of every remote partition (where its
//! own eager updates accumulate between epochs).

use crate::combiner::WriteCombiner;
use crate::descriptor::{StateDescriptor, ValueKind};
use crate::entry::{EntryHeader, EntryKind, NO_PREV};
use crate::hash::{hash_key, StateKey};
use crate::index::HashIndex;
use crate::log::Lss;

/// Operation counters (feed the micro-architecture proxies of §8.3).
#[derive(Debug, Default, Clone, Copy)]
pub struct PartitionStats {
    /// In-place read-modify-writes served.
    pub rmw_hits: u64,
    /// RMWs that created a fresh key (zero-value insert).
    pub rmw_inserts: u64,
    /// Elements appended to holistic state.
    pub appends: u64,
    /// Entries merged in from helper deltas.
    pub merged_entries: u64,
    /// Epochs closed on this fragment.
    pub epochs: u64,
}

/// One partition's local storage on one node.
pub struct Partition {
    /// Partition id within the SSB.
    pub id: usize,
    index: HashIndex,
    log: Lss,
    /// Entries below this address are read-only/invalidated (shipped).
    epoch_begin: u64,
    /// Epoch counter, versioning the fragment's content (§7.2.2 step ①).
    epoch: u64,
    desc: StateDescriptor,
    /// Operation counters.
    pub stats: PartitionStats,
}

impl Partition {
    /// Create an empty partition fragment.
    pub fn new(id: usize, desc: StateDescriptor) -> Self {
        Partition {
            id,
            index: HashIndex::new(),
            log: Lss::new(),
            epoch_begin: 0,
            epoch: 0,
            desc,
            stats: PartitionStats::default(),
        }
    }

    /// Test/bench constructor with a custom segment size.
    pub fn with_segment_size(id: usize, desc: StateDescriptor, seg: usize) -> Self {
        Partition {
            id,
            index: HashIndex::new(),
            log: Lss::with_segment_size(seg),
            epoch_begin: 0,
            epoch: 0,
            desc,
            stats: PartitionStats::default(),
        }
    }

    /// The state descriptor.
    pub fn descriptor(&self) -> &StateDescriptor {
        &self.desc
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of distinct live keys.
    pub fn key_count(&self) -> usize {
        self.index.len()
    }

    /// Resident log bytes (capacity planning / adaptive sizing stats).
    pub fn resident_bytes(&self) -> usize {
        self.log.resident_bytes()
    }

    fn find(&self, key: StateKey) -> Option<u64> {
        let log = &self.log;
        self.index.find(hash_key(key), |addr| log.key_at(addr) == key)
    }

    /// Read-modify-write of fixed-size state: the hot path of every
    /// non-holistic windowed aggregation. `update` sees the current value
    /// (CRDT zero for fresh keys) and mutates it in place.
    pub fn rmw(&mut self, key: StateKey, update: impl FnOnce(&mut [u8])) {
        debug_assert!(
            matches!(self.desc.kind, ValueKind::Fixed { .. }),
            "rmw on appended state"
        );
        if let Some(addr) = self.find(key) {
            debug_assert!(
                addr >= self.epoch_begin,
                "index points into the invalidated region"
            );
            update(self.log.value_mut(addr));
            self.stats.rmw_hits += 1;
        } else {
            let size = self.desc.fixed_size();
            let mut buf = vec![0u8; size];
            (self.desc.init)(&mut buf);
            update(&mut buf);
            self.insert_fresh(key, EntryKind::Fixed, &buf);
            self.stats.rmw_inserts += 1;
        }
    }

    /// Append one element to holistic state (hash-join build, §5.2).
    pub fn append(&mut self, key: StateKey, elem: &[u8]) {
        debug_assert!(self.desc.is_appended(), "append on fixed state");
        let prev = self.find(key).unwrap_or(NO_PREV);
        let addr = self.log.append(key, prev, EntryKind::Appended, elem);
        let log = &self.log;
        self.index.upsert(
            hash_key(key),
            addr,
            |a| log.key_at(a) == key,
            |a| hash_key(log.key_at(a)),
        );
        self.stats.appends += 1;
    }

    fn insert_fresh(&mut self, key: StateKey, kind: EntryKind, value: &[u8]) {
        self.insert_fresh_hashed(key, hash_key(key), kind, value);
    }

    fn insert_fresh_hashed(&mut self, key: StateKey, hash: u64, kind: EntryKind, value: &[u8]) {
        let addr = self.log.append(key, NO_PREV, kind, value);
        let log = &self.log;
        self.index.upsert(
            hash,
            addr,
            |a| log.key_at(a) == key,
            |a| hash_key(log.key_at(a)),
        );
    }

    /// Merge a batch of *distinct-key* partial values — the entries of a
    /// [`WriteCombiner`] selected by `sel` — into fixed-size state in one
    /// pass: a single batched index probe resolves every key, hits merge in
    /// place with the descriptor's CRDT merge, and misses insert the
    /// partial directly (merge with the zero value is the identity). The
    /// combiner's memoized hashes are reused for both probe and insert, so
    /// `hash_key` runs once per distinct key per batch, not once per
    /// record.
    pub fn merge_batch(&mut self, comb: &WriteCombiner, sel: &[u32]) {
        debug_assert!(
            matches!(self.desc.kind, ValueKind::Fixed { .. }),
            "merge_batch on appended state"
        );
        let mut hashes: Vec<u64> = Vec::with_capacity(sel.len());
        for &i in sel {
            hashes.push(comb.entry(i as usize).1);
        }
        let mut found: Vec<Option<u64>> = Vec::new();
        let log = &self.log;
        self.index.find_batch(&hashes, &mut found, |j, addr| {
            log.key_at(addr) == comb.entry(sel[j] as usize).0
        });
        let merge = self.desc.merge;
        for (j, &i) in sel.iter().enumerate() {
            let (key, hash, partial) = comb.entry(i as usize);
            match found[j] {
                Some(addr) => {
                    debug_assert!(
                        addr >= self.epoch_begin,
                        "index points into the invalidated region"
                    );
                    merge(self.log.value_mut(addr), partial);
                    self.stats.rmw_hits += 1;
                }
                None => {
                    self.insert_fresh_hashed(key, hash, EntryKind::Fixed, partial);
                    self.stats.rmw_inserts += 1;
                }
            }
        }
    }

    /// Append a batch of holistic elements in record order with one index
    /// probe and one upsert per *distinct* key. `keys[i]`'s element is
    /// `elems[i*stride..(i+1)*stride]`. Produces byte-identical log
    /// content, chain structure, and index population order to per-record
    /// [`Self::append`]: heads are memoized per batch, entries append in
    /// arrival order, and distinct keys enter the index in first-occurrence
    /// order. Returns the number of distinct keys the batch touched.
    pub fn append_batch(&mut self, keys: &[StateKey], elems: &[u8], stride: usize) -> u64 {
        debug_assert!(self.desc.is_appended(), "append_batch on fixed state");
        debug_assert_eq!(keys.len() * stride, elems.len());
        // Distinct keys in first-occurrence order, with memoized hashes.
        // Deduped through a throwaway open-addressing table over the
        // index's own `hash_key` — the hash is needed for the probe below
        // anyway, and a `std` `HashMap` would rehash every key with
        // SipHash per batch.
        let cap = (keys.len() * 2).next_power_of_two().max(8);
        let mask = cap - 1;
        let mut table: Vec<u32> = vec![u32::MAX; cap];
        let mut distinct: Vec<(StateKey, u64)> = Vec::new();
        let mut which: Vec<u32> = Vec::with_capacity(keys.len());
        for &key in keys {
            let h = hash_key(key);
            let mut pos = (h as usize) & mask;
            let d = loop {
                let slot = table[pos];
                if slot == u32::MAX {
                    let d = distinct.len() as u32;
                    distinct.push((key, h));
                    table[pos] = d;
                    break d;
                }
                if distinct[slot as usize].0 == key {
                    break slot;
                }
                pos = (pos + 1) & mask;
            };
            which.push(d);
        }
        // One batched probe resolves every distinct key's current head.
        let hashes: Vec<u64> = distinct.iter().map(|&(_, h)| h).collect();
        let mut heads: Vec<Option<u64>> = Vec::new();
        let log = &self.log;
        self.index.find_batch(&hashes, &mut heads, |j, addr| {
            log.key_at(addr) == distinct[j].0
        });
        // Append in record order, chaining through the memoized heads.
        for (i, &key) in keys.iter().enumerate() {
            let d = which[i] as usize;
            let prev = heads[d].unwrap_or(NO_PREV);
            let addr = self
                .log
                .append(key, prev, EntryKind::Appended, &elems[i * stride..(i + 1) * stride]);
            heads[d] = Some(addr);
            self.stats.appends += 1;
        }
        // One upsert per distinct key, in first-occurrence order — the
        // same index insertion sequence the per-record path produces.
        for (d, &(key, hash)) in distinct.iter().enumerate() {
            if let Some(addr) = heads[d] {
                let log = &self.log;
                self.index.upsert(
                    hash,
                    addr,
                    |a| log.key_at(a) == key,
                    |a| hash_key(log.key_at(a)),
                );
            }
        }
        distinct.len() as u64
    }

    /// Merge a value into fixed-size state with the descriptor's CRDT
    /// merge (leader-side delta replay).
    pub fn merge_fixed(&mut self, key: StateKey, src: &[u8]) {
        let merge = self.desc.merge;
        self.rmw(key, |dst| merge(dst, src));
        self.stats.merged_entries += 1;
    }

    /// Read fixed-size state.
    pub fn get(&self, key: StateKey) -> Option<&[u8]> {
        self.find(key).map(|addr| self.log.value(addr))
    }

    /// Visit every element of a holistic key's chain (newest first).
    pub fn for_each_element(&self, key: StateKey, mut f: impl FnMut(&[u8])) {
        let mut addr = match self.find(key) {
            Some(a) => a,
            None => return,
        };
        loop {
            let h = self.log.header(addr);
            f(self.log.value(addr));
            if h.prev == NO_PREV || h.prev < self.epoch_begin {
                break;
            }
            addr = h.prev;
        }
    }

    /// Number of elements in a holistic key's chain.
    pub fn element_count(&self, key: StateKey) -> usize {
        let mut n = 0;
        self.for_each_element(key, |_| n += 1);
        n
    }

    /// Visit every live key with the address of its newest entry.
    pub fn for_each_key(&self, mut f: impl FnMut(StateKey, u64)) {
        let log = &self.log;
        self.index.for_each(|addr| f(log.key_at(addr), addr));
    }

    /// Close the current epoch (§7.2.2 steps ①–④ minus the wire transfer):
    /// visit every entry written since the previous boundary — the delta —
    /// then invalidate the shipped region so future RMWs restart from the
    /// CRDT zero value, and reclaim its memory. Returns the epoch number
    /// that was closed.
    pub fn close_epoch(&mut self, mut visit: impl FnMut(&EntryHeader, &[u8])) -> u64 {
        let closed = self.epoch;
        self.log
            .for_each_in(self.epoch_begin, self.log.tail(), |_, h, v| visit(h, v));
        // Invalidate: every index entry points into [epoch_begin, tail)
        // (older regions were invalidated by previous epochs), so the whole
        // index goes; all log entries die and sealed segments are freed.
        self.index.clear();
        self.log.kill_all();
        self.log.reclaim();
        self.epoch_begin = self.log.tail();
        self.epoch += 1;
        self.stats.epochs += 1;
        closed
    }

    /// Fast-forward the epoch counter to at least `epoch` (crash recovery).
    ///
    /// A promoted replacement node restarts with fresh fragments but must
    /// not reuse epoch ids its predecessor already shipped: receivers
    /// deduplicate replayed epochs by id, so a reused id would be silently
    /// discarded. Called once after restore, before any new epoch closes.
    pub fn resume_at_epoch(&mut self, epoch: u64) {
        if epoch > self.epoch {
            self.epoch = epoch;
        }
    }

    /// Whether this fragment has accumulated updates in the open epoch.
    pub fn is_dirty(&self) -> bool {
        self.log.tail() > self.epoch_begin
    }

    /// Size in bytes of the open epoch's delta.
    pub fn dirty_bytes(&self) -> u64 {
        self.log.tail() - self.epoch_begin
    }

    /// Remove a key and mark its entries dead (window GC after trigger).
    pub fn remove(&mut self, key: StateKey) -> bool {
        let log = &self.log;
        let removed = self
            .index
            .remove(hash_key(key), |a| log.key_at(a) == key);
        match removed {
            Some(mut addr) => {
                loop {
                    let h = self.log.header(addr);
                    self.log.note_dead(addr);
                    if h.prev == NO_PREV || h.prev < self.epoch_begin {
                        break;
                    }
                    addr = h.prev;
                }
                self.log.reclaim();
                true
            }
            None => false,
        }
    }
}

impl std::fmt::Debug for Partition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Partition")
            .field("id", &self.id)
            .field("epoch", &self.epoch)
            .field("keys", &self.index.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crdts::CounterCrdt;
    use crate::descriptor::appended_descriptor;

    fn counter_part() -> Partition {
        Partition::with_segment_size(0, CounterCrdt::descriptor(), 256)
    }

    #[test]
    fn rmw_creates_then_updates_in_place() {
        let mut p = counter_part();
        p.rmw(5, |v| CounterCrdt::add(v, 3));
        p.rmw(5, |v| CounterCrdt::add(v, 4));
        assert_eq!(p.get(5).map(CounterCrdt::get), Some(7));
        assert_eq!(p.stats.rmw_inserts, 1);
        assert_eq!(p.stats.rmw_hits, 1);
        assert_eq!(p.key_count(), 1);
    }

    #[test]
    fn many_keys_roundtrip() {
        let mut p = counter_part();
        for k in 0..5000u128 {
            p.rmw(k, |v| CounterCrdt::add(v, k as u64));
        }
        for k in (0..5000u128).rev() {
            assert_eq!(p.get(k).map(CounterCrdt::get), Some(k as u64), "key {k}");
        }
        assert_eq!(p.get(5001), None);
    }

    #[test]
    fn close_epoch_ships_delta_and_resets_state() {
        let mut p = counter_part();
        p.rmw(1, |v| CounterCrdt::add(v, 10));
        p.rmw(2, |v| CounterCrdt::add(v, 20));
        assert!(p.is_dirty());

        let mut shipped = Vec::new();
        let closed = p.close_epoch(|h, v| shipped.push((h.key, CounterCrdt::get(v))));
        assert_eq!(closed, 0);
        assert_eq!(p.epoch(), 1);
        shipped.sort();
        assert_eq!(shipped, vec![(1, 10), (2, 20)]);

        // Post-epoch: RMWs restart from the CRDT zero value (paper §7.2.2:
        // "discarding transferred content is safe, as RMW operations
        // restart from a zero value").
        assert!(!p.is_dirty());
        assert_eq!(p.get(1), None);
        p.rmw(1, |v| CounterCrdt::add(v, 5));
        assert_eq!(p.get(1).map(CounterCrdt::get), Some(5));

        let mut shipped2 = Vec::new();
        p.close_epoch(|h, v| shipped2.push((h.key, CounterCrdt::get(v))));
        assert_eq!(shipped2, vec![(1, 5)], "only the new delta ships");
    }

    #[test]
    fn close_epoch_reclaims_memory() {
        let mut p = counter_part();
        for k in 0..1000u128 {
            p.rmw(k, |v| CounterCrdt::add(v, 1));
        }
        let resident_before = p.resident_bytes();
        p.close_epoch(|_, _| {});
        assert!(
            p.resident_bytes() < resident_before / 2,
            "epoch close must free shipped segments: {} -> {}",
            resident_before,
            p.resident_bytes()
        );
    }

    #[test]
    fn append_chains_and_iterates_newest_first() {
        let mut p = Partition::with_segment_size(0, appended_descriptor(), 512);
        p.append(9, b"one");
        p.append(9, b"two");
        p.append(9, b"three");
        p.append(8, b"other");
        let mut got = Vec::new();
        p.for_each_element(9, |e| got.push(e.to_vec()));
        assert_eq!(got, vec![b"three".to_vec(), b"two".to_vec(), b"one".to_vec()]);
        assert_eq!(p.element_count(9), 3);
        assert_eq!(p.element_count(8), 1);
        assert_eq!(p.element_count(7), 0);
    }

    #[test]
    fn appended_delta_ships_every_element() {
        let mut p = Partition::with_segment_size(0, appended_descriptor(), 512);
        p.append(1, b"a");
        p.append(1, b"b");
        p.append(2, b"c");
        let mut shipped = Vec::new();
        p.close_epoch(|h, v| shipped.push((h.key, v.to_vec())));
        assert_eq!(shipped.len(), 3);
        assert!(shipped.contains(&(1, b"a".to_vec())));
        assert!(shipped.contains(&(1, b"b".to_vec())));
        assert!(shipped.contains(&(2, b"c".to_vec())));
        // Chains restart cleanly after invalidation.
        p.append(1, b"d");
        assert_eq!(p.element_count(1), 1);
    }

    #[test]
    fn merge_fixed_applies_crdt_merge() {
        let mut p = counter_part();
        p.rmw(1, |v| CounterCrdt::add(v, 10));
        p.merge_fixed(1, &32u64.to_le_bytes());
        assert_eq!(p.get(1).map(CounterCrdt::get), Some(42));
        p.merge_fixed(2, &7u64.to_le_bytes());
        assert_eq!(p.get(2).map(CounterCrdt::get), Some(7));
    }

    #[test]
    fn remove_frees_key_and_chain() {
        let mut p = Partition::with_segment_size(0, appended_descriptor(), 256);
        for i in 0..20u64 {
            p.append(1, &i.to_le_bytes());
        }
        p.append(2, b"keep");
        assert!(p.remove(1));
        assert!(!p.remove(1));
        assert_eq!(p.element_count(1), 0);
        assert_eq!(p.element_count(2), 1);
        assert_eq!(p.key_count(), 1);
    }

    #[test]
    fn merge_batch_is_bit_identical_to_per_record_rmw() {
        let mut batched = counter_part();
        let mut serial = counter_part();
        let records: Vec<u128> = (0..400u128).map(|i| i * i % 37).collect();

        // Per-record path.
        for &k in &records {
            serial.rmw(k, |v| CounterCrdt::add(v, 2));
        }
        // Combined path: fold the whole "batch", flush once.
        let mut comb = WriteCombiner::new(CounterCrdt::descriptor(), 64);
        for &k in &records {
            assert!(comb.fold(k, |v| CounterCrdt::add(v, 2)));
        }
        let sel: Vec<u32> = (0..comb.len() as u32).collect();
        batched.merge_batch(&comb, &sel);

        assert_eq!(batched.key_count(), serial.key_count());
        for &k in &records {
            assert_eq!(batched.get(k), serial.get(k), "key {k}");
        }
        // A second flush must hit (in-place merge), not duplicate.
        let mut comb2 = WriteCombiner::new(CounterCrdt::descriptor(), 64);
        for &k in &records {
            assert!(comb2.fold(k, |v| CounterCrdt::add(v, 1)));
        }
        batched.merge_batch(&comb2, &sel);
        for &k in &records {
            serial.rmw(k, |v| CounterCrdt::add(v, 1));
        }
        for &k in &records {
            assert_eq!(batched.get(k), serial.get(k));
        }
        assert_eq!(batched.stats.rmw_inserts, serial.stats.rmw_inserts);
    }

    #[test]
    fn append_batch_matches_per_record_append() {
        let mut batched = Partition::with_segment_size(0, appended_descriptor(), 512);
        let mut serial = Partition::with_segment_size(0, appended_descriptor(), 512);
        let keys: Vec<StateKey> = vec![9, 8, 9, 9, 7, 8, 9];
        let stride = 4usize;
        let mut elems = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            let e = [(i as u8), k as u8, 0xAB, 0xCD];
            elems.extend_from_slice(&e);
            serial.append(k, &e);
        }
        batched.append_batch(&keys, &elems, stride);

        assert_eq!(batched.key_count(), serial.key_count());
        assert_eq!(batched.stats.appends, serial.stats.appends);
        for k in [7u128, 8, 9] {
            let mut a = Vec::new();
            let mut b = Vec::new();
            batched.for_each_element(k, |e| a.push(e.to_vec()));
            serial.for_each_element(k, |e| b.push(e.to_vec()));
            assert_eq!(a, b, "chain for key {k} diverged");
        }
        // Deltas ship identically too.
        let mut da = Vec::new();
        let mut db = Vec::new();
        batched.close_epoch(|h, v| da.push((h.key, v.to_vec())));
        serial.close_epoch(|h, v| db.push((h.key, v.to_vec())));
        assert_eq!(da, db);
    }

    #[test]
    fn for_each_key_visits_live_keys() {
        let mut p = counter_part();
        for k in 0..10u128 {
            p.rmw(k, |v| CounterCrdt::add(v, 1));
        }
        p.remove(3);
        let mut keys = Vec::new();
        p.for_each_key(|k, _| keys.push(k));
        keys.sort();
        let expect: Vec<u128> = (0..10).filter(|&k| k != 3).collect();
        assert_eq!(keys, expect);
    }
}
