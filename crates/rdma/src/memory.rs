//! Registered memory regions.
//!
//! An [`Mr`] is a handle to a pinned, registered buffer. The owning node
//! accesses it directly (local loads/stores); remote nodes may only reach it
//! through a queue pair using the region's [`RemoteKey`]. This mirrors the
//! ibverbs model where `ibv_reg_mr` yields an `lkey` for local scatter/gather
//! entries and an `rkey` that is shipped to peers out of band.

use std::cell::RefCell;
use std::rc::Rc;

use crate::error::{RdmaError, Result};
use crate::fabric::NodeId;

/// The token a peer needs to address this region in one-sided verbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteKey {
    /// Node owning the region.
    pub node: NodeId,
    /// Region key, unique per node.
    pub rkey: u32,
}

pub(crate) type Bytes = Rc<RefCell<Box<[u8]>>>;

/// A registered memory region.
///
/// Cloning an `Mr` clones the *handle*; all clones view the same memory,
/// exactly like multiple references to one pinned allocation.
#[derive(Clone)]
pub struct Mr {
    node: NodeId,
    rkey: u32,
    data: Bytes,
}

impl Mr {
    pub(crate) fn new(node: NodeId, rkey: u32, len: usize) -> Self {
        Mr {
            node,
            rkey,
            data: Rc::new(RefCell::new(vec![0u8; len].into_boxed_slice())),
        }
    }

    /// The remote key peers use to address this region.
    pub fn remote_key(&self) -> RemoteKey {
        RemoteKey {
            node: self.node,
            rkey: self.rkey,
        }
    }

    /// Owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.data.borrow().len()
    }

    /// Whether the region is empty (zero-length registrations are legal).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bounds-check an access.
    pub fn check(&self, offset: usize, len: usize) -> Result<()> {
        let region_len = self.len();
        if offset.checked_add(len).is_none_or(|end| end > region_len) {
            return Err(RdmaError::OutOfBounds {
                region_len,
                offset,
                len,
            });
        }
        Ok(())
    }

    /// Local read: copy `out.len()` bytes starting at `offset` into `out`.
    pub fn read(&self, offset: usize, out: &mut [u8]) -> Result<()> {
        self.check(offset, out.len())?;
        out.copy_from_slice(&self.data.borrow()[offset..offset + out.len()]);
        Ok(())
    }

    /// Local write: copy `src` into the region at `offset`.
    pub fn write(&self, offset: usize, src: &[u8]) -> Result<()> {
        self.check(offset, src.len())?;
        self.data.borrow_mut()[offset..offset + src.len()].copy_from_slice(src);
        Ok(())
    }

    /// Run `f` with a shared view of a sub-range (cheap polling access).
    pub fn with<R>(&self, offset: usize, len: usize, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        self.check(offset, len)?;
        let data = self.data.borrow();
        Ok(f(&data[offset..offset + len]))
    }

    /// Run `f` with a mutable view of a sub-range (zero-copy fill before a
    /// send, exactly how the RDMA channel stages payloads).
    pub fn with_mut<R>(
        &self,
        offset: usize,
        len: usize,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R> {
        self.check(offset, len)?;
        let mut data = self.data.borrow_mut();
        Ok(f(&mut data[offset..offset + len]))
    }

    /// Read a single byte — the footer-polling primitive. Panics on OOB,
    /// which is always a protocol bug.
    #[inline]
    pub fn poll_byte(&self, offset: usize) -> u8 {
        self.data.borrow()[offset]
    }

    /// Read a little-endian u64 at `offset` (credit counters, sequence
    /// numbers).
    #[inline]
    pub fn read_u64(&self, offset: usize) -> u64 {
        let data = self.data.borrow();
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&data[offset..offset + 8]);
        u64::from_le_bytes(bytes)
    }

    /// Write a little-endian u64 at `offset`.
    #[inline]
    pub fn write_u64(&self, offset: usize, v: u64) {
        self.data.borrow_mut()[offset..offset + 8].copy_from_slice(&v.to_le_bytes());
    }
}

impl std::fmt::Debug for Mr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mr")
            .field("node", &self.node)
            .field("rkey", &self.rkey)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mr(len: usize) -> Mr {
        Mr::new(NodeId(0), 1, len)
    }

    #[test]
    fn read_write_roundtrip() {
        let m = mr(64);
        m.write(8, &[1, 2, 3, 4]).unwrap();
        let mut out = [0u8; 4];
        m.read(8, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn bounds_are_enforced() {
        let m = mr(16);
        assert!(m.write(14, &[0; 4]).is_err());
        assert!(m.read(16, &mut [0; 1]).is_err());
        assert!(m.check(usize::MAX, 2).is_err(), "overflow must not wrap");
        assert!(m.check(16, 0).is_ok(), "empty access at end is legal");
    }

    #[test]
    fn clones_alias_the_same_memory() {
        let a = mr(8);
        let b = a.clone();
        a.write_u64(0, 0xDEAD_BEEF);
        assert_eq!(b.read_u64(0), 0xDEAD_BEEF);
        assert_eq!(a.remote_key(), b.remote_key());
    }

    #[test]
    fn with_mut_allows_in_place_fill() {
        let m = mr(32);
        m.with_mut(4, 8, |s| s.copy_from_slice(b"slashspe")).unwrap();
        m.with(4, 8, |s| assert_eq!(s, b"slashspe")).unwrap();
        assert_eq!(m.poll_byte(11), b'e');
    }

    #[test]
    fn u64_helpers() {
        let m = mr(16);
        m.write_u64(8, u64::MAX - 3);
        assert_eq!(m.read_u64(8), u64::MAX - 3);
    }
}
