#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # slash-perfmodel — micro-architecture proxies and reporting
//!
//! Derives the paper's drill-down artifacts (Fig. 9/10 execution
//! breakdowns, Table 1 resource-utilization rows) from the software
//! counters the engines accumulate, and provides the table/CSV emitters
//! the `repro` harness prints.
//!
//! The mapping from engine actions to top-down categories is documented on
//! [`slash_core::metrics::CostCategory`]; this crate only *presents* those
//! counters. No hardware PMU is read anywhere — see DESIGN.md for why this
//! substitution preserves the paper's (relative) conclusions.

pub mod analytic;
pub mod report;
pub mod uarch;

pub use analytic::{predict_micro_direct, predict_partitioned_receiver, predict_partitioned_sender, predict_slash_agg, predict_slash_agg_combined, AggWorkloadShape, NodePrediction};
pub use report::{format_table, write_csv, Table};
pub use slash_core::TESTBED_CLOCK_GHZ;
pub use uarch::{breakdown_row, table1_row, BreakdownRow, Table1Row};
