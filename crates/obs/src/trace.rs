//! Structured trace events keyed on the desim virtual clock.
//!
//! Events are recorded into a bounded ring buffer: each `record` is O(1)
//! and the memory footprint is fixed at construction, so tracing can stay
//! enabled for multi-million-event runs without distorting the simulation.
//! Every timestamp is a [`SimTime`] — never wall clock — so the same seed
//! produces the same event stream byte for byte.

use slash_desim::SimTime;

/// Maximum key/value argument pairs kept per event (excess are dropped).
pub const MAX_ARGS: usize = 4;

/// Event category: which subsystem emitted the event.
///
/// Categories map 1:1 onto the `cat` field of the Chrome trace-event
/// export, so Perfetto can filter per subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cat {
    /// Operator pipeline work on a worker core (batches, triggers, pumps).
    Operator,
    /// RDMA channel verbs: one-sided writes, polls, credit traffic.
    Verb,
    /// Epoch-coherence phases: propose, merge, install.
    Epoch,
    /// Stage-segmented latency attribution spans (see [`Stage`]).
    Stage,
    /// Invariant failures and decode errors (flight-recorder markers).
    Fault,
}

impl Cat {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Cat::Operator => "operator",
            Cat::Verb => "verb",
            Cat::Epoch => "epoch",
            Cat::Stage => "stage",
            Cat::Fault => "fault",
        }
    }
}

/// Named segment of the end-to-end record-latency budget.
///
/// Stage spans are emitted as open/close pairs (`Obs::span_open` /
/// `Obs::span_close`) and aggregated into the per-stage
/// `stage_latency_ns` registry histogram, so a p99.99 breach points at
/// the guilty segment instead of just the end-to-end number. The
/// taxonomy follows a record's life: source ingest, channel transit,
/// SSB state apply, window close, epoch merge, result emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Source ingest + per-record pipeline work (parse/filter/project).
    Source,
    /// Buffer residence between a channel's sender stamp and its consume.
    ChannelTransit,
    /// State updates against the SSB (combiner folds, RMW/append, memory stall).
    SsbApply,
    /// Epoch-close scan and delta encode at the window boundary.
    WindowClose,
    /// Delta shipping and remote-epoch merge on the coherence path.
    EpochMerge,
    /// Trigger sweep and sink emission of window results.
    ResultEmit,
}

impl Stage {
    /// Every stage, in record-lifecycle order.
    pub const ALL: [Stage; 6] = [
        Stage::Source,
        Stage::ChannelTransit,
        Stage::SsbApply,
        Stage::WindowClose,
        Stage::EpochMerge,
        Stage::ResultEmit,
    ];

    /// Stable snake_case name used as the `stage_latency_ns` label and in
    /// `BENCH_latency.json`.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Source => "source",
            Stage::ChannelTransit => "channel_transit",
            Stage::SsbApply => "ssb_apply",
            Stage::WindowClose => "window_close",
            Stage::EpochMerge => "epoch_merge",
            Stage::ResultEmit => "result_emit",
        }
    }

    /// Whether this stage's samples are per-record slices of a worker's
    /// busy window. Record-path stage *means* sum to at most the
    /// end-to-end `record_latency_ns` mean (integer truncation only);
    /// `channel_transit` is per-buffer residence in a different unit and
    /// is excluded from that identity.
    pub fn on_record_path(self) -> bool {
        !matches!(self, Stage::ChannelTransit)
    }
}

/// One trace event. `dur == 0` renders as an instant, otherwise as a
/// complete span of `dur` nanoseconds starting at `ts`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotone sequence number (total order of emission).
    pub seq: u64,
    /// Category of the emitting subsystem.
    pub cat: Cat,
    /// Static event name (e.g. `"batch"`, `"write"`, `"epoch-merge"`).
    pub name: &'static str,
    /// Process lane in the export; Slash uses the node id.
    pub pid: u32,
    /// Thread lane in the export; worker index or peer node.
    pub tid: u32,
    /// Virtual start time.
    pub ts: SimTime,
    /// Span duration in nanoseconds (0 for instants).
    pub dur: u64,
    /// Number of live entries in `args`.
    pub n_args: u8,
    /// Key/value arguments (first `n_args` are live).
    pub args: [(&'static str, u64); MAX_ARGS],
}

impl TraceEvent {
    /// The live argument pairs.
    pub fn args(&self) -> &[(&'static str, u64)] {
        let n = (self.n_args as usize).min(MAX_ARGS);
        &self.args[..n]
    }
}

/// Bounded ring buffer of trace events.
#[derive(Debug)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    capacity: usize,
    next_seq: u64,
}

impl TraceRing {
    /// A ring holding at most `capacity` events (rounded up to 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            buf: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            next_seq: 0,
        }
    }

    /// Record one event; O(1), overwriting the oldest once full.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        cat: Cat,
        name: &'static str,
        pid: u32,
        tid: u32,
        ts: SimTime,
        dur: u64,
        args: &[(&'static str, u64)],
    ) {
        let mut packed = [("", 0u64); MAX_ARGS];
        let n = args.len().min(MAX_ARGS);
        packed[..n].copy_from_slice(&args[..n]);
        let ev = TraceEvent {
            seq: self.next_seq,
            cat,
            name,
            pid,
            tid,
            ts,
            dur,
            n_args: n as u8,
            args: packed,
        };
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            let slot = (self.next_seq % self.capacity as u64) as usize;
            self.buf[slot] = ev;
        }
        self.next_seq += 1;
    }

    /// Total events ever recorded (including any overwritten).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Events currently retained, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        if self.buf.len() < self.capacity {
            return self.buf.clone();
        }
        let head = (self.next_seq % self.capacity as u64) as usize;
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[head..]);
        out.extend_from_slice(&self.buf[..head]);
        out
    }

    /// The last `n` retained events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<TraceEvent> {
        let snap = self.snapshot();
        let skip = snap.len().saturating_sub(n);
        snap[skip..].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ring: &mut TraceRing, i: u64) {
        ring.record(
            Cat::Verb,
            "write",
            0,
            1,
            SimTime::from_nanos(i * 10),
            0,
            &[("seq", i)],
        );
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut ring = TraceRing::new(4);
        for i in 0..10 {
            ev(&mut ring, i);
        }
        assert_eq!(ring.recorded(), 10);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 4);
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        let tail = ring.tail(2);
        assert_eq!(tail[0].seq, 8);
        assert_eq!(tail[1].seq, 9);
    }

    #[test]
    fn args_are_truncated_not_dropped() {
        let mut ring = TraceRing::new(2);
        let many = [("a", 1), ("b", 2), ("c", 3), ("d", 4), ("e", 5)];
        ring.record(Cat::Epoch, "x", 0, 0, SimTime::ZERO, 5, &many);
        let snap = ring.snapshot();
        assert_eq!(snap[0].args().len(), MAX_ARGS);
        assert_eq!(snap[0].args()[0], ("a", 1));
        assert_eq!(snap[0].dur, 5);
    }
}
