//! Software performance counters — the substitute for hardware PMUs.
//!
//! The paper's drill-down (§8.3.3–8.3.4, Fig. 9/10, Tab. 1) uses top-down
//! micro-architecture analysis from hardware counters. Without PMUs we
//! account the same quantities in software: every charged cost carries a
//! [`CostCategory`] matching the top-down taxonomy, instruction counts are
//! attributed per operation class, and cache misses come from the cache
//! model. The mapping is structural, not measured — but so are the paper's
//! conclusions (partitioning is front-end-heavy, state access is
//! memory-bound), which is what the reproduction checks.

use slash_desim::SimTime;

use crate::cost::TESTBED_CLOCK_GHZ;

/// Top-down execution categories (Yasin's taxonomy, as used in Fig. 9/10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostCategory {
    /// Useful work: µ-ops that retire.
    Retiring,
    /// Instruction-supply stalls (big code footprint, branchy partitioning).
    FrontEnd,
    /// Data-supply stalls (cache misses, atomics on state).
    MemoryBound,
    /// Execution-resource stalls (pause-loop polling, waiting on peers).
    CoreBound,
    /// Wasted work from branch mispredictions.
    BadSpeculation,
}

/// All categories, in display order.
pub const CATEGORIES: [CostCategory; 5] = [
    CostCategory::Retiring,
    CostCategory::FrontEnd,
    CostCategory::MemoryBound,
    CostCategory::CoreBound,
    CostCategory::BadSpeculation,
];

/// Accumulated counters for one engine (node or thread group).
///
/// Counter fields stay public for *reading* (figures and tables consume
/// them directly), but all mutation goes through the facade methods below
/// — `slash-lint`'s `metrics-facade` rule flags direct field writes, so
/// every counter bump is also visible to the observability registry.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// Virtual nanoseconds per category.
    ns: [f64; 5],
    /// Instruction-count proxy.
    pub instructions: u64,
    /// Records fully processed.
    pub records: u64,
    /// Cache-line misses (fractional expectation, from the cache model).
    pub l1_misses: f64,
    /// L2 misses.
    pub l2_misses: f64,
    /// LLC misses.
    pub llc_misses: f64,
    /// Bytes of memory-bandwidth consumed.
    pub mem_bytes: u64,
    /// Bytes sent over the network by this engine.
    pub net_bytes: u64,
    /// Updates folded into per-worker write combiners (batch-local
    /// pre-aggregation hits that never reached the SSB index).
    pub combiner_folds: u64,
    /// Distinct-key partials flushed from write combiners into the SSB.
    pub combiner_flushes: u64,
    /// SSB state updates applied (RMW/append survivors) — the per-key heat
    /// sketch and per-partition telemetry normalize against this.
    pub state_updates: u64,
    /// Clock used for ns↔cycle conversion, GHz.
    clock_ghz: f64,
}

impl Default for EngineMetrics {
    fn default() -> Self {
        EngineMetrics {
            ns: [0.0; 5],
            instructions: 0,
            records: 0,
            l1_misses: 0.0,
            l2_misses: 0.0,
            llc_misses: 0.0,
            mem_bytes: 0,
            net_bytes: 0,
            combiner_folds: 0,
            combiner_flushes: 0,
            state_updates: 0,
            clock_ghz: TESTBED_CLOCK_GHZ,
        }
    }
}

fn idx(c: CostCategory) -> usize {
    match c {
        CostCategory::Retiring => 0,
        CostCategory::FrontEnd => 1,
        CostCategory::MemoryBound => 2,
        CostCategory::CoreBound => 3,
        CostCategory::BadSpeculation => 4,
    }
}

impl EngineMetrics {
    /// Charge `ns` of virtual time to a category.
    #[inline]
    pub fn charge(&mut self, cat: CostCategory, ns: f64) {
        self.ns[idx(cat)] += ns;
    }

    /// Charge an instruction-count proxy.
    #[inline]
    pub fn instr(&mut self, n: u64) {
        self.instructions += n;
    }

    /// Set the clock used for cycle accounting (defaults to the testbed's
    /// [`TESTBED_CLOCK_GHZ`]).
    pub fn set_clock_ghz(&mut self, ghz: f64) {
        self.clock_ghz = ghz;
    }

    /// Clock used for cycle accounting, GHz.
    pub fn clock_ghz(&self) -> f64 {
        self.clock_ghz
    }

    /// Overwrite the processed-record count (the cluster driver sets the
    /// aggregate after absorbing per-node counters).
    #[inline]
    pub fn set_records(&mut self, n: u64) {
        self.records = n;
    }

    /// Count `n` more fully processed records.
    #[inline]
    pub fn add_records(&mut self, n: u64) {
        self.records += n;
    }

    /// Charge bytes of memory-bandwidth traffic.
    #[inline]
    pub fn add_mem_bytes(&mut self, bytes: u64) {
        self.mem_bytes += bytes;
    }

    /// Charge bytes sent over the network.
    #[inline]
    pub fn add_net_bytes(&mut self, bytes: u64) {
        self.net_bytes += bytes;
    }

    /// Charge expected cache misses (fractional, from the cache model).
    #[inline]
    pub fn add_cache_misses(&mut self, l1: f64, l2: f64, llc: f64) {
        self.l1_misses += l1;
        self.l2_misses += l2;
        self.llc_misses += llc;
    }

    /// Count write-combiner activity: `folds` batch-local update
    /// absorptions, of which `flushes` distinct partials reached the SSB.
    #[inline]
    pub fn add_combiner_ops(&mut self, folds: u64, flushes: u64) {
        self.combiner_folds += folds;
        self.combiner_flushes += flushes;
    }

    /// Count `n` more SSB state updates (filter survivors applied to state).
    #[inline]
    pub fn add_state_updates(&mut self, n: u64) {
        self.state_updates += n;
    }

    /// Nanoseconds charged to a category.
    pub fn ns_of(&self, cat: CostCategory) -> f64 {
        self.ns[idx(cat)]
    }

    /// Total charged nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.ns.iter().sum()
    }

    /// Fraction of time per category, in [`CATEGORIES`] order.
    pub fn breakdown(&self) -> [f64; 5] {
        let total = self.total_ns().max(1e-9);
        let mut out = [0.0; 5];
        for (i, v) in self.ns.iter().enumerate() {
            out[i] = v / total;
        }
        out
    }

    /// Cycles proxy at the configured clock (testbed default: 2.4 GHz).
    pub fn cycles(&self) -> f64 {
        self.total_ns() * self.clock_ghz
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles() == 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles()
        }
    }

    /// Per-record derived metrics `(instr, cycles, l1, l2, llc)`.
    pub fn per_record(&self) -> (f64, f64, f64, f64, f64) {
        let r = self.records.max(1) as f64;
        (
            self.instructions as f64 / r,
            self.cycles() / r,
            self.l1_misses / r,
            self.l2_misses / r,
            self.llc_misses / r,
        )
    }

    /// Aggregate memory bandwidth over a run duration.
    pub fn mem_bandwidth(&self, elapsed: SimTime) -> f64 {
        if elapsed == SimTime::ZERO {
            0.0
        } else {
            self.mem_bytes as f64 / elapsed.as_secs_f64()
        }
    }

    /// Merge another engine's counters into this one.
    pub fn absorb(&mut self, other: &EngineMetrics) {
        for i in 0..5 {
            self.ns[i] += other.ns[i];
        }
        self.instructions += other.instructions;
        self.records += other.records;
        self.l1_misses += other.l1_misses;
        self.l2_misses += other.l2_misses;
        self.llc_misses += other.llc_misses;
        self.mem_bytes += other.mem_bytes;
        self.net_bytes += other.net_bytes;
        self.combiner_folds += other.combiner_folds;
        self.combiner_flushes += other.combiner_flushes;
        self.state_updates += other.state_updates;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums_to_one() {
        let mut m = EngineMetrics::default();
        m.charge(CostCategory::Retiring, 30.0);
        m.charge(CostCategory::MemoryBound, 50.0);
        m.charge(CostCategory::CoreBound, 20.0);
        let b = m.breakdown();
        assert!((b.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((b[0] - 0.3).abs() < 1e-9);
        assert!((b[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ipc_and_per_record() {
        let mut m = EngineMetrics::default();
        m.charge(CostCategory::Retiring, 100.0); // 240 cycles
        m.instr(120);
        m.records = 10;
        assert!((m.ipc() - 0.5).abs() < 1e-9);
        let (ins, cyc, ..) = m.per_record();
        assert!((ins - 12.0).abs() < 1e-9);
        assert!((cyc - 24.0).abs() < 1e-9);
    }

    #[test]
    fn cycles_follow_the_configured_clock() {
        let mut m = EngineMetrics::default();
        m.charge(CostCategory::Retiring, 100.0);
        // Default is the testbed constant, not a local hardcode.
        assert!((m.clock_ghz() - TESTBED_CLOCK_GHZ).abs() < 1e-12);
        assert!((m.cycles() - 100.0 * TESTBED_CLOCK_GHZ).abs() < 1e-9);
        m.set_clock_ghz(3.0);
        assert!((m.cycles() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn facade_mutators_accumulate() {
        let mut m = EngineMetrics::default();
        m.add_records(3);
        m.add_records(4);
        m.add_mem_bytes(100);
        m.add_net_bytes(50);
        m.add_cache_misses(1.0, 0.5, 0.25);
        assert_eq!(m.records, 7);
        m.set_records(9);
        assert_eq!(m.records, 9);
        assert_eq!(m.mem_bytes, 100);
        assert_eq!(m.net_bytes, 50);
        assert!((m.l1_misses - 1.0).abs() < 1e-12);
        assert!((m.llc_misses - 0.25).abs() < 1e-12);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = EngineMetrics::default();
        a.charge(CostCategory::FrontEnd, 10.0);
        a.records = 5;
        let mut b = EngineMetrics::default();
        b.charge(CostCategory::FrontEnd, 15.0);
        b.records = 7;
        b.mem_bytes = 100;
        a.absorb(&b);
        assert_eq!(a.ns_of(CostCategory::FrontEnd), 25.0);
        assert_eq!(a.records, 12);
        assert_eq!(a.mem_bytes, 100);
    }

    #[test]
    fn mem_bandwidth_over_elapsed() {
        let m = EngineMetrics {
            mem_bytes: 4_000_000_000,
            ..EngineMetrics::default()
        };
        let bw = m.mem_bandwidth(SimTime::from_secs(2));
        assert!((bw - 2e9).abs() < 1.0);
        assert_eq!(m.mem_bandwidth(SimTime::ZERO), 0.0);
    }
}
