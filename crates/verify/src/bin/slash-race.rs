//! `slash-race` — sweep the protocol scenarios across tie-break schedules.
//!
//! ```text
//! slash-race [--seeds N]
//! ```
//!
//! Runs the channel and coherence scenarios under `N` tie-break policies
//! (FIFO, LIFO, and seeded permutations; default 128), printing how many
//! distinct schedules were explored and any invariant violations. Exit
//! codes: 0 all invariants hold and coverage is sufficient, 1 otherwise,
//! 2 usage error.

use std::process::ExitCode;

use slash_verify::race::{explore, Exploration};
use slash_verify::scenarios::{ChannelScenario, CoherenceScenario};

/// Minimum distinct schedules per scenario for a full-size sweep.
const MIN_DISTINCT: usize = 100;

fn gate(e: &Exploration, seeds: u64) -> bool {
    let needed = if seeds as usize > MIN_DISTINCT + 2 {
        MIN_DISTINCT
    } else {
        // Small sweeps (e.g. smoke runs) still must mostly diverge.
        (seeds as usize / 2).max(1)
    };
    e.clean() && e.distinct_schedules >= needed
}

fn main() -> ExitCode {
    let mut seeds: u64 = 128;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seeds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => seeds = n,
                None => {
                    eprintln!("slash-race: --seeds requires a number");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: slash-race [--seeds N]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("slash-race: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let chan = explore("channel-protocol", seeds, |p| ChannelScenario::default().run(p));
    print!("{}", chan.render_human());
    let coh = explore("epoch-coherence", seeds, |p| CoherenceScenario::default().run(p));
    print!("{}", coh.render_human());

    let ok = gate(&chan, seeds) && gate(&coh, seeds);
    if ok {
        println!("slash-race: PASS");
        ExitCode::SUCCESS
    } else {
        println!("slash-race: FAIL");
        ExitCode::FAILURE
    }
}
