//! Top-down breakdown rows (Fig. 9/10) and Table 1 rows.

use slash_core::metrics::EngineMetrics;
use slash_desim::SimTime;

/// One bar of the execution-breakdown figures: the fraction of execution
/// time per top-down category for one engine role.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRow {
    /// Label, e.g. "UpPar sender (2 thr)".
    pub label: String,
    /// Fraction of time retiring µ-ops.
    pub retiring: f64,
    /// Front-end-bound fraction.
    pub front_end: f64,
    /// Memory-bound fraction.
    pub memory_bound: f64,
    /// Core-bound fraction.
    pub core_bound: f64,
    /// Bad-speculation fraction.
    pub bad_speculation: f64,
}

impl BreakdownRow {
    /// Dominant category name.
    pub fn dominant(&self) -> &'static str {
        let cats = [
            (self.retiring, "retiring"),
            (self.front_end, "front-end"),
            (self.memory_bound, "memory-bound"),
            (self.core_bound, "core-bound"),
            (self.bad_speculation, "bad-speculation"),
        ];
        cats.iter()
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .expect("non-empty")
            .1
    }

    /// Stall fraction = everything that is not retiring.
    pub fn stalls(&self) -> f64 {
        1.0 - self.retiring
    }
}

/// Derive a breakdown row from engine counters.
pub fn breakdown_row(label: impl Into<String>, m: &EngineMetrics) -> BreakdownRow {
    let b = m.breakdown();
    BreakdownRow {
        label: label.into(),
        retiring: b[0],
        front_end: b[1],
        memory_bound: b[2],
        core_bound: b[3],
        bad_speculation: b[4],
    }
}

/// One row of Table 1: resource utilization per record.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Label, e.g. "Slash".
    pub label: String,
    /// Instructions per cycle (proxy).
    pub ipc: f64,
    /// Instructions per record.
    pub instr_per_rec: f64,
    /// Cycles per record (at the metrics' configured clock; testbed
    /// default [`slash_core::TESTBED_CLOCK_GHZ`]).
    pub cyc_per_rec: f64,
    /// L1d misses per record.
    pub l1_per_rec: f64,
    /// L2 misses per record.
    pub l2_per_rec: f64,
    /// LLC misses per record.
    pub llc_per_rec: f64,
    /// Aggregate memory bandwidth, GB/s.
    pub mem_bw_gbs: f64,
}

/// Derive a Table 1 row from engine counters over a run of `elapsed`
/// virtual time.
pub fn table1_row(label: impl Into<String>, m: &EngineMetrics, elapsed: SimTime) -> Table1Row {
    let (instr, cyc, l1, l2, llc) = m.per_record();
    Table1Row {
        label: label.into(),
        ipc: m.ipc(),
        instr_per_rec: instr,
        cyc_per_rec: cyc,
        l1_per_rec: l1,
        l2_per_rec: l2,
        llc_per_rec: llc,
        mem_bw_gbs: m.mem_bandwidth(elapsed) / 1e9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slash_core::metrics::CostCategory;

    fn metrics(retiring: f64, fe: f64, mem: f64, core: f64, bad: f64) -> EngineMetrics {
        let mut m = EngineMetrics::default();
        m.charge(CostCategory::Retiring, retiring);
        m.charge(CostCategory::FrontEnd, fe);
        m.charge(CostCategory::MemoryBound, mem);
        m.charge(CostCategory::CoreBound, core);
        m.charge(CostCategory::BadSpeculation, bad);
        m
    }

    #[test]
    fn breakdown_fractions_and_dominant() {
        let m = metrics(10.0, 60.0, 20.0, 5.0, 5.0);
        let row = breakdown_row("uppar sender", &m);
        assert!((row.front_end - 0.6).abs() < 1e-9);
        assert_eq!(row.dominant(), "front-end");
        assert!((row.stalls() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn table1_per_record_math() {
        let mut m = metrics(1000.0, 0.0, 0.0, 0.0, 0.0); // 2400 cycles
        m.instructions = 420;
        m.records = 10;
        m.l1_misses = 17.5;
        m.mem_bytes = 700_000_000;
        let row = table1_row("slash", &m, SimTime::from_millis(100));
        assert!((row.instr_per_rec - 42.0).abs() < 1e-9);
        assert!((row.cyc_per_rec - 240.0).abs() < 1e-9);
        assert!((row.l1_per_rec - 1.75).abs() < 1e-9);
        assert!((row.mem_bw_gbs - 7.0).abs() < 1e-9);
        assert!((row.ipc - 420.0 / 2400.0).abs() < 1e-9);
    }
}
