//! The fault-plan DSL: a deterministic schedule of fault events.

use slash_desim::{DetRng, SimTime};

/// What kind of fault to inject. All node indices are *fabric* node
/// indices (the same indices `Fabric::add_nodes` hands out, in order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The node crashes: volatile state (partitions, channel endpoints,
    /// workers) is lost and its NIC never answers again. Irreversible.
    NodeCrash {
        /// Fabric node that dies.
        node: usize,
    },
    /// The node's link goes down for `down_for`, then comes back. Work
    /// requests in the window are flushed; both endpoints stay alive.
    LinkFlap {
        /// Fabric node whose link flaps.
        node: usize,
        /// How long the link stays down.
        down_for: SimTime,
    },
    /// The node's link is degraded for `duration`: every message touching
    /// the node pays `extra` additional delay, but nothing is lost.
    LinkDegrade {
        /// Fabric node whose link degrades.
        node: usize,
        /// Extra per-message delay while degraded.
        extra: SimTime,
        /// How long the degradation lasts.
        duration: SimTime,
    },
    /// Completions on the node are delayed by `extra` for `duration` —
    /// the "slow NIC firmware" fault. Semantically identical traffic,
    /// later completion visibility.
    DelayedCompletions {
        /// Fabric node whose completions lag.
        node: usize,
        /// Extra completion delay.
        extra: SimTime,
        /// How long the lag lasts.
        duration: SimTime,
    },
}

impl FaultKind {
    /// The fabric node this fault targets.
    pub fn node(&self) -> usize {
        match *self {
            FaultKind::NodeCrash { node }
            | FaultKind::LinkFlap { node, .. }
            | FaultKind::LinkDegrade { node, .. }
            | FaultKind::DelayedCompletions { node, .. } => node,
        }
    }

    /// Stable kebab-case name (trace labels, reports).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::NodeCrash { .. } => "node-crash",
            FaultKind::LinkFlap { .. } => "link-flap",
            FaultKind::LinkDegrade { .. } => "link-degrade",
            FaultKind::DelayedCompletions { .. } => "delayed-completions",
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual time at which the fault strikes.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults, ordered by injection time.
///
/// Built with the fluent methods or generated from a seed; either way the
/// plan is plain data — arming it schedules only `SimTime` events, so the
/// whole run (including the faults) replays byte-identically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (the no-fault baseline).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add a node crash at `at`.
    pub fn crash(mut self, at: SimTime, node: usize) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::NodeCrash { node },
        });
        self.sorted()
    }

    /// Add a link flap at `at` lasting `down_for`.
    pub fn link_flap(mut self, at: SimTime, node: usize, down_for: SimTime) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::LinkFlap { node, down_for },
        });
        self.sorted()
    }

    /// Add link degradation at `at`: `extra` delay per message for
    /// `duration`.
    pub fn degrade(mut self, at: SimTime, node: usize, extra: SimTime, duration: SimTime) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::LinkDegrade {
                node,
                extra,
                duration,
            },
        });
        self.sorted()
    }

    /// Add delayed completions at `at`: `extra` delay for `duration`.
    pub fn delay_completions(
        mut self,
        at: SimTime,
        node: usize,
        extra: SimTime,
        duration: SimTime,
    ) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::DelayedCompletions {
                node,
                extra,
                duration,
            },
        });
        self.sorted()
    }

    /// Crash several distinct nodes at the same instant — the cascading
    /// building block for "a rack lost power". Simultaneous crashes mean a
    /// victim's designated checkpoint buddy may itself be dead, forcing
    /// buddy re-selection and recovery from an older (or the seed) copy.
    ///
    /// # Examples
    ///
    /// Nodes 1 and 2 die together at t = 400 µs, so node 1's ring buddy
    /// (node 2) is gone and promotion must fall back to another copy
    /// holder:
    ///
    /// ```
    /// use slash_chaos::FaultPlan;
    /// use slash_desim::SimTime;
    ///
    /// let plan = FaultPlan::new().concurrent(SimTime::from_micros(400), &[1, 2]);
    /// assert_eq!(plan.crashed_nodes(), vec![1, 2]);
    /// assert_eq!(plan.events().len(), 2);
    /// ```
    pub fn concurrent(mut self, at: SimTime, nodes: &[usize]) -> Self {
        for &node in nodes {
            self.events.push(FaultEvent {
                at,
                kind: FaultKind::NodeCrash { node },
            });
        }
        self.sorted()
    }

    /// Crash `first` at `first_at`, then crash `second` a `lag` later —
    /// aimed into the recovery window the first crash opens. Callers
    /// typically probe a single-crash run for its detection→commit span
    /// and pick `lag` to land mid-promotion; the promotion state machine
    /// must then restart from the durable checkpoint (recovery
    /// re-entrancy).
    ///
    /// # Examples
    ///
    /// Node 2 dies 150 µs into node 1's recovery:
    ///
    /// ```
    /// use slash_chaos::FaultPlan;
    /// use slash_desim::SimTime;
    ///
    /// let plan = FaultPlan::new().during_recovery(
    ///     SimTime::from_micros(200),
    ///     1,
    ///     SimTime::from_micros(150),
    ///     2,
    /// );
    /// assert_eq!(plan.crashed_nodes(), vec![1, 2]);
    /// let times: Vec<u64> = plan.events().iter().map(|e| e.at.as_nanos()).collect();
    /// assert_eq!(times, vec![200_000, 350_000]);
    /// ```
    pub fn during_recovery(
        self,
        first_at: SimTime,
        first: usize,
        lag: SimTime,
        second: usize,
    ) -> Self {
        self.crash(first_at, first).crash(first_at + lag, second)
    }

    fn sorted(mut self) -> Self {
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Generate a plan of `n_faults` random non-crash faults (flaps,
    /// degradations, delays) over `n_nodes` nodes within `[within/4,
    /// within)`, deterministically from `seed`. Crashes are excluded
    /// because they need a recovery-capable embedding; add them explicitly
    /// with [`FaultPlan::crash`].
    pub fn seeded(seed: u64, n_nodes: usize, n_faults: usize, within: SimTime) -> Self {
        let mut rng = DetRng::new(seed ^ 0xC4A0_5BAD);
        let span = within.as_nanos().max(4);
        let mut plan = FaultPlan::new();
        for _ in 0..n_faults {
            let at = SimTime::from_nanos(span / 4 + rng.next_below(span / 2).max(1));
            let node = rng.next_below(n_nodes as u64) as usize;
            let dur = SimTime::from_nanos(span / 16 + rng.next_below(span / 8).max(1));
            let extra = SimTime::from_micros(1 + rng.next_below(20));
            plan = match rng.next_below(3) {
                0 => plan.link_flap(at, node, dur),
                1 => plan.degrade(at, node, extra, dur),
                _ => plan.delay_completions(at, node, extra, dur),
            };
        }
        plan
    }

    /// The scheduled events, in injection order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan injects nothing (no-fault baseline).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Fabric nodes that crash under this plan, in injection order.
    pub fn crashed_nodes(&self) -> Vec<usize> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::NodeCrash { node } => Some(node),
                _ => None,
            })
            .collect()
    }

    /// A stable 64-bit digest of the plan (SplitMix64 fold over the
    /// encoded events). Two plans digest equal iff they schedule the same
    /// faults at the same times — recorded in golden-determinism tests.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0x5EED_0FCA_0500;
        let mut fold = |v: u64| {
            let mut z = h.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(v);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            h = z ^ (z >> 31);
        };
        for e in &self.events {
            fold(e.at.as_nanos());
            match e.kind {
                FaultKind::NodeCrash { node } => {
                    fold(1);
                    fold(node as u64);
                }
                FaultKind::LinkFlap { node, down_for } => {
                    fold(2);
                    fold(node as u64);
                    fold(down_for.as_nanos());
                }
                FaultKind::LinkDegrade {
                    node,
                    extra,
                    duration,
                } => {
                    fold(3);
                    fold(node as u64);
                    fold(extra.as_nanos());
                    fold(duration.as_nanos());
                }
                FaultKind::DelayedCompletions {
                    node,
                    extra,
                    duration,
                } => {
                    fold(4);
                    fold(node as u64);
                    fold(extra.as_nanos());
                    fold(duration.as_nanos());
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sorts_by_time() {
        let plan = FaultPlan::new()
            .link_flap(SimTime::from_millis(9), 1, SimTime::from_millis(1))
            .crash(SimTime::from_millis(3), 0);
        let times: Vec<u64> = plan.events().iter().map(|e| e.at.as_nanos()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(plan.crashed_nodes(), vec![0]);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let a = FaultPlan::seeded(7, 4, 6, SimTime::from_secs(1));
        let b = FaultPlan::seeded(7, 4, 6, SimTime::from_secs(1));
        let c = FaultPlan::seeded(8, 4, 6, SimTime::from_secs(1));
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_eq!(a.events().len(), 6);
        assert!(a.crashed_nodes().is_empty(), "seeded plans exclude crashes");
    }

    #[test]
    fn digest_distinguishes_kinds_and_times() {
        let t = SimTime::from_millis(5);
        let d = SimTime::from_millis(1);
        let flap = FaultPlan::new().link_flap(t, 0, d);
        let crash = FaultPlan::new().crash(t, 0);
        let later = FaultPlan::new().link_flap(t + d, 0, d);
        assert_ne!(flap.digest(), crash.digest());
        assert_ne!(flap.digest(), later.digest());
        assert_ne!(FaultPlan::new().digest(), flap.digest());
    }
}
