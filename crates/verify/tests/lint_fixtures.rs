//! Fixture tests for `slash-lint`: each test materialises a miniature
//! workspace under `CARGO_TARGET_TMPDIR` and runs the lint pass against it,
//! checking that every rule fires where it should and stays quiet where it
//! must (test code, strings, comments, waivers, allowlisted debt).

use std::fs;
use std::path::{Path, PathBuf};

use slash_verify::lint::{self, Rule, ALLOWLIST_PATH};

/// A crate root that satisfies the `crate-attrs` rule.
const CLEAN_ROOT: &str = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n//! Fixture.\n";

/// Materialise `files` under a fresh per-test directory and return its root.
fn fixture(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        fs::remove_dir_all(&root).unwrap();
    }
    // Every fixture needs the workspace-root crate the linter always scans.
    let mut all = vec![("src/lib.rs", CLEAN_ROOT)];
    all.extend(files.iter().copied());
    for (rel, content) in all {
        let p = root.join(rel);
        fs::create_dir_all(p.parent().unwrap()).unwrap();
        fs::write(p, content).unwrap();
    }
    root
}

fn rules_of(report: &lint::Report) -> Vec<(String, Rule)> {
    report
        .new_violations
        .iter()
        .map(|v| (v.file.clone(), v.rule))
        .collect()
}

#[test]
fn clean_fixture_passes() {
    let root = fixture(
        "clean",
        &[(
            "crates/net/src/lib.rs",
            "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n//! Net.\npub fn f() -> u64 { 1 }\n",
        )],
    );
    let report = lint::run(&root).unwrap();
    assert!(report.clean(), "{:?}", report.new_violations);
    assert_eq!(report.checked_files, 3, "root lib counted twice (root + lib scan)");
}

#[test]
fn unwrap_in_library_code_is_flagged() {
    let root = fixture(
        "unwrap-lib",
        &[(
            "crates/net/src/sender.rs",
            "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
        )],
    );
    let report = lint::run(&root).unwrap();
    let v: Vec<_> = report
        .new_violations
        .iter()
        .filter(|v| v.rule == Rule::NoPanic)
        .collect();
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].file, "crates/net/src/sender.rs");
    assert_eq!(v[0].line, 2);
}

#[test]
fn panics_in_test_code_strings_and_comments_are_exempt() {
    let src = r#"
// A comment mentioning .unwrap() is fine.
pub fn f() -> &'static str {
    "so is .unwrap() or panic! inside a string"
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Option::<u8>::Some(1).unwrap();
        panic!("tests may panic");
    }
}
"#;
    let root = fixture("exempt", &[("crates/net/src/sender.rs", src)]);
    let report = lint::run(&root).unwrap();
    assert!(report.clean(), "{:?}", report.new_violations);
}

#[test]
fn unwrap_outside_the_panic_restricted_crates_is_ignored() {
    // desim is print-restricted but not panic-restricted.
    let root = fixture(
        "unwrap-desim",
        &[(
            "crates/desim/src/event.rs",
            "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )],
    );
    let report = lint::run(&root).unwrap();
    assert!(report.clean(), "{:?}", report.new_violations);
}

#[test]
fn truncating_casts_are_flagged_only_in_wire_files() {
    let cast = "pub fn f(x: u64) -> u16 { x as u16 }\n";
    let root = fixture(
        "casts",
        &[
            ("crates/net/src/layout.rs", cast),
            ("crates/net/src/other.rs", cast),
        ],
    );
    let report = lint::run(&root).unwrap();
    assert_eq!(
        rules_of(&report),
        vec![("crates/net/src/layout.rs".to_owned(), Rule::NoTruncatingCast)]
    );
}

#[test]
fn widening_casts_in_wire_files_are_fine() {
    let root = fixture(
        "widen",
        &[(
            "crates/net/src/layout.rs",
            "pub fn f(x: u16) -> u64 { x as u64 }\n",
        )],
    );
    let report = lint::run(&root).unwrap();
    assert!(report.clean(), "{:?}", report.new_violations);
}

#[test]
fn inline_waiver_suppresses_exactly_its_rule() {
    let root = fixture(
        "waiver",
        &[(
            "crates/net/src/layout.rs",
            "pub fn f(x: u64) -> u8 { (x % 255) as u8 } // lint:ok(no-truncating-cast)\n",
        )],
    );
    let report = lint::run(&root).unwrap();
    assert!(report.clean(), "{:?}", report.new_violations);

    // A waiver for a different rule does not help.
    let root = fixture(
        "waiver-wrong-rule",
        &[(
            "crates/net/src/layout.rs",
            "pub fn f(x: u64) -> u8 { (x % 255) as u8 } // lint:ok(no-panic)\n",
        )],
    );
    let report = lint::run(&root).unwrap();
    assert_eq!(report.new_violations.len(), 1);
}

#[test]
fn unordered_maps_flagged_only_in_sim_visible_crates() {
    let src = "pub fn f() { let _ = std::collections::HashMap::<u8, u8>::new(); }\n";
    let root = fixture(
        "unordered",
        &[
            ("crates/desim/src/event.rs", src),
            // obs is outside the no-unordered-map scope.
            ("crates/obs/src/registry.rs", src),
        ],
    );
    let report = lint::run(&root).unwrap();
    assert_eq!(
        rules_of(&report),
        vec![("crates/desim/src/event.rs".to_owned(), Rule::NoUnorderedMap)]
    );
}

#[test]
fn wallclock_flagged_everywhere_but_bench() {
    let src = "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n";
    let root = fixture(
        "wallclock",
        &[
            ("crates/obs/src/timer.rs", src),
            ("crates/bench/src/harness.rs", src),
        ],
    );
    let report = lint::run(&root).unwrap();
    assert_eq!(
        rules_of(&report),
        vec![("crates/obs/src/timer.rs".to_owned(), Rule::NoWallclock)]
    );
}

#[test]
fn stale_waiver_fails_the_lint() {
    // The waived line no longer violates no-truncating-cast: the waiver
    // itself must now fail the run.
    let root = fixture(
        "waiver-stale",
        &[(
            "crates/net/src/layout.rs",
            "pub fn f(x: u64) -> u64 { x } // lint:ok(no-truncating-cast)\n",
        )],
    );
    let report = lint::run(&root).unwrap();
    assert!(!report.clean());
    assert!(report.new_violations.is_empty());
    assert_eq!(report.stale_waivers.len(), 1, "{:?}", report.stale_waivers);
    assert!(report.stale_waivers[0].contains("layout.rs:1"));

    // A waiver that still suppresses a real violation is not stale.
    let root = fixture(
        "waiver-live",
        &[(
            "crates/net/src/layout.rs",
            "pub fn f(x: u64) -> u8 { (x % 255) as u8 } // lint:ok(no-truncating-cast)\n",
        )],
    );
    let report = lint::run(&root).unwrap();
    assert!(report.clean(), "{:?}", report.stale_waivers);
    assert_eq!(report.waived, 1);
}

#[test]
fn waiver_for_inapplicable_rule_is_stale() {
    // The earlier `waiver-wrong-rule` case from the suppression test, seen
    // from the waiver's side: a no-panic waiver in a file with no no-panic
    // violation is dead weight and must be flagged.
    let root = fixture(
        "waiver-dead",
        &[(
            "crates/net/src/sender.rs",
            "pub fn f() {} // lint:ok(no-panic)\n",
        )],
    );
    let report = lint::run(&root).unwrap();
    assert!(!report.clean());
    assert_eq!(report.stale_waivers.len(), 1);
}

#[test]
fn missing_crate_attrs_are_flagged() {
    let root = fixture(
        "attrs",
        &[("crates/net/src/lib.rs", "//! Net without attrs.\n")],
    );
    let report = lint::run(&root).unwrap();
    let attrs: Vec<_> = report
        .new_violations
        .iter()
        .filter(|v| v.rule == Rule::CrateAttrs)
        .collect();
    assert_eq!(attrs.len(), 2, "one per missing attribute");
    assert!(attrs.iter().all(|v| v.file == "crates/net/src/lib.rs"));
}

#[test]
fn debug_prints_are_flagged_in_library_code_but_not_binaries() {
    let src = "pub fn f() { println!(\"x\"); dbg!(1); }\n";
    let root = fixture(
        "prints",
        &[
            ("crates/desim/src/sim.rs", src),
            ("crates/desim/src/bin/tool.rs", src),
        ],
    );
    let report = lint::run(&root).unwrap();
    let v = rules_of(&report);
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v.iter().all(|(f, r)| f == "crates/desim/src/sim.rs" && *r == Rule::NoDebugPrint));
}

#[test]
fn metric_field_writes_are_flagged_outside_the_facades() {
    let src = "pub struct S { pub records: u64 }\n\
               pub fn f(metrics: &mut S, n: u64) {\n    metrics.records += n;\n}\n";
    let root = fixture(
        "metrics-write",
        &[
            ("crates/baselines/src/partitioned.rs", src),
            // Same write inside a facade file is the facade's own business.
            ("crates/net/src/stats.rs", src),
            // And out-of-scope crates are not policed.
            ("crates/desim/src/sim.rs", src),
        ],
    );
    let report = lint::run(&root).unwrap();
    assert_eq!(
        rules_of(&report),
        vec![("crates/baselines/src/partitioned.rs".to_owned(), Rule::MetricsFacade)]
    );
}

#[test]
fn metric_reads_and_facade_calls_are_not_flagged() {
    let src = "pub struct S { pub records: u64 }\n\
               pub fn g(metrics: &S) -> u64 {\n    if metrics.records == 0 { 0 } else { metrics.records }\n}\n";
    let root = fixture("metrics-read", &[("crates/core/src/worker.rs", src)]);
    let report = lint::run(&root).unwrap();
    assert!(report.clean(), "{:?}", report.new_violations);
}

#[test]
fn allowlist_budget_grandfathers_exact_counts() {
    let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() + x.unwrap() }\n";
    let root = fixture(
        "allow-exact",
        &[
            ("crates/net/src/sender.rs", src),
            (ALLOWLIST_PATH, "crates/net/src/sender.rs no-panic 2\n"),
        ],
    );
    let report = lint::run(&root).unwrap();
    assert!(report.clean(), "{:?}", report.new_violations);
    assert_eq!(report.grandfathered, 2);
}

#[test]
fn allowlist_budget_may_only_shrink() {
    let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";

    // Budget larger than reality → stale entry, lint fails until shrunk.
    let root = fixture(
        "allow-stale",
        &[
            ("crates/net/src/sender.rs", src),
            (ALLOWLIST_PATH, "crates/net/src/sender.rs no-panic 3\n"),
        ],
    );
    let report = lint::run(&root).unwrap();
    assert!(!report.clean());
    assert_eq!(report.stale_allowlist.len(), 1, "{:?}", report.stale_allowlist);

    // Budget for a file with no violations at all → also stale.
    let root = fixture(
        "allow-ghost",
        &[
            ("crates/net/src/sender.rs", "pub fn f() {}\n"),
            (ALLOWLIST_PATH, "crates/net/src/sender.rs no-panic 1\n"),
        ],
    );
    let report = lint::run(&root).unwrap();
    assert!(!report.clean());
    assert_eq!(report.stale_allowlist.len(), 1);
}

#[test]
fn violations_over_budget_are_reported() {
    let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() + x.unwrap() }\n";
    let root = fixture(
        "allow-over",
        &[
            ("crates/net/src/sender.rs", src),
            (ALLOWLIST_PATH, "crates/net/src/sender.rs no-panic 1\n"),
        ],
    );
    let report = lint::run(&root).unwrap();
    assert!(!report.clean());
    assert_eq!(report.new_violations.len(), 2, "over budget reports the whole group");
}

#[test]
fn malformed_allowlists_are_rejected() {
    for (name, allow) in [
        ("allow-zero", "crates/net/src/sender.rs no-panic 0\n"),
        (
            "allow-dup",
            "crates/net/src/sender.rs no-panic 1\ncrates/net/src/sender.rs no-panic 1\n",
        ),
        ("allow-rule", "crates/net/src/sender.rs no-such-rule 1\n"),
        ("allow-shape", "crates/net/src/sender.rs no-panic\n"),
    ] {
        let root = fixture(
            name,
            &[
                ("crates/net/src/sender.rs", "pub fn f() {}\n"),
                (ALLOWLIST_PATH, allow),
            ],
        );
        assert!(lint::run(&root).is_err(), "{name} should be rejected");
    }
}
