//! `chaos-suite` — the CI fault-injection gate.
//!
//! Runs the YSB pipeline under fault tolerance with every built-in fault
//! type injected mid-run — node crash, link flap, link degradation,
//! delayed completions — plus seeded multi-fault plans over fixed seeds,
//! and requires each run to *recover and verify*: the processed-record
//! count, the per-window results digest, and every node's final
//! primary-state digest must match the same-seed no-fault run bit-exactly.
//! Crashes must additionally be detected and repaired by promotion.
//!
//! Everything is virtual-time deterministic; exit 0 when every case
//! verifies, 1 otherwise.

use std::process::ExitCode;

use slash::chaos::{ChaosConfig, FaultPlan, FtConfig};
use slash::core::{RecoveryAction, RecoveryReport, RunConfig, RunReport, SlashCluster};
use slash::desim::SimTime;
use slash::obs::Obs;
use slash::workloads::{ysb, GenConfig};

const NODES: usize = 3;
const RECORDS_PER_PARTITION: u64 = 20_000;
/// Seeds for the multi-fault plans; fixed so CI is reproducible.
const SEEDS: [u64; 3] = [11, 23, 47];

fn run(plan: &FaultPlan) -> (RunReport, RecoveryReport) {
    let mut cfg = RunConfig::new(NODES, 1);
    cfg.collect_results = true;
    cfg.epoch_bytes = 16 * 1024;
    let w = ysb(&GenConfig::new(NODES, RECORDS_PER_PARTITION));
    let chaos = ChaosConfig {
        plan: plan.clone(),
        ft: FtConfig {
            detect_timeout: SimTime::from_micros(300),
            ckpt_max_chunk: 16 * 1024,
        },
    };
    SlashCluster::run_chaos(w.plan, w.partitions, cfg, &chaos, Obs::disabled())
}

/// One case: run the plan, compare against the baseline, print a verdict
/// line. Returns whether the case verified.
fn case(
    name: &str,
    plan: &FaultPlan,
    base: &(RunReport, RecoveryReport),
    require_promotion: bool,
) -> bool {
    let (report, rec) = run(plan);
    let exact = report.records == base.0.records
        && rec.results_digest == base.1.results_digest
        && rec.state_digests == base.1.state_digests;
    let promoted = rec
        .events
        .iter()
        .any(|e| matches!(e.action, RecoveryAction::Promoted { .. }));
    let ok = exact && (!require_promotion || promoted);
    let ttr = rec
        .max_time_to_recover()
        .map(|t| format!("{:.1} us", t.as_nanos() as f64 / 1_000.0))
        .unwrap_or_else(|| "-".to_string());
    println!(
        "  {:<28} faults={} repaired={} ttr={:<10} exact={} {}",
        name,
        plan.events().len(),
        rec.events.len(),
        ttr,
        if exact { "yes" } else { "NO" },
        if ok { "PASS" } else { "FAIL" }
    );
    if !ok && require_promotion && !promoted {
        println!("    crash was never detected/promoted");
    }
    ok
}

fn main() -> ExitCode {
    println!(
        "chaos-suite: YSB, {NODES} nodes, {RECORDS_PER_PARTITION} records/partition, \
         exactness vs the no-fault fault-tolerant baseline"
    );
    let base = run(&FaultPlan::new());
    if !base.1.events.is_empty() || base.1.checkpoints_durable == 0 {
        println!("  baseline unhealthy: events={}, durable ckpts={}", base.1.events.len(), base.1.checkpoints_durable);
        return ExitCode::FAILURE;
    }
    println!(
        "  baseline: {} records, {} durable checkpoints, completion {:.1} us",
        base.0.records,
        base.1.checkpoints_durable,
        base.0.completion_time.as_nanos() as f64 / 1_000.0
    );

    let at = SimTime::from_micros(200);
    let down = SimTime::from_micros(60);
    let extra = SimTime::from_micros(2);
    let span = SimTime::from_micros(120);
    let mut ok = true;
    ok &= case(
        "node-crash",
        &FaultPlan::new().crash(at, 1),
        &base,
        true,
    );
    ok &= case(
        "link-flap",
        &FaultPlan::new().link_flap(at, 1, down),
        &base,
        false,
    );
    ok &= case(
        "link-degrade",
        &FaultPlan::new().degrade(at, 1, extra, span),
        &base,
        false,
    );
    ok &= case(
        "delayed-completions",
        &FaultPlan::new().delay_completions(at, 1, extra, span),
        &base,
        false,
    );
    for seed in SEEDS {
        let plan = FaultPlan::seeded(seed, NODES, 3, SimTime::from_micros(500));
        ok &= case(&format!("seeded({seed}) x3"), &plan, &base, false);
        let with_crash = plan.crash(SimTime::from_micros(250), 1);
        ok &= case(&format!("seeded({seed}) x3 + crash"), &with_crash, &base, true);
    }

    if ok {
        println!("chaos-suite: PASS (every fault recovered to the no-fault state)");
        ExitCode::SUCCESS
    } else {
        println!("chaos-suite: FAIL");
        ExitCode::FAILURE
    }
}
