//! Figure 8: the drill-down sweeps — buffer size vs throughput (a) and
//! latency (b), parallelism vs throughput (c), and skew vs throughput (d).

use slash_desim::SimTime;
use slash_perfmodel::Table;
use slash_workloads::{ro_zipf, ysb_zipf, GenConfig, Workload};

use crate::micro::{run_micro, KeyDist, MicroConfig, RouteMode};
use crate::scale::Scale;

/// The measured network ceiling the paper marks in red (GB/s).
pub const LINE_RATE_GBS: f64 = 11.8;

/// The paper's buffer-size sweep.
pub const BUFFER_SIZES: [usize; 6] = [
    4 * 1024,
    16 * 1024,
    64 * 1024,
    256 * 1024,
    1024 * 1024,
    4 * 1024 * 1024,
];

/// One point of the buffer-size sweep.
#[derive(Debug, Clone, Copy)]
pub struct BufferPoint {
    /// Buffer size in bytes.
    pub buffer: usize,
    /// Slash-style (direct) goodput, GB/s.
    pub slash_gbs: f64,
    /// UpPar-style (fanout) goodput, GB/s.
    pub uppar_gbs: f64,
    /// Slash mean buffer latency.
    pub slash_latency: SimTime,
    /// UpPar mean buffer latency.
    pub uppar_latency: SimTime,
}

fn micro_cfg(mode: RouteMode, threads: usize, scale: Scale) -> MicroConfig {
    let mut cfg = MicroConfig::new(mode, threads);
    cfg.records_per_thread = scale.records.max(20_000);
    cfg
}

/// Fig. 8a/8b: sweep the channel buffer size on the 2-server RO setup.
pub fn run_buffer_sweep(scale: Scale, threads: usize) -> Vec<BufferPoint> {
    BUFFER_SIZES
        .iter()
        .map(|&buffer| {
            let mut d = micro_cfg(RouteMode::Direct, threads, scale);
            d.buffer_size = buffer;
            let direct = run_micro(d);
            let mut f = micro_cfg(RouteMode::HashFanout, threads, scale);
            f.buffer_size = buffer;
            let fanout = run_micro(f);
            BufferPoint {
                buffer,
                slash_gbs: direct.throughput_gbs(),
                uppar_gbs: fanout.throughput_gbs(),
                slash_latency: direct.mean_latency.unwrap_or(SimTime::ZERO),
                uppar_latency: fanout.mean_latency.unwrap_or(SimTime::ZERO),
            }
        })
        .collect()
}

/// Render Fig. 8a.
pub fn table_8a(points: &[BufferPoint]) -> Table {
    let mut t = Table::new(
        format!("Fig. 8a: buffer size vs throughput (GB/s; line rate {LINE_RATE_GBS})"),
        &["buffer", "slash", "uppar", "slash %line", "uppar %line"],
    );
    for p in points {
        t.row(vec![
            human_bytes(p.buffer),
            format!("{:.2}", p.slash_gbs),
            format!("{:.2}", p.uppar_gbs),
            format!("{:.0}%", 100.0 * p.slash_gbs / LINE_RATE_GBS),
            format!("{:.0}%", 100.0 * p.uppar_gbs / LINE_RATE_GBS),
        ]);
    }
    t
}

/// Render Fig. 8b.
pub fn table_8b(points: &[BufferPoint]) -> Table {
    let mut t = Table::new(
        "Fig. 8b: buffer size vs mean buffer latency",
        &["buffer", "slash", "uppar"],
    );
    for p in points {
        t.row(vec![
            human_bytes(p.buffer),
            p.slash_latency.to_string(),
            p.uppar_latency.to_string(),
        ]);
    }
    t
}

/// One point of the parallelism sweep (Fig. 8c).
#[derive(Debug, Clone, Copy)]
pub struct ParallelismPoint {
    /// Producer threads.
    pub threads: usize,
    /// Node pairs.
    pub pairs: usize,
    /// Direct goodput, GB/s (per pair).
    pub slash_gbs: f64,
    /// Fanout goodput, GB/s (per pair).
    pub uppar_gbs: f64,
}

/// Fig. 8c: scale producer threads (and node pairs).
pub fn run_parallelism_sweep(scale: Scale, thread_counts: &[usize]) -> Vec<ParallelismPoint> {
    thread_counts
        .iter()
        .map(|&threads| {
            let direct = run_micro(micro_cfg(RouteMode::Direct, threads, scale));
            let fanout = run_micro(micro_cfg(RouteMode::HashFanout, threads, scale));
            ParallelismPoint {
                threads,
                pairs: 1,
                slash_gbs: direct.throughput_gbs(),
                uppar_gbs: fanout.throughput_gbs(),
            }
        })
        .collect()
}

/// Render Fig. 8c.
pub fn table_8c(points: &[ParallelismPoint]) -> Table {
    let mut t = Table::new(
        format!("Fig. 8c: parallelism vs throughput (GB/s; line rate {LINE_RATE_GBS})"),
        &["threads", "slash", "uppar"],
    );
    for p in points {
        t.row(vec![
            p.threads.to_string(),
            format!("{:.2}", p.slash_gbs),
            format!("{:.2}", p.uppar_gbs),
        ]);
    }
    t
}

/// One point of the skew sweep (Fig. 8d).
#[derive(Debug, Clone, Copy)]
pub struct SkewPoint {
    /// Zipf exponent.
    pub z: f64,
    /// RO via direct channels (Slash), GB/s.
    pub ro_slash_gbs: f64,
    /// RO via hash fanout (UpPar), GB/s.
    pub ro_uppar_gbs: f64,
    /// YSB on the Slash engine, records/s.
    pub ysb_slash: f64,
    /// YSB on the UpPar engine, records/s.
    pub ysb_uppar: f64,
}

/// The paper's skew sweep.
pub const SKEW_Z: [f64; 6] = [0.2, 0.6, 1.0, 1.4, 1.8, 2.0];

/// Fig. 8d: sweep the Zipf exponent of the partitioning key.
pub fn run_skew_sweep(scale: Scale, zs: &[f64]) -> Vec<SkewPoint> {
    zs.iter()
        .map(|&z| {
            // RO on the 2-server micro setup.
            let mut d = micro_cfg(RouteMode::Direct, scale.workers, scale);
            d.keys = KeyDist::Zipf(100_000_000, z);
            let mut f = micro_cfg(RouteMode::HashFanout, scale.workers, scale);
            f.keys = KeyDist::Zipf(100_000_000, z);
            // YSB on the full engines at 2 nodes.
            let ysb_gen = move |cfg: &GenConfig| -> Workload { ysb_zipf(cfg, z) };
            let slash = suts_run_ysb(ysb_gen, true, scale);
            let uppar = suts_run_ysb(ysb_gen, false, scale);
            SkewPoint {
                z,
                ro_slash_gbs: run_micro(d).throughput_gbs(),
                ro_uppar_gbs: run_micro(f).throughput_gbs(),
                ysb_slash: slash,
                ysb_uppar: uppar,
            }
        })
        .collect()
}

fn suts_run_ysb(gen: impl Fn(&GenConfig) -> Workload, slash: bool, scale: Scale) -> f64 {
    let nodes = 2;
    if slash {
        let w = gen(&GenConfig::new(nodes * scale.workers, scale.records));
        let cfg = slash_core::RunConfig::new(nodes, scale.workers);
        slash_core::SlashCluster::run(w.plan, w.partitions, cfg).throughput()
    } else {
        let senders = (scale.workers / 2).max(1);
        let per = scale.records * scale.workers as u64 / senders as u64;
        let w = gen(&GenConfig::new(nodes * senders, per));
        let cfg = slash_baselines::uppar::uppar_config(nodes, scale.workers);
        slash_baselines::partitioned::run_partitioned(w.plan, w.partitions, cfg).throughput()
    }
}

/// Render Fig. 8d.
pub fn table_8d(points: &[SkewPoint]) -> Table {
    let mut t = Table::new(
        "Fig. 8d: skew (Zipf z) vs throughput",
        &["z", "RO slash GB/s", "RO uppar GB/s", "YSB slash rec/s", "YSB uppar rec/s"],
    );
    for p in points {
        t.row(vec![
            format!("{:.1}", p.z),
            format!("{:.2}", p.ro_slash_gbs),
            format!("{:.2}", p.ro_uppar_gbs),
            format!("{:.3e}", p.ysb_slash),
            format!("{:.3e}", p.ysb_uppar),
        ]);
    }
    t
}

/// Pretty-print a byte count.
pub fn human_bytes(b: usize) -> String {
    if b >= 1024 * 1024 {
        format!("{}MiB", b / (1024 * 1024))
    } else {
        format!("{}KiB", b / 1024)
    }
}

// `ro_zipf` is exercised by the engine-level skew tests in /tests; keep
// the import alive for the RO-on-engine variant used there.
#[doc(hidden)]
pub fn ro_zipf_gen(z: f64) -> impl Fn(&GenConfig) -> Workload {
    move |cfg| ro_zipf(cfg, z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(4096), "4KiB");
        assert_eq!(human_bytes(4 * 1024 * 1024), "4MiB");
    }

    #[test]
    fn buffer_sweep_shape() {
        let mut scale = Scale::tiny();
        scale.records = 20_000;
        let points = run_buffer_sweep(scale, 2);
        // Slash beats UpPar at every buffer size.
        for p in &points {
            assert!(p.slash_gbs > p.uppar_gbs, "{p:?}");
            assert!(p.slash_gbs <= LINE_RATE_GBS + 0.2);
        }
        // Latency grows with buffer size.
        assert!(points.last().unwrap().slash_latency > points[0].slash_latency);
    }
}
