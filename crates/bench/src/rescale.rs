//! The elastic-rescaling experiment (`repro rescale`).
//!
//! A diurnal load curve drives an eight-partition YSB job packed onto
//! four hosts: calm, then a surge the packed cluster cannot serve, then
//! calm again. The [`slash_scale::ScaleController`] must spread
//! partitions onto the parked hosts during the surge (4 → 8) and pack
//! them back once the surge passes (8 → 4), all through live planned
//! handoffs — no crash, no restart.
//!
//! Reported (and gated by `repro rescale`, exit 1 on violation):
//!
//! * **records lost** — elastic vs static run of the same curve (must be 0);
//! * **exactness** — results digest and every final state digest match the
//!   static run bit-exactly (placement is semantically invisible);
//! * **aborted migrations** — must be 0 in a fault-free run;
//! * **max cutover stall** — worst halt → commit span across migrations,
//!   bounded by the `[rescale] migration_stall_ns` budget in `SLO.toml`;
//! * **full diurnal shape** — peak hosts must reach [`PARTITIONS`] and the
//!   cluster must pack back to [`PACKED_HOSTS`] by completion.
//!
//! Completion times are reported, not gated: the calm tail makes both
//! runs release-bound at the end, so the static run pays for the surge in
//! *backlog* rather than completion time (the closed-loop controller test
//! in `slash-scale` proves the completion payoff on a surge-dominated
//! curve).
//!
//! Everything runs in virtual time and is fully deterministic; the curve
//! is calibrated from an unpaced probe so the experiment stays meaningful
//! across `SLASH_RECORDS` scales.

use slash_chaos::{ChaosConfig, FaultPlan, FtConfig};
use slash_core::source::RateCurve;
use slash_core::{
    ElasticConfig, RecoveryReport, RescaleReport, RunConfig, RunReport, ScaleDirector,
    SlashCluster, StaticDirector,
};
use slash_desim::SimTime;
use slash_obs::Obs;
use slash_perfmodel::Table;
use slash_scale::{ControllerConfig, Decision, ScaleController};
use slash_workloads::{ysb, GenConfig};

use crate::scale::Scale;

/// Logical partitions (== provisioned fabric ports).
pub const PARTITIONS: usize = 8;
/// Hosts the job is packed onto outside the surge.
pub const PACKED_HOSTS: usize = 4;

/// Outcome of the diurnal rescale run vs its static reference.
#[derive(Debug, Clone)]
pub struct RescaleOutcome {
    /// Calibrated packed-cluster service rate (records/s, virtual).
    pub cluster_rps: f64,
    /// Records processed by the elastic run.
    pub records: u64,
    /// Processed-record delta vs the static run (exactness: 0).
    pub records_lost: i64,
    /// Results digest and all final state digests match the static run.
    pub exact: bool,
    /// Committed migrations.
    pub migrations: usize,
    /// Aborted migrations (fault-free run: 0).
    pub aborted: usize,
    /// Scale-out / scale-in decisions taken by the controller.
    pub decisions_out: usize,
    /// Scale-in decisions taken by the controller.
    pub decisions_in: usize,
    /// Most hosts ever in use (target: [`PARTITIONS`]).
    pub peak_hosts: usize,
    /// Hosts in use when the run finished (target: [`PACKED_HOSTS`]).
    pub final_hosts: usize,
    /// Worst halt → commit cutover stall across migrations.
    pub max_stall: Option<SimTime>,
    /// Completion time of the static packed run under the same curve.
    pub static_completion: SimTime,
    /// Completion time of the controller-driven run.
    pub elastic_completion: SimTime,
}

fn run_config(records: u64) -> (RunConfig, GenConfig) {
    let mut cfg = RunConfig::new(PARTITIONS, 1);
    cfg.collect_results = true;
    cfg.epoch_bytes = 16 * 1024;
    (cfg, GenConfig::new(PARTITIONS, records))
}

fn chaos() -> ChaosConfig {
    ChaosConfig {
        plan: FaultPlan::new(),
        ft: FtConfig {
            detect_timeout: SimTime::from_micros(300),
            ckpt_max_chunk: 16 * 1024,
            ckpt_copies: 2,
        },
        pre_split: Vec::new(),
    }
}

fn elastic_run(
    records: u64,
    pacing: Option<RateCurve>,
    director: &mut dyn ScaleDirector,
) -> (RunReport, RecoveryReport, RescaleReport) {
    let (mut cfg, gen) = run_config(records);
    cfg.pacing = pacing;
    let w = ysb(&gen);
    SlashCluster::run_elastic(
        w.plan,
        w.partitions,
        cfg,
        &chaos(),
        &ElasticConfig::packed(PARTITIONS, PACKED_HOSTS),
        director,
        Obs::disabled(),
    )
}

/// Run the experiment: probe-calibrate, then static and controller-driven
/// passes of the same diurnal curve.
pub fn run(scale: Scale) -> RescaleOutcome {
    // Keep enough records that the surge and the pack-in tail each span
    // several controller confirmation windows even at tiny scales.
    let records = scale.records.max(40_000);

    // Probe: unpaced packed run calibrates the cluster service rate.
    let (probe, _, _) = elastic_run(records, None, &mut StaticDirector);
    let cluster_rps = probe.records as f64 * 1.0e9 / probe.completion_time.as_nanos() as f64;
    let host_rps = cluster_rps / PACKED_HOSTS as f64;

    // Diurnal curve per source: calm at 30% of packed capacity, a surge
    // at 2.6x that the packed cluster cannot serve but eight spread hosts
    // can, then a low tail at 15% for the pack-in phase. The surge end is
    // placed so ~75% of all records are released by then, leaving a calm
    // tail long enough for the controller to pack all the way back.
    let per_source = |frac: f64| (frac * cluster_rps / PARTITIONS as f64) as u64;
    let surge_at = SimTime::from_micros(400);
    let total = (records * PARTITIONS as u64) as f64;
    let calm_released = 0.30 * cluster_rps * surge_at.as_nanos() as f64 / 1.0e9;
    let surge_ns = ((0.75 * total - calm_released).max(0.0) / (2.6 * cluster_rps) * 1.0e9) as u64;
    let calm_at = surge_at + SimTime::from_nanos(surge_ns.max(1));
    let curve = RateCurve::new(&[
        (SimTime::ZERO, per_source(0.30)),
        (surge_at, per_source(2.60)),
        (calm_at, per_source(0.15)),
    ]);

    // Static reference: same curve, no controller.
    let (base, base_rec, _) = elastic_run(records, Some(curve), &mut StaticDirector);

    // One scale-out step spreads a full partition per parked host; the
    // pack-in side still drains one host per action.
    let mut ctl_cfg = ControllerConfig::new(PACKED_HOSTS, PARTITIONS, host_rps);
    ctl_cfg.cooldown = SimTime::from_micros(100);
    ctl_cfg.backlog_high = 20_000;
    ctl_cfg.step_partitions = PARTITIONS - PACKED_HOSTS;
    let mut controller = ScaleController::new(ctl_cfg);
    let (run, rec, rescale) = elastic_run(records, Some(curve), &mut controller);

    RescaleOutcome {
        cluster_rps,
        records: run.records,
        records_lost: base.records as i64 - run.records as i64,
        exact: rec.results_digest == base_rec.results_digest
            && rec.state_digests == base_rec.state_digests,
        migrations: rescale.migrations.iter().filter(|m| !m.aborted).count(),
        aborted: rescale.aborted(),
        decisions_out: controller
            .decisions()
            .iter()
            .filter(|d| matches!(d, Decision::Out { .. }))
            .count(),
        decisions_in: controller
            .decisions()
            .iter()
            .filter(|d| matches!(d, Decision::In { .. }))
            .count(),
        peak_hosts: rescale.peak_hosts,
        final_hosts: rescale.final_hosts,
        max_stall: rescale.max_stall(),
        static_completion: base.completion_time,
        elastic_completion: run.completion_time,
    }
}

/// Parse the `[rescale] migration_stall_ns` budget out of `SLO.toml`
/// (same hand-rolled subset as the latency gate). Returns `None` when the
/// file or the key is absent.
pub fn stall_budget(path: &str) -> Option<SimTime> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut in_section = false;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            in_section = name.trim() == "rescale";
            continue;
        }
        if !in_section {
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            if key.trim() == "migration_stall_ns" {
                return value.trim().parse().ok().map(SimTime::from_nanos);
            }
        }
    }
    None
}

/// Gate violations for `repro rescale` (empty = pass). The stall budget
/// is only enforced when `SLO.toml` provides one.
pub fn gate(o: &RescaleOutcome, budget: Option<SimTime>) -> Vec<String> {
    let mut v = Vec::new();
    if o.records_lost != 0 {
        v.push(format!("lost {} records vs the static run", o.records_lost));
    }
    if !o.exact {
        v.push("results/state digests diverged from the static run".to_string());
    }
    if o.aborted != 0 {
        v.push(format!("{} migrations aborted in a fault-free run", o.aborted));
    }
    if o.peak_hosts != PARTITIONS {
        v.push(format!(
            "surge did not spread to all {PARTITIONS} hosts (peak {})",
            o.peak_hosts
        ));
    }
    if o.final_hosts != PACKED_HOSTS {
        v.push(format!(
            "cluster did not pack back to {PACKED_HOSTS} hosts (final {})",
            o.final_hosts
        ));
    }
    if let (Some(stall), Some(budget)) = (o.max_stall, budget) {
        if stall > budget {
            v.push(format!(
                "max cutover stall {}ns exceeds budget {}ns",
                stall.as_nanos(),
                budget.as_nanos()
            ));
        }
    }
    v
}

fn us(t: SimTime) -> String {
    format!("{:.1}", t.as_nanos() as f64 / 1_000.0)
}

/// Render the outcome as the experiment table.
pub fn table(o: &RescaleOutcome) -> Table {
    let mut t = Table::new(
        format!(
            "Rescale: diurnal load, {PARTITIONS} partitions, \
             {PACKED_HOSTS} -> {} -> {} hosts",
            o.peak_hosts, o.final_hosts
        ),
        &["metric", "value"],
    );
    t.row(vec![
        "cluster rate (records/s)".into(),
        format!("{:.0}", o.cluster_rps),
    ]);
    t.row(vec!["records".into(), o.records.to_string()]);
    t.row(vec!["records lost".into(), o.records_lost.to_string()]);
    t.row(vec![
        "exact".into(),
        if o.exact { "yes" } else { "NO" }.into(),
    ]);
    t.row(vec!["migrations committed".into(), o.migrations.to_string()]);
    t.row(vec!["migrations aborted".into(), o.aborted.to_string()]);
    t.row(vec![
        "decisions out/in".into(),
        format!("{}/{}", o.decisions_out, o.decisions_in),
    ]);
    t.row(vec!["peak hosts".into(), o.peak_hosts.to_string()]);
    t.row(vec!["final hosts".into(), o.final_hosts.to_string()]);
    t.row(vec![
        "max cutover stall us".into(),
        o.max_stall.map(us).unwrap_or_else(|| "-".into()),
    ]);
    t.row(vec!["static completion us".into(), us(o.static_completion)]);
    t.row(vec![
        "elastic completion us".into(),
        us(o.elastic_completion),
    ]);
    t
}

/// Write the machine-readable report (`BENCH_rescale.json`).
pub fn write_json(o: &RescaleOutcome, path: &str) -> std::io::Result<()> {
    let stall = o.max_stall.map(|t| t.as_nanos()).unwrap_or(0);
    let json = format!(
        "{{\n  \"schema\": \"rescale-bench-v1\",\n  \"partitions\": {PARTITIONS},\n  \
         \"packed_hosts\": {PACKED_HOSTS},\n  \"records\": {},\n  \
         \"records_lost\": {},\n  \"exact\": {},\n  \"migrations\": {},\n  \
         \"aborted\": {},\n  \"decisions_out\": {},\n  \"decisions_in\": {},\n  \
         \"peak_hosts\": {},\n  \"final_hosts\": {},\n  \"max_stall_ns\": {stall},\n  \
         \"static_completion_ns\": {},\n  \"elastic_completion_ns\": {}\n}}\n",
        o.records,
        o.records_lost,
        o.exact,
        o.migrations,
        o.aborted,
        o.decisions_out,
        o.decisions_in,
        o.peak_hosts,
        o.final_hosts,
        o.static_completion.as_nanos(),
        o.elastic_completion.as_nanos(),
    );
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_rescale_passes_its_own_gate() {
        let o = run(Scale::tiny());
        let budget = Some(SimTime::from_millis(1));
        let violations = gate(&o, budget);
        assert!(violations.is_empty(), "{violations:?}\n{o:?}");
    }

    #[test]
    fn stall_budget_parses_the_rescale_section() {
        let dir = std::env::temp_dir().join("slash_rescale_slo_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("SLO.toml");
        std::fs::write(
            &path,
            "regression_factor = 1.5\n[ysb]\nend_to_end_p99_99 = 2400\n\
             [rescale]\n# worst halt -> commit span\nmigration_stall_ns = 750000\n",
        )
        .unwrap();
        assert_eq!(
            stall_budget(path.to_str().unwrap()),
            Some(SimTime::from_micros(750))
        );
        assert_eq!(stall_budget("/nonexistent/SLO.toml"), None);
    }
}
