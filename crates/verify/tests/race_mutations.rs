//! Mutation tests for the race checker: each injected protocol bug must be
//! caught by exactly the invariant that guards against it. A detector that
//! passes clean runs but cannot see planted bugs proves nothing — these
//! tests are the checker's own test suite.

use slash_desim::TieBreak;
use slash_verify::race::{explore, Invariant};
use slash_verify::scenarios::{ChannelScenario, CoherenceScenario, Mutation, RecoveryScenario};

/// Invariants flagged by the channel scenario under `m`, FIFO schedule.
fn channel_flags(m: Mutation) -> Vec<Invariant> {
    let out = ChannelScenario {
        mutation: Some(m),
        ..ChannelScenario::default()
    }
    .run(TieBreak::Fifo);
    out.violations.into_iter().map(|(i, _)| i).collect()
}

/// Invariants flagged by the coherence scenario under `m`, FIFO schedule.
fn coherence_flags(m: Mutation) -> Vec<Invariant> {
    let out = CoherenceScenario {
        mutation: Some(m),
        ..CoherenceScenario::default()
    }
    .run(TieBreak::Fifo);
    out.violations.into_iter().map(|(i, _)| i).collect()
}

#[test]
fn skipping_credit_return_breaks_credit_conservation() {
    let flags = channel_flags(Mutation::SkipCreditReturn);
    assert!(
        flags.contains(&Invariant::CreditConservation),
        "expected credit-conservation violation, got {flags:?}"
    );
}

#[test]
fn ignoring_the_credit_window_breaks_no_overwrite() {
    let flags = channel_flags(Mutation::IgnoreCreditWindow);
    assert!(
        flags.contains(&Invariant::NoOverwrite),
        "expected no-slot-overwrite violation, got {flags:?}"
    );
}

#[test]
fn reordering_delivery_breaks_fifo() {
    let flags = channel_flags(Mutation::ReorderDelivered);
    assert!(
        flags.contains(&Invariant::Fifo),
        "expected fifo-delivery violation, got {flags:?}"
    );
}

#[test]
fn regressing_a_vclock_breaks_monotonicity() {
    let flags = coherence_flags(Mutation::RegressVclock);
    assert!(
        flags.contains(&Invariant::VclockMonotonic),
        "expected vclock-monotonic violation, got {flags:?}"
    );
}

#[test]
fn dropping_an_update_breaks_epoch_convergence() {
    let flags = coherence_flags(Mutation::DropUpdate);
    assert!(
        flags.contains(&Invariant::EpochConvergence),
        "expected epoch-convergence violation, got {flags:?}"
    );
}

#[test]
fn skipping_the_post_crash_replay_breaks_recovery_convergence() {
    let out = RecoveryScenario {
        mutation: Some(Mutation::SkipReplay),
        ..RecoveryScenario::default()
    }
    .run(TieBreak::Fifo);
    let flags: Vec<Invariant> = out.violations.iter().map(|(i, _)| *i).collect();
    assert!(
        flags.contains(&Invariant::RecoveryConvergence),
        "expected recovery-convergence violation, got {flags:?}"
    );
    assert!(!out.dumps.is_empty(), "violation must dump the flight recorder");
}

#[test]
fn mutations_are_caught_under_every_explored_schedule() {
    // A planted bug must not be maskable by a lucky interleaving: sweep a
    // handful of schedules and require the violation under each one.
    for (name, expected, run) in [
        (
            "skip-credit-return",
            Invariant::CreditConservation,
            Mutation::SkipCreditReturn,
        ),
        (
            "ignore-credit-window",
            Invariant::NoOverwrite,
            Mutation::IgnoreCreditWindow,
        ),
    ] {
        for policy in [TieBreak::Fifo, TieBreak::Lifo, TieBreak::Seeded(3)] {
            let out = ChannelScenario {
                mutation: Some(run),
                ..ChannelScenario::default()
            }
            .run(policy);
            assert!(
                out.violations.iter().any(|(i, _)| *i == expected),
                "{name} not caught under {policy:?}"
            );
        }
    }
}

#[test]
fn violations_come_with_flight_recorder_dumps() {
    // Every flagged invariant captures a dump: the reason, the schedule
    // fingerprint, and the trailing verb/epoch trace events.
    let out = ChannelScenario {
        mutation: Some(Mutation::IgnoreCreditWindow),
        ..ChannelScenario::default()
    }
    .run(TieBreak::Fifo);
    assert!(!out.violations.is_empty());
    assert_eq!(out.dumps.len(), out.violations.len(), "one dump per violation");
    assert!(out.dumps[0].contains("flight-recorder dump"));
    assert!(out.dumps[0].contains("schedule fingerprint=0x"));
    assert!(out.dumps[0].contains("verb/"), "dump should show channel verb events");

    let out = CoherenceScenario {
        mutation: Some(Mutation::RegressVclock),
        ..CoherenceScenario::default()
    }
    .run(TieBreak::Fifo);
    assert!(!out.violations.is_empty());
    assert!(!out.dumps.is_empty());
    assert!(out.dumps[0].contains("vclock["), "dump should carry vector-clock context");

    // Clean runs dump nothing.
    let clean = ChannelScenario::default().run(TieBreak::Fifo);
    assert!(clean.violations.is_empty() && clean.dumps.is_empty());
}

#[test]
fn clean_scenarios_have_no_violations_under_a_small_sweep() {
    let chan = explore("channel", 8, |p| ChannelScenario::default().run(p));
    assert!(chan.clean(), "channel violations: {:?}", chan.violations);
    assert!(chan.distinct_schedules >= 4, "only {} distinct", chan.distinct_schedules);

    let coh = explore("coherence", 8, |p| CoherenceScenario::default().run(p));
    assert!(coh.clean(), "coherence violations: {:?}", coh.violations);
    assert!(coh.distinct_schedules >= 4, "only {} distinct", coh.distinct_schedules);
}

#[test]
fn acceptance_sweep_explores_at_least_100_distinct_schedules() {
    // The ISSUE acceptance gate, run in-tree: 128 policies must yield at
    // least 100 distinct schedules per scenario with all invariants green.
    let chan = explore("channel", 128, |p| ChannelScenario::default().run(p));
    assert!(chan.clean(), "channel violations: {:?}", chan.violations);
    assert!(
        chan.distinct_schedules >= 100,
        "channel: only {} distinct schedules",
        chan.distinct_schedules
    );

    let coh = explore("coherence", 128, |p| CoherenceScenario::default().run(p));
    assert!(coh.clean(), "coherence violations: {:?}", coh.violations);
    assert!(
        coh.distinct_schedules >= 100,
        "coherence: only {} distinct schedules",
        coh.distinct_schedules
    );
}
