//! `slash-trace-check` — validate a Chrome trace-event JSON file, or a
//! `latency-bench` report.
//!
//! ```text
//! slash-trace-check FILE            # Chrome trace-event document
//! slash-trace-check --latency FILE  # BENCH_latency.json schema
//! ```
//!
//! Trace mode checks, without any JSON library, that the trace an example
//! or harness emitted is actually loadable and well-behaved:
//!
//! 1. the document is structurally well-formed JSON — balanced brackets
//!    of matching kinds, valid string escapes, no stray bytes after the
//!    closing brace (a char-level tokenizer, not a regex);
//! 2. it contains a non-empty `traceEvents` array;
//! 3. the `"ts"` values appear in monotone non-decreasing file order,
//!    which `slash_obs::export::chrome_trace_json` guarantees by sorting
//!    on `(virtual time, sequence)`.
//!
//! Latency mode validates the report `latency-bench` writes:
//!
//! 1. every row's quantiles are monotone (p50 ≤ p99 ≤ p99.9 ≤ p99.99 ≤ max);
//! 2. per workload, the record-path stage means sum to at most the
//!    end-to-end mean — the stage segments partition the worker's busy
//!    window, so attribution can never exceed what it attributes (means
//!    compose linearly; quantiles would not);
//! 3. heat top-k entries per `(workload, label)` have contiguous ranks
//!    and non-increasing counts.
//!
//! Exit codes: 0 valid, 1 invalid, 2 usage/IO error.

use std::process::ExitCode;

/// A structural defect found while scanning the document.
#[derive(Debug)]
struct Defect(String);

/// Parse the decimal-microsecond literal starting at `bytes[i]` (e.g.
/// `12.345`) into integer nanoseconds; returns `(ns, next_index)`.
fn parse_ts(bytes: &[u8], mut i: usize) -> Result<(u64, usize), Defect> {
    let start = i;
    let mut us: u64 = 0;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        us = us * 10 + u64::from(bytes[i] - b'0');
        i += 1;
    }
    if i == start {
        return Err(Defect(format!("byte {start}: \"ts\" value is not a number")));
    }
    let mut ns = us * 1_000;
    if i < bytes.len() && bytes[i] == b'.' {
        i += 1;
        let mut scale = 100u64;
        let frac_start = i;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            ns += u64::from(bytes[i] - b'0') * scale;
            scale /= 10;
            i += 1;
            if scale == 0 {
                break;
            }
        }
        if i == frac_start {
            return Err(Defect(format!("byte {start}: \"ts\" has a bare decimal point")));
        }
    }
    Ok((ns, i))
}

/// Scan the whole document once: validate structure and collect the
/// `"ts"` values (outside strings, in file order) and whether a
/// non-empty `traceEvents` array was seen.
fn check(doc: &str) -> Result<(usize, Vec<u64>), Defect> {
    let bytes = doc.as_bytes();
    let mut stack: Vec<u8> = Vec::new();
    let mut seen_root = false;
    let mut events = 0usize;
    let mut ts_values = Vec::new();
    // Depth of the `traceEvents` array, once entered; events are the
    // elements directly inside it.
    let mut trace_events_depth: Option<usize> = None;
    // Set when the string just closed was a key we care about.
    let mut last_string: Option<&str> = None;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'"' => {
                let start = i + 1;
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(Defect(format!("byte {start}: unterminated string")));
                    }
                    match bytes[i] {
                        b'"' => break,
                        b'\\' => {
                            let esc = bytes.get(i + 1).copied();
                            match esc {
                                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                                    i += 2
                                }
                                Some(b'u') => {
                                    let hex = bytes.get(i + 2..i + 6);
                                    let ok = hex.is_some_and(|h| {
                                        h.iter().all(u8::is_ascii_hexdigit)
                                    });
                                    if !ok {
                                        return Err(Defect(format!(
                                            "byte {i}: bad \\u escape"
                                        )));
                                    }
                                    i += 6;
                                }
                                _ => {
                                    return Err(Defect(format!("byte {i}: bad escape")));
                                }
                            }
                        }
                        c if c < 0x20 => {
                            return Err(Defect(format!(
                                "byte {i}: raw control character {c:#04x} inside string"
                            )));
                        }
                        _ => i += 1,
                    }
                }
                last_string = std::str::from_utf8(&bytes[start..i]).ok();
                i += 1;
                continue;
            }
            b'{' | b'[' => {
                if stack.is_empty() && seen_root {
                    return Err(Defect(format!("byte {i}: content after root value")));
                }
                if b == b'[' && last_string == Some("traceEvents") && stack.len() == 1 {
                    trace_events_depth = Some(stack.len() + 1);
                }
                if b == b'{' && trace_events_depth == Some(stack.len()) {
                    events += 1;
                }
                stack.push(b);
                seen_root = true;
            }
            b'}' => {
                if stack.pop() != Some(b'{') {
                    return Err(Defect(format!("byte {i}: unbalanced `}}`")));
                }
            }
            b']' => {
                if stack.pop() != Some(b'[') {
                    return Err(Defect(format!("byte {i}: unbalanced `]`")));
                }
                if trace_events_depth == Some(stack.len() + 1) {
                    trace_events_depth = None;
                }
            }
            b':' => {
                if last_string == Some("ts") {
                    let mut j = i + 1;
                    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                        j += 1;
                    }
                    let (ns, next) = parse_ts(bytes, j)?;
                    ts_values.push(ns);
                    i = next;
                    last_string = None;
                    continue;
                }
            }
            b' ' | b'\t' | b'\n' | b'\r' | b',' => {}
            _ => {
                // Numbers, literals, signs: structural validity only, so
                // accept the value characters JSON allows.
                let ok = b.is_ascii_digit()
                    || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                    || matches!(b, b't' | b'r' | b'u' | b'f' | b'a' | b'l' | b's' | b'n');
                if !ok {
                    return Err(Defect(format!("byte {i}: unexpected byte {b:#04x}")));
                }
                if stack.is_empty() && !seen_root {
                    return Err(Defect(format!("byte {i}: root is not an object")));
                }
            }
        }
        // Any token other than whitespace or the key's own colon
        // invalidates the pending key string.
        if !matches!(b, b':' | b' ' | b'\t' | b'\n' | b'\r') {
            last_string = None;
        }
        i += 1;
    }
    if !stack.is_empty() {
        return Err(Defect(format!("{} unclosed bracket(s) at end of file", stack.len())));
    }
    if !seen_root {
        return Err(Defect("empty document".to_string()));
    }
    Ok((events, ts_values))
}

// ---------------------------------------------------------------------
// Latency-report mode.
// ---------------------------------------------------------------------

/// Extract a string field from a single-line JSON row.
fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

/// Extract an unsigned integer field from a single-line JSON row.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Validate a `latency-bench` report (see module doc, latency mode).
fn check_latency(doc: &str) -> Result<String, Defect> {
    let mut rows = 0usize;
    let mut heat_rows = 0usize;
    // (workload, record_path, stage, mean) of stage rows; end_to_end mean
    // kept separately per workload.
    let mut stage_means: Vec<(String, String, u64)> = Vec::new();
    let mut e2e_means: Vec<(String, u64)> = Vec::new();
    // (workload, label) -> (last rank, last count) for heat ordering.
    let mut heat_last: Vec<(String, String, u64, u64)> = Vec::new();
    for (ln, line) in doc.lines().enumerate() {
        let n = ln + 1;
        if let (Some(wl), Some(stage)) = (json_str(line, "workload"), json_str(line, "stage")) {
            rows += 1;
            let mut vals = Vec::new();
            for key in ["p50", "p99", "p99.9", "p99.99", "max"] {
                let Some(v) = json_u64(line, key) else {
                    return Err(Defect(format!("line {n}: row missing \"{key}\"")));
                };
                vals.push((key, v));
            }
            for w in vals.windows(2) {
                if w[1].1 < w[0].1 {
                    return Err(Defect(format!(
                        "line {n}: {wl}.{stage} quantiles not monotone: {}={} < {}={}",
                        w[1].0, w[1].1, w[0].0, w[0].1
                    )));
                }
            }
            let Some(mean) = json_u64(line, "mean") else {
                return Err(Defect(format!("line {n}: row missing \"mean\"")));
            };
            if stage == "end_to_end" {
                e2e_means.push((wl.to_string(), mean));
            } else if line.contains("\"record_path\": true") {
                stage_means.push((wl.to_string(), stage.to_string(), mean));
            }
        } else if let (Some(wl), Some(label)) = (json_str(line, "workload"), json_str(line, "label"))
        {
            heat_rows += 1;
            let (Some(rank), Some(count)) = (json_u64(line, "rank"), json_u64(line, "count"))
            else {
                return Err(Defect(format!("line {n}: heat row missing rank/count")));
            };
            match heat_last
                .iter_mut()
                .find(|(w, l, _, _)| w == wl && l == label)
            {
                None => {
                    if rank != 0 {
                        return Err(Defect(format!(
                            "line {n}: heat {wl}/{label} starts at rank {rank}, not 0"
                        )));
                    }
                    heat_last.push((wl.to_string(), label.to_string(), rank, count));
                }
                Some((_, _, last_rank, last_count)) => {
                    if rank != *last_rank + 1 {
                        return Err(Defect(format!(
                            "line {n}: heat {wl}/{label} rank {rank} after {last_rank}"
                        )));
                    }
                    if count > *last_count {
                        return Err(Defect(format!(
                            "line {n}: heat {wl}/{label} count {count} increases past {last_count}"
                        )));
                    }
                    *last_rank = rank;
                    *last_count = count;
                }
            }
        }
    }
    if rows == 0 {
        return Err(Defect("no latency rows found".to_string()));
    }
    for (wl, e2e) in &e2e_means {
        let sum: u64 = stage_means
            .iter()
            .filter(|(w, _, _)| w == wl)
            .map(|(_, _, m)| m)
            .sum();
        // The stage segments partition the busy window exactly and each
        // per-record value floors, so the sum can never exceed the
        // end-to-end mean; +1 absorbs the e2e mean's own final floor.
        if sum > e2e + 1 {
            return Err(Defect(format!(
                "{wl}: record-path stage means sum to {sum}ns > end-to-end mean {e2e}ns"
            )));
        }
    }
    Ok(format!(
        "{rows} latency row(s) monotone, {} workload(s) stage-sum-consistent, {heat_rows} heat row(s) ordered — PASS",
        e2e_means.len()
    ))
}

fn run_latency(path: &str) -> Result<String, Defect> {
    let doc = std::fs::read_to_string(path)
        .map_err(|e| Defect(format!("cannot read {path}: {e}")))?;
    check_latency(&doc).map(|msg| format!("slash-trace-check: {path}: {msg}"))
}

fn run(path: &str) -> Result<String, Defect> {
    let doc = std::fs::read_to_string(path)
        .map_err(|e| Defect(format!("cannot read {path}: {e}")))?;
    let (events, ts) = check(&doc)?;
    if events == 0 {
        return Err(Defect("traceEvents array is missing or empty".to_string()));
    }
    for w in ts.windows(2) {
        if w[1] < w[0] {
            return Err(Defect(format!(
                "\"ts\" not monotone: {}ns after {}ns",
                w[1], w[0]
            )));
        }
    }
    Ok(format!(
        "slash-trace-check: {path}: {events} event(s), {} ts value(s) monotone, JSON well-formed — PASS",
        ts.len()
    ))
}

fn main() -> ExitCode {
    // (path, latency mode) pairs, in argument order.
    let mut jobs: Vec<(String, bool)> = Vec::new();
    let mut latency_next = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--help" | "-h" => {
                println!("usage: slash-trace-check [--latency] FILE...");
                return ExitCode::SUCCESS;
            }
            "--latency" => latency_next = true,
            _ => {
                jobs.push((a, latency_next));
                latency_next = false;
            }
        }
    }
    if jobs.is_empty() || latency_next {
        eprintln!("slash-trace-check: expected at least one trace file");
        return ExitCode::from(2);
    }
    for (p, latency) in &jobs {
        let res = if *latency { run_latency(p) } else { run(p) };
        match res {
            Ok(msg) => println!("{msg}"),
            Err(Defect(d)) => {
                eprintln!("slash-trace-check: {p}: FAIL — {d}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_real_export() {
        let obs = slash_obs::Obs::enabled(64);
        for i in 0..10u64 {
            obs.instant(
                slash_obs::Cat::Verb,
                "write",
                0,
                1,
                slash_desim::SimTime::from_nanos(i * 700),
                &[("seq", i)],
            );
        }
        let json = obs.chrome_trace_json();
        let (events, ts) = check(&json).expect("valid");
        assert_eq!(events, 10);
        assert_eq!(ts.len(), 10);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(ts[1], 700);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(check("{\"traceEvents\":[").is_err(), "unclosed");
        assert!(check("{\"a\":\"b").is_err(), "unterminated string");
        assert!(check("{\"a\":1}]").is_err(), "unbalanced close");
        assert!(check("{\"a\":\"\\q\"}").is_err(), "bad escape");
        let (events, _) = check("{\"traceEvents\":[]}").expect("well-formed");
        assert_eq!(events, 0, "empty traceEvents counts zero events");
    }

    #[test]
    fn ts_parsing_handles_fractional_microseconds() {
        let doc = "{\"traceEvents\":[{\"ts\":1.001},{\"ts\":2.5},{\"ts\":13}]}";
        let (events, ts) = check(doc).expect("valid");
        assert_eq!(events, 3);
        assert_eq!(ts, vec![1_001, 2_500, 13_000]);
    }

    #[test]
    fn non_monotone_ts_detected_by_run_order() {
        let doc = "{\"traceEvents\":[{\"ts\":5.000},{\"ts\":4.999}]}";
        let (_, ts) = check(doc).expect("well-formed");
        assert!(ts.windows(2).any(|w| w[1] < w[0]));
    }

    fn lat_row(wl: &str, stage: &str, rp: bool, mean: u64, q: [u64; 5]) -> String {
        format!(
            "{{\"workload\": \"{wl}\", \"stage\": \"{stage}\", \"record_path\": {rp}, \
             \"count\": 10, \"mean\": {mean}, \"p50\": {}, \"p99\": {}, \"p99.9\": {}, \
             \"p99.99\": {}, \"max\": {}}}\n",
            q[0], q[1], q[2], q[3], q[4]
        )
    }

    fn heat_row(wl: &str, label: &str, rank: u64, count: u64) -> String {
        format!(
            "{{\"workload\": \"{wl}\", \"label\": \"{label}\", \"rank\": {rank}, \
             \"key\": 7, \"count\": {count}, \"err\": 0}}\n"
        )
    }

    #[test]
    fn latency_mode_accepts_a_consistent_report() {
        let mut doc = String::new();
        doc.push_str(&lat_row("ysb", "end_to_end", true, 20, [10, 20, 30, 40, 50]));
        doc.push_str(&lat_row("ysb", "source", true, 6, [6, 6, 6, 6, 6]));
        doc.push_str(&lat_row("ysb", "ssb_apply", true, 10, [8, 12, 14, 16, 16]));
        // Off-record-path stages are excluded from the sum check.
        doc.push_str(&lat_row("ysb", "channel_transit", false, 9000, [1, 2, 3, 4, 5]));
        doc.push_str(&heat_row("ysb", "node0", 0, 100));
        doc.push_str(&heat_row("ysb", "node0", 1, 100));
        doc.push_str(&heat_row("ysb", "node0", 2, 40));
        doc.push_str(&heat_row("ysb", "node1", 0, 7));
        let msg = check_latency(&doc).expect("valid report");
        assert!(msg.contains("4 latency row(s)"));
        assert!(msg.contains("4 heat row(s)"));
    }

    #[test]
    fn latency_mode_rejects_non_monotone_quantiles() {
        let doc = lat_row("ysb", "end_to_end", true, 20, [10, 9, 30, 40, 50]);
        let err = check_latency(&doc).unwrap_err();
        assert!(err.0.contains("not monotone"), "{}", err.0);
    }

    #[test]
    fn latency_mode_rejects_stage_sum_exceeding_end_to_end() {
        let mut doc = String::new();
        doc.push_str(&lat_row("nb7", "end_to_end", true, 20, [10, 20, 30, 40, 50]));
        doc.push_str(&lat_row("nb7", "source", true, 15, [6, 6, 6, 6, 6]));
        doc.push_str(&lat_row("nb7", "ssb_apply", true, 15, [8, 12, 14, 16, 16]));
        let err = check_latency(&doc).unwrap_err();
        assert!(err.0.contains("sum to 30ns"), "{}", err.0);
    }

    #[test]
    fn latency_mode_rejects_heat_disorder() {
        let base = lat_row("ysb", "end_to_end", true, 20, [10, 20, 30, 40, 50]);
        let increasing = format!(
            "{base}{}{}",
            heat_row("ysb", "node0", 0, 10),
            heat_row("ysb", "node0", 1, 11)
        );
        assert!(check_latency(&increasing).unwrap_err().0.contains("increases"));
        let gap = format!(
            "{base}{}{}",
            heat_row("ysb", "node0", 0, 10),
            heat_row("ysb", "node0", 2, 5)
        );
        assert!(check_latency(&gap).unwrap_err().0.contains("rank 2 after 0"));
        let bad_start = format!("{base}{}", heat_row("ysb", "node1", 3, 5));
        assert!(check_latency(&bad_start).unwrap_err().0.contains("not 0"));
    }

    #[test]
    fn latency_mode_rejects_empty_reports() {
        assert!(check_latency("{}\n").is_err());
    }
}
