//! The event queue: a binary heap of timestamped, sequence-ordered entries.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::clock::SimTime;
use crate::process::ProcId;
use crate::sim::Sim;

/// Monotone sequence number used to break ties between events scheduled for
/// the same virtual time. First scheduled fires first (FIFO among equals),
/// which is what makes the simulation deterministic.
pub(crate) type EventSeq = u64;

/// What happens when an event fires.
pub(crate) enum EventKind {
    /// Wake a parked or yielded process.
    Wake(ProcId),
    /// Run an arbitrary closure against the simulator. Used by the fabric to
    /// deliver messages, post completions, and so on.
    Closure(Box<dyn FnOnce(&mut Sim)>),
}

pub(crate) struct Scheduled {
    pub at: SimTime,
    pub seq: EventSeq,
    pub kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic min-queue of scheduled events.
#[derive(Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: EventSeq,
}

impl EventQueue {
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, kind });
    }

    pub fn pop(&mut self) -> Option<Scheduled> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wake(at: u64, q: &mut EventQueue) {
        q.push(SimTime(at), EventKind::Wake(ProcId(0)));
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::default();
        wake(30, &mut q);
        wake(10, &mut q);
        wake(20, &mut q);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|s| s.at.0)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::default();
        for i in 0..16u64 {
            q.push(SimTime(42), EventKind::Wake(ProcId(i as u32)));
        }
        let seqs: Vec<EventSeq> = std::iter::from_fn(|| q.pop().map(|s| s.seq)).collect();
        let sorted = {
            let mut s = seqs.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(seqs, sorted, "same-time events must fire in schedule order");
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::default();
        wake(7, &mut q);
        wake(3, &mut q);
        assert_eq!(q.peek_time(), Some(SimTime(3)));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
