//! `slash-race` — sweep the protocol scenarios across tie-break schedules.
//!
//! ```text
//! slash-race [--seeds N] [--mutation NAME] [--scenario handoff]
//!            [--exhaustive] [--max-states N] [--max-schedules N]
//!            [--minimize] [--out PATH]
//! ```
//!
//! **Random sweep (default):** runs the channel, multi-port fabric,
//! coherence, and crash-recovery scenarios — including the compound
//! `concurrent-crash` (two victims on the same tick) and
//! `reentrant-recovery` (the same victim crashes again after its first
//! restore) families, plus the elastic-rescaling `planned-handoff`
//! (cutover promotion without a crash) and `handoff-vs-crash` (a live
//! migration racing a concurrent crash recovery on the same tick)
//! families, plus the hot-key-splitting `hot-split-recovery` and
//! `hot-split-handoff` families (keys split into per-replica salted
//! sub-keys while a crash or cutover interleaves; convergence checks the
//! canonical-plus-sub-keys fold) — under `N` tie-break policies (FIFO,
//! LIFO, and seeded
//! permutations; default 128), printing how many distinct schedules
//! were explored and any invariant violations. On a violation the flight
//! recorder's dump — the last trace events with the schedule fingerprint
//! and vector-clock context — is printed alongside. `--scenario handoff`
//! restricts the sweep to the two handoff families (CI's rescale stage
//! uses this for a focused re-run).
//!
//! **Exhaustive mode (`--exhaustive`):** replaces sampling with the
//! bounded DFS model checker ([`slash_verify::explorer`]). The small
//! 2-node FIFO/credit scenario is enumerated *literally* (every distinct
//! same-instant schedule run, dedup off) and must drain its frontier with
//! `schedules == distinct fingerprints`; the single-crash recovery
//! scenario, the 2-node single-handoff `rescale-small` scenario, and the
//! 2-node single-crash-with-one-split-key `hot-split-small` scenario are
//! explored with state-digest dedup and must also drain completely.
//! Coverage floors are hard gates: enumerating fewer
//! schedules than a known-good run is a regression. A scenario that
//! exceeds its budget must *report* the truncated frontier, and the
//! random sweep then runs as a fallback over the unexplored space. The
//! coverage accounting is written as JSON with `--out` (CI publishes
//! `results/race_coverage.json`).
//!
//! `--mutation NAME` injects a known protocol bug (one of
//! `skip-credit-return`, `ignore-credit-window`, `reorder-delivered`,
//! `regress-vclock`, `drop-update`, `skip-replay`) into the owning
//! scenario and *expects* the checks to fire: under the random sweep a
//! violation plus a flight-recorder dump; under `--exhaustive` (with
//! `--minimize`) additionally a minimized reproducing choice schedule
//! strictly shorter than the first exposing one.
//!
//! Exit codes: 0 all gates hold (or, under `--mutation`, the injected bug
//! was caught), 1 otherwise, 2 usage error.

use std::process::ExitCode;

use slash_verify::explorer::{Budget, ExhaustiveReport};
use slash_verify::race::{explore, Exploration};
use slash_verify::scenarios::{ChannelScenario, CoherenceScenario, Mutation, RecoveryScenario};

/// Minimum distinct schedules per scenario for a full-size sweep.
const MIN_DISTINCT: usize = 100;

/// Coverage floor for the literal enumeration of the 2-node FIFO/credit
/// scenario: its schedule space today is exactly 8 distinct schedules
/// (3 binary branch points); enumerating fewer is a regression.
const CHAN_SMALL_FLOOR: usize = 8;

/// Coverage floor for the dedup-reduced single-crash recovery scenario
/// (35 schedules today; slack for benign drift, still far above the
/// 1-schedule degenerate case).
const RECOVERY_SMALL_FLOOR: usize = 24;

/// Coverage floor for the dedup-reduced 2-node single-handoff rescale
/// scenario (35 schedules today; same slack policy as
/// [`RECOVERY_SMALL_FLOOR`]).
const HANDOFF_SMALL_FLOOR: usize = 24;

/// Coverage floor for the dedup-reduced 2-node single-crash scenario
/// with one hot-split key (same slack policy as
/// [`RECOVERY_SMALL_FLOOR`]: well below today's count, far above the
/// 1-schedule degenerate case).
const HOT_SPLIT_SMALL_FLOOR: usize = 24;

fn gate(e: &Exploration, seeds: u64) -> bool {
    let needed = if seeds as usize > MIN_DISTINCT + 2 {
        MIN_DISTINCT
    } else {
        // Small sweeps (e.g. smoke runs) still must mostly diverge.
        (seeds as usize / 2).max(1)
    };
    e.clean() && e.distinct_schedules >= needed
}

fn parse_mutation(name: &str) -> Option<Mutation> {
    match name {
        "skip-credit-return" => Some(Mutation::SkipCreditReturn),
        "ignore-credit-window" => Some(Mutation::IgnoreCreditWindow),
        "reorder-delivered" => Some(Mutation::ReorderDelivered),
        "regress-vclock" => Some(Mutation::RegressVclock),
        "drop-update" => Some(Mutation::DropUpdate),
        "skip-replay" => Some(Mutation::SkipReplay),
        _ => None,
    }
}

/// Run one injected bug under a small sweep and require both a violation
/// and a flight-recorder dump.
fn run_mutation(m: Mutation, seeds: u64) -> ExitCode {
    let channel_owned = matches!(
        m,
        Mutation::SkipCreditReturn | Mutation::IgnoreCreditWindow | Mutation::ReorderDelivered
    );
    let e = if channel_owned {
        let s = ChannelScenario {
            mutation: Some(m),
            ..ChannelScenario::default()
        };
        explore("channel-protocol (mutated)", seeds, |p| s.run(p))
    } else if m == Mutation::SkipReplay {
        let s = RecoveryScenario {
            mutation: Some(m),
            ..RecoveryScenario::default()
        };
        explore("crash-recovery (mutated)", seeds, |p| s.run(p))
    } else {
        let s = CoherenceScenario {
            mutation: Some(m),
            ..CoherenceScenario::default()
        };
        explore("epoch-coherence (mutated)", seeds, |p| s.run(p))
    };
    print!("{}", e.render_human());
    if !e.clean() && !e.dumps.is_empty() {
        println!("slash-race: mutation {m:?} detected, flight recorder dumped — PASS");
        ExitCode::SUCCESS
    } else {
        println!(
            "slash-race: mutation {m:?} NOT detected (violations={}, dumps={}) — FAIL",
            e.violations.len(),
            e.dumps.len()
        );
        ExitCode::FAILURE
    }
}

/// Run one injected bug under the exhaustive explorer on the small
/// configuration its scenario owns; require detection and (when
/// minimizing) a repro schedule strictly shorter than the first exposing
/// one.
fn run_mutation_exhaustive(m: Mutation, budget: Budget, minimize: bool) -> ExitCode {
    let channel_owned = matches!(
        m,
        Mutation::SkipCreditReturn | Mutation::IgnoreCreditWindow | Mutation::ReorderDelivered
    );
    let rep = if channel_owned {
        let s = ChannelScenario {
            mutation: Some(m),
            ..ChannelScenario::small()
        };
        s.exhaustive("channel-small (mutated)", budget, minimize)
    } else if m == Mutation::SkipReplay {
        let s = RecoveryScenario {
            mutation: Some(m),
            ..RecoveryScenario::small()
        };
        s.exhaustive("recovery-small (mutated)", budget, minimize)
    } else {
        let s = CoherenceScenario {
            mutation: Some(m),
            ..CoherenceScenario::default()
        };
        s.exhaustive("epoch-coherence (mutated)", budget, minimize)
    };
    print!("{}", rep.render_human());
    let minimization_holds = !minimize
        || rep
            .counterexamples
            .iter()
            .all(|c| c.minimized.len() < c.first_schedule.len());
    if !rep.clean() && minimization_holds {
        println!("slash-race: mutation {m:?} detected under exhaustive exploration — PASS");
        ExitCode::SUCCESS
    } else {
        println!(
            "slash-race: mutation {m:?} exhaustive check FAILED \
             (counterexamples={}, minimization_holds={minimization_holds})",
            rep.counterexamples.len()
        );
        ExitCode::FAILURE
    }
}

/// One scenario's contribution to the coverage report.
struct ScenarioCoverage {
    report: ExhaustiveReport,
    /// Scenario-specific gate verdict (coverage floor, literal/complete
    /// requirement), not counting the truncation-fallback gate.
    gate_ok: bool,
    /// Random-sweep fallback result when the frontier truncated.
    fallback: Option<Exploration>,
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn coverage_json(scenarios: &[ScenarioCoverage], pass: bool) -> String {
    let mut out = String::from("{\n  \"scenarios\": [\n");
    for (i, sc) in scenarios.iter().enumerate() {
        let c = &sc.report.coverage;
        out.push_str(&format!(
            "    {{\n      \"name\": \"{}\",\n      \"schedules_enumerated\": {},\n      \
             \"distinct_fingerprints\": {},\n      \"states_expanded\": {},\n      \
             \"pruned_sleep\": {},\n      \"pruned_dedup\": {},\n      \
             \"max_depth_seen\": {},\n      \"minimization_runs\": {},\n      \
             \"frontier_truncated\": {},\n      \"complete\": {},\n      \
             \"literal_full_enumeration\": {},\n      \"counterexamples\": {},\n      \
             \"gate_ok\": {}",
            json_escape(sc.report.scenario),
            c.schedules_enumerated,
            c.distinct_fingerprints,
            c.states_expanded,
            c.pruned_sleep,
            c.pruned_dedup,
            c.max_depth_seen,
            c.minimization_runs,
            c.frontier_truncated,
            c.complete(),
            c.literal_full_enumeration(),
            sc.report.counterexamples.len(),
            sc.gate_ok,
        ));
        if let Some(fb) = &sc.fallback {
            out.push_str(&format!(
                ",\n      \"fallback_sweep\": {{\n        \"schedules_run\": {},\n        \
                 \"distinct_schedules\": {},\n        \"clean\": {}\n      }}",
                fb.schedules_run,
                fb.distinct_schedules,
                fb.clean()
            ));
        }
        out.push_str("\n    }");
        if i + 1 < scenarios.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&format!("  ],\n  \"pass\": {pass}\n}}\n"));
    out
}

/// The exhaustive verification pass: literal enumeration of the 2-node
/// FIFO/credit scenario, dedup-reduced enumeration of the single-crash
/// recovery scenario, coverage-floor gates, and the random-sweep fallback
/// on any truncated frontier.
fn run_exhaustive(budget: Budget, minimize: bool, seeds: u64, out: Option<&str>) -> ExitCode {
    let mut scenarios = Vec::new();

    // 2-node FIFO/credit: literal full enumeration, dedup off. The gate
    // is the strongest claim the explorer can make: every distinct
    // same-instant schedule was run, none pruned, frontier drained.
    let chan = ChannelScenario::small();
    let literal_budget = Budget {
        state_dedup: false,
        ..budget
    };
    let rep = chan.exhaustive("channel-small-literal", literal_budget, minimize);
    print!("{}", rep.render_human());
    let gate_ok = rep.clean()
        && rep.coverage.literal_full_enumeration()
        && rep.coverage.schedules_enumerated >= CHAN_SMALL_FLOOR;
    let fallback = fallback_if_truncated(&rep, seeds, |p| chan.run(p));
    scenarios.push(ScenarioCoverage {
        report: rep,
        gate_ok,
        fallback,
    });

    // Same scenario with state-digest dedup on: the reduction must not
    // change the verdict, only save runs.
    let rep = chan.exhaustive("channel-small-dedup", budget, minimize);
    print!("{}", rep.render_human());
    let gate_ok = rep.clean() && rep.coverage.complete();
    let fallback = fallback_if_truncated(&rep, seeds, |p| chan.run(p));
    scenarios.push(ScenarioCoverage {
        report: rep,
        gate_ok,
        fallback,
    });

    // Single-crash recovery: the literal space is ~2^34, but state-digest
    // dedup collapses converged tick interleavings and the frontier
    // drains completely.
    let rec = RecoveryScenario::small();
    let rep = rec.exhaustive("recovery-small", budget, minimize);
    print!("{}", rep.render_human());
    let gate_ok = rep.clean()
        && rep.coverage.complete()
        && rep.coverage.schedules_enumerated >= RECOVERY_SMALL_FLOOR;
    let fallback = fallback_if_truncated(&rep, seeds, |p| rec.run(p));
    scenarios.push(ScenarioCoverage {
        report: rep,
        gate_ok,
        fallback,
    });

    // Single planned handoff (the elastic cutover): structurally the
    // crash scenario with an empty replay range, so the same dedup
    // reduction applies and the reconnect-dedup invariant becomes
    // checked-on-all-schedules.
    let resc = RecoveryScenario::rescale_small();
    let rep = resc.exhaustive("rescale-small", budget, minimize);
    print!("{}", rep.render_human());
    let gate_ok = rep.clean()
        && rep.coverage.complete()
        && rep.coverage.schedules_enumerated >= HANDOFF_SMALL_FLOOR;
    let fallback = fallback_if_truncated(&rep, seeds, |p| resc.run(p));
    scenarios.push(ScenarioCoverage {
        report: rep,
        gate_ok,
        fallback,
    });

    // Single crash with one hot-split key: the crash promotion must
    // commute with split/fold on every schedule the checker drains —
    // salted sub-key entries checkpoint, replay, and merge like any
    // other state, and the restored node adopts split custody from the
    // survivor.
    let hot = RecoveryScenario::hot_split_small();
    let rep = hot.exhaustive("hot-split-small", budget, minimize);
    print!("{}", rep.render_human());
    let gate_ok = rep.clean()
        && rep.coverage.complete()
        && rep.coverage.schedules_enumerated >= HOT_SPLIT_SMALL_FLOOR;
    let fallback = fallback_if_truncated(&rep, seeds, |p| hot.run(p));
    scenarios.push(ScenarioCoverage {
        report: rep,
        gate_ok,
        fallback,
    });

    // A truncated frontier is only acceptable when reported AND the
    // random fallback sweep over the same scenario stays clean.
    let pass = scenarios.iter().all(|sc| {
        sc.gate_ok
            && match (&sc.fallback, sc.report.coverage.frontier_truncated) {
                (Some(fb), true) => fb.clean(),
                (None, false) => true,
                // Fallback without truncation or vice versa cannot happen
                // by construction; treat defensively as failure.
                _ => false,
            }
    });

    let json = coverage_json(&scenarios, pass);
    match out {
        Some(path) => {
            if let Some(dir) = std::path::Path::new(path).parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("slash-race: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("slash-race: coverage written to {path}");
        }
        None => print!("{json}"),
    }
    if pass {
        println!("slash-race: exhaustive PASS");
        ExitCode::SUCCESS
    } else {
        println!("slash-race: exhaustive FAIL");
        ExitCode::FAILURE
    }
}

fn fallback_if_truncated(
    rep: &ExhaustiveReport,
    seeds: u64,
    run: impl FnMut(slash_desim::TieBreak) -> slash_verify::race::Outcome,
) -> Option<Exploration> {
    if !rep.coverage.frontier_truncated {
        return None;
    }
    println!(
        "slash-race: {} truncated at budget — falling back to the random sweep",
        rep.scenario
    );
    let fb = explore(rep.scenario, seeds, run);
    print!("{}", fb.render_human());
    Some(fb)
}

fn main() -> ExitCode {
    let mut seeds: u64 = 128;
    let mut mutation: Option<Mutation> = None;
    let mut handoff_only = false;
    let mut exhaustive = false;
    let mut minimize = false;
    let mut budget = Budget::default();
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seeds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => seeds = n,
                None => {
                    eprintln!("slash-race: --seeds requires a number");
                    return ExitCode::from(2);
                }
            },
            "--mutation" => match args.next().as_deref().and_then(parse_mutation) {
                Some(m) => mutation = Some(m),
                None => {
                    eprintln!(
                        "slash-race: --mutation requires one of skip-credit-return, \
                         ignore-credit-window, reorder-delivered, regress-vclock, \
                         drop-update, skip-replay"
                    );
                    return ExitCode::from(2);
                }
            },
            "--scenario" => match args.next().as_deref() {
                Some("handoff") => handoff_only = true,
                _ => {
                    eprintln!("slash-race: --scenario requires `handoff`");
                    return ExitCode::from(2);
                }
            },
            "--exhaustive" => exhaustive = true,
            "--minimize" => minimize = true,
            "--max-states" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => budget.max_states = n,
                None => {
                    eprintln!("slash-race: --max-states requires a number");
                    return ExitCode::from(2);
                }
            },
            "--max-schedules" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => budget.max_schedules = n,
                None => {
                    eprintln!("slash-race: --max-schedules requires a number");
                    return ExitCode::from(2);
                }
            },
            "--out" => match args.next() {
                Some(p) => out = Some(p),
                None => {
                    eprintln!("slash-race: --out requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: slash-race [--seeds N] [--mutation NAME] [--scenario handoff] \
                     [--exhaustive] [--max-states N] [--max-schedules N] [--minimize] \
                     [--out PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("slash-race: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    if exhaustive {
        return match mutation {
            Some(m) => run_mutation_exhaustive(m, budget, minimize),
            None => run_exhaustive(budget, minimize, seeds, out.as_deref()),
        };
    }

    if let Some(m) = mutation {
        // A mutated sweep only needs a handful of schedules to prove the
        // checks fire; cap so `--mutation` stays fast by default.
        return run_mutation(m, seeds.min(8));
    }

    let handoff = explore("planned-handoff", seeds, |p| {
        RecoveryScenario::planned_handoff().run(p)
    });
    print!("{}", handoff.render_human());
    let hvc = explore("handoff-vs-crash", seeds, |p| {
        RecoveryScenario::handoff_vs_crash().run(p)
    });
    print!("{}", hvc.render_human());
    if handoff_only {
        return if gate(&handoff, seeds) && gate(&hvc, seeds) {
            println!("slash-race: PASS");
            ExitCode::SUCCESS
        } else {
            println!("slash-race: FAIL");
            ExitCode::FAILURE
        };
    }

    let chan = explore("channel-protocol", seeds, |p| ChannelScenario::default().run(p));
    print!("{}", chan.render_human());
    let multi = explore("multiport-fabric", seeds, |p| ChannelScenario::multi_port().run(p));
    print!("{}", multi.render_human());
    let coh = explore("epoch-coherence", seeds, |p| CoherenceScenario::default().run(p));
    print!("{}", coh.render_human());
    let rec = explore("crash-recovery", seeds, |p| RecoveryScenario::default().run(p));
    print!("{}", rec.render_human());
    let conc = explore("concurrent-crash", seeds, |p| {
        RecoveryScenario::concurrent_crash().run(p)
    });
    print!("{}", conc.render_human());
    let reent = explore("reentrant-recovery", seeds, |p| {
        RecoveryScenario::reentrant().run(p)
    });
    print!("{}", reent.render_human());
    let hot = explore("hot-split-recovery", seeds, |p| {
        RecoveryScenario::hot_split().run(p)
    });
    print!("{}", hot.render_human());
    let hoth = explore("hot-split-handoff", seeds, |p| {
        RecoveryScenario::hot_split_handoff().run(p)
    });
    print!("{}", hoth.render_human());

    let ok = gate(&handoff, seeds)
        && gate(&hvc, seeds)
        && gate(&chan, seeds)
        && gate(&multi, seeds)
        && gate(&coh, seeds)
        && gate(&rec, seeds)
        && gate(&conc, seeds)
        && gate(&reent, seeds)
        && gate(&hot, seeds)
        && gate(&hoth, seeds);
    if ok {
        println!("slash-race: PASS");
        ExitCode::SUCCESS
    } else {
        println!("slash-race: FAIL");
        ExitCode::FAILURE
    }
}
