#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # slash-rdma — a software RDMA fabric with ibverbs-shaped semantics
//!
//! This crate is the substitute for the InfiniBand hardware the paper runs
//! on (16 nodes, Mellanox ConnectX-4 EDR 100 Gb/s, one port per node). It
//! models, on top of the `slash-desim` kernel:
//!
//! * **Registered memory regions** ([`memory::Mr`]) addressed by rkey, the
//!   only memory remote operations may touch.
//! * **Reliable-connection queue pairs** ([`qp::Qp`]) supporting one-sided
//!   `RDMA WRITE` (+`WITH_IMM`), one-sided `RDMA READ`, and two-sided
//!   `SEND`/`RECV`, with in-order delivery per QP — the verbs Slash's RDMA
//!   channel (§6 of the paper) is built from.
//! * **Completion queues** ([`cq::Cq`]) with selective signaling: unsignaled
//!   work requests consume no completion, exactly like `IBV_SEND_SIGNALED`.
//! * **NIC bandwidth pacing** ([`nic`]): each node has one full-duplex port;
//!   transfers serialize on the sender's TX link and the receiver's RX link
//!   (cut-through) plus a propagation latency and a fixed per-message
//!   overhead. This is what makes incast — many partitioning producers
//!   hammering one consumer — emerge naturally in the baselines.
//!
//! What is intentionally *not* modeled: memory registration cost (setup
//! phase only), MTU segmentation (bandwidth pacing subsumes it), and packet
//! loss (reliable connections only, as in the paper).
//!
//! ## Fault injection
//!
//! The fabric exposes fault hooks ([`Fabric::fail_node`],
//! [`Fabric::set_link_down`], [`Fabric::set_extra_delay`]) driven by the
//! `slash-chaos` crate. A failed path flushes work requests instead of
//! delivering them: signaled requests surface
//! [`cq::CompletionStatus::FlushErr`] completions, the QP transitions to
//! the error state ([`qp::Qp::is_error`]) and rejects further posts until
//! [`qp::Qp::reset`] re-establishes the connection under a new incarnation
//! (fencing any stale in-flight deliveries).
//!
//! ## Semantics notes
//!
//! A one-sided WRITE becomes visible in the target memory region atomically
//! at its delivery instant, and completions on the sender are generated
//! after a further ack latency. Because delivery events execute between
//! process steps, a consumer that polls the *last byte* of a buffer (the
//! paper's footer-polling rule) never observes a torn transfer — the same
//! guarantee the paper derives from NICs writing low-to-high addresses.

pub mod cq;
pub mod error;
pub mod fabric;
pub mod memory;
pub mod nic;
pub mod qp;
pub mod verbs;

pub use cq::{Completion, CompletionKind, CompletionStatus, Cq, CqHandle};
pub use error::{RdmaError, Result};
pub use fabric::{Fabric, FabricConfig, NodeId};
pub use memory::{Mr, RemoteKey};
pub use nic::{NicConfig, NicStats};
pub use qp::Qp;
pub use verbs::{LocalSlice, RemoteSlice, WorkRequest};
