//! The consumer endpoint of an RDMA channel.

use slash_desim::{Sim, SimTime};
use slash_rdma::{LocalSlice, Mr, Qp, RdmaError, RemoteKey, RemoteSlice, WorkRequest};

use crate::channel::ChannelConfig;
use crate::layout::{footer_offset, generation, Footer, MsgFlags, FOOTER_SIZE};
use crate::stats::ChannelStats;

/// Consumer endpoint.
///
/// Polls the footer byte of the next expected slot in its *local* ring
/// memory (remote producers push with WRITEs, so polling costs no network
/// traffic — the paper's argument for a push model, §6.3), processes the
/// payload in place, and returns credit by writing its cumulative consumed
/// count into the producer's credit counter.
pub struct ChannelReceiver {
    qp: Qp,
    /// Local ring the producer writes into.
    ring: Mr,
    /// Producer-side credit counter region.
    remote_credit: RemoteKey,
    /// 8-byte staging region for credit writes.
    credit_staging: Mr,
    cfg: ChannelConfig,
    next_seq: u64,
    /// Consumed buffers not yet covered by a credit message.
    unreturned: usize,
    eos_seen: bool,
    /// Fault injection (verification only): consume without returning credit.
    fault_drop_credits: bool,
    /// Statistics (throughput/latency drill-down).
    pub stats: ChannelStats,
}

impl ChannelReceiver {
    pub(crate) fn new(
        qp: Qp,
        ring: Mr,
        remote_credit: RemoteKey,
        credit_staging: Mr,
        cfg: ChannelConfig,
    ) -> Self {
        ChannelReceiver {
            qp,
            ring,
            remote_credit,
            credit_staging,
            cfg,
            next_seq: 0,
            unreturned: 0,
            eos_seen: false,
            fault_drop_credits: false,
            stats: ChannelStats::default(),
        }
    }

    /// The channel configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Whether the producer has signalled end-of-stream and everything
    /// before it was consumed.
    pub fn eos(&self) -> bool {
        self.eos_seen
    }

    /// Sequence number of the next buffer expected.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Consumed buffers not yet covered by a credit message. Exposed so
    /// external checkers (the `slash-verify` race checker) can account for
    /// credit currently held on the consumer side.
    pub fn unreturned(&self) -> usize {
        self.unreturned
    }

    /// Fault injection (verification only): stop returning credit for
    /// consumed buffers, starving the producer. Used by `slash-verify`
    /// mutation tests to prove the credit-conservation invariant check
    /// actually fires. Never call this from protocol code.
    #[doc(hidden)]
    pub fn fault_skip_credit_return(&mut self) {
        self.fault_drop_credits = true;
    }

    /// Whether a buffer is ready without consuming it.
    pub fn ready(&self) -> bool {
        let slot = (self.next_seq % self.cfg.credits as u64) as usize;
        let foot_off = footer_offset(slot, self.cfg.buffer_size);
        self.ring.poll_byte(foot_off + FOOTER_SIZE - 1)
            == generation(self.next_seq, self.cfg.credits)
    }

    /// Poll for the next buffer; if one is ready, run `f` over
    /// `(flags, payload)` in place and return its result. Consuming the
    /// buffer returns credit to the producer (possibly batched).
    pub fn poll_with<R>(
        &mut self,
        sim: &mut Sim,
        f: impl FnOnce(MsgFlags, &[u8]) -> R,
    ) -> Result<Option<R>, RdmaError> {
        if !self.ready() {
            self.stats.empty_polls += 1;
            return Ok(None);
        }
        let slot = (self.next_seq % self.cfg.credits as u64) as usize;
        let m = self.cfg.buffer_size;
        let foot_off = footer_offset(slot, m);
        let (footer, sent_us) = self
            .ring
            .with(foot_off, FOOTER_SIZE, |b| {
                let mut us = [0u8; 8];
                us[..5].copy_from_slice(&b[10..15]);
                (Footer::decode(b), u64::from_le_bytes(us))
            })
            .expect("footer inside ring");
        debug_assert_eq!(footer.seq32, self.next_seq as u32, "FIFO violated");
        let len = footer.len as usize;
        let payload_off = foot_off - len;
        let out = self
            .ring
            .with(payload_off, len, |payload| f(footer.flags, payload))
            .expect("payload inside ring");

        // Latency sample: send stamp (µs) → now.
        let now_us = sim.now().as_nanos() / 1_000;
        if now_us >= sent_us {
            self.stats.latency_sum += SimTime::from_micros(now_us - sent_us);
            self.stats.latency_samples += 1;
        }

        if footer.flags.contains(MsgFlags::EOS) {
            self.eos_seen = true;
        }
        self.next_seq += 1;
        self.unreturned += 1;
        self.stats.buffers += 1;
        self.stats.payload_bytes += len as u64;
        if (self.unreturned >= self.cfg.credit_batch || self.eos_seen) && !self.fault_drop_credits {
            self.return_credit(sim)?;
        }
        Ok(Some(out))
    }

    /// Convenience: copy the next buffer out, if ready.
    pub fn try_recv(&mut self, sim: &mut Sim) -> Result<Option<(MsgFlags, Vec<u8>)>, RdmaError> {
        self.poll_with(sim, |flags, payload| (flags, payload.to_vec()))
    }

    /// Write the cumulative consumed count into the producer's credit
    /// region (an 8-byte one-sided WRITE — the "credit transfer" of §6.2).
    fn return_credit(&mut self, sim: &mut Sim) -> Result<(), RdmaError> {
        self.credit_staging.write_u64(0, self.next_seq);
        self.qp.post_send(
            sim,
            WorkRequest::Write {
                wr_id: u64::MAX, // control message; never inspected
                local: LocalSlice::range(&self.credit_staging, 0, 8),
                remote: RemoteSlice {
                    key: self.remote_credit,
                    offset: 0,
                },
                signaled: false,
            },
        )?;
        self.unreturned = 0;
        self.stats.credit_msgs += 1;
        Ok(())
    }
}

impl std::fmt::Debug for ChannelReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelReceiver")
            .field("node", &self.qp.local_node())
            .field("peer", &self.qp.peer_node())
            .field("next_seq", &self.next_seq)
            .field("eos", &self.eos_seen)
            .finish()
    }
}
