#!/usr/bin/env bash
# Full verification gate for the workspace. Run from anywhere inside the
# repo; every step is offline and deterministic. Order is cheapest-first
# so failures surface fast.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> [1/16] build (release, all targets)"
cargo build --release --workspace

echo "==> [2/16] tests (unit + integration + fixtures + mutations)"
cargo test --workspace -q

echo "==> [3/16] clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> [4/16] rustdoc (workspace docs, broken intra-doc links are errors)"
RUSTDOCFLAGS="-D rustdoc::broken_intra_doc_links" cargo doc --workspace --no-deps --quiet

echo "==> [5/16] slash-lint (custom static analysis, burn-down allowlist)"
cargo run --release -p slash-verify --bin slash-lint

echo "==> [6/16] slash-race (schedule exploration smoke: 128 tie-breaks)"
# Sweeps all ten families, including the hot-split-recovery and
# hot-split-handoff families (salted sub-key traffic interleaved with a
# crash or planned cutover; convergence checks the canonical-plus-
# sub-keys fold against the unsalted oracle).
cargo run --release -p slash-verify --bin slash-race -- --seeds 128

echo "==> [7/16] flight recorder (planted bug must be caught and dumped)"
# Each planted-bug dump must carry the registry snapshot (counters,
# gauges, histograms at failure time), not just the event ring.
flight_out="$(cargo run --release -p slash-verify --bin slash-race -- --mutation ignore-credit-window)"
grep -q "registry snapshot" <<<"$flight_out"
flight_out="$(cargo run --release -p slash-verify --bin slash-race -- --mutation regress-vclock)"
grep -q "registry snapshot" <<<"$flight_out"
echo "flight recorder: both planted bugs caught, dumps include registry snapshots"

echo "==> [8/16] traced example (deterministic trace, validated JSON)"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
SLASH_TRACE_OUT="$trace_dir/a.json" cargo run --release --example ysb_pipeline >/dev/null
SLASH_TRACE_OUT="$trace_dir/b.json" cargo run --release --example ysb_pipeline >/dev/null
cmp "$trace_dir/a.json" "$trace_dir/b.json"
echo "trace: two same-seed runs byte-identical"
cargo run --release -p slash-verify --bin slash-trace-check -- "$trace_dir/a.json"

echo "==> [9/16] chaos suite (every fault type recovers to the no-fault state)"
cargo run --release --bin chaos-suite

echo "==> [10/16] recovery golden trace (failover example, byte-identical + validated)"
SLASH_TRACE_OUT="$trace_dir/f_a.json" cargo run --release --example failover >/dev/null
SLASH_TRACE_OUT="$trace_dir/f_b.json" cargo run --release --example failover >/dev/null
cmp "$trace_dir/f_a.json" "$trace_dir/f_b.json"
echo "recovery trace: two same-seed chaos runs byte-identical"
cargo run --release -p slash-verify --bin slash-trace-check -- "$trace_dir/f_a.json"

echo "==> [11/16] hot-path perf smoke (wall-clock combiner gate + zipf split sweep)"
# Writes BENCH_hotpath.json and exits non-zero if the combiner-on hot
# loop is below 1.3x the per-record path on ysb_hot, or if any
# workload's on/off state digests diverge. --zipf adds the skew sweep:
# ysb_zipf_keyed over theta in {0, 0.5, 0.9, 1.1, 1.5} with hot-key
# splitting on vs off — split-on must reach 1.5x at theta=1.1 and every
# swept config must be bit-exact (results + state digests) vs unsplit.
cargo run --release -p slash-bench --bin hotpath-bench -- --quick --zipf --out BENCH_hotpath.json

echo "==> [12/16] cascading-fault matrix (compound faults converge exactly, golden traces)"
# Release-mode run of the compound-fault tests: concurrent crashes,
# buddy-dead re-selection, crash-during-recovery re-entrancy, wpn=2
# promotion, and the same-seed byte-identical cascade trace. (Stage 9's
# chaos-suite run covers the same matrix as a binary gate; this stage adds
# the trace-level golden assertions.)
cargo test --release --test chaos -q

echo "==> [13/16] exhaustive model checker (bounded DFS over same-instant schedules)"
# Enumerates every distinct same-instant schedule of the 2-node
# FIFO/credit scenario (literal, dedup-free pass must drain the frontier
# with zero pruning) plus the single-crash recovery, single-handoff
# rescale-small, and single-crash-with-split-key hot-split-small
# scenarios (complete under state-digest dedup). The binary encodes the
# coverage floors and fails on any regression or on silent frontier
# truncation; a truncated scenario must fall back to the random sweep and
# still come back clean.
mkdir -p results
cargo run --release -p slash-verify --bin slash-race -- \
    --exhaustive --minimize --out results/race_coverage.json
echo "race coverage report: results/race_coverage.json"
# Planted mutants must fall to the exhaustive explorer with a minimized
# reproducing schedule, not just to the random sweep.
cargo run --release -p slash-verify --bin slash-race -- \
    --exhaustive --minimize --mutation skip-credit-return >/dev/null
cargo run --release -p slash-verify --bin slash-race -- \
    --exhaustive --minimize --mutation reorder-delivered >/dev/null
echo "exhaustive: both planted mutants caught and minimized"

echo "==> [14/16] tail-latency SLO gate (per-stage p99.99 budgets + regression vs baseline)"
# Deterministic latency bench: fixed-seed ysb/nb7 under the simulator,
# per-stage histograms (source, channel_transit, ssb_apply, window_close,
# epoch_merge, result_emit) plus end-to-end. The gate fails on any
# SLO.toml budget breach or on a quantile regressing past
# regression_factor x the checked-in BENCH_latency.json baseline.
cargo run --release -p slash-bench --bin latency-bench -- \
    --out "$trace_dir/latency.json" --slo SLO.toml --baseline BENCH_latency.json
cargo run --release -p slash-verify --bin slash-trace-check -- --latency "$trace_dir/latency.json"
cmp "$trace_dir/latency.json" BENCH_latency.json
echo "latency: fresh run byte-identical to checked-in baseline"
# A planted 10x ssb_apply regression must trip the gate and dump the
# flight recorder (breaching stage breakdown + registry snapshot).
if plant_out="$(cargo run --release -p slash-bench --bin latency-bench -- \
    --out "$trace_dir/latency_plant.json" --slo SLO.toml \
    --baseline BENCH_latency.json --plant ssb_apply=10 2>&1)"; then
    echo "SLO gate FAILED to catch a planted 10x ssb_apply regression" >&2
    exit 1
fi
grep -q "flight-recorder dump" <<<"$plant_out"
grep -q "registry snapshot" <<<"$plant_out"
echo "latency: planted 10x ssb_apply regression caught with flight dump"

echo "==> [15/16] elastic rescale gate (diurnal bench, golden trace, handoff races)"
# The diurnal 4->8->4 scale-out-and-back bench: zero lost records, results
# and state digests bit-exact vs a static run of the same curve, zero
# aborted migrations, full spread at peak, full pack-in at the end, and
# worst cutover stall within the SLO.toml [rescale] budget. Writes
# BENCH_rescale.json + results/rescale.csv.
cargo run --release -p slash-bench --bin repro -- rescale
# The rescale example is a golden trace: same seed, same curve, same
# migration timeline, byte-identical Chrome trace JSON.
SLASH_TRACE_OUT="$trace_dir/r_a.json" cargo run --release --example rescale >/dev/null
SLASH_TRACE_OUT="$trace_dir/r_b.json" cargo run --release --example rescale >/dev/null
cmp "$trace_dir/r_a.json" "$trace_dir/r_b.json"
echo "rescale trace: two same-seed elastic runs byte-identical"
cargo run --release -p slash-verify --bin slash-trace-check -- "$trace_dir/r_a.json"
# Focused re-run of the planned-handoff race families: cutover promotion
# and handoff-vs-crash interleavings vs all six invariants.
cargo run --release -p slash-verify --bin slash-race -- --scenario handoff --seeds 128

echo "==> [16/16] thread-per-core backend (sim-vs-threaded digest smoke + clippy)"
# The threaded runtime makes no schedule-determinism promises, but final
# state must be bit-identical to the deterministic simulator for the same
# seed and workload. Release-mode run of the equivalence suite (2 seeds x
# 2 workloads plus threaded self-consistency and the concurrent-obs merge
# stress), then clippy over the executor crate on its own.
cargo test --release -p slash-exec -q
cargo clippy -p slash-exec --all-targets -- -D warnings

echo "ci: all gates green"
