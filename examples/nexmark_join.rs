//! NEXMark Q8: a 12-hour tumbling-window join of auctions ⋈ sellers on a
//! Slash virtual cluster — holistic (appended) CRDT state, merged lazily
//! by the epoch protocol.
//!
//! ```sh
//! cargo run --release --example nexmark_join
//! ```

use slash::core::{RunConfig, SinkResult, SlashCluster};
use slash::workloads::{nb8, GenConfig};

fn main() {
    let nodes = 2;
    let workers = 2;
    let w = nb8(&GenConfig::new(nodes * workers, 10_000));
    println!(
        "NB8: {} unified records (4 auctions : 1 seller, every auction references a valid seller)",
        w.records
    );

    let mut cfg = RunConfig::new(nodes, workers);
    cfg.collect_results = true;
    let report = SlashCluster::run(w.plan, w.partitions, cfg);

    println!(
        "\nprocessed in {} of virtual time ({:.1} M records/s)",
        report.processing_time,
        report.throughput() / 1e6
    );
    println!(
        "join emitted {} (window, seller) groups with {} auction-seller pairs total",
        report.emitted, report.total_pairs
    );

    // Show the five busiest sellers.
    let mut groups: Vec<(u64, u64)> = report
        .results
        .iter()
        .filter_map(|r| match r {
            SinkResult::Join { key, pairs, .. } => Some((*key, *pairs)),
            _ => None,
        })
        .collect();
    groups.sort_by_key(|&(_, pairs)| std::cmp::Reverse(pairs));
    println!("\nbusiest sellers (seller id, matched pairs):");
    for (key, pairs) in groups.iter().take(5) {
        println!("  seller {key:>6}: {pairs:>6} pairs");
    }

    // Sanity: with a 4:1 ratio and every auction referencing a valid
    // seller, the expected pair count is ~(auctions per seller) ×
    // (occurrences of that seller), summed — at minimum, one pair per
    // seller that appeared at all.
    assert!(report.total_pairs > 0);
    assert!(report.emitted > 0);
    println!("\nholistic state was merged by the SSB across {nodes} nodes without re-partitioning");
}
