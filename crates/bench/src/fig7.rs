//! Figure 7: COST analysis — LightSaber (single node) against Slash on
//! 2–16 nodes, on the aggregation workloads both support (YSB, CM, NB7).

use slash_perfmodel::Table;

use crate::fig6::query_gen;
use crate::scale::Scale;
use crate::suts;

/// One workload's COST sweep.
#[derive(Debug, Clone)]
pub struct Fig7Series {
    /// Workload name.
    pub query: &'static str,
    /// LightSaber single-node throughput.
    pub lightsaber: f64,
    /// Slash throughput at 2, 4, 8, 16 nodes.
    pub slash: Vec<(usize, f64)>,
}

impl Fig7Series {
    /// The COST headline: Slash's best speedup over LightSaber.
    pub fn max_speedup(&self) -> f64 {
        self.slash
            .iter()
            .map(|(_, t)| t / self.lightsaber)
            .fold(0.0, f64::max)
    }
}

/// The queries of the paper's COST comparison (LightSaber has no joins).
pub const QUERIES: [&str; 3] = ["ysb", "cm", "nb7"];

/// Run the COST sweep for one query.
pub fn run(query: &'static str, scale: Scale, node_counts: &[usize]) -> Fig7Series {
    let gen = query_gen(query);
    Fig7Series {
        query,
        lightsaber: suts::lightsaber(gen, scale).throughput(),
        slash: node_counts
            .iter()
            .map(|&n| (n, suts::slash(gen, n, scale).throughput()))
            .collect(),
    }
}

/// Render the COST table.
pub fn table(series: &[Fig7Series]) -> Table {
    let mut t = Table::new(
        "Fig. 7: COST comparison against LightSaber (records/s)",
        &["query", "lightsaber(1)", "slash(2)", "slash(4)", "slash(8)", "slash(16)", "max speedup"],
    );
    for s in series {
        let mut row = vec![s.query.to_string(), format!("{:.3e}", s.lightsaber)];
        for n in [2usize, 4, 8, 16] {
            match s.slash.iter().find(|(nn, _)| *nn == n) {
                Some((_, tp)) => row.push(format!("{tp:.3e}")),
                None => row.push("-".to_string()),
            }
        }
        row.push(format!("{:.1}x", s.max_speedup()));
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slash_overtakes_lightsaber_by_scaling_out() {
        let s = run("ysb", Scale::tiny(), &[2, 4]);
        // A single LightSaber node is competitive, but Slash on 4 nodes
        // must already be well ahead (the paper's COST conclusion).
        let slash4 = s.slash.iter().find(|(n, _)| *n == 4).unwrap().1;
        assert!(
            slash4 > 1.5 * s.lightsaber,
            "slash(4)={slash4:.3e} ls={:.3e}",
            s.lightsaber
        );
        assert!(s.max_speedup() > 1.5);
    }
}
