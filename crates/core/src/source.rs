//! In-memory stream sources.
//!
//! The evaluation methodology (paper §8.2.1) pre-generates datasets and
//! streams them from main memory, making memory bandwidth the ingestion
//! ceiling. A [`MemorySource`] hands out record batches from a shared
//! buffer; the worker charges the streaming cost against the node's
//! memory link.

use std::rc::Rc;

use crate::record::RecordSchema;

/// A pre-generated, in-memory partition of a stream, consumed in batches.
#[derive(Clone)]
pub struct MemorySource {
    data: Rc<Vec<u8>>,
    schema: RecordSchema,
    pos: usize,
    batch_bytes: usize,
}

impl MemorySource {
    /// Wrap a pre-generated buffer. `batch_records` is the number of
    /// records handed out per call (the unit of cooperative scheduling).
    pub fn new(data: Rc<Vec<u8>>, schema: RecordSchema, batch_records: usize) -> Self {
        assert!(batch_records > 0);
        assert_eq!(
            data.len() % schema.size,
            0,
            "buffer is not a whole number of records"
        );
        MemorySource {
            data,
            schema,
            pos: 0,
            batch_bytes: batch_records * schema.size,
        }
    }

    /// The record layout.
    pub fn schema(&self) -> &RecordSchema {
        &self.schema
    }

    /// Total records in this partition.
    pub fn total_records(&self) -> usize {
        self.data.len() / self.schema.size
    }

    /// Records not yet handed out.
    pub fn remaining_records(&self) -> usize {
        (self.data.len() - self.pos) / self.schema.size
    }

    /// Whether the stream is exhausted.
    pub fn exhausted(&self) -> bool {
        self.pos >= self.data.len()
    }

    /// Current read position in bytes (always a whole number of records).
    /// Checkpoints record this so a replacement worker can resume ingest
    /// exactly where the snapshot left off.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Resume reading at `pos` (a byte offset captured by [`Self::position`]).
    pub fn seek(&mut self, pos: usize) {
        assert_eq!(pos % self.schema.size, 0, "seek must land on a record");
        assert!(pos <= self.data.len(), "seek past end of stream");
        self.pos = pos;
    }

    /// Take the next batch; returns the byte range within [`Self::data`].
    pub fn next_range(&mut self) -> Option<(usize, usize)> {
        if self.exhausted() {
            return None;
        }
        let start = self.pos;
        let end = (start + self.batch_bytes).min(self.data.len());
        self.pos = end;
        Some((start, end))
    }

    /// The underlying buffer.
    pub fn data(&self) -> &Rc<Vec<u8>> {
        &self.data
    }
}

impl std::fmt::Debug for MemorySource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySource")
            .field("records", &self.total_records())
            .field("pos", &self.pos)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(n: usize, size: usize) -> Rc<Vec<u8>> {
        Rc::new(vec![0u8; n * size])
    }

    #[test]
    fn batches_cover_everything_once() {
        let schema = RecordSchema::plain(16);
        let mut s = MemorySource::new(buf(10, 16), schema, 3);
        assert_eq!(s.total_records(), 10);
        let mut seen = 0;
        while let Some((a, b)) = s.next_range() {
            assert_eq!((b - a) % 16, 0);
            seen += (b - a) / 16;
        }
        assert_eq!(seen, 10);
        assert!(s.exhausted());
        assert_eq!(s.next_range(), None);
        assert_eq!(s.remaining_records(), 0);
    }

    #[test]
    fn last_batch_may_be_short() {
        let schema = RecordSchema::plain(8);
        let mut s = MemorySource::new(buf(5, 8), schema, 4);
        assert_eq!(s.next_range(), Some((0, 32)));
        assert_eq!(s.next_range(), Some((32, 40)));
        assert_eq!(s.next_range(), None);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn torn_buffers_are_rejected() {
        MemorySource::new(Rc::new(vec![0u8; 17]), RecordSchema::plain(8), 1);
    }
}
