//! Elastic rescaling on the Yahoo! Streaming Benchmark: a live planned
//! handoff moves a partition between hosts *without a crash* and without
//! losing a record.
//!
//! Four logical partitions start packed two-per-host on two hosts; two
//! provisioned hosts sit parked. A diurnal load curve surges past the
//! packed cluster's capacity at t = 400 µs; the load-reactive
//! [`slash::scale::ScaleController`] confirms the overload across several
//! telemetry ticks, then spreads the hottest partitions onto the parked
//! hosts through the planned-handoff path: warm checkpoint pre-ship while
//! the source keeps serving, a bounded cutover stall for the tail, one
//! reconnect handshake, done. The example prints the migration timeline,
//! the `slash-top` ownership table, and proves the final results match a
//! static run of the same curve bit-exactly.
//!
//! The elastic run is fully traced: handoff spans and instants ride the
//! trace alongside the usual engine categories, and the Chrome
//! trace-event JSON is written to `results/rescale_trace.json` (override
//! with `SLASH_TRACE_OUT=path`; load at <https://ui.perfetto.dev>). Same
//! seed, same curve: the trace is deterministic.
//!
//! ```sh
//! cargo run --release --example rescale
//! ```

use slash::chaos::{ChaosConfig, FaultPlan, FtConfig};
use slash::core::source::RateCurve;
use slash::core::{
    ElasticConfig, RecoveryReport, RescaleReport, RunConfig, RunReport, ScaleDirector,
    SlashCluster, StaticDirector,
};
use slash::desim::SimTime;
use slash::obs::Obs;
use slash::scale::{ControllerConfig, ScaleController};
use slash::workloads::{ysb, GenConfig};

const PARTITIONS: usize = 4;
const PACKED_HOSTS: usize = 2;
const RECORDS: u64 = 100_000;

fn run(
    pacing: Option<RateCurve>,
    director: &mut dyn ScaleDirector,
    obs: Obs,
) -> (RunReport, RecoveryReport, RescaleReport) {
    let mut cfg = RunConfig::new(PARTITIONS, 1);
    cfg.collect_results = true;
    cfg.epoch_bytes = 16 * 1024;
    cfg.pacing = pacing;
    let w = ysb(&GenConfig::new(PARTITIONS, RECORDS));
    let chaos = ChaosConfig {
        plan: FaultPlan::new(),
        ft: FtConfig {
            detect_timeout: SimTime::from_micros(300),
            ckpt_max_chunk: 16 * 1024,
            ckpt_copies: 2,
        },
        pre_split: Vec::new(),
    };
    SlashCluster::run_elastic(
        w.plan,
        w.partitions,
        cfg,
        &chaos,
        &ElasticConfig::packed(PARTITIONS, PACKED_HOSTS),
        director,
        obs,
    )
}

fn main() {
    println!(
        "YSB elastic rescale: {PARTITIONS} partitions packed on {PACKED_HOSTS} hosts, \
         {} parked; surge at 400 us\n",
        PARTITIONS - PACKED_HOSTS
    );

    // --- Calibrate: an unpaced packed run measures the service rate. ---
    let (probe, _, _) = run(None, &mut StaticDirector, Obs::disabled());
    let cluster_rps = probe.records as f64 * 1.0e9 / probe.completion_time.as_nanos() as f64;
    let host_rps = cluster_rps / PACKED_HOSTS as f64;
    let per_source = |frac: f64| (frac * cluster_rps / PARTITIONS as f64) as u64;
    let curve = RateCurve::new(&[
        (SimTime::ZERO, per_source(0.30)),
        (SimTime::from_micros(400), per_source(2.60)),
    ]);

    // --- Static reference: same curve, nobody reacts. ---
    let (base, base_rec, _) = run(Some(curve), &mut StaticDirector, Obs::disabled());
    println!(
        "static run   : {} records, completion {:7.1} us on {PACKED_HOSTS} hosts (overloaded)",
        base.records,
        base.completion_time.as_nanos() as f64 / 1e3
    );

    // --- Elastic run: the controller reacts to the surge, traced. ---
    let mut ctl_cfg = ControllerConfig::new(PACKED_HOSTS, PARTITIONS, host_rps);
    ctl_cfg.cooldown = SimTime::from_micros(200);
    ctl_cfg.backlog_high = 20_000;
    // This demo ends at the surge — disable scale-in so the drain tail
    // stays quiet. `repro rescale` drives the full out-and-back diurnal.
    ctl_cfg.low_util = 0.0;
    let mut controller = ScaleController::new(ctl_cfg);
    let obs = Obs::enabled(65_536);
    let (rep, rec, rescale) = run(Some(curve), &mut controller, obs.clone());
    println!(
        "elastic run  : {} records, completion {:7.1} us, peak {} hosts\n",
        rep.records,
        rep.completion_time.as_nanos() as f64 / 1e3,
        rescale.peak_hosts
    );

    // --- The migration timeline: planned handoffs, not crashes. ---
    for m in &rescale.migrations {
        println!(
            "migration    : partition {} host {} -> {} | planned @{:.1} us, \
             halted @{:.1} us, committed @{:.1} us (stall {:.1} us){}",
            m.partition,
            m.from_host,
            m.to_host,
            m.planned_at.as_nanos() as f64 / 1e3,
            m.halted_at.as_nanos() as f64 / 1e3,
            m.committed_at.as_nanos() as f64 / 1e3,
            m.stall().as_nanos() as f64 / 1e3,
            if m.aborted { " ABORTED" } else { "" }
        );
    }
    assert!(
        rescale.peak_hosts > PACKED_HOSTS,
        "the controller must scale out under the surge"
    );
    assert_eq!(rescale.aborted(), 0, "no aborts in a fault-free run");

    // --- Exactness: placement is semantically invisible. ---
    assert_eq!(rep.records, base.records, "records lost or duplicated");
    assert_eq!(
        rec.results_digest, base_rec.results_digest,
        "window results diverged from the static run"
    );
    assert_eq!(
        rec.state_digests, base_rec.state_digests,
        "final primary state diverged from the static run"
    );
    println!(
        "\nexactness    : {} windows and {} state digests match the static \
         run bit-exactly (records lost: 0, max cutover stall {:.1} us)",
        rep.results.len(),
        rec.state_digests.len(),
        rescale
            .max_stall()
            .map(|t| t.as_nanos() as f64 / 1e3)
            .unwrap_or(0.0)
    );

    // --- slash-top: live ownership and migration telemetry. ---
    println!("\n{}", obs.summary());

    // --- Trace artifact: handoff spans, visible in Perfetto. ---
    let out =
        std::env::var("SLASH_TRACE_OUT").unwrap_or_else(|_| "results/rescale_trace.json".into());
    let json = obs.chrome_trace_json();
    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&out, &json) {
        Ok(()) => println!(
            "trace        : {} events -> {out} ({} KiB, load at https://ui.perfetto.dev)",
            obs.events().len(),
            json.len() / 1024
        ),
        Err(e) => eprintln!("trace        : failed to write {out}: {e}"),
    }
}
