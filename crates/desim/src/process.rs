//! Cooperative processes: the unit of concurrent activity in the simulation.
//!
//! A process models one logical thread of execution — a Slash worker thread,
//! a baseline's partitioning thread, a source. The kernel steps a process
//! whenever it is scheduled to wake; the process performs a bounded amount of
//! work against shared state, *charges* the virtual time that work costs by
//! yielding for that duration, and either reschedules itself or parks until
//! some other event wakes it.

use std::fmt;

use crate::clock::SimTime;
use crate::sim::Sim;

/// Identifier of a registered process. Stable for the lifetime of the
/// simulation (slots are not reused).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub(crate) u32);

impl ProcId {
    /// The raw index (useful for building per-process tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

/// The outcome of one step of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Run again after the given virtual duration. Charging compute cost is
    /// expressed as `Yield(cost)`: the process is busy for that long.
    Yield(SimTime),
    /// Do not reschedule; some other event must call [`Sim::wake`].
    /// A parked process that is never woken simply never runs again.
    Park,
    /// The process has finished; it will never be stepped again.
    Done,
}

/// A cooperative simulated thread.
///
/// Implementations hold `Rc<RefCell<...>>` handles to whatever shared state
/// they operate on (memory regions, queues, state backend partitions).
pub trait Process {
    /// Perform one bounded quantum of work. `sim` is available for
    /// scheduling follow-up events (e.g. posting RDMA work requests causes
    /// the fabric to schedule delivery events); `me` is the process's own id
    /// so it can register itself as a waiter on queues.
    fn step(&mut self, sim: &mut Sim, me: ProcId) -> Step;

    /// Diagnostic name used in traces and panics.
    fn name(&self) -> &str {
        "process"
    }
}

/// Book-keeping state of a registered process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProcState {
    /// A wake event is in the queue (or the process is currently stepping).
    Scheduled,
    /// Waiting for an external wake.
    Parked,
    /// Finished.
    Done,
}
