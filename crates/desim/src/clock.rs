//! Virtual time. All simulation time is measured in integer nanoseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
///
/// `SimTime` is also used to express durations (a duration is just the time
/// since `SimTime::ZERO`); the arithmetic below keeps that convention
/// unambiguous in practice because the kernel never subtracts a later time
/// from an earlier one.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// A sentinel far in the future (~584 years of virtual time).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since simulation start.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition (used near `SimTime::MAX` sentinels).
    #[inline]
    pub fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Convert a byte count and a bandwidth in bytes/second into a transfer
/// duration, rounding up so that zero-cost transfers are impossible for
/// non-empty payloads.
#[inline]
pub fn transfer_time(bytes: u64, bytes_per_sec: u64) -> SimTime {
    debug_assert!(bytes_per_sec > 0, "bandwidth must be positive");
    let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(bytes_per_sec as u128);
    SimTime(ns as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(40);
        assert_eq!(a + b, SimTime::from_nanos(140));
        assert_eq!(a - b, SimTime::from_nanos(60));
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_nanos(140));
        assert_eq!(a.max(b), a);
        assert_eq!(b.max(a), a);
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 1 byte over 3 bytes/s is 333,333,333.3ns, must round up.
        assert_eq!(transfer_time(1, 3), SimTime(333_333_334));
        assert_eq!(transfer_time(0, 1_000_000), SimTime::ZERO);
        // 100 Gb/s EDR link: 12.5e9 B/s, 64KiB message.
        let t = transfer_time(65536, 12_500_000_000);
        assert_eq!(t, SimTime(5243));
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimTime::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn saturating() {
        assert_eq!(SimTime::MAX.saturating_add(SimTime(1)), SimTime::MAX);
    }
}
