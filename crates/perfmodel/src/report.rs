//! Plain-text tables and CSV emission for the `repro` harness.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }
}

/// Format a table with aligned columns.
pub fn format_table(t: &Table) -> String {
    let mut widths: Vec<usize> = t.headers.iter().map(|h| h.len()).collect();
    for row in &t.rows {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "## {}", t.title);
    let line = |cells: &[String], widths: &[usize]| -> String {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            let _ = write!(s, "{:<w$}  ", c, w = widths[i]);
        }
        s.trim_end().to_string()
    };
    let _ = writeln!(out, "{}", line(&t.headers, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    let _ = writeln!(out, "{}", "-".repeat(total.min(120)));
    for row in &t.rows {
        let _ = writeln!(out, "{}", line(row, &widths));
    }
    out
}

/// Write a table as CSV under `dir` (created if needed).
pub fn write_csv(t: &Table, dir: &Path, file: &str) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut out = String::new();
    let esc = |s: &str| -> String {
        if s.contains(',') || s.contains('"') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let _ = writeln!(
        out,
        "{}",
        t.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
    );
    for row in &t.rows {
        let _ = writeln!(
            out,
            "{}",
            row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
        );
    }
    fs::write(dir.join(file), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("fig6a ysb", &["nodes", "slash", "uppar"]);
        t.row(vec!["2".into(), "2.6e8".into(), "9.2e7".into()]);
        t.row(vec!["4".into(), "5.1e8".into(), "1.1e8".into()]);
        t
    }

    #[test]
    fn formatting_aligns_columns() {
        let s = format_table(&sample());
        assert!(s.contains("## fig6a ysb"));
        assert!(s.contains("nodes  slash  uppar"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("slash-perfmodel-test");
        write_csv(&sample(), &dir, "t.csv").unwrap();
        let read = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(read.lines().next().unwrap(), "nodes,slash,uppar");
        assert_eq!(read.lines().count(), 3);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["hello, world".into()]);
        let dir = std::env::temp_dir().join("slash-perfmodel-test2");
        write_csv(&t, &dir, "e.csv").unwrap();
        let read = std::fs::read_to_string(dir.join("e.csv")).unwrap();
        assert!(read.contains("\"hello, world\""));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }
}
