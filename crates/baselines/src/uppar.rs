//! RDMA UpPar — the lightweight-integration straw man (paper §3.1).
//!
//! "We implement and evaluate a data re-partitioning component that uses
//! RDMA QPs instead of sockets. […] Note that we use Slash's RDMA channel
//! to implement RDMA UpPar." — the generic partitioned engine over the
//! RDMA transport, native code (runtime factor 1.0).

use std::rc::Rc;

use slash_core::QueryPlan;

use crate::partitioned::{run_partitioned, PartitionedConfig, Transport};
use crate::sut::CommonReport;

/// UpPar's configuration is the partitioned engine pinned to RDMA.
pub fn uppar_config(nodes: usize, workers_per_node: usize) -> PartitionedConfig {
    PartitionedConfig::new(nodes, workers_per_node, Transport::Rdma)
}

/// Run a query on RDMA UpPar. `partitions` are node-major per *sender*
/// thread (`workers_per_node / 2` senders per node).
pub fn run_uppar(
    plan: QueryPlan,
    partitions: Vec<Rc<Vec<u8>>>,
    cfg: PartitionedConfig,
) -> CommonReport {
    assert_eq!(cfg.transport, Transport::Rdma, "UpPar runs over RDMA");
    assert_eq!(cfg.runtime_factor, 1.0, "UpPar is native C++-grade code");
    run_partitioned(plan, partitions, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slash_core::{AggSpec, RecordSchema, StreamDef, WindowAssigner};

    #[test]
    fn uppar_runs_and_reports() {
        let gen = |n: u64| -> Rc<Vec<u8>> {
            let mut buf = Vec::new();
            for i in 0..n {
                buf.extend_from_slice(&(1 + i).to_le_bytes());
                buf.extend_from_slice(&(i % 16).to_le_bytes());
            }
            Rc::new(buf)
        };
        let plan = QueryPlan::Aggregate {
            input: StreamDef::new(RecordSchema::plain(16)),
            window: WindowAssigner::Tumbling { size: 500 },
            agg: AggSpec::Count,
        };
        let cfg = uppar_config(2, 2);
        let report = run_uppar(plan, vec![gen(2000), gen(2000)], cfg);
        assert_eq!(report.records, 4000);
        assert!(report.throughput() > 0.0);
        assert!(report.sender_metrics.instructions > 0);
        assert!(report.receiver_metrics.instructions > 0);
    }
}
