//! Query output collection.

/// One triggered window result.
#[derive(Debug, Clone, PartialEq)]
pub enum SinkResult {
    /// An aggregation output.
    Agg {
        /// Window (bucket) id.
        window_id: u64,
        /// Group key.
        key: u64,
        /// Rendered aggregate.
        value: f64,
    },
    /// A join output: the number of pairwise combinations for this
    /// `(window, key)` (materializing every pair would dominate memory
    /// without adding information; pair *counts* are what correctness
    /// checks compare).
    Join {
        /// Window (bucket) id.
        window_id: u64,
        /// Join key.
        key: u64,
        /// Matched left × right combinations.
        pairs: u64,
    },
}

/// Collects or counts triggered results per node.
#[derive(Debug, Default, Clone)]
pub struct Sink {
    /// Whether to retain full results (tests) or only count (benchmarks).
    pub collect: bool,
    /// Retained results (when `collect`).
    pub results: Vec<SinkResult>,
    /// Total results emitted.
    pub emitted: u64,
    /// Total join pairs across all results.
    pub total_pairs: u64,
}

impl Sink {
    /// A collecting sink (integration tests).
    pub fn collecting() -> Self {
        Sink {
            collect: true,
            ..Default::default()
        }
    }

    /// A counting sink (benchmarks).
    pub fn counting() -> Self {
        Sink::default()
    }

    /// Emit one result.
    pub fn push(&mut self, r: SinkResult) {
        self.emitted += 1;
        if let SinkResult::Join { pairs, .. } = r {
            self.total_pairs += pairs;
        }
        if self.collect {
            self.results.push(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_does_not_retain() {
        let mut s = Sink::counting();
        s.push(SinkResult::Agg {
            window_id: 1,
            key: 2,
            value: 3.0,
        });
        assert_eq!(s.emitted, 1);
        assert!(s.results.is_empty());
    }

    #[test]
    fn collecting_sink_retains_and_sums_pairs() {
        let mut s = Sink::collecting();
        s.push(SinkResult::Join {
            window_id: 1,
            key: 2,
            pairs: 6,
        });
        s.push(SinkResult::Join {
            window_id: 1,
            key: 3,
            pairs: 4,
        });
        assert_eq!(s.emitted, 2);
        assert_eq!(s.total_pairs, 10);
        assert_eq!(s.results.len(), 2);
    }
}
