//! Helper→leader delta shipping over RDMA channels (§7.2.2).
//!
//! A [`DeltaSender`] lives on a helper and owns the RDMA channel to one
//! leader; it queues encoded chunks and pushes them as channel credits
//! allow (the engine's scheduler pumps it between compute tasks, which is
//! how Slash "interleaves reception and merging of delta changes with
//! query processing"). A [`DeltaReceiver`] lives on the leader and merges
//! inbound chunks into the primary partition, advancing the vector clock
//! when an epoch's final chunk lands.

use slash_desim::{Sim, SimTime};
use slash_net::{ChannelReceiver, ChannelSender, MsgFlags};
use slash_obs::{Cat, Obs};
use slash_rdma::RdmaError;

use crate::delta::{try_parse_chunk, ChunkBuilder, DeltaDecodeError};
use crate::entry::EntryKind;
use crate::partition::Partition;
use crate::vclock::VectorClock;

/// Errors surfaced by the coherence protocol: transport failures from the
/// RDMA layer, or a delta chunk that failed strict wire validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The underlying RDMA channel failed.
    Rdma(RdmaError),
    /// An inbound delta chunk was malformed.
    Decode(DeltaDecodeError),
}

impl From<RdmaError> for StateError {
    fn from(e: RdmaError) -> Self {
        StateError::Rdma(e)
    }
}

impl From<DeltaDecodeError> for StateError {
    fn from(e: DeltaDecodeError) -> Self {
        StateError::Decode(e)
    }
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::Rdma(e) => write!(f, "rdma channel error: {e:?}"),
            StateError::Decode(e) => write!(f, "delta decode error: {e}"),
        }
    }
}

/// Helper-side shipping endpoint for one (helper, leader) pair.
pub struct DeltaSender {
    chan: ChannelSender,
    outbox: std::collections::VecDeque<Vec<u8>>,
    /// Chunks shipped (stats).
    pub chunks_sent: u64,
    obs: Obs,
    obs_pid: u32,
    obs_tid: u32,
}

impl DeltaSender {
    /// Wrap a channel whose consumer is the partition's leader.
    pub fn new(chan: ChannelSender) -> Self {
        DeltaSender {
            chan,
            outbox: std::collections::VecDeque::new(),
            chunks_sent: 0,
            obs: Obs::disabled(),
            obs_pid: 0,
            obs_tid: 0,
        }
    }

    /// Attach a trace handle; `pid` is the helper node, `tid` the leader.
    /// Also instruments the underlying channel's verb events.
    pub fn instrument(&mut self, obs: Obs, pid: u32, tid: u32) {
        self.chan.instrument(obs.clone(), pid, tid);
        self.obs = obs;
        self.obs_pid = pid;
        self.obs_tid = tid;
    }

    /// Close the fragment's open epoch and queue its delta for shipping.
    /// `watermark` is this helper's low watermark at the token; `now` is
    /// stamped into the chunk headers so the leader can measure merge
    /// latency (epoch-coherence "propose" phase).
    pub fn enqueue_epoch(&mut self, fragment: &mut Partition, watermark: u64, now: SimTime) {
        let epoch = fragment.epoch();
        let mut builder = ChunkBuilder::new(
            fragment.id as u32,
            epoch,
            watermark,
            now.as_nanos() / 1_000,
            self.chan.payload_capacity(),
        );
        fragment.close_epoch(|h, v| builder.push(h.key, h.kind, v));
        let chunks = builder.finish();
        self.obs.instant(
            Cat::Epoch,
            "epoch-propose",
            self.obs_pid,
            self.obs_tid,
            now,
            &[
                ("epoch", epoch),
                ("watermark", watermark),
                ("chunks", chunks.len() as u64),
            ],
        );
        self.outbox.extend(chunks);
    }

    /// Push queued chunks while channel credits allow. Returns the number
    /// of chunks sent this call.
    pub fn pump(&mut self, sim: &mut Sim) -> Result<usize, RdmaError> {
        let mut sent = 0;
        while let Some(chunk) = self.outbox.front() {
            if !self.chan.try_send(sim, MsgFlags::STATE_DELTA, chunk)? {
                break;
            }
            self.outbox.pop_front();
            sent += 1;
            self.chunks_sent += 1;
        }
        Ok(sent)
    }

    /// Chunks still waiting for credit.
    pub fn backlog(&self) -> usize {
        self.outbox.len()
    }

    /// Channel statistics.
    pub fn channel_stats(&self) -> &slash_net::ChannelStats {
        &self.chan.stats
    }
}

/// Leader-side merge endpoint for one inbound helper.
pub struct DeltaReceiver {
    chan: ChannelReceiver,
    /// Which executor the deltas come from (vector-clock slot).
    helper: usize,
    /// Entries merged (stats).
    pub entries_merged: u64,
    obs: Obs,
    obs_pid: u32,
    /// Registry label for epoch-merge latency (`chan=<helper>-><leader>`).
    obs_label: String,
}

impl DeltaReceiver {
    /// Wrap a channel whose producer is helper executor `helper`.
    pub fn new(chan: ChannelReceiver, helper: usize) -> Self {
        DeltaReceiver {
            chan,
            helper,
            entries_merged: 0,
            obs: Obs::disabled(),
            obs_pid: 0,
            obs_label: String::new(),
        }
    }

    /// Attach a trace handle; `leader` is the node this receiver merges
    /// into. Also instruments the underlying channel's verb events.
    pub fn instrument(&mut self, obs: Obs, leader: u32) {
        self.chan.instrument(obs.clone(), leader, self.helper as u32);
        self.obs = obs;
        self.obs_pid = leader;
        self.obs_label = format!("chan={}->{}", self.helper, leader);
    }

    /// The helper executor this receiver listens to.
    pub fn helper(&self) -> usize {
        self.helper
    }

    /// Channel statistics.
    pub fn channel_stats(&self) -> &slash_net::ChannelStats {
        &self.chan.stats
    }

    /// Registry label used by this receiver's instrumentation.
    pub fn obs_label(&self) -> &str {
        &self.obs_label
    }

    /// Drain and merge every delivered chunk into `primary`, advancing
    /// `vclock` on epoch-final chunks. Returns entries merged this call.
    ///
    /// A malformed chunk (strict wire validation) captures a
    /// flight-recorder dump with vector-clock context and surfaces
    /// [`StateError::Decode`] instead of panicking.
    pub fn pump(
        &mut self,
        sim: &mut Sim,
        primary: &mut Partition,
        vclock: &mut VectorClock,
    ) -> Result<u64, StateError> {
        let mut merged = 0;
        loop {
            let polled = self.chan.poll_with(sim, |flags, payload| {
                debug_assert!(flags.contains(MsgFlags::STATE_DELTA));
                payload.to_vec()
            })?;
            let Some(payload) = polled else { break };
            let parsed = try_parse_chunk(&payload, |key, kind, value| {
                match kind {
                    EntryKind::Fixed => primary.merge_fixed(key, value),
                    EntryKind::Appended => primary.append(key, value),
                }
                merged += 1;
            });
            let header = match parsed {
                Ok(h) => h,
                Err(e) => {
                    self.obs.record_failure(
                        &format!("delta chunk decode failed: {e}"),
                        &format!(
                            "helper={} partition={} vclock={:?}",
                            self.helper,
                            primary.id,
                            vclock.snapshot()
                        ),
                    );
                    self.entries_merged += merged;
                    return Err(e.into());
                }
            };
            debug_assert_eq!(header.partition as usize, primary.id);
            if header.fin {
                // Epoch "merge" completes here; the vclock update below is
                // the "install" phase the rest of the node observes.
                let now = sim.now();
                let sent = SimTime::from_nanos(header.sent_us.saturating_mul(1_000));
                self.obs.span(
                    Cat::Epoch,
                    "epoch-merge",
                    self.obs_pid,
                    self.helper as u32,
                    sent.min(now),
                    now,
                    &[("epoch", header.epoch), ("watermark", header.watermark)],
                );
                if header.sent_us > 0 {
                    let lat = now.as_nanos().saturating_sub(sent.as_nanos());
                    self.obs
                        .hist_record("epoch_merge_latency_ns", &self.obs_label, lat);
                }
                vclock.update(self.helper, header.watermark);
                self.obs.instant(
                    Cat::Epoch,
                    "epoch-install",
                    self.obs_pid,
                    self.helper as u32,
                    now,
                    &[("epoch", header.epoch), ("watermark", header.watermark)],
                );
            }
        }
        self.entries_merged += merged;
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crdts::CounterCrdt;
    use slash_desim::Sim;
    use slash_net::{create_channel, ChannelConfig};
    use slash_rdma::{Fabric, FabricConfig};

    fn pair(cfg: ChannelConfig) -> (Sim, DeltaSender, DeltaReceiver) {
        let sim = Sim::new();
        let fabric = Fabric::new(FabricConfig::default());
        let helper = fabric.add_node();
        let leader = fabric.add_node();
        let (tx, rx) = create_channel(&fabric, helper, leader, cfg);
        (sim, DeltaSender::new(tx), DeltaReceiver::new(rx, 1))
    }

    #[test]
    fn ship_and_merge_counters() {
        let (mut sim, mut tx, mut rx) = pair(ChannelConfig::default());
        let desc = CounterCrdt::descriptor();
        let mut fragment = Partition::new(0, desc);
        let mut primary = Partition::new(0, desc);
        let mut vclock = VectorClock::new(2);

        // Leader already has local counts; helper contributes more.
        primary.rmw(7, |v| CounterCrdt::add(v, 100));
        fragment.rmw(7, |v| CounterCrdt::add(v, 11));
        fragment.rmw(8, |v| CounterCrdt::add(v, 22));

        tx.enqueue_epoch(&mut fragment, 5_000, sim.now());
        tx.pump(&mut sim).unwrap();
        sim.run();
        let merged = rx.pump(&mut sim, &mut primary, &mut vclock).unwrap();
        assert_eq!(merged, 2);
        assert_eq!(primary.get(7).map(CounterCrdt::get), Some(111));
        assert_eq!(primary.get(8).map(CounterCrdt::get), Some(22));
        assert_eq!(vclock.get(1), 5_000, "watermark piggybacked");
        assert_eq!(vclock.get(0), 0, "leader's own slot untouched");
    }

    #[test]
    fn empty_epoch_still_advances_the_clock() {
        let (mut sim, mut tx, mut rx) = pair(ChannelConfig::default());
        let desc = CounterCrdt::descriptor();
        let mut fragment = Partition::new(0, desc);
        let mut primary = Partition::new(0, desc);
        let mut vclock = VectorClock::new(2);

        tx.enqueue_epoch(&mut fragment, 777, sim.now());
        tx.pump(&mut sim).unwrap();
        sim.run();
        assert_eq!(rx.pump(&mut sim, &mut primary, &mut vclock).unwrap(), 0);
        assert_eq!(vclock.get(1), 777);
    }

    #[test]
    fn backlog_drains_across_credit_stalls() {
        // A tiny channel forces the sender to stall on credits mid-epoch;
        // repeated pumps (as the scheduler would do) must drain everything.
        let cfg = ChannelConfig {
            credits: 2,
            buffer_size: 128,
            credit_batch: 1,
        };
        let (mut sim, mut tx, mut rx) = pair(cfg);
        let desc = CounterCrdt::descriptor();
        let mut fragment = Partition::new(0, desc);
        let mut primary = Partition::new(0, desc);
        let mut vclock = VectorClock::new(2);

        for k in 0..50u128 {
            fragment.rmw(k, |v| CounterCrdt::add(v, 1));
        }
        tx.enqueue_epoch(&mut fragment, 42, sim.now());
        assert!(tx.backlog() > 2, "must not fit in one credit window");

        let mut spins = 0;
        while tx.backlog() > 0 || vclock.get(1) < 42 {
            spins += 1;
            assert!(spins < 10_000, "shipping deadlocked");
            tx.pump(&mut sim).unwrap();
            sim.run();
            rx.pump(&mut sim, &mut primary, &mut vclock).unwrap();
            sim.run();
        }
        for k in 0..50u128 {
            assert_eq!(primary.get(k).map(CounterCrdt::get), Some(1));
        }
        assert_eq!(rx.entries_merged, 50);
    }

    #[test]
    fn epochs_merge_in_order() {
        let (mut sim, mut tx, mut rx) = pair(ChannelConfig::default());
        let desc = CounterCrdt::descriptor();
        let mut fragment = Partition::new(0, desc);
        let mut primary = Partition::new(0, desc);
        let mut vclock = VectorClock::new(2);

        for epoch in 0..5u64 {
            fragment.rmw(1, |v| CounterCrdt::add(v, epoch + 1));
            tx.enqueue_epoch(&mut fragment, (epoch + 1) * 10, sim.now());
        }
        let mut spins = 0;
        while tx.backlog() > 0 {
            spins += 1;
            assert!(spins < 1000);
            tx.pump(&mut sim).unwrap();
            sim.run();
            rx.pump(&mut sim, &mut primary, &mut vclock).unwrap();
        }
        sim.run();
        rx.pump(&mut sim, &mut primary, &mut vclock).unwrap();
        assert_eq!(primary.get(1).map(CounterCrdt::get), Some(1 + 2 + 3 + 4 + 5));
        assert_eq!(vclock.get(1), 50);
    }
}
