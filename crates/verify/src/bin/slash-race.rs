//! `slash-race` — sweep the protocol scenarios across tie-break schedules.
//!
//! ```text
//! slash-race [--seeds N] [--mutation NAME]
//! ```
//!
//! Runs the channel, multi-port fabric, coherence, and crash-recovery
//! scenarios — including the compound `concurrent-crash` (two victims on
//! the same tick) and `reentrant-recovery` (the same victim crashes again
//! after its first restore) families — under `N` tie-break policies
//! (FIFO, LIFO, and seeded permutations; default 128), printing how many
//! distinct schedules were explored and any invariant violations. On a violation the flight
//! recorder's dump — the last trace events with the schedule fingerprint
//! and vector-clock context — is printed alongside.
//!
//! `--mutation NAME` injects a known protocol bug (one of
//! `skip-credit-return`, `ignore-credit-window`, `reorder-delivered`,
//! `regress-vclock`, `drop-update`, `skip-replay`) into the owning
//! scenario and *expects*
//! the invariant checks to fire and the flight recorder to dump: exit 0
//! when the bug is detected with a dump, 1 when it slips through.
//!
//! Exit codes: 0 all invariants hold and coverage is sufficient (or, under
//! `--mutation`, the injected bug was caught), 1 otherwise, 2 usage error.

use std::process::ExitCode;

use slash_verify::race::{explore, Exploration};
use slash_verify::scenarios::{ChannelScenario, CoherenceScenario, Mutation, RecoveryScenario};

/// Minimum distinct schedules per scenario for a full-size sweep.
const MIN_DISTINCT: usize = 100;

fn gate(e: &Exploration, seeds: u64) -> bool {
    let needed = if seeds as usize > MIN_DISTINCT + 2 {
        MIN_DISTINCT
    } else {
        // Small sweeps (e.g. smoke runs) still must mostly diverge.
        (seeds as usize / 2).max(1)
    };
    e.clean() && e.distinct_schedules >= needed
}

fn parse_mutation(name: &str) -> Option<Mutation> {
    match name {
        "skip-credit-return" => Some(Mutation::SkipCreditReturn),
        "ignore-credit-window" => Some(Mutation::IgnoreCreditWindow),
        "reorder-delivered" => Some(Mutation::ReorderDelivered),
        "regress-vclock" => Some(Mutation::RegressVclock),
        "drop-update" => Some(Mutation::DropUpdate),
        "skip-replay" => Some(Mutation::SkipReplay),
        _ => None,
    }
}

/// Run one injected bug under a small sweep and require both a violation
/// and a flight-recorder dump.
fn run_mutation(m: Mutation, seeds: u64) -> ExitCode {
    let channel_owned = matches!(
        m,
        Mutation::SkipCreditReturn | Mutation::IgnoreCreditWindow | Mutation::ReorderDelivered
    );
    let e = if channel_owned {
        let s = ChannelScenario {
            mutation: Some(m),
            ..ChannelScenario::default()
        };
        explore("channel-protocol (mutated)", seeds, |p| s.run(p))
    } else if m == Mutation::SkipReplay {
        let s = RecoveryScenario {
            mutation: Some(m),
            ..RecoveryScenario::default()
        };
        explore("crash-recovery (mutated)", seeds, |p| s.run(p))
    } else {
        let s = CoherenceScenario {
            mutation: Some(m),
            ..CoherenceScenario::default()
        };
        explore("epoch-coherence (mutated)", seeds, |p| s.run(p))
    };
    print!("{}", e.render_human());
    if !e.clean() && !e.dumps.is_empty() {
        println!("slash-race: mutation {m:?} detected, flight recorder dumped — PASS");
        ExitCode::SUCCESS
    } else {
        println!(
            "slash-race: mutation {m:?} NOT detected (violations={}, dumps={}) — FAIL",
            e.violations.len(),
            e.dumps.len()
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut seeds: u64 = 128;
    let mut mutation: Option<Mutation> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seeds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => seeds = n,
                None => {
                    eprintln!("slash-race: --seeds requires a number");
                    return ExitCode::from(2);
                }
            },
            "--mutation" => match args.next().as_deref().and_then(parse_mutation) {
                Some(m) => mutation = Some(m),
                None => {
                    eprintln!(
                        "slash-race: --mutation requires one of skip-credit-return, \
                         ignore-credit-window, reorder-delivered, regress-vclock, \
                         drop-update, skip-replay"
                    );
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: slash-race [--seeds N] [--mutation NAME]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("slash-race: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(m) = mutation {
        // A mutated sweep only needs a handful of schedules to prove the
        // checks fire; cap so `--mutation` stays fast by default.
        return run_mutation(m, seeds.min(8));
    }

    let chan = explore("channel-protocol", seeds, |p| ChannelScenario::default().run(p));
    print!("{}", chan.render_human());
    let multi = explore("multiport-fabric", seeds, |p| ChannelScenario::multi_port().run(p));
    print!("{}", multi.render_human());
    let coh = explore("epoch-coherence", seeds, |p| CoherenceScenario::default().run(p));
    print!("{}", coh.render_human());
    let rec = explore("crash-recovery", seeds, |p| RecoveryScenario::default().run(p));
    print!("{}", rec.render_human());
    let conc = explore("concurrent-crash", seeds, |p| {
        RecoveryScenario::concurrent_crash().run(p)
    });
    print!("{}", conc.render_human());
    let reent = explore("reentrant-recovery", seeds, |p| {
        RecoveryScenario::reentrant().run(p)
    });
    print!("{}", reent.render_human());

    let ok = gate(&chan, seeds)
        && gate(&multi, seeds)
        && gate(&coh, seeds)
        && gate(&rec, seeds)
        && gate(&conc, seeds)
        && gate(&reent, seeds);
    if ok {
        println!("slash-race: PASS");
        ExitCode::SUCCESS
    } else {
        println!("slash-race: FAIL");
        ExitCode::FAILURE
    }
}
