//! Cross-validation: the closed-form performance model
//! (`slash_perfmodel::analytic`) against the discrete-event simulation.
//! Agreement within a tolerance means the simulator's emergent throughput
//! really is produced by the structural bottlenecks the model names —
//! there is no hidden fudge factor.

use slash::core::{CostModel, RunConfig, SlashCluster};
use slash::perfmodel::analytic::{predict_micro_direct, predict_slash_agg, AggWorkloadShape};
use slash::workloads::{ro, GenConfig};
use slash_bench::micro::{run_micro, MicroConfig, RouteMode};

fn relative_error(predicted: f64, measured: f64) -> f64 {
    (predicted - measured).abs() / measured
}

#[test]
fn slash_node_throughput_matches_the_closed_form() {
    let workers = 2;
    let records = 30_000u64;
    // RO on a single node: no filter, no network — the cleanest case.
    let w = ro(&GenConfig::new(workers, records));
    let cfg = RunConfig::new(1, workers);
    let report = SlashCluster::run(w.plan, w.partitions, cfg);
    let measured = report.throughput();

    // The working set at steady state: keys touched × (entry header 32 +
    // value 8) per fragment. With 30k uniform keys from a 100M domain,
    // essentially every record creates a key.
    let working_set = report.metrics.records * 40;
    let shape = AggWorkloadShape {
        record_size: 16,
        selectivity: 1.0,
        working_set,
        workers,
    };
    let predicted = predict_slash_agg(&CostModel::default(), &shape).throughput();
    let err = relative_error(predicted, measured);
    assert!(
        err < 0.35,
        "closed form {predicted:.3e} vs simulated {measured:.3e} ({:.0}% off)",
        err * 100.0
    );
}

#[test]
fn micro_direct_goodput_matches_the_closed_form() {
    for threads in [1usize, 2, 4] {
        let mut cfg = MicroConfig::new(RouteMode::Direct, threads);
        cfg.records_per_thread = 40_000;
        let measured = run_micro(cfg).throughput_gbs();
        let predicted = predict_micro_direct(&CostModel::default(), threads, 11.8);
        let err = relative_error(predicted, measured);
        assert!(
            err < 0.35,
            "{threads} threads: closed form {predicted:.2} vs simulated {measured:.2} GB/s"
        );
    }
}

#[test]
fn memory_stall_fraction_predicts_the_breakdown() {
    // A DRAM-sized working set: the model says memory-bound; the
    // simulator's top-down counters must agree.
    let workers = 2;
    let w = ro(&GenConfig::new(workers, 50_000));
    let cfg = RunConfig::new(1, workers);
    let report = SlashCluster::run(w.plan, w.partitions, cfg);
    let shape = AggWorkloadShape {
        record_size: 16,
        selectivity: 1.0,
        working_set: report.metrics.records * 40,
        workers,
    };
    let prediction = predict_slash_agg(&CostModel::default(), &shape);
    let breakdown = report.metrics.breakdown(); // [ret, fe, mem, core, bad]
    let simulated_mem_share = breakdown[2];
    assert!(
        (prediction.memory_stall_fraction - simulated_mem_share).abs() < 0.25,
        "model {:.2} vs simulated {simulated_mem_share:.2}",
        prediction.memory_stall_fraction
    );
}
