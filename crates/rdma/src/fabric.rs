//! The fabric: nodes, NICs, memory registration, connection setup.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use slash_desim::SimTime;

use crate::cq::CqHandle;
use crate::error::{RdmaError, Result};
use crate::memory::{Mr, RemoteKey};
use crate::nic::{plan_transfer, Nic, NicConfig, NicStats};
use crate::qp::{Qp, QpShared};

/// Identifier of a node (server) attached to the fabric.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Fabric-wide configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct FabricConfig {
    /// NIC configuration applied to every node (homogeneous rack, as in the
    /// paper's testbed).
    pub nic: NicConfig,
}

/// Injected fault state of one node (all clear in a healthy fabric).
///
/// Mutated only by the fault-injection layer (`slash-chaos`) through the
/// [`Fabric`] fault hooks; the data path consults it at post and delivery
/// time so failures surface as flushed completions, never as panics.
#[derive(Debug, Clone, Copy, Default)]
struct FaultState {
    /// The node has crashed: its memory and NIC are gone for good.
    dead: bool,
    /// The node's link is administratively/physically down (flap window).
    link_down: bool,
    /// Extra per-message delay while the NIC is degraded or completions
    /// are being delayed (zero when healthy).
    extra_delay: SimTime,
}

struct NodeState {
    nic: Nic,
    mrs: Vec<Mr>, // indexed by rkey
    fault: FaultState,
}

pub(crate) struct FabricInner {
    cfg: FabricConfig,
    nodes: Vec<NodeState>,
}

/// Handle to the shared fabric. Cheap to clone.
#[derive(Clone)]
pub struct Fabric {
    pub(crate) inner: Rc<RefCell<FabricInner>>,
}

impl Fabric {
    /// Create an empty fabric.
    pub fn new(cfg: FabricConfig) -> Self {
        Fabric {
            inner: Rc::new(RefCell::new(FabricInner {
                cfg,
                nodes: Vec::new(),
            })),
        }
    }

    /// Attach a node with the fabric-wide NIC configuration.
    pub fn add_node(&self) -> NodeId {
        let mut inner = self.inner.borrow_mut();
        let id = NodeId(inner.nodes.len() as u32);
        let nic_cfg = inner.cfg.nic;
        inner.nodes.push(NodeState {
            nic: Nic::new(nic_cfg),
            mrs: Vec::new(),
            fault: FaultState::default(),
        });
        id
    }

    /// Attach `n` nodes, returning their ids.
    pub fn add_nodes(&self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    /// Number of attached nodes.
    pub fn node_count(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// Register a memory region of `len` bytes on `node`.
    pub fn register(&self, node: NodeId, len: usize) -> Mr {
        let mut inner = self.inner.borrow_mut();
        let state = &mut inner.nodes[node.index()];
        let rkey = state.mrs.len() as u32;
        let mr = Mr::new(node, rkey, len);
        state.mrs.push(mr.clone());
        mr
    }

    /// Resolve a remote key to its region.
    pub(crate) fn resolve(&self, key: RemoteKey) -> Result<Mr> {
        let inner = self.inner.borrow();
        inner
            .nodes
            .get(key.node.index())
            .and_then(|n| n.mrs.get(key.rkey as usize))
            .cloned()
            .ok_or(RdmaError::InvalidRkey {
                node: key.node.0,
                rkey: key.rkey,
            })
    }

    /// Establish a reliable connection between two nodes. Returns the two
    /// queue-pair endpoints; each endpoint completes sends into its
    /// `send_cq` and receives into its `recv_cq`.
    pub fn connect(
        &self,
        a: NodeId,
        a_send_cq: CqHandle,
        a_recv_cq: CqHandle,
        b: NodeId,
        b_send_cq: CqHandle,
        b_recv_cq: CqHandle,
    ) -> (Qp, Qp) {
        let a_shared = Rc::new(RefCell::new(QpShared::new(a_send_cq, a_recv_cq)));
        let b_shared = Rc::new(RefCell::new(QpShared::new(b_send_cq, b_recv_cq)));
        let qp_a = Qp::new(self.clone(), a, b, Rc::clone(&a_shared), Rc::clone(&b_shared));
        let qp_b = Qp::new(self.clone(), b, a, b_shared, a_shared);
        (qp_a, qp_b)
    }

    /// Plan a paced transfer between two nodes; returns the delivery time.
    /// Loopback (same node) transfers skip the wire but still pay the
    /// per-message overhead.
    ///
    /// This is a low-level hook used by non-verbs transports (the
    /// socket-style channel of the Flink baseline) to share the same paced
    /// wire; verbs users should go through a queue pair.
    pub fn plan(&self, now: SimTime, src: NodeId, dst: NodeId, bytes: u64) -> SimTime {
        let mut inner = self.inner.borrow_mut();
        let extra =
            inner.nodes[src.index()].fault.extra_delay + inner.nodes[dst.index()].fault.extra_delay;
        if src == dst {
            let overhead = inner.cfg.nic.per_message_overhead;
            let nic = &mut inner.nodes[src.index()].nic;
            nic.stats.tx_bytes += bytes;
            nic.stats.tx_msgs += 1;
            nic.stats.rx_bytes += bytes;
            nic.stats.rx_msgs += 1;
            return now + overhead + extra;
        }
        let (lo, hi) = if src.index() < dst.index() {
            (src.index(), dst.index())
        } else {
            (dst.index(), src.index())
        };
        let (head, tail) = inner.nodes.split_at_mut(hi);
        let (first, second) = (&mut head[lo], &mut tail[0]);
        let (s, d) = if src.index() < dst.index() {
            (first, second)
        } else {
            (second, first)
        };
        plan_transfer(now, &mut s.nic, &mut d.nic, bytes) + extra
    }

    /// One-way wire latency (used for ack scheduling).
    pub fn ack_latency(&self) -> SimTime {
        self.inner.borrow().cfg.nic.latency
    }

    // --- Fault-injection hooks (driven by `slash-chaos`) -----------------

    /// Crash `node`: its NIC stops forever and every reliable connection
    /// touching it flushes outstanding work. Irreversible — a recovered
    /// workload re-homes the node's logical role elsewhere.
    pub fn fail_node(&self, node: NodeId) {
        self.inner.borrow_mut().nodes[node.index()].fault.dead = true;
    }

    /// Whether `node` is still alive (control-plane heartbeat view).
    pub fn node_alive(&self, node: NodeId) -> bool {
        !self.inner.borrow().nodes[node.index()].fault.dead
    }

    /// Take `node`'s link down (`true`) or bring it back up (`false`) —
    /// the link-flap fault. While down, deliveries to and from the node are
    /// flushed; the node itself keeps running.
    pub fn set_link_down(&self, node: NodeId, down: bool) {
        self.inner.borrow_mut().nodes[node.index()].fault.link_down = down;
    }

    /// Whether `node`'s link is up and the node is alive (port state as a
    /// real NIC would report it to the control plane).
    pub fn link_up(&self, node: NodeId) -> bool {
        let f = self.inner.borrow().nodes[node.index()].fault;
        !f.dead && !f.link_down
    }

    /// Add `extra` delay to every message touching `node` (degraded link /
    /// delayed completions). Pass [`SimTime::ZERO`] to clear.
    pub fn set_extra_delay(&self, node: NodeId, extra: SimTime) {
        self.inner.borrow_mut().nodes[node.index()].fault.extra_delay = extra;
    }

    /// Whether a message can currently travel between `a` and `b`: both
    /// endpoints alive with their links up. Consulted at post *and*
    /// delivery time, so a fault landing mid-flight flushes the transfer.
    pub fn path_up(&self, a: NodeId, b: NodeId) -> bool {
        let inner = self.inner.borrow();
        let fa = inner.nodes[a.index()].fault;
        let fb = inner.nodes[b.index()].fault;
        !fa.dead && !fa.link_down && !fb.dead && !fb.link_down
    }

    /// NIC statistics of a node.
    pub fn nic_stats(&self, node: NodeId) -> NicStats {
        self.inner.borrow().nodes[node.index()].nic.stats
    }

    /// Mean TX utilization of a node's ports over `[0, now]`.
    pub fn tx_utilization(&self, node: NodeId, now: SimTime) -> f64 {
        self.inner.borrow().nodes[node.index()].nic.tx_utilization(now)
    }

    /// Mean RX utilization of a node's ports over `[0, now]`.
    pub fn rx_utilization(&self, node: NodeId, now: SimTime) -> f64 {
        self.inner.borrow().nodes[node.index()].nic.rx_utilization(now)
    }

    /// Aggregate bytes moved across the fabric (TX side).
    pub fn total_tx_bytes(&self) -> u64 {
        self.inner
            .borrow()
            .nodes
            .iter()
            .map(|n| n.nic.stats.tx_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_and_regions_get_stable_ids() {
        let f = Fabric::new(FabricConfig::default());
        let a = f.add_node();
        let b = f.add_node();
        assert_eq!((a.0, b.0), (0, 1));
        let m0 = f.register(a, 64);
        let m1 = f.register(a, 64);
        assert_ne!(m0.remote_key(), m1.remote_key());
        assert_eq!(f.resolve(m0.remote_key()).unwrap().remote_key(), m0.remote_key());
    }

    #[test]
    fn resolving_unknown_rkey_fails() {
        let f = Fabric::new(FabricConfig::default());
        let a = f.add_node();
        let err = f
            .resolve(RemoteKey { node: a, rkey: 99 })
            .unwrap_err();
        assert!(matches!(err, RdmaError::InvalidRkey { rkey: 99, .. }));
    }

    #[test]
    fn plan_is_paced_by_bandwidth() {
        let f = Fabric::new(FabricConfig {
            nic: NicConfig {
                bandwidth: 1_000_000_000,
                latency: SimTime::from_nanos(100),
                per_message_overhead: SimTime::from_nanos(10),
                ports: 1,
            },
        });
        let a = f.add_node();
        let b = f.add_node();
        let t1 = f.plan(SimTime::ZERO, a, b, 1000);
        let t2 = f.plan(SimTime::ZERO, a, b, 1000);
        assert_eq!(t1.as_nanos(), 1110);
        assert!(t2 > t1);
        assert_eq!(f.total_tx_bytes(), 2000);
    }

    #[test]
    fn loopback_skips_the_wire() {
        let f = Fabric::new(FabricConfig::default());
        let a = f.add_node();
        let t = f.plan(SimTime::ZERO, a, a, 1 << 20);
        assert_eq!(t, FabricConfig::default().nic.per_message_overhead);
    }
}
