//! `slash-lint` — run the workspace lint pass.
//!
//! ```text
//! slash-lint [--json] [--root <dir>]
//! ```
//!
//! Exit codes: 0 clean, 1 violations or stale allowlist, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use slash_verify::lint;

fn find_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => {
                    eprintln!("slash-lint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: slash-lint [--json] [--root <dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("slash-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(|| std::env::current_dir().ok().and_then(find_root)) {
        Some(r) => r,
        None => {
            eprintln!("slash-lint: could not locate the workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };
    match lint::run(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_human());
            }
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("slash-lint: {e}");
            ExitCode::from(2)
        }
    }
}
