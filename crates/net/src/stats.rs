//! Per-channel transfer statistics, used by the drill-down experiments
//! (paper §8.3) to report throughput, latency, and stall behaviour.
//!
//! All mutation goes through the facade methods below (`on_send`,
//! `on_consume`, `record_latency_ns`, ...) — the `metrics-facade` lint
//! rule rejects direct field assignments elsewhere — so every update site
//! is also a hook point for the `slash-obs` registry. Buffer-residence
//! latency is kept as a full log-bucketed [`Histogram`] rather than a
//! lossy sum/count pair, so tail quantiles (p99, p99.9) survive.

use slash_desim::SimTime;
use slash_obs::Histogram;

/// Counters kept by both endpoints of a channel.
#[derive(Debug, Clone, Default)]
pub struct ChannelStats {
    /// Data buffers sent (producer) / consumed (receiver).
    pub buffers: u64,
    /// Payload bytes moved (excludes footers and credit messages).
    pub payload_bytes: u64,
    /// Times the producer wanted a slot but had zero credits.
    pub credit_stalls: u64,
    /// Times the consumer polled and found nothing ready.
    pub empty_polls: u64,
    /// Credit-return messages sent by the consumer.
    pub credit_msgs: u64,
    /// Per-buffer residence latency (send → consume), nanoseconds.
    pub latency: Histogram,
}

impl ChannelStats {
    /// Account one buffer sent (or consumed) carrying `payload` bytes.
    pub fn on_buffer(&mut self, payload: usize) {
        self.buffers += 1;
        self.payload_bytes += payload as u64;
    }

    /// Account a send attempt rejected for lack of credit.
    pub fn on_credit_stall(&mut self) {
        self.credit_stalls += 1;
    }

    /// Account a poll that found no buffer ready.
    pub fn on_empty_poll(&mut self) {
        self.empty_polls += 1;
    }

    /// Account one credit-return message.
    pub fn on_credit_msg(&mut self) {
        self.credit_msgs += 1;
    }

    /// Record one buffer-residence latency sample in nanoseconds.
    pub fn record_latency_ns(&mut self, ns: u64) {
        self.latency.record(ns);
    }

    /// Number of latency samples taken.
    pub fn latency_samples(&self) -> u64 {
        self.latency.count()
    }

    /// Mean buffer latency, if any samples were taken.
    pub fn mean_latency(&self) -> Option<SimTime> {
        self.latency.mean().map(SimTime::from_nanos)
    }

    /// Latency quantile (`q` in `[0, 1]`), if any samples were taken.
    pub fn latency_quantile(&self, q: f64) -> Option<SimTime> {
        self.latency.quantile(q).map(SimTime::from_nanos)
    }

    /// Publish these counters and the latency histogram into an obs
    /// registry under `label` (e.g. `chan=0->1`).
    pub fn publish(&self, obs: &slash_obs::Obs, label: &str) {
        obs.counter_add("chan_buffers", label, self.buffers);
        obs.counter_add("chan_payload_bytes", label, self.payload_bytes);
        obs.counter_add("chan_credit_stalls", label, self.credit_stalls);
        obs.counter_add("chan_empty_polls", label, self.empty_polls);
        obs.counter_add("chan_credit_msgs", label, self.credit_msgs);
        if self.latency.count() > 0 {
            obs.hist_merge("buffer_residence_ns", label, &self.latency);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_latency() {
        let mut s = ChannelStats::default();
        assert_eq!(s.mean_latency(), None);
        s.record_latency_ns(50);
        s.record_latency_ns(150);
        s.record_latency_ns(100);
        assert_eq!(s.latency_samples(), 3);
        assert_eq!(s.mean_latency(), Some(SimTime::from_nanos(100)));
        let p100 = s.latency_quantile(1.0).unwrap();
        assert!(p100.as_nanos() >= 150);
    }

    #[test]
    fn publish_lands_in_registry() {
        let mut s = ChannelStats::default();
        s.on_buffer(512);
        s.on_credit_stall();
        s.record_latency_ns(2_000);
        let obs = slash_obs::Obs::enabled(16);
        s.publish(&obs, "chan=0->1");
        obs.with_registry(|r| {
            assert_eq!(r.counter("chan_buffers", "chan=0->1"), 1);
            assert_eq!(r.counter("chan_payload_bytes", "chan=0->1"), 512);
            assert_eq!(r.counter("chan_credit_stalls", "chan=0->1"), 1);
            assert_eq!(r.hist("buffer_residence_ns", "chan=0->1").unwrap().count(), 1);
        });
    }
}
