//! Elastic rescaling: live partition migration (planned handoff) and the
//! load-reactive driver loop.
//!
//! The recovery machinery of [`crate::recovery`] resurrects a partition's
//! leadership on a new host *after a crash*. This module generalizes that
//! state machine into **promotion without a crash**: a planned handoff
//! ships the partition's checkpoint to a target host while the source
//! leader keeps serving traffic, halts the source for one bounded cutover
//! window, captures an exactly-current epoch boundary, and then commits
//! through the *same* atomic install path a crash promotion uses
//! ([`crate::recovery`]'s `commit_promotion`): channel re-establishment
//! with commit-horizon handshakes, retained-epoch replay, worker respawn
//! at checkpointed source positions. Exactly-once results are preserved
//! by the existing epoch-id dedup and `(window, key)` result dedup — a
//! handoff is indistinguishable from a very fast, loss-free promotion.
//!
//! Topology: `cfg.nodes` logical partitions run over the same number of
//! *provisioned* fabric ports (physical hosts), but the initial
//! assignment may pack several partitions per host — co-located
//! partitions share one port (loopback delta channels) and one
//! memory-bandwidth link, so spreading them to parked hosts genuinely
//! doubles aggregate memory bandwidth. A [`ScaleDirector`] observes
//! cluster telemetry every driver slice and emits [`MigrationCmd`]s; the
//! policy lives in `crates/scale`, the mechanism here.
//!
//! The handoff state machine (full spec: `DESIGN.md` §18):
//!
//! ```text
//!   Warmup ──(warm copy landed)──► halt + capture ──► Cutover ──► Reconnect ──► commit
//!     │ target dies: abort free            │ target dies: fall back to source host
//!     │ source dies: drop plan            │ source dies: drop plan, §15 promotion takes over
//! ```
//!
//! Crash faults may land at any instant (chaos plans are honoured); the
//! §15 machinery runs unchanged alongside, and the two interact only
//! through the `host[]` map and the per-partition "who owns this node's
//! repair" exclusivity (a partition is owned by at most one machine).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use slash_chaos::ChaosConfig;
use slash_chaos::Injector;
use slash_desim::{Link, Sim, SimTime};
use slash_net::RECONNECT_HANDSHAKE_MSGS;
use slash_obs::{Cat, Obs};
use slash_rdma::{Fabric, NodeId};
use slash_state::backend::{build_cluster_obs, SsbConfig};

use crate::cluster::{assemble_report, spawn_node_workers, RunConfig, RunReport, SlashCluster};
use crate::query::QueryPlan;
use crate::recovery::{
    commit_promotion, ft_tick, on_epoch_closed, promo_begin, promo_tick, push_event,
    reset_errored_channels, results_digest, Checkpoint, CkptSlot, CkptStore, FtState, PromoPhase,
    Promotion, RecoveryAction, RecoveryReport,
};
use crate::sink::SinkResult;
use crate::worker::NodeShared;

/// Trace tid for driver-side rescale events (promotions use
/// `recovery::RECOVERY_TID` = 901 on the same victim pid).
const RESCALE_TID: u32 = 902;

/// Elastic-run topology and handoff tuning.
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// Initial host of each logical partition (`len == cfg.nodes`); hosts
    /// index the same range, so `[0,1,2,3,0,1,2,3]` packs 8 partitions
    /// onto 4 of 8 provisioned hosts, parking the rest.
    pub initial_hosts: Vec<usize>,
    /// Pre-ship a warm checkpoint copy before halting the source, so the
    /// cutover pays only the delta since the last boundary. Disabling it
    /// transfers the whole checkpoint inside the stall window.
    pub warmup: bool,
    /// Floor for the cutover tail transfer (control messages + the final
    /// epoch's chunks never ship for free).
    pub min_tail_bytes: u64,
}

impl ElasticConfig {
    /// Pack `partitions` logical partitions round-robin onto the first
    /// `hosts` of as many provisioned ports: partition `p` starts on host
    /// `p % hosts`.
    pub fn packed(partitions: usize, hosts: usize) -> Self {
        assert!(hosts >= 1 && hosts <= partitions);
        ElasticConfig {
            initial_hosts: (0..partitions).map(|p| p % hosts).collect(),
            warmup: true,
            min_tail_bytes: 256,
        }
    }
}

/// One migration order from the [`ScaleDirector`]: move `partition`'s
/// leadership to `to_host`'s port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationCmd {
    /// Logical partition to move.
    pub partition: usize,
    /// Destination host (port index).
    pub to_host: usize,
}

/// What the director sees each driver slice. All counters are cumulative
/// since run start; the director differentiates them itself.
#[derive(Debug, Clone)]
pub struct ClusterTelemetry {
    /// Current virtual time.
    pub now: SimTime,
    /// Records the pacing curves have released cluster-wide so far
    /// (equals `processed_records` for unpaced runs).
    pub released_records: u64,
    /// Records fully processed cluster-wide.
    pub processed_records: u64,
    /// Total records the run will ever see.
    pub total_records: u64,
    /// Current host of each partition.
    pub host_of: Vec<usize>,
    /// Distinct hosts currently owning at least one partition.
    pub hosts_in_use: usize,
    /// Per-partition state updates applied cluster-wide (the SpaceSaving
    /// heat telemetry; zeros when observability is disabled).
    pub partition_updates: Vec<u64>,
    /// Handoffs currently in flight.
    pub migrations_in_flight: usize,
}

impl ClusterTelemetry {
    /// Released-but-unprocessed records: the backlog the pacing curve has
    /// built up against the cluster's service rate.
    pub fn backlog(&self) -> u64 {
        self.released_records.saturating_sub(self.processed_records)
    }
}

/// A scaling policy: consumes telemetry every driver slice, emits
/// migration plans. The driver validates and executes them; invalid
/// commands (dead hosts, partitions already migrating) are dropped.
pub trait ScaleDirector {
    /// Observe one telemetry sample; return migrations to start now.
    fn tick(&mut self, t: &ClusterTelemetry) -> Vec<MigrationCmd>;
}

/// The do-nothing director: a static cluster with the full elastic
/// machinery loaded (checkpoint gating, handoff plumbing) but no
/// migrations — the baseline for exactness and throughput comparisons.
#[derive(Debug, Default, Clone, Copy)]
pub struct StaticDirector;

impl ScaleDirector for StaticDirector {
    fn tick(&mut self, _t: &ClusterTelemetry) -> Vec<MigrationCmd> {
        Vec::new()
    }
}

/// A director that replays a fixed migration schedule: each command fires
/// at the first telemetry tick at or after its virtual time. Used by
/// tests, chaos scenarios, and examples where the *mechanism* is under
/// study and the policy must be deterministic by construction.
#[derive(Debug, Clone)]
pub struct ScriptedDirector {
    script: Vec<(SimTime, MigrationCmd)>,
    next: usize,
}

impl ScriptedDirector {
    /// A director firing `script` in order (must be sorted by time).
    pub fn new(script: Vec<(SimTime, MigrationCmd)>) -> Self {
        assert!(script.windows(2).all(|w| w[0].0 <= w[1].0), "script sorted");
        ScriptedDirector { script, next: 0 }
    }
}

impl ScaleDirector for ScriptedDirector {
    fn tick(&mut self, t: &ClusterTelemetry) -> Vec<MigrationCmd> {
        let mut out = Vec::new();
        while self.next < self.script.len() && self.script[self.next].0 <= t.now {
            out.push(self.script[self.next].1);
            self.next += 1;
        }
        out
    }
}

/// One completed (or aborted) partition migration.
#[derive(Debug, Clone)]
pub struct MigrationEvent {
    /// Partition that moved.
    pub partition: usize,
    /// Host it left.
    pub from_host: usize,
    /// Host it landed on (== `from_host` when the plan fell back).
    pub to_host: usize,
    /// When the director's command was accepted.
    pub planned_at: SimTime,
    /// When the source leader was halted (cutover start); equals
    /// `committed_at` for plans aborted before the halt.
    pub halted_at: SimTime,
    /// When the new leader committed (cutover end).
    pub committed_at: SimTime,
    /// Whether the plan aborted (target died mid-handoff). An aborted
    /// post-halt plan re-commits on the source host — no records lost.
    pub aborted: bool,
}

impl MigrationEvent {
    /// The record-path stall this migration caused: halt → commit.
    pub fn stall(&self) -> SimTime {
        self.committed_at - self.halted_at
    }
}

/// Rescale-side outcome of an elastic run.
#[derive(Debug, Clone, Default)]
pub struct RescaleReport {
    /// Every migration, in commit/abort order.
    pub migrations: Vec<MigrationEvent>,
    /// Most hosts ever simultaneously owning partitions.
    pub peak_hosts: usize,
    /// Hosts owning partitions at completion.
    pub final_hosts: usize,
}

impl RescaleReport {
    /// Worst cutover stall across completed (non-free-aborted) handoffs.
    pub fn max_stall(&self) -> Option<SimTime> {
        self.migrations.iter().map(MigrationEvent::stall).max()
    }

    /// Migrations that aborted.
    pub fn aborted(&self) -> usize {
        self.migrations.iter().filter(|m| m.aborted).count()
    }
}

/// Pre-commit phases of a planned handoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HandoffPhase {
    /// Warm checkpoint copy streams to the target; source still serves.
    Warmup,
    /// Source halted, cutover checkpoint captured, tail transfer on the
    /// wire.
    Cutover,
    /// Replacement channels handshake to ready.
    Reconnect,
}

/// A handoff in flight for one partition (keyed by partition in the
/// driver's map).
struct Handoff {
    from_host: usize,
    to_host: usize,
    planned_at: SimTime,
    phase: HandoffPhase,
    phase_done_at: SimTime,
    /// Bytes of the warm copy already on the target when the halt lands.
    warm_bytes: u64,
    halted_at: SimTime,
    /// The cutover checkpoint (captured at halt).
    ckpt: Option<Rc<Checkpoint>>,
    aborted: bool,
}

fn transfer_time(cfg: &RunConfig, bytes: u64) -> SimTime {
    let nic = &cfg.fabric.nic;
    nic.latency + SimTime::from_nanos(bytes.saturating_mul(1_000_000_000) / nic.bandwidth.max(1))
}

fn hosts_in_use(host: &[usize]) -> usize {
    let mut seen = vec![false; host.len()];
    let mut n = 0;
    for &h in host {
        if !seen[h] {
            seen[h] = true;
            n += 1;
        }
    }
    n
}

fn set_owner_gauges(obs: &Obs, p: usize, owner: usize, phase: u64) {
    if obs.is_enabled() {
        let label = format!("part={p}");
        obs.gauge_set("partition_owner", &label, owner as f64);
        obs.gauge_set("migration_phase", &label, phase as f64);
    }
}

impl SlashCluster {
    /// Run `plan` elastically: partitions start packed per
    /// [`ElasticConfig::initial_hosts`], a [`ScaleDirector`] migrates
    /// them between provisioned hosts mid-run via planned handoffs, and
    /// the full §15 crash-recovery machinery runs alongside (an optional
    /// [`ChaosConfig`] fault plan is honoured; crashes mid-handoff abort
    /// or fall back per the §18 interaction matrix).
    ///
    /// Returns the run report, the recovery report (crash repairs), and
    /// the rescale report (migrations with per-cutover stalls).
    #[allow(clippy::too_many_lines)]
    pub fn run_elastic(
        plan: QueryPlan,
        partitions: Vec<Rc<Vec<u8>>>,
        cfg: RunConfig,
        chaos: &ChaosConfig,
        ecfg: &ElasticConfig,
        director: &mut dyn ScaleDirector,
        obs: Obs,
    ) -> (RunReport, RecoveryReport, RescaleReport) {
        let n = cfg.nodes;
        assert_eq!(
            partitions.len(),
            n * cfg.workers_per_node,
            "need one partition per worker"
        );
        assert_eq!(ecfg.initial_hosts.len(), n, "one initial host per partition");
        assert!(
            ecfg.initial_hosts.iter().all(|&h| h < n),
            "hosts index the provisioned ports (0..nodes)"
        );
        let mut sim = Sim::new();
        let fabric = Fabric::new(cfg.fabric);
        // One provisioned port per potential host; parked hosts idle until
        // a migration lands on them.
        let node_ids = fabric.add_nodes(n);
        let mut host: Vec<usize> = ecfg.initial_hosts.clone();
        let mapped: Vec<NodeId> = host.iter().map(|&h| node_ids[h]).collect();
        let ssb_cfg = SsbConfig {
            nodes: n,
            epoch_bytes: cfg.epoch_bytes,
            channel: cfg.channel,
        };
        let desc = plan.descriptor();
        let ssb_nodes = build_cluster_obs(&fabric, &mapped, desc, ssb_cfg, obs.clone());

        // One memory-bandwidth link per *host*: co-located partitions
        // contend for it, migrations re-home a partition onto its target
        // host's link.
        let host_links: Vec<Rc<RefCell<Link>>> = (0..n)
            .map(|_| Rc::new(RefCell::new(Link::new(cfg.cost.mem_bandwidth))))
            .collect();

        let store: Rc<RefCell<CkptStore>> =
            Rc::new(RefCell::new((0..n).map(|_| CkptSlot::default()).collect()));
        let plan = Rc::new(plan);
        let schema = plan.input().schema;
        let total_records: u64 = partitions
            .iter()
            .map(|p| (p.len() / schema.size) as u64)
            .sum();

        let shareds: Rc<RefCell<Vec<Rc<RefCell<NodeShared>>>>> =
            Rc::new(RefCell::new(Vec::with_capacity(n)));
        for (node, ssb) in ssb_nodes.into_iter().enumerate() {
            let shared = Rc::new(RefCell::new(NodeShared::new(
                ssb,
                cfg.workers_per_node,
                cfg.cost.mem_bandwidth,
                cfg.collect_results,
            )));
            {
                let mut sh = shared.borrow_mut();
                sh.metrics.set_clock_ghz(cfg.cost.clock_ghz);
                if obs.is_enabled() {
                    sh.instrument(obs.clone(), node);
                }
                sh.mem = Rc::clone(&host_links[host[node]]);
                sh.ssb.set_retention(true);
                for h in 0..n {
                    if h != node {
                        sh.ssb.set_durable_epochs(h, 0);
                    }
                }
                sh.ft = Some(FtState {
                    store: Rc::clone(&store),
                    node,
                    max_chunk: chaos.ft.ckpt_max_chunk,
                });
                if !chaos.pre_split.is_empty() {
                    sh.ssb.split_enable();
                    for &gk in &chaos.pre_split {
                        sh.ssb.split_activate(gk);
                    }
                }
                on_epoch_closed(&mut sh);
            }
            spawn_node_workers(
                &mut sim, node, &shared, &partitions, schema, &plan, &cfg, None,
            );
            shareds.borrow_mut().push(shared);
            set_owner_gauges(&obs, node, host[node], 0);
        }
        store.borrow_mut().iter_mut().for_each(CkptSlot::seed_from_latest);

        // Fabric-side faults (QP errors, link state) come from the armed
        // plan; engine-side crash flags come from the dead-port sweep
        // below — `host[]` changes dynamically, so victims are resolved
        // at sweep time, not at arm time.
        Injector::arm(&mut sim, &fabric, &node_ids, &obs, &chaos.plan);

        let mut last_token = vec![0u64; n];
        let mut last_change = vec![SimTime::ZERO; n];
        let mut promos: BTreeMap<usize, Promotion> = BTreeMap::new();
        let mut handoffs: BTreeMap<usize, Handoff> = BTreeMap::new();
        let mut rec = RecoveryReport::default();
        let mut rescale = RescaleReport {
            peak_hosts: hosts_in_use(&host),
            ..RescaleReport::default()
        };

        let slice =
            SimTime::from_nanos((chaos.ft.detect_timeout.as_nanos() / 4).max(100_000));
        loop {
            if shareds.borrow().iter().all(|s| s.borrow().finished) {
                break;
            }
            assert!(
                sim.now() <= cfg.max_virtual_time,
                "query did not complete within the virtual-time budget \
                 (possible protocol livelock)"
            );
            let recovery_outstanding = !promos.is_empty()
                || !handoffs.is_empty()
                || (0..n).any(|l| !fabric.node_alive(node_ids[host[l]]));
            assert!(
                sim.pending_events() > 0 || recovery_outstanding,
                "simulation quiesced before the query completed (deadlock)"
            );
            let horizon = sim.now() + slice;
            sim.run_until(horizon);
            let now = sim.now();

            // Dead-port sweep: a dead port kills every partition it hosts,
            // whether it was the initial home, a promotion target, or a
            // handoff destination.
            {
                let sh_vec = shareds.borrow();
                for l in 0..n {
                    if !fabric.node_alive(node_ids[host[l]]) {
                        sh_vec[l].borrow_mut().crashed = true;
                    }
                }
            }
            // Finished nodes' SSBs are a node service: keep pumping them.
            {
                let sh_vec = shareds.borrow();
                for l in 0..n {
                    if fabric.node_alive(node_ids[host[l]]) {
                        let mut sh = sh_vec[l].borrow_mut();
                        if sh.finished {
                            let _ = sh.ssb.pump(&mut sim);
                        }
                    }
                }
            }

            ft_tick(
                now, n, &fabric, &node_ids, &host, &store, &shareds, &cfg, chaos, &obs,
                &mut rec,
            );

            for d in promo_tick(
                now, &mut promos, &mut sim, &fabric, &node_ids, &mut host, &shareds, &store,
                &partitions, &plan, schema, &cfg, chaos, &obs, &mut rec,
            ) {
                last_change[d] = sim.now();
                // The resurrected partition shares its new host's memory
                // link (commit gave it a private one).
                shareds.borrow()[d].borrow_mut().mem = Rc::clone(&host_links[host[d]]);
                set_owner_gauges(&obs, d, host[d], 0);
            }

            handoff_tick(
                now, &mut handoffs, &mut sim, &fabric, &node_ids, &mut host, &shareds,
                &store, &partitions, &plan, schema, &cfg, chaos, ecfg, &obs, &host_links,
                &mut last_change, &mut rescale,
            );
            rescale.peak_hosts = rescale.peak_hosts.max(hosts_in_use(&host));

            // Consult the director and start validated handoffs.
            {
                let telemetry = {
                    let sh_vec = shareds.borrow();
                    let processed: u64 = sh_vec.iter().map(|s| s.borrow().records).sum();
                    let released = match cfg.pacing {
                        Some(curve) => (curve.released_records(now)
                            .saturating_mul(partitions.len() as u64))
                        .min(total_records),
                        None => processed,
                    };
                    let mut updates = vec![0u64; n];
                    for sh in sh_vec.iter() {
                        for (p, &u) in sh.borrow().ssb.partition_updates().iter().enumerate() {
                            updates[p] += u;
                        }
                    }
                    ClusterTelemetry {
                        now,
                        released_records: released,
                        processed_records: processed,
                        total_records,
                        host_of: host.clone(),
                        hosts_in_use: hosts_in_use(&host),
                        partition_updates: updates,
                        migrations_in_flight: handoffs.len(),
                    }
                };
                for cmd in director.tick(&telemetry) {
                    let valid = cmd.partition < n
                        && cmd.to_host < n
                        && cmd.to_host != host[cmd.partition]
                        && !handoffs.contains_key(&cmd.partition)
                        && !promos.contains_key(&cmd.partition)
                        && fabric.node_alive(node_ids[cmd.to_host])
                        && fabric.node_alive(node_ids[host[cmd.partition]])
                        && {
                            let sh_vec = shareds.borrow();
                            let sh = sh_vec[cmd.partition].borrow();
                            !sh.finished && !sh.crashed && !sh.halted
                        };
                    if !valid {
                        continue;
                    }
                    let p = cmd.partition;
                    let warm = if ecfg.warmup {
                        store.borrow()[p]
                            .latest_ckpt()
                            .map_or(0, |c| c.payload_bytes())
                    } else {
                        0
                    };
                    let warm_done = now + if warm > 0 {
                        transfer_time(&cfg, warm)
                    } else {
                        SimTime::ZERO
                    };
                    obs.instant(
                        Cat::Fault,
                        "handoff-begin",
                        p as u32,
                        RESCALE_TID,
                        now,
                        &[
                            ("from", host[p] as u64),
                            ("to", cmd.to_host as u64),
                            ("warm_bytes", warm),
                        ],
                    );
                    set_owner_gauges(&obs, p, host[p], 1);
                    handoffs.insert(
                        p,
                        Handoff {
                            from_host: host[p],
                            to_host: cmd.to_host,
                            planned_at: now,
                            phase: HandoffPhase::Warmup,
                            phase_done_at: warm_done,
                            warm_bytes: warm,
                            halted_at: SimTime::ZERO,
                            ckpt: None,
                            aborted: false,
                        },
                    );
                }
            }

            if n < 2 {
                continue;
            }
            // Stall detection — §15 unchanged, except partitions owned by
            // a handoff machine are its responsibility, not the detector's.
            for i in 0..n {
                if promos.contains_key(&i) || handoffs.contains_key(&i) {
                    continue;
                }
                let token = {
                    let sh_vec = shareds.borrow();
                    (0..n)
                        .filter(|&j| j != i)
                        .map(|j| sh_vec[j].borrow().ssb.vclock().get(i))
                        .max()
                        .unwrap_or(0)
                };
                if token != last_token[i] {
                    last_token[i] = token;
                    last_change[i] = now;
                    continue;
                }
                if now - last_change[i] < chaos.ft.detect_timeout {
                    continue;
                }
                last_change[i] = now;
                let fab_i = node_ids[host[i]];
                if !fabric.node_alive(fab_i) {
                    if let Some(p) =
                        promo_begin(i, now, now, 0, n, &fabric, &node_ids, &store, &cfg)
                    {
                        obs.instant(
                            Cat::Fault,
                            "promotion-begin",
                            i as u32,
                            crate::recovery::RECOVERY_TID,
                            now,
                            &[("host", p.host as u64), ("epochs", p.ckpt.epochs_closed())],
                        );
                        promos.insert(i, p);
                    }
                } else if fabric.link_up(fab_i) {
                    let fixed =
                        reset_errored_channels(i, n, &shareds, &fabric, &node_ids, &host);
                    if fixed > 0 {
                        push_event(
                            &mut rec,
                            chaos,
                            i,
                            now,
                            sim.now(),
                            RecoveryAction::ChannelsReset { channels: fixed },
                            &obs,
                        );
                    }
                }
            }
        }
        let completion_time = sim.now();
        rescale.final_hosts = hosts_in_use(&host);

        let shareds_v = shareds.borrow();
        let mut report = assemble_report(&shareds_v, &fabric, &obs, completion_time);
        if cfg.collect_results {
            let mut dedup: BTreeMap<(u64, u64), SinkResult> = BTreeMap::new();
            for r in report.results.drain(..) {
                let k = match r {
                    SinkResult::Agg { window_id, key, .. }
                    | SinkResult::Join { window_id, key, .. } => (window_id, key),
                };
                dedup.entry(k).or_insert(r);
            }
            report.results = dedup.into_values().collect();
            report.emitted = report.results.len() as u64;
            report.total_pairs = report
                .results
                .iter()
                .map(|r| match r {
                    SinkResult::Join { pairs, .. } => *pairs,
                    SinkResult::Agg { .. } => 0,
                })
                .sum();
        }
        rec.results_digest = results_digest(&report.results);
        rec.state_digests = shareds_v
            .iter()
            .map(|s| s.borrow().ssb.state_digest())
            .collect();
        (report, rec, rescale)
    }
}

/// Advance every in-flight handoff one driver tick: honour crash
/// interactions (source dead → drop the plan, §15 promotion takes over;
/// target dead → abort free pre-halt, fall back to the source host
/// post-halt), and walk Warmup → halt+capture → Cutover → Reconnect →
/// commit. The commit reuses the crash-promotion install path verbatim.
#[allow(clippy::too_many_arguments)]
fn handoff_tick(
    now: SimTime,
    handoffs: &mut BTreeMap<usize, Handoff>,
    sim: &mut Sim,
    fabric: &Fabric,
    node_ids: &[NodeId],
    host: &mut [usize],
    shareds: &Rc<RefCell<Vec<Rc<RefCell<NodeShared>>>>>,
    store: &Rc<RefCell<CkptStore>>,
    partitions: &[Rc<Vec<u8>>],
    plan: &Rc<QueryPlan>,
    schema: crate::record::RecordSchema,
    cfg: &RunConfig,
    chaos: &ChaosConfig,
    ecfg: &ElasticConfig,
    obs: &Obs,
    host_links: &[Rc<RefCell<Link>>],
    last_change: &mut [SimTime],
    rescale: &mut RescaleReport,
) {
    let parts: Vec<usize> = handoffs.keys().copied().collect();
    for p in parts {
        let Some(h) = handoffs.get_mut(&p) else { continue };
        // Source leader died mid-handoff: the plan is void. Pre-halt the
        // partition is simply crashed; post-halt it is halted *and* its
        // port is dead — either way the dead-port sweep has flagged it
        // and the §15 detect → promote cycle takes over (buddy promotion
        // from durable copies). Drop the machine so the detector may own
        // the partition again.
        if !fabric.node_alive(node_ids[host[p]]) {
            obs.instant(
                Cat::Fault,
                "handoff-abort",
                p as u32,
                RESCALE_TID,
                now,
                &[("reason_source_dead", 1), ("to", h.to_host as u64)],
            );
            rescale.migrations.push(MigrationEvent {
                partition: p,
                from_host: h.from_host,
                to_host: h.from_host,
                planned_at: h.planned_at,
                halted_at: if h.halted_at == SimTime::ZERO { now } else { h.halted_at },
                committed_at: now,
                aborted: true,
            });
            set_owner_gauges(obs, p, host[p], 0);
            handoffs.remove(&p);
            continue;
        }
        // Target died: before the halt nothing moved — abort free, the
        // source keeps leadership and keeps serving. After the halt the
        // partition must be re-installed *somewhere*; fall back to the
        // source host (a local re-commit: the checkpoint is already
        // there, only the reconnect handshake remains).
        if !fabric.node_alive(node_ids[h.to_host]) {
            match h.phase {
                HandoffPhase::Warmup => {
                    obs.instant(
                        Cat::Fault,
                        "handoff-abort",
                        p as u32,
                        RESCALE_TID,
                        now,
                        &[("reason_target_dead", 1), ("to", h.to_host as u64)],
                    );
                    rescale.migrations.push(MigrationEvent {
                        partition: p,
                        from_host: h.from_host,
                        to_host: h.from_host,
                        planned_at: h.planned_at,
                        halted_at: now,
                        committed_at: now,
                        aborted: true,
                    });
                    set_owner_gauges(obs, p, host[p], 0);
                    handoffs.remove(&p);
                    continue;
                }
                HandoffPhase::Cutover | HandoffPhase::Reconnect => {
                    if !h.aborted {
                        h.aborted = true;
                        h.to_host = host[p];
                        // The tail transfer (if still running) is void;
                        // the checkpoint already lives on the source.
                        h.phase_done_at = now;
                        obs.instant(
                            Cat::Fault,
                            "handoff-fallback",
                            p as u32,
                            RESCALE_TID,
                            now,
                            &[("to", h.to_host as u64)],
                        );
                    }
                }
            }
        }
        if now < h.phase_done_at {
            continue;
        }
        match h.phase {
            HandoffPhase::Warmup => {
                // Cutover: halt the source leader, close the final epoch
                // driver-side and capture the exactly-current checkpoint.
                // Workers die at their next step having applied whole
                // batches only, so the boundary is exact.
                let ckpt = {
                    let sh_vec = shareds.borrow();
                    let mut sh = sh_vec[p].borrow_mut();
                    sh.halted = true;
                    match sh.ssb.close_epoch(sim) {
                        Ok(_) => on_epoch_closed(&mut sh),
                        Err(e) => sh
                            .obs
                            .record_failure("handoff cutover epoch", &format!("{e:?}")),
                    }
                    drop(sh);
                    store.borrow()[p]
                        .latest_ckpt()
                        .expect("cutover checkpoint just captured") // lint:ok(no-panic) — on_epoch_closed above captured it
                };
                h.halted_at = now;
                let tail = ckpt
                    .payload_bytes()
                    .saturating_sub(h.warm_bytes)
                    .max(ecfg.min_tail_bytes);
                h.ckpt = Some(Rc::clone(&ckpt));
                h.phase = HandoffPhase::Cutover;
                h.phase_done_at = now + transfer_time(cfg, tail);
                obs.instant(
                    Cat::Fault,
                    "handoff-cutover",
                    p as u32,
                    RESCALE_TID,
                    now,
                    &[("epochs", ckpt.epochs_closed()), ("tail_bytes", tail)],
                );
                set_owner_gauges(obs, p, host[p], 2);
            }
            HandoffPhase::Cutover => {
                h.phase = HandoffPhase::Reconnect;
                h.phase_done_at = now
                    + SimTime::from_nanos(
                        RECONNECT_HANDSHAKE_MSGS * 2 * fabric.ack_latency().as_nanos(),
                    );
                set_owner_gauges(obs, p, host[p], 3);
            }
            HandoffPhase::Reconnect => {
                let Some(h) = handoffs.remove(&p) else { continue };
                let ckpt = h.ckpt.clone().expect("cutover checkpoint set"); // lint:ok(no-panic) — set at Warmup→Cutover
                // Commit through the crash-promotion install path: same
                // atomic channel re-establishment, retained replay, and
                // worker respawn — promotion without the crash.
                let promo = Promotion {
                    node: p,
                    detected_at: h.planned_at,
                    phase: PromoPhase::Reconnect,
                    phase_done_at: now,
                    host: h.to_host,
                    host_port: node_ids[h.to_host],
                    copy_port: None,
                    ckpt: Rc::clone(&ckpt),
                    restarts: 0,
                };
                commit_promotion(
                    &promo, sim, fabric, node_ids, host, shareds, store, partitions, plan,
                    schema, cfg, chaos, obs,
                );
                // §15.3 retention fix: once the new owner's own durable
                // checkpoint covers the cutover boundary, the eternal
                // epoch-0 seed copy is released and retained histories
                // may finally be pruned past 0.
                store.borrow_mut()[p].mark_handoff(ckpt.epochs_closed());
                shareds.borrow()[p].borrow_mut().mem =
                    Rc::clone(&host_links[host[p]]);
                last_change[p] = sim.now();
                let committed_at = sim.now();
                let stall = committed_at - h.halted_at;
                if obs.is_enabled() {
                    obs.span(
                        Cat::Fault,
                        "handoff",
                        p as u32,
                        RESCALE_TID,
                        h.planned_at,
                        committed_at.max(h.planned_at + SimTime::from_nanos(1)),
                        &[
                            ("from", h.from_host as u64),
                            ("to", h.to_host as u64),
                            ("stall_ns", stall.as_nanos()),
                        ],
                    );
                    obs.hist_record("migration_stall_ns", "cluster", stall.as_nanos());
                    obs.counter_add("migrations", "cluster", 1);
                }
                set_owner_gauges(obs, p, h.to_host, 0);
                rescale.migrations.push(MigrationEvent {
                    partition: p,
                    from_host: h.from_host,
                    to_host: h.to_host,
                    planned_at: h.planned_at,
                    halted_at: h.halted_at,
                    committed_at,
                    aborted: h.aborted,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggSpec;
    use crate::query::StreamDef;
    use crate::record::RecordSchema;
    use crate::window::WindowAssigner;
    use slash_chaos::{FaultPlan, FtConfig};

    fn gen(n: u64, dt: u64, keys: u64) -> Rc<Vec<u8>> {
        let mut buf = Vec::with_capacity((n * 16) as usize);
        for i in 0..n {
            buf.extend_from_slice(&(i * dt).to_le_bytes());
            buf.extend_from_slice(&(i % keys).to_le_bytes());
        }
        Rc::new(buf)
    }

    fn count_plan(window: u64) -> QueryPlan {
        QueryPlan::Aggregate {
            input: StreamDef::new(RecordSchema::plain(16)),
            window: WindowAssigner::Tumbling { size: window },
            agg: AggSpec::Count,
        }
    }

    fn cfg(nodes: usize) -> RunConfig {
        let mut cfg = RunConfig::new(nodes, 1);
        cfg.collect_results = true;
        cfg.epoch_bytes = 16 * 1024;
        cfg
    }

    fn chaos(plan: FaultPlan) -> ChaosConfig {
        ChaosConfig {
            plan,
            ft: FtConfig {
                detect_timeout: SimTime::from_micros(300),
                ckpt_max_chunk: 16 * 1024,
                ckpt_copies: 2,
            },
            pre_split: Vec::new(),
        }
    }

    fn parts_n(nodes: usize, recs: u64) -> Vec<Rc<Vec<u8>>> {
        (0..nodes).map(|_| gen(recs, 1, 32)).collect()
    }

    fn parts(nodes: usize) -> Vec<Rc<Vec<u8>>> {
        parts_n(nodes, 60_000)
    }

    fn run_scripted_n(
        nodes: usize,
        hosts: usize,
        recs: u64,
        script: Vec<(SimTime, MigrationCmd)>,
        faults: FaultPlan,
    ) -> (RunReport, RecoveryReport, RescaleReport) {
        let mut director = ScriptedDirector::new(script);
        SlashCluster::run_elastic(
            count_plan(4_000),
            parts_n(nodes, recs),
            cfg(nodes),
            &chaos(faults),
            &ElasticConfig::packed(nodes, hosts),
            &mut director,
            Obs::disabled(),
        )
    }

    fn run_scripted(
        nodes: usize,
        hosts: usize,
        script: Vec<(SimTime, MigrationCmd)>,
        faults: FaultPlan,
    ) -> (RunReport, RecoveryReport, RescaleReport) {
        run_scripted_n(nodes, hosts, 60_000, script, faults)
    }

    fn flat_baseline_n(nodes: usize, recs: u64) -> (RunReport, RecoveryReport) {
        SlashCluster::run_chaos(
            count_plan(4_000),
            parts_n(nodes, recs),
            cfg(nodes),
            &chaos(FaultPlan::new()),
            Obs::disabled(),
        )
    }

    fn flat_baseline(nodes: usize) -> (RunReport, RecoveryReport) {
        flat_baseline_n(nodes, 60_000)
    }

    #[test]
    fn packed_static_run_matches_flat_chaos_run() {
        // Four partitions packed two-per-host over loopback channels must
        // produce exactly the results of the flat four-host chaos run —
        // placement is invisible to query semantics.
        let (base, base_rec) = flat_baseline(4);
        let (packed, rec, rescale) = run_scripted(4, 2, vec![], FaultPlan::new());
        assert_eq!(packed.records, base.records);
        assert_eq!(rec.results_digest, base_rec.results_digest);
        assert_eq!(rec.state_digests, base_rec.state_digests);
        assert!(rescale.migrations.is_empty());
        assert_eq!(rescale.peak_hosts, 2);
        assert_eq!(rescale.final_hosts, 2);
    }

    #[test]
    fn scripted_migrations_scale_out_and_back_exactly() {
        // Spread both co-located partitions to parked hosts mid-run, then
        // pack one back: 2 -> 4 -> 3 hosts with exact results throughout.
        let script = vec![
            (
                SimTime::from_micros(400),
                MigrationCmd { partition: 2, to_host: 2 },
            ),
            (
                SimTime::from_micros(500),
                MigrationCmd { partition: 3, to_host: 3 },
            ),
            (
                SimTime::from_micros(1_500),
                MigrationCmd { partition: 3, to_host: 1 },
            ),
        ];
        let (base, base_rec) = flat_baseline_n(4, 150_000);
        let (run, rec, rescale) = run_scripted_n(4, 2, 150_000, script, FaultPlan::new());
        assert_eq!(run.records, base.records, "every record exactly once");
        assert_eq!(rec.results_digest, base_rec.results_digest);
        assert_eq!(rec.state_digests, base_rec.state_digests);
        let committed: Vec<_> =
            rescale.migrations.iter().filter(|m| !m.aborted).collect();
        assert_eq!(committed.len(), 3, "{:?}", rescale.migrations);
        assert_eq!(rescale.peak_hosts, 4);
        assert_eq!(rescale.final_hosts, 3);
        for m in &committed {
            assert!(m.stall() > SimTime::ZERO, "cutover pays a stall: {m:?}");
            assert!(m.halted_at >= m.planned_at);
        }
    }

    #[test]
    fn invalid_commands_are_dropped() {
        // Out-of-range hosts/partitions and a self-move must be ignored,
        // and the run must complete untouched.
        let script = vec![
            (
                SimTime::from_micros(400),
                MigrationCmd { partition: 9, to_host: 1 },
            ),
            (
                SimTime::from_micros(400),
                MigrationCmd { partition: 1, to_host: 9 },
            ),
            (
                SimTime::from_micros(400),
                // partition 1 already lives on host 1 in packed(4, 2).
                MigrationCmd { partition: 1, to_host: 1 },
            ),
        ];
        let (base, base_rec) = flat_baseline(4);
        let (run, rec, rescale) = run_scripted(4, 2, script, FaultPlan::new());
        assert!(rescale.migrations.is_empty(), "{:?}", rescale.migrations);
        assert_eq!(run.records, base.records);
        assert_eq!(rec.results_digest, base_rec.results_digest);
    }

    #[test]
    fn elastic_runs_are_deterministic() {
        let go = || {
            let script = vec![
                (
                    SimTime::from_micros(400),
                    MigrationCmd { partition: 2, to_host: 2 },
                ),
                (
                    SimTime::from_micros(600),
                    MigrationCmd { partition: 3, to_host: 3 },
                ),
            ];
            let (r, rec, rescale) = run_scripted(4, 2, script, FaultPlan::new());
            (
                r.records,
                r.completion_time,
                rec.results_digest,
                rec.state_digests.clone(),
                rescale.migrations.len(),
                rescale.max_stall(),
            )
        };
        assert_eq!(go(), go(), "same script => identical elastic run");
    }

    #[test]
    fn paced_elastic_run_is_exact() {
        // Pacing + a migration at once: the handoff must not lose or
        // duplicate paced records.
        let curve = crate::source::RateCurve::new(&[
            (SimTime::ZERO, 40_000_000),
            (SimTime::from_millis(1), 120_000_000),
        ]);
        let mut ecfg = cfg(4);
        ecfg.pacing = Some(curve);
        let mut base_cfg = cfg(4);
        base_cfg.pacing = Some(curve);
        let (base, base_rec) = SlashCluster::run_chaos(
            count_plan(4_000),
            parts(4),
            base_cfg,
            &chaos(FaultPlan::new()),
            Obs::disabled(),
        );
        let mut director = ScriptedDirector::new(vec![(
            SimTime::from_micros(500),
            MigrationCmd { partition: 2, to_host: 2 },
        )]);
        let (run, rec, rescale) = SlashCluster::run_elastic(
            count_plan(4_000),
            parts(4),
            ecfg,
            &chaos(FaultPlan::new()),
            &ElasticConfig::packed(4, 2),
            &mut director,
            Obs::disabled(),
        );
        assert_eq!(run.records, base.records);
        assert_eq!(rec.results_digest, base_rec.results_digest);
        assert_eq!(rescale.migrations.iter().filter(|m| !m.aborted).count(), 1);
    }
}

