#!/usr/bin/env bash
# Full verification gate for the workspace. Run from anywhere inside the
# repo; every step is offline and deterministic. Order is cheapest-first
# so failures surface fast.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> [1/5] build (release, all targets)"
cargo build --release --workspace

echo "==> [2/5] tests (unit + integration + fixtures + mutations)"
cargo test --workspace -q

echo "==> [3/5] clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> [4/5] slash-lint (custom static analysis, burn-down allowlist)"
cargo run --release -p slash-verify --bin slash-lint

echo "==> [5/5] slash-race (schedule exploration smoke: 128 tie-breaks)"
cargo run --release -p slash-verify --bin slash-race -- --seeds 128

echo "ci: all gates green"
