//! FASTER-style hash index (§7.2.1).
//!
//! The index maps key *hashes* to log addresses and stores no keys: each
//! 64-bit slot packs a 16-bit tag (high hash bits, with the top bit forced
//! so occupied slots are never zero) and a 48-bit log address. Because tags
//! can collide, lookups verify candidates against the key stored in the log
//! entry — callers supply a `verify(addr) -> bool` closure backed by
//! [`crate::log::Lss::key_at`].
//!
//! Buckets hold seven entries plus an overflow link, mirroring FASTER's
//! cache-line-sized buckets. The index grows by doubling; rehashing reads
//! keys back from the log through a caller-provided closure, exactly like
//! FASTER's index growth.

/// Slots per bucket (cache-line sized: 7 entries + overflow link).
const BUCKET_SLOTS: usize = 7;
/// Sentinel for "no overflow bucket".
const NO_OVERFLOW: u32 = u32::MAX;
/// Maximum addressable log offset (48-bit packed addresses).
pub const MAX_ADDR: u64 = (1 << 48) - 1;

#[derive(Clone)]
struct Bucket {
    slots: [u64; BUCKET_SLOTS],
    overflow: u32,
}

impl Bucket {
    fn empty() -> Self {
        Bucket {
            slots: [0; BUCKET_SLOTS],
            overflow: NO_OVERFLOW,
        }
    }
}

#[inline]
fn pack(tag: u16, addr: u64) -> u64 {
    debug_assert!(addr <= MAX_ADDR);
    ((tag as u64) << 48) | addr
}

#[inline]
fn slot_tag(slot: u64) -> u16 {
    (slot >> 48) as u16
}

#[inline]
fn slot_addr(slot: u64) -> u64 {
    slot & MAX_ADDR
}

#[inline]
fn tag_of(hash: u64) -> u16 {
    ((hash >> 48) as u16) | 0x8000
}

/// Hash index from key hashes to log addresses.
pub struct HashIndex {
    buckets: Vec<Bucket>,
    overflow: Vec<Bucket>,
    /// Free list of overflow bucket slots (indices into `overflow`).
    free_overflow: Vec<u32>,
    mask: u64,
    count: usize,
}

impl HashIndex {
    /// Create an index with capacity for roughly `capacity` keys before the
    /// first resize.
    pub fn with_capacity(capacity: usize) -> Self {
        let buckets = (capacity / BUCKET_SLOTS + 1).next_power_of_two().max(2);
        HashIndex {
            buckets: vec![Bucket::empty(); buckets],
            overflow: Vec::new(),
            free_overflow: Vec::new(),
            mask: buckets as u64 - 1,
            count: 0,
        }
    }

    /// Create a small index.
    pub fn new() -> Self {
        Self::with_capacity(64)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Find the address for `hash` where `verify(addr)` confirms the key.
    pub fn find(&self, hash: u64, mut verify: impl FnMut(u64) -> bool) -> Option<u64> {
        let tag = tag_of(hash);
        let mut bucket = &self.buckets[(hash & self.mask) as usize];
        loop {
            for &slot in &bucket.slots {
                if slot != 0 && slot_tag(slot) == tag && verify(slot_addr(slot)) {
                    return Some(slot_addr(slot));
                }
            }
            if bucket.overflow == NO_OVERFLOW {
                return None;
            }
            bucket = &self.overflow[bucket.overflow as usize];
        }
    }

    /// Resolve a batch of pre-hashed probes in one pass. Probes are walked
    /// in ascending root-bucket order so a batch touches the bucket array
    /// near-sequentially instead of hopping per record; `out[i]` receives
    /// the address found for `hashes[i]` (or `None`). One slice-based
    /// `verify(probe_index, addr)` closure serves the whole batch, instead
    /// of one capture-by-clone closure per record.
    pub fn find_batch(
        &self,
        hashes: &[u64],
        out: &mut Vec<Option<u64>>,
        mut verify: impl FnMut(usize, u64) -> bool,
    ) {
        out.clear();
        out.resize(hashes.len(), None);
        let mut order: Vec<u32> = (0..hashes.len() as u32).collect();
        order.sort_unstable_by_key(|&i| hashes[i as usize] & self.mask);
        for i in order {
            let i = i as usize;
            out[i] = self.find(hashes[i], |addr| verify(i, addr));
        }
    }

    /// Insert or update: if a slot for this key exists (same tag and
    /// `verify` accepts its current address), overwrite it with `addr` and
    /// return the previous address; otherwise insert a new slot.
    ///
    /// `rehash(addr) -> hash` is used if the insertion triggers growth.
    pub fn upsert(
        &mut self,
        hash: u64,
        addr: u64,
        mut verify: impl FnMut(u64) -> bool,
        rehash: impl Fn(u64) -> u64,
    ) -> Option<u64> {
        // Grow ahead of the insert so the non-generic worker never needs to
        // recurse (recursive generic instantiation would not terminate).
        if self.count + 1 > self.buckets.len() * BUCKET_SLOTS {
            self.grow(&rehash);
        }
        self.upsert_no_grow(hash, addr, &mut verify)
    }

    fn upsert_no_grow(
        &mut self,
        hash: u64,
        addr: u64,
        verify: &mut dyn FnMut(u64) -> bool,
    ) -> Option<u64> {
        debug_assert!(addr <= MAX_ADDR, "log address exceeds 48 bits");
        let tag = tag_of(hash);
        let root = (hash & self.mask) as usize;

        // Pass 1: look for the existing key, remembering the first free slot.
        let mut free: Option<(usize, usize, bool)> = None; // (bucket idx, slot, is_overflow)
        {
            let mut bi = root;
            let mut in_overflow = false;
            loop {
                let bucket = if in_overflow {
                    &self.overflow[bi]
                } else {
                    &self.buckets[bi]
                };
                for (si, &slot) in bucket.slots.iter().enumerate() {
                    if slot == 0 {
                        if free.is_none() {
                            free = Some((bi, si, in_overflow));
                        }
                    } else if slot_tag(slot) == tag && verify(slot_addr(slot)) {
                        let old = slot_addr(slot);
                        let b = if in_overflow {
                            &mut self.overflow[bi]
                        } else {
                            &mut self.buckets[bi]
                        };
                        b.slots[si] = pack(tag, addr);
                        return Some(old);
                    }
                }
                if bucket.overflow == NO_OVERFLOW {
                    break;
                }
                bi = bucket.overflow as usize;
                in_overflow = true;
            }
        }

        // Pass 2: insert.
        match free {
            Some((bi, si, true)) => self.overflow[bi].slots[si] = pack(tag, addr),
            Some((bi, si, false)) => self.buckets[bi].slots[si] = pack(tag, addr),
            None => {
                // Chain a fresh overflow bucket onto the tail.
                let new_idx = self.alloc_overflow();
                self.overflow[new_idx as usize].slots[0] = pack(tag, addr);
                // Find the tail of the chain again (it had no free slot).
                let mut bi = root;
                let mut in_overflow = false;
                loop {
                    let ovf = if in_overflow {
                        self.overflow[bi].overflow
                    } else {
                        self.buckets[bi].overflow
                    };
                    if ovf == NO_OVERFLOW {
                        if in_overflow {
                            self.overflow[bi].overflow = new_idx;
                        } else {
                            self.buckets[bi].overflow = new_idx;
                        }
                        break;
                    }
                    bi = ovf as usize;
                    in_overflow = true;
                }
            }
        }
        self.count += 1;
        None
    }

    fn alloc_overflow(&mut self) -> u32 {
        if let Some(i) = self.free_overflow.pop() {
            self.overflow[i as usize] = Bucket::empty();
            i
        } else {
            self.overflow.push(Bucket::empty());
            (self.overflow.len() - 1) as u32
        }
    }

    /// Remove the entry for `hash` where `verify` confirms the key; returns
    /// its address.
    pub fn remove(&mut self, hash: u64, mut verify: impl FnMut(u64) -> bool) -> Option<u64> {
        let tag = tag_of(hash);
        let mut bi = (hash & self.mask) as usize;
        let mut in_overflow = false;
        loop {
            let bucket = if in_overflow {
                &self.overflow[bi]
            } else {
                &self.buckets[bi]
            };
            let mut hit = None;
            for (si, &slot) in bucket.slots.iter().enumerate() {
                if slot != 0 && slot_tag(slot) == tag && verify(slot_addr(slot)) {
                    hit = Some((si, slot_addr(slot)));
                    break;
                }
            }
            if let Some((si, addr)) = hit {
                let b = if in_overflow {
                    &mut self.overflow[bi]
                } else {
                    &mut self.buckets[bi]
                };
                b.slots[si] = 0;
                self.count -= 1;
                return Some(addr);
            }
            let ovf = bucket.overflow;
            if ovf == NO_OVERFLOW {
                return None;
            }
            bi = ovf as usize;
            in_overflow = true;
        }
    }

    /// Visit the address of every entry.
    pub fn for_each(&self, mut f: impl FnMut(u64)) {
        for bucket in self.buckets.iter().chain(self.overflow.iter()) {
            for &slot in &bucket.slots {
                if slot != 0 {
                    f(slot_addr(slot));
                }
            }
        }
    }

    /// Keep only entries whose address satisfies `keep`; returns how many
    /// were removed. (Epoch invalidation removes everything below the new
    /// read-only boundary.)
    pub fn retain(&mut self, mut keep: impl FnMut(u64) -> bool) -> usize {
        let mut removed = 0;
        for bucket in self.buckets.iter_mut().chain(self.overflow.iter_mut()) {
            for slot in &mut bucket.slots {
                if *slot != 0 && !keep(slot_addr(*slot)) {
                    *slot = 0;
                    removed += 1;
                }
            }
        }
        self.count -= removed;
        removed
    }

    /// Remove every entry.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            *b = Bucket::empty();
        }
        self.overflow.clear();
        self.free_overflow.clear();
        self.count = 0;
    }

    fn grow(&mut self, rehash: &dyn Fn(u64) -> u64) {
        let mut addrs = Vec::with_capacity(self.count);
        self.for_each(|a| addrs.push(a));
        let new_buckets = self.buckets.len() * 2;
        self.buckets = vec![Bucket::empty(); new_buckets];
        self.overflow.clear();
        self.free_overflow.clear();
        self.mask = new_buckets as u64 - 1;
        self.count = 0;
        for addr in addrs {
            let h = rehash(addr);
            // During rebuild every live entry has a distinct key, so
            // verification can reject everything: nothing is an update.
            self.upsert_no_grow(h, addr, &mut |_| false);
        }
    }
}

impl Default for HashIndex {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_u64;
    use std::collections::HashMap;

    /// Test double: a "log" that is just addr -> key, so verify closures
    /// can compare keys like the partition does against the LSS.
    struct FakeLog {
        keys: HashMap<u64, u64>, // addr -> key
        next: u64,
    }

    impl FakeLog {
        fn new() -> Self {
            FakeLog {
                keys: HashMap::new(),
                next: 0,
            }
        }
        fn put(&mut self, key: u64) -> u64 {
            let addr = self.next;
            self.next += 8;
            self.keys.insert(addr, key);
            addr
        }
        /// Verifier for `key`: "does the entry at `addr` hold `key`?" —
        /// the closure the partition builds against the real LSS.
        fn verify(&self, key: u64) -> impl FnMut(u64) -> bool + 'static {
            let keys = self.keys.clone();
            move |addr| keys[&addr] == key
        }
        /// Growth rehash: read the key back from the log and rehash it.
        fn rehash(&self) -> impl Fn(u64) -> u64 + 'static {
            let keys = self.keys.clone();
            move |addr| hash_u64(keys[&addr])
        }
    }

    #[test]
    fn insert_find_remove() {
        let mut log = FakeLog::new();
        let mut idx = HashIndex::new();
        let a1 = log.put(101);
        let a2 = log.put(202);

        assert_eq!(
            idx.upsert(hash_u64(101), a1, log.verify(101), |_| unreachable!()),
            None
        );
        assert_eq!(
            idx.upsert(hash_u64(202), a2, log.verify(202), |_| unreachable!()),
            None
        );
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.find(hash_u64(101), log.verify(101)), Some(a1));
        assert_eq!(idx.find(hash_u64(202), log.verify(202)), Some(a2));
        assert_eq!(idx.find(hash_u64(303), log.verify(303)), None);

        assert_eq!(idx.remove(hash_u64(101), log.verify(101)), Some(a1));
        assert_eq!(idx.find(hash_u64(101), log.verify(101)), None);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn upsert_replaces_in_place() {
        let mut log = FakeLog::new();
        let mut idx = HashIndex::new();
        let a1 = log.put(7);
        let a2 = log.put(7); // same key relocated (copy-on-update)
        assert_eq!(idx.upsert(hash_u64(7), a1, log.verify(7), |_| 0), None);
        assert_eq!(idx.upsert(hash_u64(7), a2, log.verify(7), |_| 0), Some(a1));
        assert_eq!(idx.len(), 1, "update must not duplicate");
        assert_eq!(idx.find(hash_u64(7), log.verify(7)), Some(a2));
    }

    #[test]
    fn many_keys_with_growth_and_overflow() {
        let mut log = FakeLog::new();
        let mut idx = HashIndex::with_capacity(8);
        let n = 10_000u64;
        let mut addr_of = HashMap::new();
        for k in 0..n {
            let a = log.put(k);
            addr_of.insert(k, a);
            idx.upsert(hash_u64(k), a, log.verify(k), log.rehash());
        }
        assert_eq!(idx.len(), n as usize);
        for k in 0..n {
            assert_eq!(
                idx.find(hash_u64(k), log.verify(k)),
                Some(addr_of[&k]),
                "key {k} lost"
            );
        }
    }

    #[test]
    fn retain_drops_invalidated_addresses() {
        let mut log = FakeLog::new();
        let mut idx = HashIndex::new();
        for k in 0..100u64 {
            let a = log.put(k);
            idx.upsert(hash_u64(k), a, log.verify(k), |_| 0);
        }
        // Addresses are 0,8,..; invalidate everything below 400.
        let removed = idx.retain(|addr| addr >= 400);
        assert_eq!(removed, 50);
        assert_eq!(idx.len(), 50);
        let mut seen = 0;
        idx.for_each(|addr| {
            assert!(addr >= 400);
            seen += 1;
        });
        assert_eq!(seen, 50);
    }

    #[test]
    fn clear_empties_everything() {
        let mut log = FakeLog::new();
        let mut idx = HashIndex::with_capacity(4);
        for k in 0..500u64 {
            let a = log.put(k);
            idx.upsert(hash_u64(k), a, log.verify(k), log.rehash());
        }
        idx.clear();
        assert!(idx.is_empty());
        assert_eq!(idx.find(hash_u64(3), log.verify(3)), None);
    }

    #[test]
    fn tag_collisions_are_disambiguated_by_verification() {
        // Force two different keys into colliding tag+bucket by brute
        // force: with a tiny index, bucket collisions are guaranteed; tag
        // collisions are what verification must catch.
        let mut log = FakeLog::new();
        let mut idx = HashIndex::with_capacity(2);
        let keys: Vec<u64> = (0..64).collect();
        for &k in &keys {
            let a = log.put(k);
            idx.upsert(hash_u64(k), a, log.verify(k), log.rehash());
        }
        // Every key resolves to an address holding exactly that key.
        for &k in &keys {
            let addr = idx.find(hash_u64(k), log.verify(k)).unwrap();
            assert_eq!(log.keys[&addr], k);
        }
    }

    #[test]
    fn batched_probes_match_single_probes_under_collisions() {
        // A deliberately tiny index: 2 root buckets for 96 keys forces
        // deep overflow chains and plenty of same-bucket (and occasional
        // same-tag) collisions — exactly what the batched walk must
        // disambiguate through the shared verify closure.
        let mut log = FakeLog::new();
        let mut idx = HashIndex::with_capacity(2);
        let present: Vec<u64> = (0..96).collect();
        for &k in &present {
            let a = log.put(k);
            idx.upsert(hash_u64(k), a, log.verify(k), log.rehash());
        }
        assert!(!idx.overflow.is_empty(), "test must exercise overflow buckets");

        // Probe a mix of present and absent keys, unsorted.
        let probe_keys: Vec<u64> = (0..128).rev().collect();
        let hashes: Vec<u64> = probe_keys.iter().map(|&k| hash_u64(k)).collect();
        let mut out = Vec::new();
        let keys = log.keys.clone();
        idx.find_batch(&hashes, &mut out, |i, addr| keys[&addr] == probe_keys[i]);

        assert_eq!(out.len(), probe_keys.len());
        for (i, &k) in probe_keys.iter().enumerate() {
            assert_eq!(
                out[i],
                idx.find(hash_u64(k), log.verify(k)),
                "batched probe for key {k} diverged from the single probe"
            );
            assert_eq!(out[i].is_some(), k < 96);
        }

        // The memoized-hash contract: probing with the combiner's
        // MSB-forced hash resolves identically (bucket uses low bits, the
        // tag already forces the same top bit).
        let forced: Vec<u64> = hashes.iter().map(|h| h | (1 << 63)).collect();
        let mut out_forced = Vec::new();
        let keys = log.keys.clone();
        idx.find_batch(&forced, &mut out_forced, |i, addr| keys[&addr] == probe_keys[i]);
        assert_eq!(out, out_forced);
    }
}
