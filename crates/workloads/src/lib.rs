#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # slash-workloads — benchmark workload generators (paper §8.1.2)
//!
//! Deterministic, seedable generators for every workload the paper
//! evaluates:
//!
//! * **YSB** — Yahoo! Streaming Benchmark: 78-byte ad events, filter +
//!   projection + per-campaign tumbling count windows.
//! * **NEXMark** — auction platform streams; queries NB7 (windowed max
//!   price over bids, Pareto-skewed keys), NB8 (12 h tumbling join of
//!   auctions and sellers, large tuples), NB11 (session join of bids and
//!   sellers, small tuples).
//! * **CM** — Cluster Monitoring: 64-byte task records with a 2 s tumbling
//!   mean-CPU-per-job aggregation. The Google trace itself is not
//!   redistributable; the generator synthesizes records with the same
//!   schema and cardinalities (substitution documented in DESIGN.md).
//! * **RO** — the paper's self-developed read-only drill-down benchmark:
//!   16-byte records, per-key occurrence counting, uniform keys from a
//!   100 M-wide domain (scaled by configuration).
//!
//! Generators pre-materialize in-memory partitions — the paper's
//! methodology ("we pre-generate the dataset to stream data from main
//! memory") — one partition per executor thread, with **non-disjoint key
//! spaces** across partitions: the same key occurs on every node, which is
//! precisely the situation Slash's shared state is designed for.

pub mod dist;
pub mod spec;
pub mod workloads;

pub use dist::{Pareto, Uniform, Zipf};
pub use spec::{GenConfig, Workload};
pub use workloads::{cm, nb11, nb7, nb8, ro, ro_zipf, ysb, ysb_hot, ysb_zipf, ysb_zipf_keyed};
