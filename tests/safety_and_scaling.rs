//! Safety (property P1), determinism, and scaling-shape tests across the
//! whole stack.

use std::rc::Rc;

use slash::core::{
    AggSpec, QueryPlan, RecordSchema, RunConfig, SinkResult, SlashCluster, StreamDef,
    WindowAssigner,
};
use slash::workloads::{ysb, GenConfig};

fn gen(n: u64, dt: u64, keys: u64, seed: u64) -> Rc<Vec<u8>> {
    let mut buf = Vec::with_capacity((n * 16) as usize);
    for i in 0..n {
        buf.extend_from_slice(&(1 + i * dt).to_le_bytes());
        buf.extend_from_slice(&((i + seed) % keys).to_le_bytes());
    }
    Rc::new(buf)
}

fn count_plan(window: u64) -> QueryPlan {
    QueryPlan::Aggregate {
        input: StreamDef::new(RecordSchema::plain(16)),
        window: WindowAssigner::Tumbling { size: window },
        agg: AggSpec::Count,
    }
}

/// P1: no result at timestamp t may be computed from records with
/// timestamps greater than t. Observable consequence: every window's
/// count is complete — if a window fired early, late-arriving records for
/// it would be lost and totals would not add up (the backend also panics
/// on double triggers).
#[test]
fn p1_no_partial_windows_under_aggressive_epochs() {
    for epoch_bytes in [512u64, 4 * 1024, 1024 * 1024] {
        let mut cfg = RunConfig::new(3, 2);
        cfg.collect_results = true;
        cfg.epoch_bytes = epoch_bytes;
        let parts: Vec<Rc<Vec<u8>>> = (0..6).map(|s| gen(2_000, 3, 16, s)).collect();
        let report = SlashCluster::run(count_plan(500), parts, cfg);
        let total: f64 = report
            .results
            .iter()
            .map(|r| match r {
                SinkResult::Agg { value, .. } => *value,
                _ => 0.0,
            })
            .sum();
        assert_eq!(
            total as u64, 12_000,
            "lost or duplicated records at epoch_bytes={epoch_bytes}"
        );
        // Every (window,key) fires exactly once.
        let mut seen = std::collections::HashSet::new();
        for r in &report.results {
            if let SinkResult::Agg { window_id, key, .. } = r {
                assert!(seen.insert((*window_id, *key)));
            }
        }
    }
}

/// Tiny delta channels (2 credits, 256-byte buffers) force the epoch
/// protocol through heavy chunking and credit stalls; results must be
/// unaffected.
#[test]
fn epoch_protocol_survives_tiny_channels() {
    let mut cfg = RunConfig::new(2, 2);
    cfg.collect_results = true;
    cfg.epoch_bytes = 2 * 1024;
    cfg.channel = slash::net::ChannelConfig {
        credits: 2,
        buffer_size: 256,
        credit_batch: 1,
    };
    let parts: Vec<Rc<Vec<u8>>> = (0..4).map(|s| gen(1_500, 2, 32, s)).collect();
    let report = SlashCluster::run(count_plan(400), parts, cfg);
    let total: f64 = report
        .results
        .iter()
        .map(|r| match r {
            SinkResult::Agg { value, .. } => *value,
            _ => 0.0,
        })
        .sum();
    assert_eq!(total as u64, 6_000);
}

/// Virtual time makes runs bit-reproducible, including all counters.
#[test]
fn full_runs_are_deterministic() {
    let run = || {
        let w = ysb(&GenConfig::new(4, 3_000));
        let report = SlashCluster::run(w.plan, w.partitions, RunConfig::new(2, 2));
        (
            report.records,
            report.emitted,
            report.processing_time,
            report.completion_time,
            report.net_tx_bytes,
            report.metrics.instructions,
        )
    };
    assert_eq!(run(), run());
}

/// Weak scaling: doubling nodes with fixed per-node input should roughly
/// double Slash's throughput (Fig. 6's headline scaling claim).
#[test]
fn slash_weak_scaling_is_nearly_linear() {
    let tp = |nodes: usize| {
        let w = ysb(&GenConfig::new(nodes * 2, 10_000));
        SlashCluster::run(w.plan, w.partitions, RunConfig::new(nodes, 2)).throughput()
    };
    let t2 = tp(2);
    let t4 = tp(4);
    let t8 = tp(8);
    assert!(t4 > 1.6 * t2, "2->4 nodes: {t2:.3e} -> {t4:.3e}");
    assert!(t8 > 1.6 * t4, "4->8 nodes: {t4:.3e} -> {t8:.3e}");
}

/// Sliding windows via slices: counts over overlapping windows must each
/// cover the full window span (slice merging at trigger time).
#[test]
fn sliding_windows_merge_slices() {
    let plan = QueryPlan::Aggregate {
        input: StreamDef::new(RecordSchema::plain(16)),
        window: WindowAssigner::Sliding {
            size: 300,
            slide: 100,
        },
        agg: AggSpec::Count,
    };
    let mut cfg = RunConfig::new(1, 1);
    cfg.collect_results = true;
    // One record per ms, single key, ts 1..=1200.
    let report = SlashCluster::run(plan, vec![gen(1200, 1, 1, 0)], cfg);
    // Interior windows hold exactly `size` records.
    let mut interior = 0;
    for r in &report.results {
        if let SinkResult::Agg {
            window_id, value, ..
        } = r
        {
            if (2..=8).contains(window_id) {
                assert_eq!(*value as u64, 300, "window {window_id}");
                interior += 1;
            }
        }
    }
    assert!(interior >= 5, "expected interior sliding windows");
}

/// Session-bucket windows: records within the same gap-sized bucket join
/// the same session; every record is attributed exactly once.
#[test]
fn session_windows_count_everything_once() {
    let plan = QueryPlan::Aggregate {
        input: StreamDef::new(RecordSchema::plain(16)),
        window: WindowAssigner::Session { gap: 250 },
        agg: AggSpec::Count,
    };
    let mut cfg = RunConfig::new(2, 1);
    cfg.collect_results = true;
    let parts = vec![gen(1_000, 4, 8, 0), gen(1_000, 4, 8, 3)];
    let report = SlashCluster::run(plan, parts, cfg);
    let total: f64 = report
        .results
        .iter()
        .map(|r| match r {
            SinkResult::Agg { value, .. } => *value,
            _ => 0.0,
        })
        .sum();
    assert_eq!(total as u64, 2_000);
}

/// The run must also work with a single node and a single worker — the
/// degenerate cluster is the scale-up engine.
#[test]
fn single_node_degenerates_to_scale_up() {
    let mut cfg = RunConfig::new(1, 1);
    cfg.collect_results = true;
    let report = SlashCluster::run(count_plan(100), vec![gen(1_000, 1, 4, 0)], cfg);
    assert_eq!(report.records, 1_000);
    assert_eq!(report.net_tx_bytes, 0, "no fabric traffic on one node");
}
