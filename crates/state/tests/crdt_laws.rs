//! Property tests of the CRDT algebraic laws (paper §5.1).
//!
//! The epoch protocol's convergence proof rests on each state's merge
//! being a commutative, associative operation with the init value as
//! identity. These tests check the laws for every shipped CRDT over
//! arbitrary update sequences, driven by seeded `DetRng` loops so the
//! suite runs fully offline and every failure reproduces from its seed.

use slash_desim::DetRng;
use slash_state::descriptor::StateDescriptor;
use slash_state::{CounterCrdt, MaxCrdt, MeanCrdt, MinCrdt, SumF64Crdt};

fn zeroed(d: &StateDescriptor) -> Vec<u8> {
    let mut v = vec![0u8; d.fixed_size()];
    (d.init)(&mut v);
    v
}

/// Check merge laws for a descriptor given three arbitrary states.
fn check_laws(d: &StateDescriptor, a: &[u8], b: &[u8], c: &[u8], approx: bool) {
    let eq = |x: &[u8], y: &[u8]| {
        if approx {
            // f64 payloads: compare numerically to tolerate association
            // rounding.
            let fx = f64::from_le_bytes(x[..8].try_into().unwrap());
            let fy = f64::from_le_bytes(y[..8].try_into().unwrap());
            (fx - fy).abs() <= 1e-9 * fx.abs().max(fy.abs()).max(1.0) && x[8..] == y[8..]
        } else {
            x == y
        }
    };

    // Commutativity: a ⊔ b == b ⊔ a.
    let mut ab = a.to_vec();
    (d.merge)(&mut ab, b);
    let mut ba = b.to_vec();
    (d.merge)(&mut ba, a);
    assert!(eq(&ab, &ba), "merge not commutative: {ab:?} vs {ba:?}");

    // Associativity: (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c).
    let mut ab_c = ab.clone();
    (d.merge)(&mut ab_c, c);
    let mut bc = b.to_vec();
    (d.merge)(&mut bc, c);
    let mut a_bc = a.to_vec();
    (d.merge)(&mut a_bc, &bc);
    assert!(eq(&ab_c, &a_bc), "merge not associative");

    // Identity: a ⊔ 0 == a.
    let mut a0 = a.to_vec();
    (d.merge)(&mut a0, &zeroed(d));
    assert!(eq(&a0, a), "init is not the merge identity");
}

/// Uniform f64 in `[lo, hi)`.
fn f64_in(rng: &mut DetRng, lo: f64, hi: f64) -> f64 {
    lo + rng.next_f64() * (hi - lo)
}

const CASES: u64 = 256;

#[test]
fn counter_laws() {
    let d = CounterCrdt::descriptor();
    for seed in 0..CASES {
        let mut rng = DetRng::new(0x11 ^ seed.wrapping_mul(0x9E3779B9));
        let mk = |rng: &mut DetRng| {
            let mut v = zeroed(&d);
            CounterCrdt::add(&mut v, rng.next_below(1 << 40));
            v
        };
        let (a, b, c) = (mk(&mut rng), mk(&mut rng), mk(&mut rng));
        check_laws(&d, &a, &b, &c, false);
    }
}

#[test]
fn sum_f64_laws() {
    let d = SumF64Crdt::descriptor();
    for seed in 0..CASES {
        let mut rng = DetRng::new(0x22 ^ seed.wrapping_mul(0x9E3779B9));
        let mk = |rng: &mut DetRng| {
            let mut v = zeroed(&d);
            SumF64Crdt::add(&mut v, f64_in(rng, -1e12, 1e12));
            v
        };
        let (a, b, c) = (mk(&mut rng), mk(&mut rng), mk(&mut rng));
        check_laws(&d, &a, &b, &c, true);
    }
}

#[test]
fn max_laws() {
    let d = MaxCrdt::descriptor();
    for seed in 0..CASES {
        let mut rng = DetRng::new(0x33 ^ seed.wrapping_mul(0x9E3779B9));
        let mk = |rng: &mut DetRng| {
            let mut v = zeroed(&d);
            MaxCrdt::update(&mut v, rng.next_u64());
            v
        };
        let (a, b, c) = (mk(&mut rng), mk(&mut rng), mk(&mut rng));
        check_laws(&d, &a, &b, &c, false);
    }
}

#[test]
fn min_laws() {
    let d = MinCrdt::descriptor();
    for seed in 0..CASES {
        let mut rng = DetRng::new(0x44 ^ seed.wrapping_mul(0x9E3779B9));
        let mk = |rng: &mut DetRng| {
            let mut v = zeroed(&d);
            MinCrdt::update(&mut v, rng.next_u64());
            v
        };
        let (a, b, c) = (mk(&mut rng), mk(&mut rng), mk(&mut rng));
        check_laws(&d, &a, &b, &c, false);
    }
}

#[test]
fn mean_laws() {
    let d = MeanCrdt::descriptor();
    for seed in 0..CASES {
        let mut rng = DetRng::new(0x55 ^ seed.wrapping_mul(0x9E3779B9));
        let mk = |rng: &mut DetRng| {
            let mut v = zeroed(&d);
            let n_obs = rng.next_below(8);
            for _ in 0..n_obs {
                MeanCrdt::observe(&mut v, f64_in(rng, -1e6, 1e6));
            }
            v
        };
        let (a, b, c) = (mk(&mut rng), mk(&mut rng), mk(&mut rng));
        check_laws(&d, &a, &b, &c, true);
    }
}

/// Merging k partial counters in any grouping equals a sequential fold —
/// the late-merge correctness statement (property P2) at the CRDT level.
#[test]
fn partials_merge_to_sequential_total() {
    let d = CounterCrdt::descriptor();
    for seed in 0..CASES {
        let mut rng = DetRng::new(0x66 ^ seed.wrapping_mul(0x9E3779B9));
        let n_updates = 1 + rng.next_below(99) as usize;
        let mut partials: Vec<Vec<u8>> = (0..4).map(|_| zeroed(&d)).collect();
        let mut sequential: u64 = 0;
        for _ in 0..n_updates {
            let who = rng.next_below(4) as usize;
            let x = 1 + rng.next_below(999);
            CounterCrdt::add(&mut partials[who], x);
            sequential += x;
        }
        let mut acc = zeroed(&d);
        for p in &partials {
            (d.merge)(&mut acc, p);
        }
        assert_eq!(CounterCrdt::get(&acc), sequential, "seed {seed}");
    }
}
