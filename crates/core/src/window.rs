//! Window assignment and triggering (paper §5.2).
//!
//! Slash executes windowed operators as bucket/slice assigners feeding the
//! SSB plus an event-time trigger gated on the vector clock. Window ids are
//! the high half of the SSB state key; leaders trigger a window once the
//! vector clock's minimum passes its end (property P1).

/// Event-time window assigner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowAssigner {
    /// Tumbling windows of `size` event-time units: window `k` covers
    /// `[k·size, (k+1)·size)`.
    Tumbling {
        /// Window size.
        size: u64,
    },
    /// Sliding windows of `size` sliding by `slide` (`size % slide == 0`),
    /// realized by general slicing: records land in slices of `slide`
    /// units and a window is the union of `size / slide` slices.
    Sliding {
        /// Window size.
        size: u64,
        /// Slide interval.
        slide: u64,
    },
    /// Session windows with inactivity `gap`, approximated by gap-sized
    /// event-time buckets: records within the same bucket (and thus within
    /// `gap` of each other) share a session. This preserves the state
    /// access pattern (append + per-key trigger) the paper's NB11
    /// experiment measures; the approximation is documented in DESIGN.md.
    Session {
        /// Inactivity gap.
        gap: u64,
    },
}

impl WindowAssigner {
    /// The slice/bucket granularity records are assigned by.
    #[inline]
    pub fn granule(&self) -> u64 {
        match *self {
            WindowAssigner::Tumbling { size } => size,
            WindowAssigner::Sliding { slide, .. } => slide,
            WindowAssigner::Session { gap } => gap,
        }
    }

    /// The bucket (window or slice) id a timestamp falls into.
    #[inline]
    pub fn assign(&self, ts: u64) -> u64 {
        ts / self.granule()
    }

    /// End timestamp (exclusive) of the *window* that bucket `wid`
    /// completes. For sliding windows a slice is shared by several
    /// windows; the slice is safe to retire once the **last** window that
    /// contains it closes.
    #[inline]
    pub fn retire_end(&self, wid: u64) -> u64 {
        match *self {
            WindowAssigner::Tumbling { size } => (wid + 1) * size,
            // Slice wid covers [wid·slide, (wid+1)·slide); the last window
            // containing it starts at wid·slide and ends size later.
            WindowAssigner::Sliding { size, slide } => wid * slide + size,
            WindowAssigner::Session { gap } => (wid + 2) * gap,
        }
    }

    /// Whether bucket `wid` may trigger under global low watermark `wm`.
    #[inline]
    pub fn ready(&self, wid: u64, wm: u64) -> bool {
        wm >= self.retire_end(wid)
    }

    /// Number of slices per window (1 except for sliding windows).
    pub fn slices_per_window(&self) -> u64 {
        match *self {
            WindowAssigner::Sliding { size, slide } => {
                debug_assert_eq!(size % slide, 0, "size must be a multiple of slide");
                size / slide
            }
            _ => 1,
        }
    }
}

/// Division-free bucket assignment for (mostly) monotone timestamp
/// streams. Caches the last bucket's `[lo, hi)` timestamp range, so
/// consecutive records in the same bucket assign with two compares
/// instead of a 64-bit divide — the common case on the hot path, where
/// thousands of records share a window. Range misses fall back to the
/// divide, so results are exact for *any* input order.
#[derive(Debug, Clone, Copy)]
pub struct WindowMemo {
    granule: u64,
    lo: u64,
    hi: u64,
    id: u64,
}

impl WindowMemo {
    /// Memoized assigner for `w`'s granule. Starts with an empty cached
    /// range, so the first record always takes the divide.
    pub fn new(w: WindowAssigner) -> Self {
        WindowMemo {
            granule: w.granule().max(1),
            lo: 1,
            hi: 0,
            id: 0,
        }
    }

    /// The bucket id `ts` falls into; identical to
    /// [`WindowAssigner::assign`].
    #[inline]
    pub fn assign(&mut self, ts: u64) -> u64 {
        if ts >= self.lo && ts < self.hi {
            return self.id;
        }
        let id = ts / self.granule;
        self.lo = id * self.granule;
        // Saturation only matters for buckets ending past u64::MAX
        // (RO's unbounded window); those timestamps just re-divide.
        self.hi = self.lo.saturating_add(self.granule);
        self.id = id;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memo_matches_assign_for_any_order() {
        for w in [
            WindowAssigner::Tumbling { size: 100 },
            WindowAssigner::Sliding {
                size: 300,
                slide: 100,
            },
            WindowAssigner::Session { gap: 50 },
            WindowAssigner::Tumbling { size: u64::MAX / 4 },
        ] {
            let mut memo = WindowMemo::new(w);
            // Monotone, repeated, and backwards timestamps all agree.
            for ts in [0, 1, 99, 99, 100, 250, 249, 1000, 3, u64::MAX - 1] {
                assert_eq!(memo.assign(ts), w.assign(ts), "{w:?} ts={ts}");
            }
        }
    }

    #[test]
    fn tumbling_assignment_and_trigger() {
        let w = WindowAssigner::Tumbling { size: 100 };
        assert_eq!(w.assign(0), 0);
        assert_eq!(w.assign(99), 0);
        assert_eq!(w.assign(100), 1);
        assert_eq!(w.retire_end(0), 100);
        assert!(!w.ready(0, 99));
        assert!(w.ready(0, 100));
        assert_eq!(w.slices_per_window(), 1);
    }

    #[test]
    fn sliding_slices_retire_with_their_last_window() {
        let w = WindowAssigner::Sliding {
            size: 300,
            slide: 100,
        };
        assert_eq!(w.assign(250), 2);
        assert_eq!(w.slices_per_window(), 3);
        // Slice 2 ([200, 300)) is part of windows [0,300), [100,400),
        // [200,500): it can only retire at 500.
        assert_eq!(w.retire_end(2), 500);
        assert!(!w.ready(2, 499));
        assert!(w.ready(2, 500));
    }

    #[test]
    fn session_buckets_wait_an_extra_gap() {
        let w = WindowAssigner::Session { gap: 50 };
        assert_eq!(w.assign(120), 2);
        // Bucket 2 covers [100,150); a session touching it could extend to
        // just under 200, so it triggers at watermark 200.
        assert_eq!(w.retire_end(2), 200);
        assert!(w.ready(2, 200));
        assert!(!w.ready(2, 199));
    }
}
