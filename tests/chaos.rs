//! Chaos golden tests: fault injection and recovery must be exactly as
//! deterministic as the healthy engine. Two runs with the same seed and
//! the same [`FaultPlan`] share every virtual-time decision — injection,
//! detection, promotion, replay — so their exported traces must be
//! *byte-identical* and their post-recovery state digests equal. And a
//! crash–restore–replay run must converge to exactly the state of the
//! fault-free run: the CRDT merges plus epoch-id dedup make replayed
//! deltas idempotent, so recovery is exact, not best-effort.

use slash::chaos::{ChaosConfig, FaultPlan, FtConfig};
use slash::core::{RecoveryAction, RecoveryReport, RunConfig, RunReport, SlashCluster};
use slash::desim::SimTime;
use slash::obs::Obs;
use slash::workloads::{ysb, GenConfig};

const NODES: usize = 3;

fn run_config_n(nodes: usize, workers_per_node: usize) -> RunConfig {
    let mut cfg = RunConfig::new(nodes, workers_per_node);
    cfg.collect_results = true;
    cfg.epoch_bytes = 16 * 1024;
    cfg
}

fn chaos_config_copies(plan: FaultPlan, ckpt_copies: usize) -> ChaosConfig {
    ChaosConfig {
        plan,
        ft: FtConfig {
            detect_timeout: SimTime::from_micros(300),
            ckpt_max_chunk: 16 * 1024,
            ckpt_copies,
        },
        pre_split: Vec::new(),
    }
}

fn chaos_config(plan: FaultPlan) -> ChaosConfig {
    chaos_config_copies(plan, 2)
}

fn chaos_run_cfg(
    nodes: usize,
    workers_per_node: usize,
    chaos: &ChaosConfig,
    obs: Obs,
) -> (RunReport, RecoveryReport) {
    let w = ysb(&GenConfig::new(nodes * workers_per_node, 20_000));
    SlashCluster::run_chaos(
        w.plan,
        w.partitions,
        run_config_n(nodes, workers_per_node),
        chaos,
        obs,
    )
}

fn chaos_run(plan: &FaultPlan, obs: Obs) -> (RunReport, RecoveryReport) {
    chaos_run_cfg(NODES, 1, &chaos_config(plan.clone()), obs)
}

/// Collect the hosts of all `Promoted` events, keyed by crashed node.
fn promotions(rec: &RecoveryReport) -> Vec<(usize, usize, u32)> {
    rec.events
        .iter()
        .filter_map(|e| match e.action {
            RecoveryAction::Promoted { host, restarts } => Some((e.node, host, restarts)),
            RecoveryAction::ChannelsReset { .. } => None,
        })
        .collect()
}

/// Assert the faulted run converged bit-exactly to the reference run.
fn assert_exact(
    (report, rec): &(RunReport, RecoveryReport),
    (base, base_rec): &(RunReport, RecoveryReport),
) {
    assert_eq!(report.records, base.records, "records lost or duplicated");
    assert_eq!(
        rec.results_digest, base_rec.results_digest,
        "window results diverged from the no-fault run"
    );
    assert_eq!(
        rec.state_digests, base_rec.state_digests,
        "post-recovery state diverged from the no-fault run"
    );
}

#[test]
fn same_seed_same_fault_plan_is_byte_identical() {
    let plan = FaultPlan::new().crash(SimTime::from_micros(200), 1);
    let run = || {
        let obs = Obs::enabled(16_384);
        let (report, rec) = chaos_run(&plan, obs.clone());
        (obs.chrome_trace_json(), report.records, rec)
    };
    let (json_a, records_a, rec_a) = run();
    let (json_b, records_b, rec_b) = run();
    assert_eq!(records_a, records_b);
    assert_eq!(
        rec_a.state_digests, rec_b.state_digests,
        "post-recovery state digests must be identical"
    );
    assert_eq!(rec_a.results_digest, rec_b.results_digest);
    assert_eq!(rec_a.events.len(), rec_b.events.len());
    assert_eq!(json_a, json_b, "chaos trace must be byte-identical");
    // The outage window is visible in the trace: injected fault events and
    // the recovery span both ride the fault category.
    assert!(json_a.contains("\"cat\":\"fault\""), "fault events traced");
    assert!(json_a.contains("\"name\":\"recovery\""), "recovery span traced");
}

#[test]
fn seeded_fault_plans_are_reproducible() {
    let within = SimTime::from_millis(2);
    let a = FaultPlan::seeded(42, NODES, 4, within);
    let b = FaultPlan::seeded(42, NODES, 4, within);
    assert_eq!(a, b, "same seed must build the same plan");
    assert_eq!(a.digest(), b.digest());
    let c = FaultPlan::seeded(43, NODES, 4, within);
    assert_ne!(a.digest(), c.digest(), "different seeds must diverge");
    assert_eq!(a.events().len(), 4);
}

/// The epoch-convergence-style exactness check: crash a leader mid-run,
/// restore from the durable epoch-aligned checkpoint, replay deltas from
/// the surviving helpers — and end bit-exactly where the no-fault run
/// ends. Replayed epochs are deduplicated by id and merged through CRDTs,
/// so nothing is lost and nothing is double-counted.
#[test]
fn crash_restore_replay_converges_to_no_fault_state() {
    let (base_report, base_rec) = chaos_run(&FaultPlan::new(), Obs::disabled());
    assert!(base_rec.events.is_empty(), "no-fault baseline repairs nothing");
    assert!(base_rec.checkpoints_durable > 0, "checkpoints must ship");
    let crash_at = SimTime::from_micros(200);
    assert!(
        base_report.completion_time > crash_at,
        "fault must land mid-run, not after completion"
    );

    let plan = FaultPlan::new().crash(crash_at, 1);
    let (report, rec) = chaos_run(&plan, Obs::disabled());
    let promoted = rec
        .events
        .iter()
        .find(|e| matches!(e.action, RecoveryAction::Promoted { .. }))
        .expect("the crash must be detected and repaired by promotion");
    assert_eq!(promoted.fault, "node-crash");
    assert_eq!(promoted.node, 1);
    assert!(promoted.time_to_recover() > SimTime::ZERO);

    // Exactness: same records processed, same per-window results, same
    // final primary state on every logical node.
    assert_eq!(report.records, base_report.records, "records lost or duplicated");
    assert_eq!(
        rec.results_digest, base_rec.results_digest,
        "window results diverged from the no-fault run"
    );
    assert_eq!(
        rec.state_digests, base_rec.state_digests,
        "post-recovery state diverged from the no-fault run"
    );
}

// ---------------------------------------------------------------------------
// Cascading-fault matrix: compound faults must converge exactly too.
// ---------------------------------------------------------------------------

/// Two nodes die on the same virtual nanosecond in a 4-node cluster. Both
/// partitions must be promoted onto survivors — each promotion installing
/// retaining endpoints toward the *other* dead peer until that peer's own
/// promotion commits and swaps them out — and the result must still be
/// bit-exact against the fault-free run.
#[test]
fn concurrent_crashes_on_distinct_nodes_converge_exactly() {
    let nodes = 4;
    let base = chaos_run_cfg(nodes, 1, &chaos_config(FaultPlan::new()), Obs::disabled());
    let crash_at = SimTime::from_micros(200);
    assert!(base.0.completion_time > crash_at, "faults must land mid-run");

    let plan = FaultPlan::new().concurrent(crash_at, &[1, 2]);
    let out = chaos_run_cfg(nodes, 1, &chaos_config(plan), Obs::disabled());

    let promoted = promotions(&out.1);
    let victims: Vec<usize> = promoted.iter().map(|&(v, _, _)| v).collect();
    assert!(victims.contains(&1) && victims.contains(&2), "both crashed partitions promoted: {promoted:?}");
    for &(victim, host, _) in &promoted {
        assert!(host != 1 && host != 2, "node {victim} promoted onto dead host {host}");
    }
    assert_exact(&out, &base);
}

/// The crashed node's designated buddy is itself dead. With a single
/// checkpoint copy, node 1 ships to its ring buddy (node 2); crashing node
/// 2 first invalidates that copy, forcing the shipper to re-select a new
/// buddy (node 0) and re-ship — or recovery to fall back to an older
/// surviving copy. Either way node 1's later crash must still promote and
/// converge exactly.
#[test]
fn buddy_crash_forces_reselection_and_owner_crash_still_converges() {
    let base = chaos_run(&FaultPlan::new(), Obs::disabled());

    let plan = FaultPlan::new()
        .crash(SimTime::from_micros(150), 2)
        .crash(SimTime::from_micros(900), 1);
    let out = chaos_run_cfg(NODES, 1, &chaos_config_copies(plan, 1), Obs::disabled());

    let promoted = promotions(&out.1);
    let victims: Vec<usize> = promoted.iter().map(|&(v, _, _)| v).collect();
    assert!(victims.contains(&2), "buddy crash repaired: {promoted:?}");
    assert!(victims.contains(&1), "owner crash repaired: {promoted:?}");
    let (_, host1, _) = promoted.iter().find(|&&(v, _, _)| v == 1).unwrap();
    assert_eq!(*host1, 0, "node 1 must promote onto the only fully-alive node");
    assert_exact(&out, &base);
}

/// A second crash lands while the first promotion is mid-flight: the
/// promotion's restore/reconnect host dies under it. The state machine
/// must restart against a re-selected host and copy (surfaced in the
/// `restarts` counter) and the run must still converge exactly.
#[test]
fn crash_during_recovery_restarts_promotion_and_converges() {
    let base = chaos_run(&FaultPlan::new(), Obs::disabled());

    // Probe pass: time a plain single-crash promotion with this seed so
    // the second fault can be aimed mid-recovery with virtual-time
    // precision (determinism makes the probe exact, not approximate).
    let crash_at = SimTime::from_micros(200);
    let probe = chaos_run(&FaultPlan::new().crash(crash_at, 1), Obs::disabled());
    let evt = probe
        .1
        .events
        .iter()
        .find(|e| matches!(e.action, RecoveryAction::Promoted { .. }))
        .expect("probe promotion");
    let (_, probe_host, _) = promotions(&probe.1)[0];
    let midpoint = SimTime::from_nanos(
        (evt.detected_at.as_nanos() + evt.recovered_at.as_nanos()) / 2,
    );
    assert!(midpoint > crash_at);

    // Real pass: crash the in-flight promotion's host at the midpoint.
    let plan = FaultPlan::new().during_recovery(crash_at, 1, midpoint - crash_at, probe_host);
    let out = chaos_run(&plan, Obs::disabled());

    let promoted = promotions(&out.1);
    let (_, final_host, restarts) = *promoted
        .iter()
        .find(|&&(v, _, _)| v == 1)
        .expect("node 1 must still be promoted");
    assert!(restarts >= 1, "promotion must have been interrupted and restarted");
    assert_ne!(final_host, probe_host, "restart must re-select a live host");
    assert!(promoted.iter().any(|&(v, _, _)| v == probe_host), "second victim repaired too");
    assert_exact(&out, &base);
}

/// Crash under `workers_per_node = 2`: promotion must resurrect *both* of
/// the dead node's worker partitions, seek each source to its checkpointed
/// byte position, and re-establish every per-worker channel — exactness
/// over the union of both workers' streams.
#[test]
fn multi_worker_promotion_resurrects_all_partitions_exactly() {
    let wpn = 2;
    let base = chaos_run_cfg(NODES, wpn, &chaos_config(FaultPlan::new()), Obs::disabled());
    assert!(base.1.checkpoints_durable > 0);

    let plan = FaultPlan::new().crash(SimTime::from_micros(200), 1);
    let out = chaos_run_cfg(NODES, wpn, &chaos_config(plan), Obs::disabled());

    let promoted = promotions(&out.1);
    assert!(promoted.iter().any(|&(v, _, _)| v == 1), "crash repaired: {promoted:?}");
    assert_exact(&out, &base);
}

/// Golden determinism for compound plans: same seed + same cascading
/// fault plan ⇒ byte-identical traces and equal digests, exactly like the
/// single-fault golden test.
#[test]
fn compound_fault_plan_same_seed_is_byte_identical() {
    let nodes = 4;
    let plan = FaultPlan::new()
        .concurrent(SimTime::from_micros(200), &[1, 2])
        .crash(SimTime::from_micros(900), 3);
    let run = || {
        let obs = Obs::enabled(16_384);
        let out = chaos_run_cfg(nodes, 1, &chaos_config(plan.clone()), obs.clone());
        (obs.chrome_trace_json(), out)
    };
    let (json_a, out_a) = run();
    let (json_b, out_b) = run();
    assert_eq!(out_a.0.records, out_b.0.records);
    assert_eq!(out_a.1.state_digests, out_b.1.state_digests);
    assert_eq!(out_a.1.results_digest, out_b.1.results_digest);
    assert_eq!(out_a.1.events.len(), out_b.1.events.len());
    assert_eq!(json_a, json_b, "cascading-fault trace must be byte-identical");
}

// ---------------------------------------------------------------------------
// Planned-handoff × crash interactions (DESIGN.md §18 interaction matrix).
// ---------------------------------------------------------------------------

use slash::core::{ElasticConfig, MigrationCmd, RescaleReport, ScriptedDirector};

fn elastic_run(
    nodes: usize,
    hosts: usize,
    script: Vec<(SimTime, MigrationCmd)>,
    plan: FaultPlan,
) -> (RunReport, RecoveryReport, RescaleReport) {
    let w = ysb(&GenConfig::new(nodes, 60_000));
    let mut director = ScriptedDirector::new(script);
    SlashCluster::run_elastic(
        w.plan,
        w.partitions,
        run_config_n(nodes, 1),
        &chaos_config(plan),
        &ElasticConfig::packed(nodes, hosts),
        &mut director,
        Obs::disabled(),
    )
}

/// The migration target dies mid-handoff. The plan must abort (or fall
/// back to a self-reinstall on the source host), the source must keep
/// leadership — partition and records intact — and the run must still
/// converge bit-exactly to the no-fault elastic run. No promotion may
/// fire: nothing actually died that hosted a partition.
#[test]
fn target_crash_mid_handoff_aborts_without_loss() {
    let (base, base_rec, _) = elastic_run(4, 2, vec![], FaultPlan::new());
    let crash_at = SimTime::from_micros(500);
    assert!(base.completion_time > crash_at, "fault must land mid-run");

    // Partition 2 lives on host 0 in packed(4, 2); host 2 is parked.
    let script = vec![(
        SimTime::from_micros(400),
        MigrationCmd { partition: 2, to_host: 2 },
    )];
    let plan = FaultPlan::new().crash(crash_at, 2);
    let (report, rec, rescale) = elastic_run(4, 2, script, plan);

    let aborted: Vec<_> = rescale.migrations.iter().filter(|m| m.aborted).collect();
    assert_eq!(aborted.len(), 1, "handoff must abort: {:?}", rescale.migrations);
    assert_eq!(aborted[0].partition, 2);
    assert_eq!(
        aborted[0].to_host, aborted[0].from_host,
        "source keeps (or re-installs) leadership on the source host"
    );
    assert!(
        promotions(&rec).is_empty(),
        "a dead parked target must not trigger promotion: {:?}",
        rec.events
    );
    assert_eq!(report.records, base.records, "no record lost to the abort");
    assert_eq!(rec.results_digest, base_rec.results_digest);
    assert_eq!(rec.state_digests, base_rec.state_digests);
}

/// The migration *source* dies mid-handoff, killing both partitions it
/// hosts (packed topology). The handoff plan is void; the ordinary §15
/// crash machinery must take over — buddy promotion from durable copies
/// for both co-located partitions — and the run must still converge
/// exactly.
#[test]
fn source_crash_mid_handoff_falls_back_to_buddy_promotion() {
    let (base, base_rec, _) = elastic_run(4, 2, vec![], FaultPlan::new());
    let crash_at = SimTime::from_micros(500);
    assert!(base.completion_time > crash_at, "fault must land mid-run");

    // Partition 2's leadership is mid-flight from host 0 to parked host
    // 2 when host 0 (also hosting partition 0) dies.
    let script = vec![(
        SimTime::from_micros(400),
        MigrationCmd { partition: 2, to_host: 2 },
    )];
    let plan = FaultPlan::new().crash(crash_at, 0);
    let (report, rec, rescale) = elastic_run(4, 2, script, plan);

    assert!(
        rescale.migrations.iter().any(|m| m.partition == 2 && m.aborted),
        "the in-flight plan must be recorded as aborted: {:?}",
        rescale.migrations
    );
    let promoted: Vec<usize> = promotions(&rec).iter().map(|&(n, _, _)| n).collect();
    assert!(
        promoted.contains(&0) && promoted.contains(&2),
        "both co-located partitions must be promoted: {:?}",
        rec.events
    );
    assert_eq!(report.records, base.records, "exactly-once across the fallback");
    assert_eq!(rec.results_digest, base_rec.results_digest);
    assert_eq!(rec.state_digests, base_rec.state_digests);
}

/// Elastic golden determinism: the full stack — packed topology, a
/// scripted migration, a mid-run crash — replayed twice must be
/// byte-identical in every observable.
#[test]
fn elastic_chaos_runs_are_deterministic() {
    let go = || {
        let script = vec![(
            SimTime::from_micros(400),
            MigrationCmd { partition: 2, to_host: 2 },
        )];
        let plan = FaultPlan::new().crash(SimTime::from_micros(700), 1);
        let (report, rec, rescale) = elastic_run(4, 2, script, plan);
        (
            report.records,
            report.completion_time,
            rec.results_digest,
            rec.state_digests.clone(),
            rescale.migrations.len(),
            rescale.max_stall(),
            rescale.peak_hosts,
        )
    };
    assert_eq!(go(), go(), "same script + same faults => identical run");
}
