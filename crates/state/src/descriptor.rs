//! State descriptors: how a piece of operator state behaves as a CRDT.

/// Whether values are fixed-size (in-place read-modify-write, non-holistic
/// aggregations) or appended element lists (holistic operators like joins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    /// Fixed-size value updated in place. Merging uses the descriptor's
    /// CRDT merge function.
    Fixed {
        /// Encoded value size in bytes.
        size: usize,
    },
    /// Per-key multiset of elements; updates append, merging concatenates
    /// (the join-semilattice of sets under union, paper §5.1).
    Appended,
}

/// Describes one operator state: its value layout and CRDT laws.
///
/// The function pointers keep descriptors `Copy` and dispatch-cheap: they
/// are consulted once per record on the hot path.
#[derive(Clone, Copy)]
pub struct StateDescriptor {
    /// Value layout.
    pub kind: ValueKind,
    /// Write the CRDT zero value (only meaningful for `Fixed`).
    pub init: fn(&mut [u8]),
    /// CRDT merge: fold `src` into `dst`. Must be commutative and
    /// associative with `init` as identity (property-tested per CRDT).
    pub merge: fn(dst: &mut [u8], src: &[u8]),
    /// Whether batch-local pre-aggregation (write combining) preserves
    /// bit-exact results. True only when regrouping updates through `merge`
    /// is *exactly* associative — integer and lattice CRDTs. Float-summing
    /// CRDTs stay per-record: IEEE 754 addition is not associative, and the
    /// engine promises combiner-on/off runs are bit-identical.
    pub combinable: bool,
}

impl StateDescriptor {
    /// Encoded value size for fixed-kind state. Appended state has no
    /// fixed size (entries carry their own lengths) and reports 0, so
    /// byte-accounting callers charge only per-entry overhead for it.
    pub fn fixed_size(&self) -> usize {
        match self.kind {
            ValueKind::Fixed { size } => size,
            ValueKind::Appended => 0,
        }
    }

    /// Whether this state is holistic (appended).
    pub fn is_appended(&self) -> bool {
        matches!(self.kind, ValueKind::Appended)
    }
}

impl std::fmt::Debug for StateDescriptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateDescriptor")
            .field("kind", &self.kind)
            .finish()
    }
}

fn noop_init(_: &mut [u8]) {}
fn noop_merge(_: &mut [u8], _: &[u8]) {}

/// Descriptor for holistic (appended) state: merging is concatenation,
/// performed structurally by the backend, so the function hooks are no-ops.
pub fn appended_descriptor() -> StateDescriptor {
    StateDescriptor {
        kind: ValueKind::Appended,
        init: noop_init,
        merge: noop_merge,
        combinable: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_size_accessor() {
        let d = StateDescriptor {
            kind: ValueKind::Fixed { size: 8 },
            init: noop_init,
            merge: noop_merge,
            combinable: true,
        };
        assert_eq!(d.fixed_size(), 8);
        assert!(!d.is_appended());
        assert!(appended_descriptor().is_appended());
    }

    #[test]
    fn appended_has_no_fixed_size() {
        assert_eq!(appended_descriptor().fixed_size(), 0);
    }
}
