//! Fault-tolerant execution: checkpointing, failure detection, and
//! epoch-aligned recovery.
//!
//! The fault-free engine ([`SlashCluster::run`]) assumes a perfect
//! fabric. [`SlashCluster::run_chaos`] drops that assumption: it arms a
//! deterministic [`FaultPlan`] against the simulated fabric and layers a
//! recovery protocol on top of the epoch coherence machinery:
//!
//! * **Checkpoints.** At every epoch close a node captures its primary
//!   partition snapshot, vector clock, per-channel commit horizons, the
//!   retained (replayable) epochs it has shipped, per-worker source
//!   positions and the sink — everything needed to resurrect the node at
//!   that epoch boundary. The checkpoint is shipped to a buddy node over
//!   the same fabric (paying transfer time) and only counts as *durable*
//!   once it lands.
//! * **Durability gate.** A leader merges epoch `e` from helper `h` only
//!   once `h`'s durable checkpoint covers `e`
//!   ([`slash_state::DeltaReceiver`]'s `durable_epochs` gate). Everything
//!   merged anywhere is therefore replayable verbatim from stable
//!   storage, which is what makes recovery *exact* rather than
//!   best-effort: replayed epochs are deduplicated by epoch id, so even
//!   non-idempotent CRDT merges (counters add!) are applied exactly once.
//! * **Detection.** The driver watches, per node, the progress token its
//!   peers have observed (the remote vector-clock entries). A token that
//!   stalls past `detect_timeout` triggers a diagnosis: dead node →
//!   promotion; link restored after a flap → channel reset + replay;
//!   merely degraded → wait, the run completes on its own.
//! * **Promotion.** A crashed node's partition is resurrected on a buddy
//!   host from the durable checkpoint: snapshot restore, vector-clock
//!   restore, fragment epoch fast-forward, channel re-establishment with
//!   commit-horizon handshakes, retained-epoch replay, and worker respawn
//!   from the checkpointed source positions.
//!
//! Exactness is validated by comparing window results and state digests
//! against a same-seed fault-free run (`tests/chaos.rs`,
//! `examples/failover.rs`, and `repro -- recovery`).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use slash_chaos::{ChaosConfig, FaultKind};
use slash_chaos::Injector;
use slash_desim::{Sim, SimTime};
use slash_net::create_channel;
use slash_obs::{Cat, Obs};
use slash_rdma::{Fabric, NodeId};
use slash_state::backend::{build_cluster_obs, SsbConfig, SsbNode};
use slash_state::{DeltaReceiver, DeltaSender, RetainedEpoch};

use crate::cluster::{assemble_report, RunConfig, RunReport, SlashCluster};
use crate::query::QueryPlan;
use crate::sink::{Sink, SinkResult};
use crate::source::MemorySource;
use crate::worker::{NodeShared, SlashWorker};

/// Everything a node needs to be resurrected at an epoch boundary.
#[derive(Debug, Clone)]
pub(crate) struct Checkpoint {
    /// Epochs this node had closed (fragment epoch high-water mark).
    epochs_closed: u64,
    /// Primary partition snapshot (delta-format chunks).
    snapshot: Vec<Vec<u8>>,
    /// Vector clock at the epoch boundary.
    vclock: Vec<u64>,
    /// Per-helper commit horizon: epochs `< receiver_next[h]` from helper
    /// `h` are merged into [`Self::snapshot`].
    receiver_next: Vec<u64>,
    /// Per-leader retained epochs, replayable verbatim.
    retained: Vec<Vec<RetainedEpoch>>,
    /// Per-worker source byte positions at the boundary.
    worker_pos: Vec<usize>,
    /// Per-worker watermarks.
    worker_wm: Vec<u64>,
    /// Source records processed so far.
    records: u64,
    /// Sink contents (already-emitted results survive the crash).
    sink: Sink,
}

impl Checkpoint {
    fn payload_bytes(&self) -> u64 {
        let snap: usize = self.snapshot.iter().map(Vec::len).sum();
        let retained: usize = self
            .retained
            .iter()
            .flatten()
            .flat_map(|r| r.chunks.iter())
            .map(Vec::len)
            .sum();
        (snap + retained) as u64 + 256
    }
}

/// One node's checkpoint lifecycle.
#[derive(Default)]
pub(crate) struct CkptSlot {
    latest: Option<Rc<Checkpoint>>,
    durable: Option<Rc<Checkpoint>>,
    in_flight: Option<(SimTime, Rc<Checkpoint>)>,
}

pub(crate) type CkptStore = Vec<CkptSlot>;

/// Fault-tolerance hooks handed to each node's shared state; present
/// only in [`SlashCluster::run_chaos`] runs.
pub(crate) struct FtState {
    pub(crate) store: Rc<RefCell<CkptStore>>,
    pub(crate) node: usize,
    pub(crate) max_chunk: usize,
}

/// Called by workers right after a successful epoch close: capture a
/// checkpoint of this node at the fresh epoch boundary.
pub(crate) fn on_epoch_closed(sh: &mut NodeShared) {
    let Some(ft) = sh.ft.as_ref() else { return };
    let n = ft.store.borrow().len();
    let node = ft.node;
    let ssb = &sh.ssb;
    let ckpt = Checkpoint {
        epochs_closed: ssb.epochs_closed(),
        snapshot: ssb.snapshot_primary(ft.max_chunk),
        vclock: ssb.vclock().snapshot(),
        receiver_next: (0..n)
            .map(|h| if h == node { 0 } else { ssb.receiver_next_epoch(h) })
            .collect(),
        retained: (0..n)
            .map(|l| ssb.retained_for(l).map(<[_]>::to_vec).unwrap_or_default())
            .collect(),
        worker_pos: sh.worker_pos.clone(),
        worker_wm: sh.worker_wm.clone(),
        records: sh.records,
        sink: sh.sink.clone(),
    };
    ft.store.borrow_mut()[node].latest = Some(Rc::new(ckpt));
}

/// What the driver did to bring a stalled node back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryAction {
    /// The node was dead; its partition was promoted onto `host` from the
    /// durable checkpoint.
    Promoted {
        /// Logical node now hosting the resurrected partition.
        host: usize,
    },
    /// The node survived a link outage; `channels` errored channel
    /// endpoints were reset and their uncommitted epochs replayed.
    ChannelsReset {
        /// Directed channels that needed a reset.
        channels: usize,
    },
}

/// One detected-and-repaired fault.
#[derive(Debug, Clone)]
pub struct RecoveryEvent {
    /// Kebab-case fault name from the plan (e.g. `node-crash`).
    pub fault: &'static str,
    /// Logical node the fault hit.
    pub node: usize,
    /// When the plan injected the fault.
    pub injected_at: SimTime,
    /// When the driver noticed the stall.
    pub detected_at: SimTime,
    /// When the repair finished (virtual time; processing resumes here).
    pub recovered_at: SimTime,
    /// The repair performed.
    pub action: RecoveryAction,
}

impl RecoveryEvent {
    /// Injection-to-repair latency.
    pub fn time_to_recover(&self) -> SimTime {
        self.recovered_at - self.injected_at
    }
}

/// Recovery-side outcome of a chaos run, alongside the [`RunReport`].
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Detected faults and their repairs, in detection order.
    pub events: Vec<RecoveryEvent>,
    /// Checkpoints that became durable during the run.
    pub checkpoints_durable: u64,
    /// Per-node primary-state digests at completion (exactness witness).
    pub state_digests: Vec<u64>,
    /// Order-independent digest of the emitted results.
    pub results_digest: u64,
}

impl RecoveryReport {
    /// Worst-case time-to-recover across all repaired faults.
    pub fn max_time_to_recover(&self) -> Option<SimTime> {
        self.events.iter().map(RecoveryEvent::time_to_recover).max()
    }
}

fn splitmix_fold(h: &mut u64, v: u64) {
    let mut z = h.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(v);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    *h = z ^ (z >> 31);
}

/// Order-independent digest of a result set: two runs emitting the same
/// `(window, key, value)` multiset digest equal regardless of emission
/// order or node placement.
pub fn results_digest(results: &[SinkResult]) -> u64 {
    let mut keyed: Vec<(u64, u64, u64)> = results
        .iter()
        .map(|r| match *r {
            SinkResult::Agg {
                window_id,
                key,
                value,
            } => (window_id, key, value.to_bits()),
            SinkResult::Join {
                window_id,
                key,
                pairs,
            } => (window_id, key, pairs),
        })
        .collect();
    keyed.sort_unstable();
    let mut h: u64 = 0xD16E_57ED_FA17_0000;
    for (w, k, v) in keyed {
        splitmix_fold(&mut h, w);
        splitmix_fold(&mut h, k);
        splitmix_fold(&mut h, v);
    }
    h
}

/// Trace pid used for driver-side recovery events (fault injection uses
/// `slash_chaos::inject::FAULT_TID` on the victim's pid; repairs land on
/// the victim's pid too, under this tid).
const RECOVERY_TID: u32 = 901;

impl SlashCluster {
    /// Run `plan` under a deterministic fault plan with fault tolerance
    /// enabled: epoch-boundary checkpoints shipped to a buddy node,
    /// durability-gated delta commits, stall detection, and epoch-aligned
    /// recovery (leader promotion or channel reset + replay).
    ///
    /// Returns the usual [`RunReport`] plus a [`RecoveryReport`]. With an
    /// empty plan this is the fault-tolerant no-fault baseline: same
    /// checkpoint and gating overheads, no faults — the reference for
    /// exactness comparisons. When `cfg.collect_results` is set, results
    /// are deduplicated by `(window, key)` in deterministic order.
    pub fn run_chaos(
        plan: QueryPlan,
        partitions: Vec<Rc<Vec<u8>>>,
        cfg: RunConfig,
        chaos: &ChaosConfig,
        obs: Obs,
    ) -> (RunReport, RecoveryReport) {
        let n = cfg.nodes;
        assert_eq!(
            partitions.len(),
            n * cfg.workers_per_node,
            "need one partition per worker"
        );
        let mut sim = Sim::new();
        let fabric = Fabric::new(cfg.fabric);
        let node_ids = fabric.add_nodes(n);
        let ssb_cfg = SsbConfig {
            nodes: n,
            epoch_bytes: cfg.epoch_bytes,
            channel: cfg.channel,
        };
        let desc = plan.descriptor();
        let ssb_nodes = build_cluster_obs(&fabric, &node_ids, desc, ssb_cfg, obs.clone());

        let store: Rc<RefCell<CkptStore>> =
            Rc::new(RefCell::new((0..n).map(|_| CkptSlot::default()).collect()));
        let plan = Rc::new(plan);
        let schema = plan.input().schema;

        // Shareds sit behind one more cell so crash closures and the
        // detector see promotions (the slot is *replaced* on promotion).
        let shareds: Rc<RefCell<Vec<Rc<RefCell<NodeShared>>>>> =
            Rc::new(RefCell::new(Vec::with_capacity(n)));
        for (node, ssb) in ssb_nodes.into_iter().enumerate() {
            let shared = Rc::new(RefCell::new(NodeShared::new(
                ssb,
                cfg.workers_per_node,
                cfg.cost.mem_bandwidth,
                cfg.collect_results,
            )));
            {
                let mut sh = shared.borrow_mut();
                sh.metrics.set_clock_ghz(cfg.cost.clock_ghz);
                if obs.is_enabled() {
                    sh.instrument(obs.clone(), node);
                }
                sh.ssb.set_retention(true);
                // Gate commits on durability: nothing from helper `h`
                // merges until `h`'s checkpoint covering it has landed on
                // the buddy.
                for h in 0..n {
                    if h != node {
                        sh.ssb.set_durable_epochs(h, 0);
                    }
                }
                sh.ft = Some(FtState {
                    store: Rc::clone(&store),
                    node,
                    max_chunk: chaos.ft.ckpt_max_chunk,
                });
                // Seed checkpoint: an empty epoch-0 boundary, durable by
                // fiat, so even a crash before the first real checkpoint
                // recovers (to a from-scratch reprocess).
                on_epoch_closed(&mut sh);
            }
            for w in 0..cfg.workers_per_node {
                let part = Rc::clone(&partitions[node * cfg.workers_per_node + w]);
                let source = MemorySource::new(part, schema, cfg.batch_records);
                sim.spawn(SlashWorker::new(
                    node,
                    w,
                    Rc::clone(&shared),
                    source,
                    Rc::clone(&plan),
                    cfg.cost,
                    cfg.combine,
                    cfg.combiner_slots,
                ));
            }
            shareds.borrow_mut().push(shared);
        }
        {
            let mut st = store.borrow_mut();
            for slot in st.iter_mut() {
                slot.durable = slot.latest.clone();
            }
        }

        // Arm the fault plan against the fabric, and mirror node crashes
        // into the engine: the victim's workers observe the flag at their
        // next step and die with the node.
        Injector::arm(&mut sim, &fabric, &node_ids, &obs, &chaos.plan);
        for ev in chaos.plan.events() {
            if let FaultKind::NodeCrash { node } = ev.kind {
                if node < n {
                    let sh_vec = Rc::clone(&shareds);
                    sim.schedule_at(ev.at, move |_| {
                        sh_vec.borrow()[node].borrow_mut().crashed = true;
                    });
                }
            }
        }

        // host[i] = logical node whose fabric port hosts partition i's
        // current leader (identity until a promotion relocates one).
        let mut host: Vec<usize> = (0..n).collect();
        let mut last_token = vec![0u64; n];
        let mut last_change = vec![SimTime::ZERO; n];
        let mut rec = RecoveryReport::default();

        // Drive in slices of a quarter detection timeout so stalls are
        // noticed promptly without rescanning the cluster too often.
        let slice =
            SimTime::from_nanos((chaos.ft.detect_timeout.as_nanos() / 4).max(100_000));
        loop {
            if shareds.borrow().iter().all(|s| s.borrow().finished) {
                break;
            }
            assert!(
                sim.now() <= cfg.max_virtual_time,
                "query did not complete within the virtual-time budget \
                 (possible protocol livelock)"
            );
            assert!(
                sim.pending_events() > 0,
                "simulation quiesced before the query completed (deadlock)"
            );
            let horizon = sim.now() + slice;
            sim.run_until(horizon);
            let now = sim.now();

            ft_tick(
                now, n, &fabric, &node_ids, &host, &store, &shareds, &cfg, &obs, &mut rec,
            );

            if n < 2 {
                continue; // nothing to detect against
            }
            // Stall detection: per node, the most advanced view any peer
            // holds of its progress. Crashes and outages freeze it.
            for i in 0..n {
                let token = {
                    let sh_vec = shareds.borrow();
                    (0..n)
                        .filter(|&j| j != i)
                        .map(|j| sh_vec[j].borrow().ssb.vclock().get(i))
                        .max()
                        .unwrap_or(0)
                };
                if token != last_token[i] {
                    last_token[i] = token;
                    last_change[i] = now;
                    continue;
                }
                if now - last_change[i] < chaos.ft.detect_timeout {
                    continue;
                }
                last_change[i] = now; // re-arm the timer either way
                let fab_i = node_ids[host[i]];
                if !fabric.node_alive(fab_i) {
                    let detected_at = now;
                    promote(
                        i, &mut sim, &fabric, &node_ids, &mut host, &shareds, &store,
                        &partitions, &plan, schema, &cfg, chaos, &obs,
                    );
                    push_event(
                        &mut rec,
                        chaos,
                        i,
                        detected_at,
                        sim.now(),
                        RecoveryAction::Promoted { host: host[i] },
                        &obs,
                    );
                } else if fabric.link_up(fab_i) {
                    // Alive with a live link: if the outage errored any
                    // channel endpoints, re-establish and replay; if the
                    // node is merely slow (degraded link, lagging
                    // completions), there is nothing to repair.
                    let fixed = reset_errored_channels(i, n, &shareds, &fabric, &node_ids, &host);
                    if fixed > 0 {
                        push_event(
                            &mut rec,
                            chaos,
                            i,
                            now,
                            sim.now(),
                            RecoveryAction::ChannelsReset { channels: fixed },
                            &obs,
                        );
                    }
                }
                // else: link still down — wait for it to come back.
            }
        }
        let completion_time = sim.now();

        let shareds_v = shareds.borrow();
        let mut report = assemble_report(&shareds_v, &fabric, &obs, completion_time);
        if cfg.collect_results {
            // Deduplicate by (window, key) in deterministic order: a
            // window triggered right around a checkpoint boundary may be
            // re-fired by the resurrected leader.
            let mut dedup: BTreeMap<(u64, u64), SinkResult> = BTreeMap::new();
            for r in report.results.drain(..) {
                let k = match r {
                    SinkResult::Agg { window_id, key, .. }
                    | SinkResult::Join { window_id, key, .. } => (window_id, key),
                };
                dedup.entry(k).or_insert(r);
            }
            report.results = dedup.into_values().collect();
            report.emitted = report.results.len() as u64;
            report.total_pairs = report
                .results
                .iter()
                .map(|r| match r {
                    SinkResult::Join { pairs, .. } => *pairs,
                    SinkResult::Agg { .. } => 0,
                })
                .sum();
        }
        rec.results_digest = results_digest(&report.results);
        rec.state_digests = shareds_v
            .iter()
            .map(|s| s.borrow().ssb.state_digest())
            .collect();
        (report, rec)
    }
}

/// Record a repair, both in the report and as a Perfetto span covering
/// the detected→repaired window.
#[allow(clippy::too_many_arguments)]
fn push_event(
    rec: &mut RecoveryReport,
    chaos: &ChaosConfig,
    node: usize,
    detected_at: SimTime,
    recovered_at: SimTime,
    action: RecoveryAction,
    obs: &Obs,
) {
    let (injected_at, fault) = chaos
        .plan
        .events()
        .iter()
        .filter(|e| e.kind.node() == node && e.at <= detected_at)
        .map(|e| (e.at, e.kind.name()))
        .next_back()
        .unwrap_or((SimTime::ZERO, "stall"));
    obs.span(
        Cat::Fault,
        "recovery",
        node as u32,
        RECOVERY_TID,
        detected_at,
        recovered_at.max(detected_at + SimTime::from_nanos(1)),
        &[("injected_ns", injected_at.as_nanos())],
    );
    rec.events.push(RecoveryEvent {
        fault,
        node,
        injected_at,
        detected_at,
        recovered_at,
        action,
    });
}

/// Checkpoint lifecycle: complete in-flight transfers (durability +
/// gate/prune propagation) and ship the newest boundary to the buddy.
#[allow(clippy::too_many_arguments)]
fn ft_tick(
    now: SimTime,
    n: usize,
    fabric: &Fabric,
    node_ids: &[NodeId],
    host: &[usize],
    store: &Rc<RefCell<CkptStore>>,
    shareds: &Rc<RefCell<Vec<Rc<RefCell<NodeShared>>>>>,
    cfg: &RunConfig,
    obs: &Obs,
    rec: &mut RecoveryReport,
) {
    let sh_vec = shareds.borrow();
    let mut st = store.borrow_mut();
    for i in 0..n {
        let fab_i = node_ids[host[i]];
        let buddy = (1..n)
            .map(|k| (i + k) % n)
            .find(|&j| fabric.node_alive(node_ids[host[j]]));
        // Complete an in-flight transfer whose arrival time has passed.
        if let Some((arrival, ckpt)) = st[i].in_flight.clone() {
            if now >= arrival {
                st[i].in_flight = None;
                let landed = fabric.node_alive(fab_i)
                    && buddy.is_some_and(|b| fabric.path_up(fab_i, node_ids[host[b]]));
                if landed {
                    st[i].durable = Some(Rc::clone(&ckpt));
                    rec.checkpoints_durable += 1;
                    obs.instant(
                        Cat::Fault,
                        "checkpoint-durable",
                        i as u32,
                        RECOVERY_TID,
                        now,
                        &[("epochs", ckpt.epochs_closed)],
                    );
                    for l in 0..n {
                        if l != i {
                            let mut sl = sh_vec[l].borrow_mut();
                            // Leaders may now commit i's epochs below the
                            // durable horizon...
                            sl.ssb.set_durable_epochs(i, ckpt.epochs_closed);
                            // ...and helpers may drop retained epochs i
                            // has durably merged.
                            sl.ssb.prune_retained(i, ckpt.receiver_next[l]);
                        }
                    }
                }
                // A transfer interrupted by a fault is simply dropped;
                // the re-ship below retries once the path heals.
            }
        }
        // Ship the newest boundary if it advances the durable horizon.
        if st[i].in_flight.is_none() {
            if let Some(latest) = st[i].latest.clone() {
                let durable_epochs = st[i].durable.as_ref().map_or(0, |d| d.epochs_closed);
                let advances = latest.epochs_closed > durable_epochs;
                if advances && fabric.node_alive(fab_i) && fabric.link_up(fab_i) && buddy.is_some()
                {
                    let nic = &cfg.fabric.nic;
                    let bytes = latest.payload_bytes();
                    let xfer = nic.latency
                        + SimTime::from_nanos(
                            bytes.saturating_mul(1_000_000_000) / nic.bandwidth.max(1),
                        );
                    st[i].in_flight = Some((now + xfer, latest));
                }
            }
        }
    }
}

/// Re-establish every errored channel touching node `i` (both
/// directions), then replay the epochs the receiving side never
/// committed. Returns how many directed channels needed a reset.
fn reset_errored_channels(
    i: usize,
    n: usize,
    shareds: &Rc<RefCell<Vec<Rc<RefCell<NodeShared>>>>>,
    fabric: &Fabric,
    node_ids: &[NodeId],
    host: &[usize],
) -> usize {
    let sh_vec = shareds.borrow();
    let mut fixed = 0;
    for s in 0..n {
        if s == i || !fabric.node_alive(node_ids[host[s]]) {
            continue;
        }
        let mut si = sh_vec[i].borrow_mut();
        let mut ss = sh_vec[s].borrow_mut();
        // i → s: i ships deltas of partition s.
        if si.ssb.sender_error(s) || ss.ssb.receiver_error(i) {
            si.ssb.reset_channel_to(s);
            ss.ssb.reset_channel_from(i); // drops uncommitted stages
            let resume = ss.ssb.receiver_next_epoch(i);
            si.ssb.requeue_to(s, resume);
            fixed += 1;
        }
        // s → i: s ships deltas of partition i.
        if ss.ssb.sender_error(i) || si.ssb.receiver_error(s) {
            ss.ssb.reset_channel_to(i);
            si.ssb.reset_channel_from(s);
            let resume = si.ssb.receiver_next_epoch(s);
            ss.ssb.requeue_to(i, resume);
            fixed += 1;
        }
    }
    fixed
}

/// Resurrect dead logical node `d` on the next alive host from its
/// durable checkpoint: epoch-aligned snapshot restore plus retained-epoch
/// replay from (and to) every survivor.
#[allow(clippy::too_many_arguments)]
fn promote(
    d: usize,
    sim: &mut Sim,
    fabric: &Fabric,
    node_ids: &[NodeId],
    host: &mut [usize],
    shareds: &Rc<RefCell<Vec<Rc<RefCell<NodeShared>>>>>,
    store: &Rc<RefCell<CkptStore>>,
    partitions: &[Rc<Vec<u8>>],
    plan: &Rc<QueryPlan>,
    schema: crate::record::RecordSchema,
    cfg: &RunConfig,
    chaos: &ChaosConfig,
    obs: &Obs,
) {
    let n = cfg.nodes;
    let Some(b) = (1..n)
        .map(|k| (d + k) % n)
        .find(|&j| fabric.node_alive(node_ids[host[j]]))
    else {
        return; // no survivors; the run will hit the livelock guard
    };
    let ckpt = {
        let mut st = store.borrow_mut();
        // Whatever was newer than the durable boundary died with the
        // node; in-flight transfers from it are void.
        st[d].latest = st[d].durable.clone();
        st[d].in_flight = None;
        st[d].durable.clone()
    };
    let Some(ckpt) = ckpt else { return };
    host[d] = b;
    let host_fab = node_ids[b];

    let ssb_cfg = SsbConfig {
        nodes: n,
        epoch_bytes: cfg.epoch_bytes,
        channel: cfg.channel,
    };
    let mut ssb = SsbNode::detached(d, plan.descriptor(), ssb_cfg);
    ssb.restore_primary(&ckpt.snapshot);
    ssb.restore_vclock(&ckpt.vclock);
    ssb.resume_fragments_at(ckpt.epochs_closed);
    ssb.set_retention(true);

    // Re-establish channels with every survivor, handshaking commit
    // horizons so replay is exact and nothing is merged twice.
    {
        let sh_vec = shareds.borrow();
        let st = store.borrow();
        for s in 0..n {
            if s == d || !fabric.node_alive(node_ids[host[s]]) {
                continue;
            }
            let s_fab = node_ids[host[s]];
            let mut sv = sh_vec[s].borrow_mut();

            // d → s: the replacement re-ships the retained epochs the
            // survivor's receiver has not committed.
            let (tx, rx) = create_channel(fabric, host_fab, s_fab, cfg.channel);
            let mut sender = DeltaSender::new(tx);
            sender.restore_retained(ckpt.retained[s].clone());
            let resume = sv.ssb.receiver_next_epoch(d);
            sender.requeue_from(resume);
            ssb.replace_sender(s, sender);
            sv.ssb.replace_receiver(d, DeltaReceiver::new(rx, d));
            sv.ssb.seed_receiver(d, resume);
            sv.ssb.set_durable_epochs(d, ckpt.epochs_closed);

            // s → d: the survivor re-ships from the checkpoint's commit
            // horizon; its retained list still covers that suffix
            // because pruning follows d's durable checkpoints.
            let (tx2, rx2) = create_channel(fabric, s_fab, host_fab, cfg.channel);
            let mut sender2 = DeltaSender::new(tx2);
            sender2.restore_retained(
                sv.ssb
                    .retained_for(d)
                    .map(<[_]>::to_vec)
                    .unwrap_or_default(),
            );
            sender2.requeue_from(ckpt.receiver_next[s]);
            sv.ssb.replace_sender(d, sender2);
            ssb.replace_receiver(s, DeltaReceiver::new(rx2, s));
            ssb.seed_receiver(s, ckpt.receiver_next[s]);
            ssb.set_durable_epochs(s, st[s].durable.as_ref().map_or(0, |c| c.epochs_closed));

            if obs.is_enabled() {
                sv.ssb.instrument(obs.clone());
            }
        }
    }

    // Fresh shared state seeded from the checkpoint; the crashed slot's
    // workers are already dead (crashed flag), replace it.
    let mut shared = NodeShared::new(
        ssb,
        cfg.workers_per_node,
        cfg.cost.mem_bandwidth,
        cfg.collect_results,
    );
    shared.metrics.set_clock_ghz(cfg.cost.clock_ghz);
    shared.sink = ckpt.sink.clone();
    shared.records = ckpt.records;
    shared.worker_wm = ckpt.worker_wm.clone();
    shared.worker_pos = ckpt.worker_pos.clone();
    shared.ft = Some(FtState {
        store: Rc::clone(store),
        node: d,
        max_chunk: chaos.ft.ckpt_max_chunk,
    });
    if obs.is_enabled() {
        shared.instrument(obs.clone(), d);
    }
    let shared = Rc::new(RefCell::new(shared));
    shareds.borrow_mut()[d] = Rc::clone(&shared);

    // Respawn the node's workers at the checkpointed source positions:
    // everything past them was lost with the open fragments and is
    // reprocessed; everything before them is in the snapshot or in
    // replayable epochs.
    for w in 0..cfg.workers_per_node {
        let part = Rc::clone(&partitions[d * cfg.workers_per_node + w]);
        let mut source = MemorySource::new(part, schema, cfg.batch_records);
        source.seek(ckpt.worker_pos[w]);
        sim.spawn(SlashWorker::new(
            d,
            w,
            Rc::clone(&shared),
            source,
            Rc::clone(plan),
            cfg.cost,
            cfg.combine,
            cfg.combiner_slots,
        ));
    }
    obs.instant(
        Cat::Fault,
        "promoted",
        d as u32,
        RECOVERY_TID,
        sim.now(),
        &[("host", b as u64), ("epochs", ckpt.epochs_closed)],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggSpec;
    use crate::query::StreamDef;
    use crate::record::RecordSchema;
    use crate::window::WindowAssigner;
    use slash_chaos::{ChaosConfig, FaultPlan, FtConfig};

    fn gen(n: u64, dt: u64, keys: u64) -> Rc<Vec<u8>> {
        let mut buf = Vec::with_capacity((n * 16) as usize);
        for i in 0..n {
            buf.extend_from_slice(&(i * dt).to_le_bytes());
            buf.extend_from_slice(&(i % keys).to_le_bytes());
        }
        Rc::new(buf)
    }

    fn count_plan(window: u64) -> QueryPlan {
        QueryPlan::Aggregate {
            input: StreamDef::new(RecordSchema::plain(16)),
            window: WindowAssigner::Tumbling { size: window },
            agg: AggSpec::Count,
        }
    }

    fn cfg(nodes: usize) -> RunConfig {
        let mut cfg = RunConfig::new(nodes, 1);
        cfg.collect_results = true;
        cfg.epoch_bytes = 16 * 1024;
        cfg
    }

    fn chaos(plan: FaultPlan) -> ChaosConfig {
        ChaosConfig {
            plan,
            ft: FtConfig {
                detect_timeout: SimTime::from_micros(300),
                ckpt_max_chunk: 16 * 1024,
            },
        }
    }

    fn run(faults: FaultPlan, nodes: usize) -> (RunReport, RecoveryReport) {
        let parts: Vec<Rc<Vec<u8>>> = (0..nodes).map(|_| gen(60_000, 1, 32)).collect();
        SlashCluster::run_chaos(
            count_plan(4_000),
            parts,
            cfg(nodes),
            &chaos(faults),
            Obs::disabled(),
        )
    }

    #[test]
    fn ft_baseline_matches_fault_free_engine() {
        let (ft, rec) = run(FaultPlan::new(), 2);
        assert!(rec.events.is_empty(), "{:?}", rec.events);
        assert!(rec.checkpoints_durable > 0, "checkpoints must ship");
        let parts: Vec<Rc<Vec<u8>>> = (0..2).map(|_| gen(60_000, 1, 32)).collect();
        let plain = SlashCluster::run(count_plan(4_000), parts, cfg(2));
        assert_eq!(ft.records, plain.records);
        assert_eq!(
            results_digest(&ft.results),
            results_digest(&plain.results),
            "gating and checkpoints must not change query results"
        );
    }

    #[test]
    fn node_crash_promotes_and_recovers_exactly() {
        let (base, base_rec) = run(FaultPlan::new(), 3);
        let plan = FaultPlan::new().crash(SimTime::from_micros(200), 1);
        let (faulted, rec) = run(plan, 3);
        assert!(
            rec.events
                .iter()
                .any(|e| matches!(e.action, RecoveryAction::Promoted { .. })
                    && e.fault == "node-crash"),
            "{:?}",
            rec.events
        );
        assert_eq!(faulted.records, base.records, "every record exactly once");
        assert_eq!(rec.results_digest, base_rec.results_digest);
        assert_eq!(rec.state_digests, base_rec.state_digests);
        let ttr = rec.max_time_to_recover();
        assert!(ttr.is_some_and(|t| t > SimTime::ZERO), "{ttr:?}");
    }

    #[test]
    fn link_flap_resets_channels_and_recovers_exactly() {
        let (base, base_rec) = run(FaultPlan::new(), 2);
        let plan =
            FaultPlan::new().link_flap(SimTime::from_micros(200), 1, SimTime::from_micros(100));
        let (faulted, rec) = run(plan, 2);
        assert!(
            rec.events
                .iter()
                .any(|e| matches!(e.action, RecoveryAction::ChannelsReset { .. })),
            "{:?}",
            rec.events
        );
        assert_eq!(faulted.records, base.records);
        assert_eq!(rec.results_digest, base_rec.results_digest);
        assert_eq!(rec.state_digests, base_rec.state_digests);
    }

    #[test]
    fn degraded_fabric_completes_exactly_without_repairs() {
        let (base, base_rec) = run(FaultPlan::new(), 2);
        let plan = FaultPlan::new()
            .degrade(
                SimTime::from_micros(100),
                0,
                SimTime::from_micros(50),
                SimTime::from_micros(400),
            )
            .delay_completions(
                SimTime::from_micros(150),
                1,
                SimTime::from_micros(80),
                SimTime::from_micros(400),
            );
        let (faulted, rec) = run(plan, 2);
        // Slowdowns are not failures: nothing to promote or reset.
        assert!(
            !rec.events
                .iter()
                .any(|e| matches!(e.action, RecoveryAction::Promoted { .. })),
            "{:?}",
            rec.events
        );
        assert_eq!(faulted.records, base.records);
        assert_eq!(rec.results_digest, base_rec.results_digest);
        assert_eq!(rec.state_digests, base_rec.state_digests);
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let go = || {
            let plan = FaultPlan::new().crash(SimTime::from_micros(250), 0);
            let (r, rec) = run(plan, 3);
            (
                r.records,
                r.completion_time,
                r.net_tx_bytes,
                rec.results_digest,
                rec.state_digests.clone(),
                rec.events.len(),
            )
        };
        assert_eq!(go(), go(), "same seed + same plan ⇒ identical run");
    }
}
