//! `hotpath-bench` — real wall-clock throughput of the simulator hot loop.
//!
//! Every other number this repo produces is *virtual* time from the cost
//! model. This harness measures the one thing the cost model cannot: how
//! fast the actual Rust hot path (`HotPath::process` driving a detached
//! single-node SSB) executes on the machine running it, with the write
//! combiner on versus off.
//!
//! ```text
//! hotpath-bench                 # full run, writes BENCH_hotpath.json
//! hotpath-bench --quick         # CI smoke: fewer records/iterations
//! hotpath-bench --out FILE      # JSON destination
//! hotpath-bench --batch N       # records per processed batch
//! ```
//!
//! Workloads: the five evaluation queries (ysb, cm, nb7, nb8, nb11) plus
//! `ysb_hot`, the classic ~100-campaign YSB domain where pre-aggregation
//! shines — that row carries the CI floor (combiner-on ≥ 1.3× off).
//! Rows whose state is not combinable (cm's float mean; the joins use the
//! batched-append path instead) are reported honestly at ~1×.

use std::rc::Rc;
use std::time::Instant;

use slash_core::{HotPath, QueryPlan};
use slash_state::backend::{SsbConfig, SsbNode};
use slash_workloads::{cm, nb11, nb7, nb8, ysb, ysb_hot, GenConfig, Workload};

/// Per-workload measurement.
struct Row {
    name: &'static str,
    combined_active: bool,
    records: u64,
    on_recs_per_sec: f64,
    off_recs_per_sec: f64,
    digests_match: bool,
}

impl Row {
    fn speedup(&self) -> f64 {
        if self.off_recs_per_sec > 0.0 {
            self.on_recs_per_sec / self.off_recs_per_sec
        } else {
            0.0
        }
    }
}

/// One timed pass over `data`; returns (records/sec, state digest).
fn run_once(plan: &Rc<QueryPlan>, data: &[u8], combine: bool, batch_bytes: usize) -> (f64, u64) {
    let mut hp = HotPath::new(Rc::clone(plan), combine, 1024);
    let mut ssb = SsbNode::detached(0, plan.descriptor(), SsbConfig::new(1));
    let start = Instant::now();
    let mut records = 0u64;
    for chunk in data.chunks(batch_bytes) {
        records += hp.process(&mut ssb, chunk).records;
    }
    let secs = start.elapsed().as_secs_f64().max(1e-12);
    (records as f64 / secs, ssb.state_digest())
}

fn bench_workload(w: &Workload, batch_records: usize, iters: usize) -> Row {
    let plan = Rc::new(w.plan.clone());
    let data: &[u8] = &w.partitions[0];
    let batch_bytes = batch_records * plan.record_size();
    // Warm-up pass per mode (page in the data, warm the allocator).
    run_once(&plan, data, true, batch_bytes);
    run_once(&plan, data, false, batch_bytes);
    // Interleave on/off passes so both modes sample the same machine
    // conditions (a noisy neighbor slows whichever mode is running);
    // best-of per side then filters scheduler and frequency noise.
    let (mut on, mut off) = (0.0f64, 0.0f64);
    let (mut digest_on, mut digest_off) = (0u64, 0u64);
    for _ in 0..iters {
        let (rps, d) = run_once(&plan, data, true, batch_bytes);
        on = on.max(rps);
        digest_on = d;
        let (rps, d) = run_once(&plan, data, false, batch_bytes);
        off = off.max(rps);
        digest_off = d;
    }
    let combined_active = HotPath::new(Rc::clone(&plan), true, 1024).combined();
    Row {
        name: w.name,
        combined_active,
        records: w.records,
        on_recs_per_sec: on,
        off_recs_per_sec: off,
        digests_match: digest_on == digest_off,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_json(path: &str, rows: &[Row], batch_records: usize, quick: bool) {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"batch_records\": {batch_records},\n"));
    out.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"combined_active\": {}, \"records\": {}, \
             \"records_per_sec_on\": {:.0}, \"records_per_sec_off\": {:.0}, \
             \"speedup\": {:.3}, \"digests_match\": {}}}{}\n",
            json_escape(r.name),
            r.combined_active,
            r.records,
            r.on_recs_per_sec,
            r.off_recs_per_sec,
            r.speedup(),
            r.digests_match,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("error: could not write {path}: {e}");
        std::process::exit(1);
    }
    println!("  -> {path}");
}

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_hotpath.json");
    // 16 Ki records per batch: the epoch-sized quanta workers process.
    // Combiner flush cost amortizes with batch size, so the reported
    // speedup is a function of this knob — it is recorded in the JSON.
    let mut batch_records = 16384usize;
    let mut records_override: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().unwrap_or(out_path),
            "--batch" => {
                batch_records = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(batch_records)
            }
            "--records" => records_override = args.next().and_then(|v| v.parse().ok()),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: hotpath-bench [--quick] [--out FILE] [--batch N] [--records N]");
                std::process::exit(2);
            }
        }
    }

    // 400 k records keeps the dataset LLC-sized on repeat passes (less
    // sensitivity to neighbors' memory traffic); best-of-5 interleaved
    // passes filter scheduler and frequency noise.
    let (records, iters) = if quick { (200_000u64, 3) } else { (400_000u64, 5) };
    let records = records_override.unwrap_or(records);
    // NB8 records are 272 bytes — scale down so the dataset stays modest.
    let nb8_records = (records / 4).max(1);

    let gen = |n: u64| GenConfig::new(1, n);
    let workloads: Vec<Workload> = vec![
        ysb_hot(&gen(records)),
        ysb(&gen(records)),
        cm(&gen(records)),
        nb7(&gen(records)),
        nb8(&gen(nb8_records)),
        nb11(&gen(records)),
    ];

    println!(
        "hotpath-bench: {} records/workload, batch {} records, best of {} (quick={})",
        records, batch_records, iters, quick
    );
    println!(
        "{:<8} {:>9} {:>14} {:>14} {:>8}  digests",
        "query", "combiner", "on recs/s", "off recs/s", "speedup"
    );
    let mut rows = Vec::new();
    for w in &workloads {
        let row = bench_workload(w, batch_records, iters);
        println!(
            "{:<8} {:>9} {:>14.0} {:>14.0} {:>7.2}x  {}",
            row.name,
            if row.combined_active { "on" } else { "n/a" },
            row.on_recs_per_sec,
            row.off_recs_per_sec,
            row.speedup(),
            if row.digests_match { "match" } else { "MISMATCH" }
        );
        rows.push(row);
    }

    write_json(&out_path, &rows, batch_records, quick);

    // Hard checks: the two paths must agree bit-for-bit everywhere, and
    // combining must actually pay off on the hot YSB loop.
    let mut failed = false;
    for r in &rows {
        if !r.digests_match {
            eprintln!("FAIL: {} on/off state digests diverge", r.name);
            failed = true;
        }
    }
    if let Some(hot) = rows.iter().find(|r| r.name == "ysb_hot") {
        let floor = 1.3;
        if hot.speedup() < floor {
            eprintln!(
                "FAIL: ysb_hot combiner speedup {:.2}x below the {floor}x floor",
                hot.speedup()
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
