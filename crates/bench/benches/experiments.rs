//! Criterion benches of the experiment kernels themselves — one bench per
//! paper artifact, at reduced scale. `cargo bench` therefore re-exercises
//! every figure/table code path and tracks regressions in the simulation's
//! host-side performance; the `repro` binary produces the full tables.

use criterion::{criterion_group, criterion_main, Criterion};

use slash_bench::micro::{run_micro, MicroConfig, RouteMode};
use slash_bench::{fig6, fig7, fig8, fig9, Scale};

fn bench_scale() -> Scale {
    Scale {
        workers: 2,
        records: 4_000,
    }
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    for query in ["ysb", "cm", "nb7", "nb8", "nb11"] {
        g.bench_function(query, |b| {
            b.iter(|| fig6::run(query, bench_scale(), &[2]));
        });
    }
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("cost_ysb", |b| {
        b.iter(|| fig7::run("ysb", bench_scale(), &[2]));
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("channel_direct_64k", |b| {
        b.iter(|| {
            let mut cfg = MicroConfig::new(RouteMode::Direct, 2);
            cfg.records_per_thread = 20_000;
            run_micro(cfg)
        });
    });
    g.bench_function("channel_fanout_64k", |b| {
        b.iter(|| {
            let mut cfg = MicroConfig::new(RouteMode::HashFanout, 2);
            cfg.records_per_thread = 20_000;
            run_micro(cfg)
        });
    });
    g.bench_function("skew_point", |b| {
        b.iter(|| fig8::run_skew_sweep(bench_scale(), &[1.0]));
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_10_table1");
    g.sample_size(10);
    g.bench_function("breakdown_ro", |b| {
        b.iter(|| fig9::run_fig9(bench_scale()));
    });
    g.bench_function("table1_ysb", |b| {
        b.iter(|| fig9::run_table1(bench_scale()));
    });
    g.finish();
}

criterion_group!(benches, bench_fig6, bench_fig7, bench_fig8, bench_fig9);
criterion_main!(benches);
