//! Bounded schedule exploration (DPOR-lite) over `slash-desim` tie-breaks.
//!
//! The simulator's physics fix *when* every event happens; the only degree
//! of freedom a real machine would add is the order among events that land
//! on the same nanosecond. [`slash_desim::TieBreak`] makes that order
//! pluggable, and this module sweeps a scenario across many policies —
//! FIFO, LIFO, and a range of seeded pseudo-random permutations — checking
//! the protocol invariants under every explored schedule and counting how
//! many *distinct* schedules (by [`slash_desim::Sim::schedule_fingerprint`])
//! the sweep actually covered.

use std::collections::HashSet;

use slash_desim::TieBreak;

/// The protocol invariants the race checker asserts under every schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// Messages on a channel arrive in send order, exactly once, and the
    /// stream completes (all payloads then EOS).
    Fifo,
    /// Credit accounting: `acked ≤ consumer.next_seq ≤ producer.next_seq`
    /// at every step, and all three converge at quiescence.
    CreditConservation,
    /// The producer never reuses a ring slot before its previous occupant
    /// was consumed and acknowledged (`producer.next_seq - acked ≤ c`),
    /// and no payload is ever observed corrupted.
    NoOverwrite,
    /// Every node's vector clock only ever advances.
    VclockMonotonic,
    /// At quiescence, every leader's merged state equals the sequential
    /// oracle and all vector clocks agree on the final watermark.
    EpochConvergence,
    /// After an injected fault and its recovery (channel reset + replay,
    /// or snapshot restore + replay), the cluster converges to exactly
    /// the no-fault state: same oracle counts, no epoch applied twice.
    RecoveryConvergence,
}

impl Invariant {
    /// Stable kebab-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::Fifo => "fifo-delivery",
            Invariant::CreditConservation => "credit-conservation",
            Invariant::NoOverwrite => "no-slot-overwrite",
            Invariant::VclockMonotonic => "vclock-monotonic",
            Invariant::EpochConvergence => "epoch-convergence",
            Invariant::RecoveryConvergence => "recovery-convergence",
        }
    }
}

/// One invariant violation observed under a specific schedule policy.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant failed.
    pub invariant: Invariant,
    /// The tie-break policy under which it failed.
    pub policy: TieBreak,
    /// What exactly went wrong.
    pub detail: String,
}

/// The result of one scenario run under one policy.
#[derive(Debug)]
pub struct Outcome {
    /// Schedule fingerprint of the run (see `Sim::schedule_fingerprint`).
    pub fingerprint: u64,
    /// Invariant violations observed during the run.
    pub violations: Vec<(Invariant, String)>,
    /// Rendered flight-recorder dumps (one per violation): the last trace
    /// events leading up to the failure, with schedule-fingerprint and
    /// vector-clock context.
    pub dumps: Vec<String>,
}

/// Aggregated result of sweeping a scenario across policies.
#[derive(Debug)]
pub struct Exploration {
    /// Scenario name.
    pub scenario: &'static str,
    /// Policies run.
    pub schedules_run: usize,
    /// Distinct schedules actually explored (by fingerprint).
    pub distinct_schedules: usize,
    /// All violations across the sweep.
    pub violations: Vec<Violation>,
    /// Flight-recorder dumps collected across the sweep.
    pub dumps: Vec<String>,
}

impl Exploration {
    /// Whether every explored schedule upheld every invariant.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable summary (one line plus any violations).
    pub fn render_human(&self) -> String {
        let mut out = format!(
            "{}: {} schedules run, {} distinct — {}\n",
            self.scenario,
            self.schedules_run,
            self.distinct_schedules,
            if self.clean() { "all invariants hold" } else { "VIOLATIONS" }
        );
        for v in self.violations.iter().take(16) {
            out.push_str(&format!(
                "  [{}] under {:?}: {}\n",
                v.invariant.name(),
                v.policy,
                v.detail
            ));
        }
        if self.violations.len() > 16 {
            out.push_str(&format!("  … and {} more\n", self.violations.len() - 16));
        }
        for dump in self.dumps.iter().take(4) {
            out.push_str(dump);
            if !dump.ends_with('\n') {
                out.push('\n');
            }
        }
        if self.dumps.len() > 4 {
            out.push_str(&format!(
                "  … and {} more flight-recorder dump(s) suppressed\n",
                self.dumps.len() - 4
            ));
        }
        out
    }
}

/// The policy sweep for `n` total schedules: FIFO, LIFO, then seeded
/// permutations. FIFO and LIFO are the two deterministic extremes; the
/// seeds fill in the space between them.
pub fn policies(n: u64) -> Vec<TieBreak> {
    let mut v = vec![TieBreak::Fifo, TieBreak::Lifo];
    v.extend((0..n.saturating_sub(2)).map(TieBreak::Seeded));
    v.truncate(n.max(1) as usize);
    v
}

/// Sweep `run` across `policies(n)` and aggregate.
pub fn explore(
    scenario: &'static str,
    n: u64,
    mut run: impl FnMut(TieBreak) -> Outcome,
) -> Exploration {
    let mut fingerprints = HashSet::new();
    let mut violations = Vec::new();
    let mut dumps = Vec::new();
    let ps = policies(n);
    for &policy in &ps {
        let outcome = run(policy);
        fingerprints.insert(outcome.fingerprint);
        for (invariant, detail) in outcome.violations {
            violations.push(Violation {
                invariant,
                policy,
                detail,
            });
        }
        dumps.extend(outcome.dumps);
    }
    Exploration {
        scenario,
        schedules_run: ps.len(),
        distinct_schedules: fingerprints.len(),
        violations,
        dumps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_sweep_has_requested_size_and_extremes() {
        let ps = policies(10);
        assert_eq!(ps.len(), 10);
        assert_eq!(ps[0], TieBreak::Fifo);
        assert_eq!(ps[1], TieBreak::Lifo);
        assert!(ps[2..].iter().all(|p| matches!(p, TieBreak::Seeded(_))));
        assert_eq!(policies(1).len(), 1);
    }

    #[test]
    fn explore_aggregates_fingerprints_and_violations() {
        let e = explore("t", 8, |p| Outcome {
            fingerprint: match p {
                TieBreak::Fifo => 1,
                TieBreak::Lifo => 2,
                TieBreak::Seeded(s) => 3 + (s % 2),
            },
            violations: if p == TieBreak::Lifo {
                vec![(Invariant::Fifo, "x".into())]
            } else {
                vec![]
            },
            dumps: if p == TieBreak::Lifo { vec!["dump".into()] } else { vec![] },
        });
        assert_eq!(e.schedules_run, 8);
        assert_eq!(e.distinct_schedules, 4);
        assert_eq!(e.violations.len(), 1);
        assert_eq!(e.dumps.len(), 1);
        assert!(!e.clean());
        assert!(e.render_human().contains("dump"));
    }
}
