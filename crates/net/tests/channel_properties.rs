//! Property-based tests of the RDMA channel protocol (paper §6.2).
//!
//! The protocol's stated guarantees — FIFO delivery, no overwrites of
//! unread buffers, credit conservation, self-adjusting rate — must hold for
//! *every* interleaving of producer sends, consumer polls, and simulation
//! progress. proptest drives randomized schedules against the real channel
//! over the real simulated fabric.

use proptest::prelude::*;
use slash_desim::{Sim, SimTime};
use slash_net::{create_channel, ChannelConfig, MsgFlags};
use slash_rdma::{Fabric, FabricConfig};

/// One step of a randomized schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Producer attempts to send the next numbered message.
    Send,
    /// Consumer attempts to poll one message.
    Recv,
    /// Let the simulation advance by a bounded amount of virtual time.
    Advance(u32),
    /// Let the simulation run to quiescence.
    Drain,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Send),
        3 => Just(Op::Recv),
        2 => (1u32..10_000).prop_map(Op::Advance),
        1 => Just(Op::Drain),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Under any schedule: messages arrive in FIFO order with intact
    /// payloads, and the credit invariant
    /// `in_flight = sent - consumed_acked <= c` holds at every step.
    #[test]
    fn fifo_and_credit_conservation(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        credits in 1usize..12,
        buf_size in 48usize..256,
    ) {
        let mut sim = Sim::new();
        let fabric = Fabric::new(FabricConfig::default());
        let a = fabric.add_node();
        let b = fabric.add_node();
        let cfg = ChannelConfig { credits, buffer_size: buf_size, credit_batch: 1 };
        let (mut tx, mut rx) = create_channel(&fabric, a, b, cfg);

        let mut next_to_send = 0u64;
        let mut next_expected = 0u64;

        for op in &ops {
            match op {
                Op::Send => {
                    let sent = tx
                        .try_send(&mut sim, MsgFlags::DATA, &next_to_send.to_le_bytes())
                        .unwrap();
                    if sent {
                        next_to_send += 1;
                    }
                    // Credit conservation: `credits() = c - in_flight` must
                    // stay within [0, c]. (`credits()` computes it with
                    // unsigned arithmetic, so an in_flight > c protocol bug
                    // would panic right here.)
                    prop_assert!(tx.credits() <= credits);
                }
                Op::Recv => {
                    if let Some((flags, data)) = rx.try_recv(&mut sim).unwrap() {
                        prop_assert_eq!(flags, MsgFlags::DATA);
                        let v = u64::from_le_bytes(data.as_slice().try_into().unwrap());
                        prop_assert_eq!(v, next_expected, "FIFO order violated");
                        next_expected += 1;
                    }
                }
                Op::Advance(ns) => {
                    let t = sim.now() + SimTime::from_nanos(*ns as u64);
                    sim.run_until(t);
                }
                Op::Drain => {
                    sim.run();
                }
            }
        }

        // Drain everything that is still in flight.
        loop {
            sim.run();
            match rx.try_recv(&mut sim).unwrap() {
                Some((_, data)) => {
                    let v = u64::from_le_bytes(data.as_slice().try_into().unwrap());
                    prop_assert_eq!(v, next_expected);
                    next_expected += 1;
                }
                None => break,
            }
        }
        prop_assert_eq!(next_expected, next_to_send, "no message may be lost");
    }

    /// A producer that retries on stall eventually delivers every message,
    /// no matter the credit budget or buffer size: the channel is
    /// deadlock-free under in-order consumption.
    #[test]
    fn no_deadlock_under_minimal_credits(
        n_msgs in 1u64..64,
        credits in 1usize..4,
        batch in 1usize..3,
    ) {
        let batch = batch.min(credits);
        let mut sim = Sim::new();
        let fabric = Fabric::new(FabricConfig::default());
        let a = fabric.add_node();
        let b = fabric.add_node();
        let cfg = ChannelConfig { credits, buffer_size: 64, credit_batch: batch };
        let (mut tx, mut rx) = create_channel(&fabric, a, b, cfg);

        let mut sent = 0u64;
        let mut got = 0u64;
        let mut spins = 0u32;
        while got < n_msgs {
            spins += 1;
            prop_assert!(spins < 100_000, "protocol deadlocked");
            if sent < n_msgs {
                if tx.try_send(&mut sim, MsgFlags::DATA, &sent.to_le_bytes()).unwrap() {
                    sent += 1;
                }
            }
            sim.run();
            while let Some((_, data)) = rx.try_recv(&mut sim).unwrap() {
                let v = u64::from_le_bytes(data.as_slice().try_into().unwrap());
                prop_assert_eq!(v, got);
                got += 1;
            }
            sim.run();
        }
        prop_assert_eq!(got, n_msgs);
    }

    /// Payload integrity: arbitrary binary payloads of arbitrary legal
    /// sizes survive the trip bit-for-bit, including zero-length ones.
    #[test]
    fn payload_integrity(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 1..20),
    ) {
        let mut sim = Sim::new();
        let fabric = Fabric::new(FabricConfig::default());
        let a = fabric.add_node();
        let b = fabric.add_node();
        let cfg = ChannelConfig { credits: 4, buffer_size: 256, credit_batch: 1 };
        let (mut tx, mut rx) = create_channel(&fabric, a, b, cfg);

        let mut received: Vec<Vec<u8>> = Vec::new();
        let mut it = payloads.iter();
        let mut pending: Option<&Vec<u8>> = it.next();
        let mut spins = 0;
        while received.len() < payloads.len() {
            spins += 1;
            assert!(spins < 100_000);
            if let Some(p) = pending {
                if tx.try_send(&mut sim, MsgFlags::DATA, p).unwrap() {
                    pending = it.next();
                }
            }
            sim.run();
            while let Some((_, data)) = rx.try_recv(&mut sim).unwrap() {
                received.push(data);
            }
            sim.run();
        }
        prop_assert_eq!(received, payloads);
    }
}
