//! The producer endpoint of an RDMA channel.

use slash_desim::Sim;
use slash_obs::{Cat, Obs};
use slash_rdma::{LocalSlice, Mr, Qp, RdmaError, RemoteKey, RemoteSlice, WorkRequest};

use crate::channel::ChannelConfig;
use crate::layout::{
    footer_offset, generation, payload_capacity, Footer, MsgFlags, FOOTER_SIZE,
};
use crate::stats::ChannelStats;

/// Producer endpoint.
///
/// The sender owns a local *staging ring* that mirrors the consumer's ring:
/// slot `seq % c` is filled in place (zero-copy for the engine, which
/// serializes records directly into registered memory) and shipped with a
/// single one-sided WRITE. The sender may pipeline up to `c` buffers before
/// it must observe returned credit (paper §6.2, "transfer phase").
pub struct ChannelSender {
    qp: Qp,
    staging: Mr,
    /// Consumer's ring region.
    remote_ring: RemoteKey,
    /// Local 8-byte region the consumer writes its cumulative consumed
    /// count into.
    credit_mr: Mr,
    cfg: ChannelConfig,
    next_seq: u64,
    eos_sent: bool,
    /// Fault injection (verification only): send without observing credit.
    fault_ignore_credits: bool,
    /// Statistics (throughput/latency drill-down).
    pub stats: ChannelStats,
    /// Trace handle (disabled by default); `(pid, tid)` lanes for events.
    obs: Obs,
    obs_pid: u32,
    obs_tid: u32,
}

impl ChannelSender {
    pub(crate) fn new(
        qp: Qp,
        staging: Mr,
        remote_ring: RemoteKey,
        credit_mr: Mr,
        cfg: ChannelConfig,
    ) -> Self {
        ChannelSender {
            qp,
            staging,
            remote_ring,
            credit_mr,
            cfg,
            next_seq: 0,
            eos_sent: false,
            fault_ignore_credits: false,
            stats: ChannelStats::default(),
            obs: Obs::disabled(),
            obs_pid: 0,
            obs_tid: 0,
        }
    }

    /// The channel configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Attach a trace handle. `pid`/`tid` are the Perfetto lanes the verb
    /// events of this endpoint render under (node id / peer id by
    /// convention).
    pub fn instrument(&mut self, obs: Obs, pid: u32, tid: u32) {
        self.obs = obs;
        self.obs_pid = pid;
        self.obs_tid = tid;
    }

    /// Remote key of this sender's credit counter region (the consumer
    /// writes its cumulative consumed count there).
    pub(crate) fn credit_remote_key(&self) -> RemoteKey {
        self.credit_mr.remote_key()
    }

    /// Maximum payload per buffer.
    pub fn payload_capacity(&self) -> usize {
        payload_capacity(self.cfg.buffer_size)
    }

    /// Cumulative count of buffers the consumer has acknowledged.
    fn consumed(&self) -> u64 {
        self.credit_mr.read_u64(0)
    }

    /// Credits currently available (polls the local credit counter — this
    /// is the `pause`-loop polling the paper charges to core-bound time).
    pub fn credits(&mut self) -> usize {
        let in_flight = self.next_seq - self.consumed();
        self.cfg.credits - in_flight as usize
    }

    /// Sequence number of the next buffer to be sent.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Cumulative count of buffers the consumer has acknowledged via credit
    /// writes, as currently visible on this side. Exposed so external
    /// checkers (the `slash-verify` race checker) can assert the credit
    /// window invariant `acked ≤ consumer.next_seq ≤ producer.next_seq ≤
    /// acked + credits` without reaching into the credit region.
    pub fn acked(&self) -> u64 {
        self.consumed()
    }

    /// Fault injection (verification only): make every subsequent send
    /// ignore the credit window, so the sender overwrites ring slots the
    /// consumer has not yet drained. Used by `slash-verify` mutation tests
    /// to prove the no-overwrite invariant check actually fires. Never call
    /// this from protocol code.
    #[doc(hidden)]
    pub fn fault_ignore_credit_window(&mut self) {
        self.fault_ignore_credits = true;
    }

    /// Whether end-of-stream was already sent.
    pub fn eos_sent(&self) -> bool {
        self.eos_sent
    }

    /// Whether the underlying QP is in the error state (a work request was
    /// flushed by a fault). Sends are rejected until [`ChannelSender::reset`].
    pub fn is_error(&self) -> bool {
        self.qp.is_error()
    }

    /// Re-establish this endpoint after a fault: reset the QP (bumping the
    /// connection incarnation so stale in-flight writes are fenced), reset
    /// the footer sequence to zero, and zero the credit counter so the full
    /// credit window is available again. The peer receiver must call
    /// [`crate::receiver::ChannelReceiver::reset`] for traffic to resume — and the engine
    /// must re-enqueue whatever epochs the receiver had not committed.
    pub fn reset(&mut self) {
        self.qp.reset();
        self.next_seq = 0;
        self.eos_sent = false;
        self.credit_mr.write_u64(0, 0);
    }

    /// Try to send one buffer. `len` is the payload size and `fill` writes
    /// exactly that many bytes into the slot (in place, zero-copy).
    ///
    /// Returns `Ok(false)` — without calling `fill` — when no credit is
    /// available; the caller should retry after making progress elsewhere
    /// (this is where Slash parks the RDMA coroutine).
    pub fn try_send_with<F>(
        &mut self,
        sim: &mut Sim,
        flags: MsgFlags,
        len: usize,
        fill: F,
    ) -> Result<bool, RdmaError>
    where
        F: FnOnce(&mut [u8]),
    {
        assert!(!self.eos_sent, "send after EOS is a protocol bug");
        assert!(
            len <= self.payload_capacity(),
            "payload {len} exceeds buffer capacity {}",
            self.payload_capacity()
        );
        // Computed from the raw counters (not via `credits()`) so the
        // fault-injected overrun path cannot underflow the subtraction.
        let in_flight = self.next_seq - self.consumed();
        if in_flight >= self.cfg.credits as u64 && !self.fault_ignore_credits {
            self.stats.on_credit_stall();
            self.obs.instant(
                Cat::Verb,
                "credit-stall",
                self.obs_pid,
                self.obs_tid,
                sim.now(),
                &[("seq", self.next_seq), ("in_flight", in_flight)],
            );
            return Ok(false);
        }
        let seq = self.next_seq;
        let slot = (seq % self.cfg.credits as u64) as usize;
        let m = self.cfg.buffer_size;
        let foot_off = footer_offset(slot, m);
        let payload_off = foot_off - len;

        self.staging.with_mut(payload_off, len, fill)?;
        let mut footer = Footer {
            len: len as u32,
            seq32: seq as u32,
            flags,
            gen: generation(seq, self.cfg.credits),
        }
        .encode();
        // Stamp the send time (µs, 40 bits) into the reserved footer bytes
        // so the consumer can measure buffer residence latency.
        let micros = sim.now().as_nanos() / 1_000;
        footer[10..15].copy_from_slice(&micros.to_le_bytes()[..5]);
        self.staging.write(foot_off, &footer)?;

        self.qp.post_send(
            sim,
            WorkRequest::Write {
                wr_id: seq,
                local: LocalSlice::range(&self.staging, payload_off, len + FOOTER_SIZE),
                remote: RemoteSlice {
                    key: self.remote_ring,
                    offset: payload_off,
                },
                signaled: false,
            },
        )?;
        self.next_seq += 1;
        self.stats.on_buffer(len);
        self.obs.instant(
            Cat::Verb,
            "write",
            self.obs_pid,
            self.obs_tid,
            sim.now(),
            &[("seq", seq), ("len", len as u64)],
        );
        Ok(true)
    }

    /// Convenience: send a byte slice.
    pub fn try_send(
        &mut self,
        sim: &mut Sim,
        flags: MsgFlags,
        data: &[u8],
    ) -> Result<bool, RdmaError> {
        self.try_send_with(sim, flags, data.len(), |slot| slot.copy_from_slice(data))
    }

    /// Try to send the end-of-stream marker. Returns false when no credit
    /// is available yet.
    pub fn try_send_eos(&mut self, sim: &mut Sim) -> Result<bool, RdmaError> {
        let sent = self.try_send_with(sim, MsgFlags::EOS, 0, |_| {})?;
        if sent {
            self.eos_sent = true;
        }
        Ok(sent)
    }
}

impl std::fmt::Debug for ChannelSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelSender")
            .field("node", &self.qp.local_node())
            .field("peer", &self.qp.peer_node())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}
