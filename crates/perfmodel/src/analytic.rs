//! Closed-form throughput predictions.
//!
//! The simulation is structural: throughput emerges from per-operation
//! costs, a shared memory link, and paced NICs. For the steady-state
//! cases those bottlenecks compose analytically, which gives an
//! independent prediction to validate the simulator against (see
//! `tests/model_validation.rs`): if simulation and closed form diverge,
//! one of them mis-models the structure.

use slash_core::{CostCategory, CostModel};

// Re-exported so callers can build breakdown expectations too.
pub use slash_core::metrics::CATEGORIES;

/// Inputs describing a steady-state aggregation workload on one node.
#[derive(Debug, Clone, Copy)]
pub struct AggWorkloadShape {
    /// Record size in bytes.
    pub record_size: usize,
    /// Fraction of records surviving the filter.
    pub selectivity: f64,
    /// Steady-state working set of the node's state fragments, bytes.
    pub working_set: u64,
    /// Worker threads on the node.
    pub workers: usize,
}

/// Predicted per-node throughput decomposition.
#[derive(Debug, Clone, Copy)]
pub struct NodePrediction {
    /// CPU-pipeline ceiling, records/s (all workers; includes memory
    /// *latency* stalls, which top-down analysis attributes to
    /// memory-bound time even when bandwidth is not saturated).
    pub cpu_bound: f64,
    /// Memory-*bandwidth* ceiling, records/s.
    pub mem_bound: f64,
    /// Fraction of per-record time spent waiting on memory latency.
    pub memory_stall_fraction: f64,
}

impl NodePrediction {
    /// The binding constraint.
    pub fn throughput(&self) -> f64 {
        self.cpu_bound.min(self.mem_bound)
    }

    /// Top-down classification of the binding resource: memory-bound when
    /// either bandwidth saturates or memory latency dominates the
    /// per-record time (Slash's case in Table 1); retiring otherwise.
    pub fn bottleneck(&self) -> CostCategory {
        if self.mem_bound < self.cpu_bound || self.memory_stall_fraction > 0.5 {
            CostCategory::MemoryBound
        } else {
            CostCategory::Retiring
        }
    }
}

/// Predict a Slash node's aggregation throughput: every worker runs
/// `pipeline + selectivity × (rmw + cache penalty)` per record, and the
/// node's memory link carries the stream plus the state cache misses.
pub fn predict_slash_agg(cost: &CostModel, shape: &AggWorkloadShape) -> NodePrediction {
    let access = cost.cache.random_access(shape.working_set);
    let per_rec_cpu_ns =
        cost.record_pipeline_ns + shape.selectivity * (cost.rmw_base_ns + access.penalty_ns);
    let cpu_bound = shape.workers as f64 / (per_rec_cpu_ns * 1e-9);
    let per_rec_mem_bytes =
        shape.record_size as f64 + shape.selectivity * access.mem_bytes();
    let mem_bound = cost.mem_bandwidth as f64 / per_rec_mem_bytes;
    NodePrediction {
        cpu_bound,
        mem_bound,
        // The state access itself (index probe + load/store) plus its
        // cache penalty is what the engine's top-down accounting files
        // under memory-bound time.
        memory_stall_fraction: shape.selectivity * (cost.rmw_base_ns + access.penalty_ns)
            / per_rec_cpu_ns,
    }
}

/// Predict a Slash node's aggregation throughput with the write-combining
/// hot path: every survivor folds into the L1-resident combiner at
/// `combine_hit_ns`, and only `flush_fraction` of them (distinct keys per
/// batch ÷ survivors per batch) pay the full SSB probe with its cache
/// penalty. `flush_fraction = 1` degenerates to the per-record path plus
/// the (small) combiner overhead; hot key domains drive it toward
/// `distinct_keys / batch_records`.
pub fn predict_slash_agg_combined(
    cost: &CostModel,
    shape: &AggWorkloadShape,
    flush_fraction: f64,
) -> NodePrediction {
    let f = flush_fraction.clamp(0.0, 1.0);
    let access = cost.cache.random_access(shape.working_set);
    let ssb_ns = f * (cost.rmw_base_ns + access.penalty_ns);
    let per_rec_cpu_ns =
        cost.record_pipeline_ns + shape.selectivity * (cost.combine_hit_ns + ssb_ns);
    let cpu_bound = shape.workers as f64 / (per_rec_cpu_ns * 1e-9);
    // Only flushed probes walk the index, so state cache misses scale by
    // the flush fraction too; the stream itself still streams.
    let per_rec_mem_bytes =
        shape.record_size as f64 + shape.selectivity * f * access.mem_bytes();
    let mem_bound = cost.mem_bandwidth as f64 / per_rec_mem_bytes;
    NodePrediction {
        cpu_bound,
        mem_bound,
        memory_stall_fraction: shape.selectivity * ssb_ns / per_rec_cpu_ns,
    }
}

/// Predict the partitioned engine's sender-side per-node throughput:
/// `senders` threads each paying pipeline + selectivity × (partition +
/// queue + copy) per record.
pub fn predict_partitioned_sender(
    cost: &CostModel,
    shape: &AggWorkloadShape,
    senders: usize,
    runtime_factor: f64,
) -> f64 {
    let per_rec_ns = runtime_factor
        * (cost.record_pipeline_ns
            + shape.selectivity
                * (cost.partition_ns
                    + cost.queue_op_ns
                    + shape.record_size as f64 * cost.copy_per_byte_ns));
    senders as f64 / (per_rec_ns * 1e-9)
}

/// Predict the partitioned engine's receiver-side per-node throughput
/// (in records *arriving at receivers*, i.e. post-filter).
pub fn predict_partitioned_receiver(
    cost: &CostModel,
    shape: &AggWorkloadShape,
    receivers: usize,
    runtime_factor: f64,
) -> f64 {
    let access = cost.cache.random_access(shape.working_set);
    let per_rec_ns =
        runtime_factor * (cost.queue_op_ns + cost.rmw_base_ns) + access.penalty_ns;
    receivers as f64 / (per_rec_ns * 1e-9)
}

/// Predict the direct (Slash-style) channel goodput of the drill-down
/// micro-benchmark in GB/s: producers copy records at `copy_per_byte_ns`,
/// consumers tally at ~2 ns/record, everything capped by the line rate.
pub fn predict_micro_direct(cost: &CostModel, threads: usize, line_rate: f64) -> f64 {
    let record = 16.0;
    let producer_gbs = threads as f64 / (cost.copy_per_byte_ns * 1e-9) / 1e9;
    let consumer_gbs = threads as f64 * record / (2.0e-9) / 1e9;
    producer_gbs.min(consumer_gbs).min(line_rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(ws: u64) -> AggWorkloadShape {
        AggWorkloadShape {
            record_size: 16,
            selectivity: 1.0,
            working_set: ws,
            workers: 4,
        }
    }

    #[test]
    fn large_working_sets_become_memory_bound() {
        let cost = CostModel::default();
        let small = predict_slash_agg(&cost, &shape(16 * 1024));
        let huge = predict_slash_agg(&cost, &shape(8 << 30));
        assert!(small.throughput() > huge.throughput());
        assert_eq!(huge.bottleneck(), CostCategory::MemoryBound);
    }

    #[test]
    fn combining_helps_most_when_flushes_are_rare() {
        let cost = CostModel::default();
        let s = shape(1 << 30);
        let plain = predict_slash_agg(&cost, &s).throughput();
        let hot = predict_slash_agg_combined(&cost, &s, 0.05).throughput();
        let cold = predict_slash_agg_combined(&cost, &s, 1.0).throughput();
        assert!(hot > 2.0 * plain, "hot keys {hot:.3e} vs plain {plain:.3e}");
        // With every survivor flushing, combining only adds its fold cost.
        assert!(cold < plain);
        assert!(cold > 0.8 * plain, "cold {cold:.3e} vs plain {plain:.3e}");
    }

    #[test]
    fn slash_prediction_beats_partitioned_prediction() {
        let cost = CostModel::default();
        let s = shape(1 << 30);
        let slash = predict_slash_agg(&cost, &s).throughput();
        let sender = predict_partitioned_sender(&cost, &s, 2, 1.0);
        let receiver = predict_partitioned_receiver(&cost, &s, 2, 1.0);
        let partitioned = sender.min(receiver);
        assert!(
            slash > 2.0 * partitioned,
            "slash {slash:.3e} vs partitioned {partitioned:.3e}"
        );
        // And the managed runtime makes it worse still.
        let flink = predict_partitioned_sender(&cost, &s, 2, 3.5)
            .min(predict_partitioned_receiver(&cost, &s, 2, 3.5));
        assert!(partitioned > 2.0 * flink);
    }

    #[test]
    fn micro_direct_saturates_with_two_threads() {
        let cost = CostModel::default();
        let one = predict_micro_direct(&cost, 1, 11.8);
        let two = predict_micro_direct(&cost, 2, 11.8);
        assert!(one < 11.8);
        assert!((two - 11.8).abs() < 1e-9, "2 threads hit line rate: {two}");
    }
}
