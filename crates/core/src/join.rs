//! Join pairing at trigger time.
//!
//! Triggered holistic state is a per-`(bucket, key)` list of elements
//! tagged with their side (`elem[0]`) and carrying the retained record
//! prefix — whose first eight bytes are the event timestamp. For
//! tumbling/sliding windows the pair count is simply `left × right`; for
//! session windows the elements are additionally split into true sessions
//! by the gap rule (sorted timestamps, break where consecutive events are
//! more than `gap` apart) and pairs are counted per session — the exact
//! NEXMark Q11 semantics *within* a bucket. Sessions that span bucket
//! boundaries remain merged at bucket granularity (the documented
//! approximation).

use crate::window::WindowAssigner;

/// Decode `(ts, is_left)` from a stored join element, if it retains a
/// timestamp.
#[inline]
fn decode(elem: &[u8]) -> Option<(u64, bool)> {
    let ts_bytes = elem.get(1..9)?;
    let mut ts = [0u8; 8];
    ts.copy_from_slice(ts_bytes);
    Some((u64::from_le_bytes(ts), elem[0] == 0))
}

/// Count left × right combinations of a triggered element list under the
/// window's semantics. Returns the number of emitted pairs.
pub fn pair_count(elems: &[Vec<u8>], window: &WindowAssigner) -> u64 {
    match *window {
        WindowAssigner::Session { gap } => session_pair_count(elems, gap),
        _ => {
            let left = elems.iter().filter(|e| e[0] == 0).count() as u64;
            let right = elems.len() as u64 - left;
            left * right
        }
    }
}

/// Session-window pairing: split by the gap rule, pair within sessions.
fn session_pair_count(elems: &[Vec<u8>], gap: u64) -> u64 {
    let mut events: Vec<(u64, bool)> = Vec::with_capacity(elems.len());
    for e in elems {
        match decode(e) {
            Some(ev) => events.push(ev),
            None => {
                // Elements without timestamps cannot be split; fall back
                // to one session (the conservative bucket semantics).
                let left = elems.iter().filter(|x| x[0] == 0).count() as u64;
                return left * (elems.len() as u64 - left);
            }
        }
    }
    events.sort_unstable_by_key(|&(ts, _)| ts);
    let mut total = 0u64;
    let mut left = 0u64;
    let mut right = 0u64;
    let mut last_ts: Option<u64> = None;
    for (ts, is_left) in events {
        if let Some(prev) = last_ts {
            if ts - prev > gap {
                total += left * right;
                left = 0;
                right = 0;
            }
        }
        if is_left {
            left += 1;
        } else {
            right += 1;
        }
        last_ts = Some(ts);
    }
    total + left * right
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elem(side: u8, ts: u64) -> Vec<u8> {
        let mut e = vec![side];
        e.extend_from_slice(&ts.to_le_bytes());
        e.extend_from_slice(&[0u8; 8]); // rest of the retained prefix
        e
    }

    #[test]
    fn tumbling_is_cross_product() {
        let elems = vec![elem(0, 1), elem(0, 2), elem(1, 3)];
        let w = WindowAssigner::Tumbling { size: 100 };
        assert_eq!(pair_count(&elems, &w), 2);
    }

    #[test]
    fn sessions_split_on_gaps() {
        // Two sessions: {1,5,9} (1 left, 2 right... let's build it) and
        // {200, 205}.
        let elems = vec![
            elem(0, 1),
            elem(1, 5),
            elem(1, 9),
            elem(0, 200),
            elem(1, 205),
        ];
        let w = WindowAssigner::Session { gap: 50 };
        // Session 1: 1 left × 2 right = 2; session 2: 1 × 1 = 1.
        assert_eq!(pair_count(&elems, &w), 3);
        // The naive bucket product would be 2 × 3 = 6.
        let naive = WindowAssigner::Tumbling { size: 1 << 40 };
        assert_eq!(pair_count(&elems, &naive), 6);
    }

    #[test]
    fn chained_events_stay_in_one_session() {
        // Each consecutive pair within gap, total span way over gap.
        let elems: Vec<Vec<u8>> = (0..10).map(|i| elem((i % 2) as u8, i * 40)).collect();
        let w = WindowAssigner::Session { gap: 50 };
        assert_eq!(pair_count(&elems, &w), 25);
    }

    #[test]
    fn unsorted_input_is_sorted_first() {
        let elems = vec![elem(1, 205), elem(0, 1), elem(1, 5), elem(0, 200)];
        let w = WindowAssigner::Session { gap: 50 };
        assert_eq!(pair_count(&elems, &w), 2);
    }

    #[test]
    fn sessions_with_one_side_only_emit_nothing() {
        let elems = vec![elem(0, 1), elem(0, 10), elem(1, 500)];
        let w = WindowAssigner::Session { gap: 50 };
        assert_eq!(pair_count(&elems, &w), 0);
    }

    #[test]
    fn timestampless_elements_fall_back_to_bucket_semantics() {
        let elems = vec![vec![0u8], vec![1u8], vec![1u8]];
        let w = WindowAssigner::Session { gap: 50 };
        assert_eq!(pair_count(&elems, &w), 2);
    }

    #[test]
    fn empty_list() {
        let w = WindowAssigner::Session { gap: 50 };
        assert_eq!(pair_count(&[], &w), 0);
    }
}
