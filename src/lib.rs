#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # Slash — RDMA-native stateful stream processing
//!
//! Facade crate re-exporting the public API of the Slash reproduction.
//! See the README and DESIGN.md at the repository root.

pub use slash_baselines as baselines;
pub use slash_chaos as chaos;
pub use slash_core as core;
pub use slash_desim as desim;
pub use slash_net as net;
pub use slash_obs as obs;
pub use slash_perfmodel as perfmodel;
pub use slash_rdma as rdma;
pub use slash_scale as scale;
pub use slash_state as state;
pub use slash_workloads as workloads;
