//! Uniform system-under-test runners over the workload generators.

use slash_baselines::flinksim::flink_config;
use slash_baselines::partitioned::run_partitioned;
use slash_baselines::uppar::uppar_config;
use slash_baselines::{run_lightsaber, CommonReport};
use slash_core::{RunConfig, SlashCluster};
use slash_workloads::{GenConfig, Workload};

use crate::scale::Scale;

/// Which workload to generate for a given number of source threads.
pub type WorkloadGen = fn(&GenConfig) -> Workload;

/// Run Slash: every thread both ingests and processes (paper §8.2.2:
/// "Slash runs filter, projection, and windowing on all threads").
pub fn slash(gen: WorkloadGen, nodes: usize, scale: Scale) -> CommonReport {
    let w = gen(&GenConfig::new(nodes * scale.workers, scale.records));
    let cfg = RunConfig::new(nodes, scale.workers);
    let r = SlashCluster::run(w.plan, w.partitions, cfg);
    CommonReport {
        records: r.records,
        processing_time: r.processing_time,
        completion_time: r.completion_time,
        emitted: r.emitted,
        total_pairs: r.total_pairs,
        results: r.results,
        sender_metrics: Default::default(),
        receiver_metrics: r.metrics,
        net_tx_bytes: r.net_tx_bytes,
    }
}

/// Run RDMA UpPar: half the threads partition, half process; the same
/// total input volume is spread over the sender threads.
pub fn uppar(gen: WorkloadGen, nodes: usize, scale: Scale) -> CommonReport {
    let senders = (scale.workers / 2).max(1);
    let per_sender = scale.records * scale.workers as u64 / senders as u64;
    let w = gen(&GenConfig::new(nodes * senders, per_sender));
    run_partitioned(w.plan, w.partitions, uppar_config(nodes, scale.workers))
}

/// Run Flink-sim with the same thread split as UpPar.
pub fn flink(gen: WorkloadGen, nodes: usize, scale: Scale) -> CommonReport {
    let senders = (scale.workers / 2).max(1);
    let per_sender = scale.records * scale.workers as u64 / senders as u64;
    let w = gen(&GenConfig::new(nodes * senders, per_sender));
    run_partitioned(w.plan, w.partitions, flink_config(nodes, scale.workers))
}

/// Run LightSaber-sim on one node.
pub fn lightsaber(gen: WorkloadGen, scale: Scale) -> CommonReport {
    let w = gen(&GenConfig::new(scale.workers, scale.records));
    let cfg = slash_baselines::lightsaber::lightsaber_config(scale.workers);
    run_lightsaber(w.plan, w.partitions, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slash_workloads::ysb;

    #[test]
    fn all_suts_process_the_same_volume() {
        let scale = Scale::tiny();
        let s = slash(ysb, 2, scale);
        let u = uppar(ysb, 2, scale);
        let f = flink(ysb, 2, scale);
        assert_eq!(s.records, u.records);
        assert_eq!(u.records, f.records);
        let l = lightsaber(ysb, scale);
        assert_eq!(l.records, scale.records * scale.workers as u64);
    }
}
