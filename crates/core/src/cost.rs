//! The calibrated cost model behind virtual CPU time.
//!
//! The reproduction runs on a one-core VM, so the paper's 16-node × 10-core
//! testbed is simulated: every engine action charges virtual nanoseconds
//! from the constants below. The constants are **not** arbitrary — they are
//! anchored to the paper's own micro-architecture measurements (Table 1:
//! Slash ≈ 53 cycles/record ≈ 22 ns at 2.4 GHz of pure CPU work; RDMA
//! UpPar ≈ 274 cycles/record on the partitioning path) and to textbook
//! x86 cache-miss latencies. EXPERIMENTS.md records the sensitivity of
//! each figure to these constants.
//!
//! CPU cost is only half the model: state accesses also consume **memory
//! bandwidth** (a per-node shared link) according to the cache model, which
//! is what makes Slash memory-bound like the paper measures (70.2 GB/s of
//! aggregate traffic on two nodes, Table 1), and what makes skewed keys
//! *help* Slash (a smaller working set hits cache more often, §8.3.2).

use slash_desim::SimTime;

/// Nominal clock of the paper's testbed CPU (Intel Xeon Gold 5115,
/// 2.4 GHz). The single source of truth for every ns↔cycle conversion;
/// [`crate::metrics::EngineMetrics`] and the perfmodel tables both derive
/// their cycle counts from it.
pub const TESTBED_CLOCK_GHZ: f64 = 2.4;

/// Cache hierarchy model used to derive per-access penalties from the
/// state's working-set size. Sizes follow the paper's Intel Xeon Gold 5115
/// (10 cores, 32 KiB L1d, 1 MiB L2 per core, 13.75 MiB shared LLC).
#[derive(Debug, Clone, Copy)]
pub struct CacheModel {
    /// L1d capacity per core, bytes.
    pub l1_bytes: u64,
    /// L2 capacity per core, bytes.
    pub l2_bytes: u64,
    /// Shared LLC capacity, bytes.
    pub llc_bytes: u64,
    /// Extra latency of an L2 hit over L1, ns.
    pub l2_ns: f64,
    /// Extra latency of an LLC hit over L1, ns.
    pub llc_ns: f64,
    /// Extra latency of a DRAM access, ns.
    pub dram_ns: f64,
}

impl Default for CacheModel {
    fn default() -> Self {
        CacheModel {
            l1_bytes: 32 * 1024,
            l2_bytes: 1024 * 1024,
            llc_bytes: 14 * 1024 * 1024,
            l2_ns: 4.0,
            llc_ns: 14.0,
            dram_ns: 55.0,
        }
    }
}

/// Which level a working set of `bytes` effectively lives in, and the
/// resulting per-access penalty and expected misses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessCost {
    /// Extra nanoseconds per random access into the working set.
    pub penalty_ns: f64,
    /// Probability the access misses L1d.
    pub l1_miss: f64,
    /// Probability the access misses L2.
    pub l2_miss: f64,
    /// Probability the access misses the LLC (goes to DRAM).
    pub llc_miss: f64,
}

impl AccessCost {
    /// Expected bytes of memory-bus traffic for this access (cache-line
    /// transfers from beyond the LLC).
    #[inline]
    pub fn mem_bytes(&self) -> f64 {
        self.llc_miss * 64.0
    }
}

impl CacheModel {
    /// Cost of one random access into a working set of `bytes`.
    ///
    /// A smooth interpolation (fractional hit ratios at level boundaries)
    /// avoids cliff artifacts in the skew sweep.
    pub fn random_access(&self, bytes: u64) -> AccessCost {
        let frac = |cap: u64| -> f64 {
            if bytes <= cap {
                0.0
            } else {
                1.0 - cap as f64 / bytes as f64
            }
        };
        // Probability the access misses each level.
        let m1 = frac(self.l1_bytes);
        let m2 = frac(self.l2_bytes);
        let m3 = frac(self.llc_bytes);
        let penalty_ns = m1 * self.l2_ns + m2 * (self.llc_ns - self.l2_ns).max(0.0)
            + m3 * (self.dram_ns - self.llc_ns).max(0.0);
        AccessCost {
            penalty_ns,
            l1_miss: m1,
            l2_miss: m2,
            llc_miss: m3,
        }
    }
}

/// Per-operation virtual CPU costs, in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Parse + filter + project + window-assign per record (fused pipeline
    /// stages; Slash's entire stateless prefix).
    pub record_pipeline_ns: f64,
    /// Hash-index probe + in-place RMW, before cache penalties.
    pub rmw_base_ns: f64,
    /// Log append (holistic state), before cache penalties.
    pub append_base_ns: f64,
    /// One write-combiner fold: probe + in-place CRDT update of an
    /// L1-resident table. No cache penalty applies — the table is sized
    /// to stay within L1d, which is the whole point of combining.
    pub combine_hit_ns: f64,
    /// Merging one delta entry on a leader.
    pub merge_entry_ns: f64,
    /// Hash-partitioning one record (hash + destination select + branch
    /// mispredictions — the front-end-heavy path of Table 1's sender).
    pub partition_ns: f64,
    /// Copying one byte into a staging/exchange buffer (~10 GB/s memcpy).
    pub copy_per_byte_ns: f64,
    /// Queue handover between threads (scale-out SPE exchange step).
    pub queue_op_ns: f64,
    /// One empty poll (the `pause` spin of §8.3.3).
    pub poll_empty_ns: f64,
    /// Posting one RDMA work request (doorbell + WQE).
    pub post_wr_ns: f64,
    /// Multiplier a managed runtime pays on every CPU cost (JIT'd
    /// serialization, object headers, GC pressure — the Flink baseline).
    pub managed_runtime_factor: f64,
    /// Streaming read of one byte from the in-memory source.
    pub source_per_byte_ns: f64,
    /// Per-batch cost of acquiring work from a *shared* task queue.
    /// Zero for Slash (per-worker queues, §5.3); the LightSaber baseline
    /// sets it to model its single shared queue's contention.
    pub task_queue_ns: f64,
    /// Handing one split-key record to the forward fabric (key lookup in
    /// a tiny sorted list + buffer append). Far below the full pipeline +
    /// RMW the receiver pays — that asymmetry is what makes spreading a
    /// hot key's records pay off — but not free: the sender still
    /// touches every forwarded byte.
    pub forward_record_ns: f64,
    /// Per-node usable memory bandwidth, bytes/second, shared by all
    /// worker threads (Xeon Gold 5115: 6 × DDR4-2400 ≈ 115 GB/s peak;
    /// ~40 GB/s sustainable under random access).
    pub mem_bandwidth: u64,
    /// Core clock for ns↔cycle accounting, GHz. Defaults to
    /// [`TESTBED_CLOCK_GHZ`]; sensitivity sweeps may override it, and the
    /// cluster driver propagates it into each node's `EngineMetrics`.
    pub clock_ghz: f64,
    /// Cache hierarchy.
    pub cache: CacheModel,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            record_pipeline_ns: 6.0,
            rmw_base_ns: 14.0,
            append_base_ns: 20.0,
            combine_hit_ns: 4.0,
            merge_entry_ns: 18.0,
            partition_ns: 55.0,
            copy_per_byte_ns: 0.1,
            queue_op_ns: 45.0,
            poll_empty_ns: 8.0,
            post_wr_ns: 60.0,
            managed_runtime_factor: 3.5,
            source_per_byte_ns: 0.012,
            task_queue_ns: 0.0,
            forward_record_ns: 4.0,
            mem_bandwidth: 40_000_000_000,
            clock_ghz: TESTBED_CLOCK_GHZ,
            cache: CacheModel::default(),
        }
    }
}

impl CostModel {
    /// Convert fractional nanoseconds accumulated over a batch into a
    /// `SimTime`, rounding up.
    pub fn to_time(ns: f64) -> SimTime {
        SimTime::from_nanos(ns.ceil().max(0.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_working_sets_are_free() {
        let c = CacheModel::default();
        let a = c.random_access(16 * 1024);
        assert_eq!(a.penalty_ns, 0.0);
        assert_eq!(a.l1_miss, 0.0);
        assert_eq!(a.mem_bytes(), 0.0);
    }

    #[test]
    fn penalties_increase_with_working_set() {
        let c = CacheModel::default();
        let l2 = c.random_access(512 * 1024);
        let llc = c.random_access(8 * 1024 * 1024);
        let dram = c.random_access(1 << 30);
        assert!(l2.penalty_ns > 0.0);
        assert!(llc.penalty_ns > l2.penalty_ns);
        assert!(dram.penalty_ns > llc.penalty_ns);
        // A gigabyte working set is effectively all DRAM.
        assert!(dram.penalty_ns > 0.95 * c.dram_ns);
        assert!(dram.llc_miss > 0.95, "LLC misses: {}", dram.llc_miss);
        assert!(dram.mem_bytes() > 60.0);
    }

    #[test]
    fn monotone_in_bytes() {
        let c = CacheModel::default();
        let mut last = -1.0;
        for shift in 10..32 {
            let a = c.random_access(1u64 << shift);
            assert!(a.penalty_ns >= last, "not monotone at 2^{shift}");
            last = a.penalty_ns;
        }
    }

    #[test]
    fn to_time_rounds_up() {
        assert_eq!(CostModel::to_time(0.2), SimTime::from_nanos(1));
        assert_eq!(CostModel::to_time(5.0), SimTime::from_nanos(5));
        assert_eq!(CostModel::to_time(-3.0), SimTime::ZERO);
    }

    #[test]
    fn defaults_are_anchored_to_the_paper() {
        let m = CostModel::default();
        // Slash's hot path (pipeline + RMW on a cache-resident working
        // set) must land near Table 1's 53 cycles ≈ 22ns/record.
        let hot = m.record_pipeline_ns + m.rmw_base_ns;
        assert!((15.0..30.0).contains(&hot), "slash hot path {hot}ns");
        // UpPar's sender path (pipeline + partition + copy of a 78-byte
        // record) must land near Table 1's 274 cycles ≈ 114ns.
        let uppar = m.record_pipeline_ns + m.partition_ns + 78.0 * m.copy_per_byte_ns
            + m.queue_op_ns;
        assert!((80.0..150.0).contains(&uppar), "uppar sender path {uppar}ns");
    }
}
