//! Completion queues.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use slash_desim::{ProcId, Sim};

/// What completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionKind {
    /// A local WRITE/WRITE_WITH_IMM finished (remotely visible, acked).
    Write,
    /// A local SEND was delivered into a remote receive buffer.
    Send,
    /// A local READ finished; the data is in the local buffer.
    Read,
    /// An inbound SEND landed in one of our posted receive buffers.
    Recv,
    /// An inbound WRITE_WITH_IMM consumed one of our posted receives.
    RecvImm,
}

/// Whether the work request succeeded or was flushed.
///
/// A real reliable connection that loses its peer (or whose link goes down
/// past the retry budget) moves the QP to the error state and *flushes* all
/// outstanding work requests: each signaled WR still produces a completion,
/// but with an error status instead of silently succeeding. The simulator
/// mirrors that so fault-injection runs can observe failures through the
/// same completion path real protocol code uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionStatus {
    /// The operation completed and its effects are visible.
    Success,
    /// The work request was flushed: the link or peer failed before the
    /// operation could take effect. No remote memory was modified.
    FlushErr,
}

/// A work completion.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// Cookie of the work request (send side) or receive request (recv side).
    pub wr_id: u64,
    /// Which operation completed.
    pub kind: CompletionKind,
    /// Payload bytes transferred.
    pub byte_len: usize,
    /// Immediate data, for [`CompletionKind::RecvImm`].
    pub imm: Option<u32>,
    /// Success or flush-error status.
    pub status: CompletionStatus,
}

impl Completion {
    /// Whether the work request completed successfully.
    pub fn is_ok(&self) -> bool {
        self.status == CompletionStatus::Success
    }
}

/// A completion queue.
///
/// Protocol processes poll this without blocking from inside their scheduler
/// loop; optionally a process can park itself and register as the queue's
/// waiter to be woken on the next completion (the "notify" mode of verbs).
#[derive(Default)]
pub struct Cq {
    entries: VecDeque<Completion>,
    waiter: Option<ProcId>,
}

/// Shared handle to a completion queue.
#[derive(Clone, Default)]
pub struct CqHandle(Rc<RefCell<Cq>>);

impl CqHandle {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Non-blocking poll for the oldest completion.
    pub fn poll(&self) -> Option<Completion> {
        self.0.borrow_mut().entries.pop_front()
    }

    /// Drain up to `max` completions into `out`; returns the count.
    pub fn poll_batch(&self, max: usize, out: &mut Vec<Completion>) -> usize {
        let mut q = self.0.borrow_mut();
        let n = max.min(q.entries.len());
        out.extend(q.entries.drain(..n));
        n
    }

    /// Number of queued completions.
    pub fn len(&self) -> usize {
        self.0.borrow().entries.len()
    }

    /// Whether no completions are queued.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().entries.is_empty()
    }

    /// Register `pid` to be woken when the next completion arrives. The
    /// registration is one-shot, like `ibv_req_notify_cq`.
    pub fn arm(&self, pid: ProcId) {
        self.0.borrow_mut().waiter = Some(pid);
    }

    /// Push a completion and wake the armed waiter, if any.
    pub fn push(&self, sim: &mut Sim, c: Completion) {
        let waiter = {
            let mut q = self.0.borrow_mut();
            q.entries.push_back(c);
            q.waiter.take()
        };
        if let Some(pid) = waiter {
            sim.wake(pid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(wr_id: u64) -> Completion {
        Completion {
            wr_id,
            kind: CompletionKind::Write,
            byte_len: 0,
            imm: None,
            status: CompletionStatus::Success,
        }
    }

    #[test]
    fn fifo_order() {
        let mut sim = Sim::new();
        let cq = CqHandle::new();
        for i in 0..5 {
            cq.push(&mut sim, c(i));
        }
        assert_eq!(cq.len(), 5);
        let ids: Vec<u64> = std::iter::from_fn(|| cq.poll().map(|x| x.wr_id)).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(cq.is_empty());
    }

    #[test]
    fn batch_drain() {
        let mut sim = Sim::new();
        let cq = CqHandle::new();
        for i in 0..10 {
            cq.push(&mut sim, c(i));
        }
        let mut out = Vec::new();
        assert_eq!(cq.poll_batch(4, &mut out), 4);
        assert_eq!(cq.poll_batch(100, &mut out), 6);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn arm_is_one_shot() {
        use slash_desim::{Process, Step};
        use std::rc::Rc;

        struct Waiter {
            cq: CqHandle,
            wakeups: Rc<RefCell<u32>>,
        }
        impl Process for Waiter {
            fn step(&mut self, _sim: &mut Sim, me: ProcId) -> Step {
                if self.cq.poll().is_some() {
                    *self.wakeups.borrow_mut() += 1;
                }
                self.cq.arm(me);
                Step::Park
            }
        }

        let mut sim = Sim::new();
        let cq = CqHandle::new();
        let wakeups = Rc::new(RefCell::new(0));
        sim.spawn(Waiter {
            cq: cq.clone(),
            wakeups: Rc::clone(&wakeups),
        });
        let cq2 = cq.clone();
        sim.schedule_in(slash_desim::SimTime::from_nanos(10), move |s| {
            cq2.push(s, c(1));
        });
        sim.run();
        assert_eq!(*wakeups.borrow(), 1);
    }
}
