//! Error types for fabric operations.

use std::fmt;

/// Errors surfaced by verb-level operations.
///
/// These correspond to conditions a real ibverbs stack reports either as
/// immediate `errno`s (invalid arguments) or as flushed work completions
/// (access violations). The simulator reports all of them eagerly at post
/// time, which makes protocol bugs fail fast and deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdmaError {
    /// The rkey does not name a registered memory region on the target node.
    InvalidRkey {
        /// Target node id.
        node: u32,
        /// The unknown rkey.
        rkey: u32,
    },
    /// A local or remote access falls outside the registered region.
    OutOfBounds {
        /// Length of the registered region.
        region_len: usize,
        /// Requested start offset.
        offset: usize,
        /// Requested length.
        len: usize,
    },
    /// The queue pair is not connected (or its peer was destroyed).
    NotConnected,
    /// A SEND arrived but the receiver had no posted receive buffer and the
    /// receive backlog limit was reached (models RNR NAK exhaustion).
    ReceiverNotReady,
    /// A posted receive buffer is smaller than the inbound SEND payload.
    RecvBufferTooSmall {
        /// Payload size of the inbound SEND.
        needed: usize,
        /// Size of the posted buffer.
        got: usize,
    },
    /// The send queue has more outstanding unsignaled work than the queue
    /// depth allows.
    SendQueueFull,
    /// The queue pair is in the error state (a prior work request was
    /// flushed after a link or peer failure). Posts are rejected until the
    /// QP is reset and the connection re-established.
    QpError,
}

impl fmt::Display for RdmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdmaError::InvalidRkey { node, rkey } => {
                write!(f, "invalid rkey {rkey:#x} on node {node}")
            }
            RdmaError::OutOfBounds {
                region_len,
                offset,
                len,
            } => write!(
                f,
                "access [{offset}, {}) outside region of {region_len} bytes",
                offset + len
            ),
            RdmaError::NotConnected => write!(f, "queue pair not connected"),
            RdmaError::ReceiverNotReady => write!(f, "receiver not ready (RNR)"),
            RdmaError::RecvBufferTooSmall { needed, got } => {
                write!(f, "receive buffer too small: need {needed}, got {got}")
            }
            RdmaError::SendQueueFull => write!(f, "send queue full"),
            RdmaError::QpError => write!(f, "queue pair in error state"),
        }
    }
}

impl std::error::Error for RdmaError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, RdmaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RdmaError::OutOfBounds {
            region_len: 100,
            offset: 90,
            len: 20,
        };
        assert_eq!(e.to_string(), "access [90, 110) outside region of 100 bytes");
        assert!(RdmaError::NotConnected.to_string().contains("not connected"));
    }
}
