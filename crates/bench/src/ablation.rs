//! Ablation studies of the design choices DESIGN.md calls out.
//!
//! The paper motivates several constants without dedicated figures:
//! `c = 8` credits ("other configurations, such as c = 16, decrease
//! throughput by up to 3%, whereas c = 64 leads to a performance
//! regression by up to 10%"), the 64 MB epoch budget, per-buffer credit
//! returns, and the observation that more NICs per node would raise
//! Slash's throughput (§8.3.2 discussion). Each sweep below isolates one
//! of those choices.

use slash_perfmodel::Table;
use slash_rdma::{FabricConfig, NicConfig};
use slash_workloads::{ysb, GenConfig};

use crate::micro::{run_micro, MicroConfig, RouteMode};
use crate::scale::Scale;

/// Credit-count sweep (the paper's c = 8 choice).
pub fn run_credits(scale: Scale) -> Table {
    let mut t = Table::new(
        "Ablation: channel credits c (RO direct, 1 thread, 4 KiB buffers)",
        &["credits", "throughput GB/s", "mean latency"],
    );
    for credits in [1usize, 2, 4, 8, 16, 64] {
        // One producer thread and small buffers make the pipelining depth
        // the binding constraint (with >=2 threads the link saturates even
        // in stop-and-wait because channels pipeline across each other).
        let mut cfg = MicroConfig::new(RouteMode::Direct, 1);
        cfg.records_per_thread = scale.records.max(20_000);
        cfg.buffer_size = 4 * 1024;
        cfg.credits = credits;
        let r = run_micro(cfg);
        t.row(vec![
            credits.to_string(),
            format!("{:.2}", r.throughput_gbs()),
            r.mean_latency
                .map(|l| l.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    t
}

/// Credit-batching sweep (per-buffer vs batched credit returns).
pub fn run_credit_batch(scale: Scale) -> Table {
    let mut t = Table::new(
        "Ablation: credit return batching (RO direct, 2 threads, 4 KiB buffers)",
        &["batch", "throughput GB/s"],
    );
    for batch in [1usize, 2, 4, 8] {
        let mut cfg = MicroConfig::new(RouteMode::Direct, 2);
        cfg.records_per_thread = scale.records.max(20_000);
        cfg.buffer_size = 4 * 1024;
        cfg.credit_batch = batch.min(cfg.credits);
        let r = run_micro(cfg);
        t.row(vec![
            batch.to_string(),
            format!("{:.2}", r.throughput_gbs()),
        ]);
    }
    t
}

/// Epoch-budget sweep: merge overhead vs synchronization frequency.
pub fn run_epoch_bytes(scale: Scale) -> Table {
    let mut t = Table::new(
        "Ablation: SSB epoch budget (YSB, 2 nodes)",
        &["epoch bytes", "throughput rec/s", "delta bytes on wire"],
    );
    for epoch_kb in [16u64, 64, 256, 1024, 4096, 65536] {
        let w = ysb(&GenConfig::new(2 * scale.workers, scale.records));
        let mut cfg = slash_core::RunConfig::new(2, scale.workers);
        cfg.epoch_bytes = epoch_kb * 1024;
        let r = slash_core::SlashCluster::run(w.plan, w.partitions, cfg);
        t.row(vec![
            format!("{}KiB", epoch_kb),
            format!("{:.3e}", r.throughput()),
            format!("{}", r.net_tx_bytes),
        ]);
    }
    t
}

/// NIC ports per node: the paper's claim that Slash's 2-thread network
/// saturation means more NICs buy more throughput, while the partitioned
/// design is CPU-bound and cannot use them.
pub fn run_nic_ports(scale: Scale) -> Table {
    let mut t = Table::new(
        "Ablation: NIC ports per node (RO, 6 threads)",
        &["ports", "slash GB/s", "uppar GB/s"],
    );
    for ports in [1usize, 2, 4] {
        let fabric = FabricConfig {
            nic: NicConfig {
                ports,
                ..NicConfig::default()
            },
        };
        let mut d = MicroConfig::new(RouteMode::Direct, 6);
        d.records_per_thread = scale.records.max(20_000);
        d.fabric = fabric;
        let mut f = MicroConfig::new(RouteMode::HashFanout, 6);
        f.records_per_thread = scale.records.max(20_000);
        f.fabric = fabric;
        t.row(vec![
            ports.to_string(),
            format!("{:.2}", run_micro(d).throughput_gbs()),
            format!("{:.2}", run_micro(f).throughput_gbs()),
        ]);
    }
    t
}

/// All ablations.
pub fn run_all(scale: Scale) -> Vec<Table> {
    vec![
        run_credits(scale),
        run_credit_batch(scale),
        run_epoch_bytes(scale),
        run_nic_ports(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(t: &Table, row: usize, col: usize) -> f64 {
        t.rows[row][col]
            .trim_end_matches("GB/s")
            .trim()
            .parse()
            .unwrap()
    }

    #[test]
    fn credits_starve_below_the_pipelining_knee() {
        let t = run_credits(Scale::tiny());
        // c = 1 is stop-and-wait: far below c = 8.
        let c1 = cell(&t, 0, 1);
        let c8 = cell(&t, 3, 1);
        assert!(c8 > 1.5 * c1, "c=1 {c1} vs c=8 {c8}");
        // Beyond the knee, more credits stop helping (the paper sees a
        // slight regression; the model plateaus — noted in EXPERIMENTS.md).
        let c64 = cell(&t, 5, 1);
        assert!(c64 <= c8 * 1.1);
    }

    #[test]
    fn more_ports_lift_the_direct_path_only() {
        let t = run_nic_ports(Scale::tiny());
        let slash_1 = cell(&t, 0, 1);
        let slash_4 = cell(&t, 2, 1);
        assert!(
            slash_4 > 1.5 * slash_1,
            "slash must scale with ports: {slash_1} -> {slash_4}"
        );
        let uppar_1 = cell(&t, 0, 2);
        let uppar_4 = cell(&t, 2, 2);
        assert!(
            uppar_4 < 1.3 * uppar_1,
            "uppar is CPU-bound, ports cannot help: {uppar_1} -> {uppar_4}"
        );
    }

    #[test]
    fn tiny_epochs_cost_wire_overhead() {
        let t = run_epoch_bytes(Scale::tiny());
        // Frequent epochs ship more chunk headers and empty fin messages.
        let small_wire: u64 = t.rows[0][2].parse().unwrap();
        let large_wire: u64 = t.rows[5][2].parse().unwrap();
        assert!(
            small_wire > large_wire,
            "16KiB epochs wire {small_wire} vs 64MiB {large_wire}"
        );
        // Throughput stays within a band: epoch closes are cheap but not
        // free (scan + encode of the delta region).
        let small_tp: f64 = t.rows[0][1].parse().unwrap();
        let large_tp: f64 = t.rows[5][1].parse().unwrap();
        assert!(large_tp > 0.8 * small_tp && small_tp > 0.7 * large_tp);
    }
}
