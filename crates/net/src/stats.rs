//! Per-channel transfer statistics, used by the drill-down experiments
//! (paper §8.3) to report throughput, latency, and stall behaviour.

use slash_desim::SimTime;

/// Counters kept by both endpoints of a channel.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChannelStats {
    /// Data buffers sent (producer) / consumed (receiver).
    pub buffers: u64,
    /// Payload bytes moved (excludes footers and credit messages).
    pub payload_bytes: u64,
    /// Times the producer wanted a slot but had zero credits.
    pub credit_stalls: u64,
    /// Times the consumer polled and found nothing ready.
    pub empty_polls: u64,
    /// Credit-return messages sent by the consumer.
    pub credit_msgs: u64,
    /// Sum of per-buffer residence latency (send → consume), for averages.
    pub latency_sum: SimTime,
    /// Number of latency samples.
    pub latency_samples: u64,
}

impl ChannelStats {
    /// Mean buffer latency, if any samples were taken.
    pub fn mean_latency(&self) -> Option<SimTime> {
        self.latency_sum
            .as_nanos()
            .checked_div(self.latency_samples)
            .map(SimTime::from_nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_latency() {
        let mut s = ChannelStats::default();
        assert_eq!(s.mean_latency(), None);
        s.latency_sum = SimTime::from_nanos(300);
        s.latency_samples = 3;
        assert_eq!(s.mean_latency(), Some(SimTime::from_nanos(100)));
    }
}
