//! Closed-loop integration: the [`ScaleController`] policy driving the
//! `slash-core` elastic mechanism end to end. A paced diurnal load curve
//! overloads the packed cluster; the controller must spread partitions
//! onto parked hosts, the run must stay *exact* (same results digest as
//! a static run of the same curve), and no record may be lost.

use std::rc::Rc;

use slash_chaos::{ChaosConfig, FaultPlan, FtConfig};
use slash_core::source::RateCurve;
use slash_core::window::WindowAssigner;
use slash_core::{
    AggSpec, ElasticConfig, QueryPlan, RecordSchema, RunConfig, SlashCluster, StaticDirector,
    StreamDef,
};
use slash_desim::SimTime;
use slash_obs::Obs;
use slash_scale::{ControllerConfig, Decision, ScaleController};

fn gen(n: u64, keys: u64) -> Rc<Vec<u8>> {
    let mut buf = Vec::with_capacity((n * 16) as usize);
    for i in 0..n {
        buf.extend_from_slice(&i.to_le_bytes());
        buf.extend_from_slice(&(i % keys).to_le_bytes());
    }
    Rc::new(buf)
}

fn count_plan() -> QueryPlan {
    QueryPlan::Aggregate {
        input: StreamDef::new(RecordSchema::plain(16)),
        window: WindowAssigner::Tumbling { size: 4_000 },
        agg: AggSpec::Count,
    }
}

fn cfg(nodes: usize) -> RunConfig {
    let mut cfg = RunConfig::new(nodes, 1);
    cfg.collect_results = true;
    cfg.epoch_bytes = 16 * 1024;
    cfg
}

fn chaos() -> ChaosConfig {
    ChaosConfig {
        plan: FaultPlan::new(),
        ft: FtConfig {
            detect_timeout: SimTime::from_micros(300),
            ckpt_max_chunk: 16 * 1024,
            ckpt_copies: 2,
        },
        pre_split: Vec::new(),
    }
}

fn parts(nodes: usize) -> Vec<Rc<Vec<u8>>> {
    (0..nodes).map(|_| gen(150_000, 32)).collect()
}

#[test]
fn controller_scales_out_under_diurnal_load_exactly() {
    const NODES: usize = 4;
    const PACKED: usize = 2;

    // Probe: unpaced packed run calibrates the per-host service rate.
    let (probe, _, _) = SlashCluster::run_elastic(
        count_plan(),
        parts(NODES),
        cfg(NODES),
        &chaos(),
        &ElasticConfig::packed(NODES, PACKED),
        &mut StaticDirector,
        Obs::disabled(),
    );
    let cluster_rps =
        probe.records as f64 * 1.0e9 / probe.completion_time.as_nanos() as f64;
    let host_rps = cluster_rps / PACKED as f64;

    // Diurnal curve per source: calm at 30% of packed capacity, then a
    // surge the packed cluster cannot serve that four spread hosts can.
    let per_source = |frac: f64| (frac * cluster_rps / NODES as f64) as u64;
    let curve = RateCurve::new(&[
        (SimTime::ZERO, per_source(0.30)),
        (SimTime::from_micros(400), per_source(2.60)),
    ]);
    let mut paced_cfg = cfg(NODES);
    paced_cfg.pacing = Some(curve);

    // Static reference: same curve, no controller — the exactness and
    // completion-time baseline.
    let (base, base_rec, base_rescale) = SlashCluster::run_elastic(
        count_plan(),
        parts(NODES),
        paced_cfg,
        &chaos(),
        &ElasticConfig::packed(NODES, PACKED),
        &mut StaticDirector,
        Obs::disabled(),
    );
    assert!(base_rescale.migrations.is_empty());

    let mut ctl_cfg = ControllerConfig::new(PACKED, NODES, host_rps);
    ctl_cfg.cooldown = SimTime::from_micros(200);
    ctl_cfg.backlog_high = 20_000;
    let mut controller = ScaleController::new(ctl_cfg);
    let (run, rec, rescale) = SlashCluster::run_elastic(
        count_plan(),
        parts(NODES),
        paced_cfg,
        &chaos(),
        &ElasticConfig::packed(NODES, PACKED),
        &mut controller,
        Obs::disabled(),
    );

    // The surge must have forced a spread onto parked hosts...
    assert!(
        rescale.peak_hosts > PACKED,
        "controller never scaled out: {:?}",
        controller.decisions()
    );
    assert!(controller
        .decisions()
        .iter()
        .any(|d| matches!(d, Decision::Out { .. })));
    // ...without losing or duplicating a single record.
    assert_eq!(run.records, base.records, "exactly-once across migrations");
    assert_eq!(rec.results_digest, base_rec.results_digest);
    assert_eq!(rec.state_digests, base_rec.state_digests);
    assert_eq!(rescale.aborted(), 0, "{:?}", rescale.migrations);
    // The elastic run must beat the overloaded static cluster.
    assert!(
        run.completion_time < base.completion_time,
        "scale-out must pay off: {:?} vs {:?}",
        run.completion_time,
        base.completion_time
    );
    // Every cutover stall is bounded (well under the detection timeout).
    let stall = rescale.max_stall().expect("at least one migration");
    assert!(
        stall < SimTime::from_millis(1),
        "cutover stall must stay bounded: {stall:?}"
    );
}
