//! Transport abstraction for the partitioned engine's exchange layer.
//!
//! The *same* partitioning engine runs over two transports:
//!
//! * [`TxChan::Rdma`]/[`RxChan::Rdma`] — the credit-based one-sided RDMA
//!   channel (lightweight integration → RDMA UpPar);
//! * [`TxChan::Socket`]/[`RxChan::Socket`] — the socket/IPoIB channel with
//!   copies and syscalls (plug-and-play integration → Flink-sim).
//!
//! Exchange messages carry a *lane* id (the sender thread within the
//! producing node) so receivers can track per-lane watermarks: each lane's
//! record timestamps are monotone, making `min` over lanes a correct low
//! watermark.

use std::cell::RefCell;
use std::rc::Rc;

use slash_desim::{Sim, SimTime};
use slash_net::{ChannelReceiver, ChannelSender, MsgFlags, SocketReceiver, SocketSender};

/// A parsed exchange message.
#[derive(Debug, Clone, PartialEq)]
pub enum ExchangeMsg {
    /// Records from one lane.
    Data {
        /// Sender lane (global sender-thread id).
        lane: u32,
        /// Raw record bytes.
        records: Vec<u8>,
    },
    /// Watermark from one lane.
    Watermark {
        /// Sender lane.
        lane: u32,
        /// The lane's low watermark.
        wm: u64,
    },
    /// The lane is done (its watermark is +∞ from now on).
    LaneDone {
        /// Sender lane.
        lane: u32,
    },
}

fn encode(msg: &ExchangeMsg, out: &mut Vec<u8>) {
    out.clear();
    match msg {
        ExchangeMsg::Data { lane, records } => {
            out.push(0);
            out.extend_from_slice(&lane.to_le_bytes());
            out.extend_from_slice(records);
        }
        ExchangeMsg::Watermark { lane, wm } => {
            out.push(1);
            out.extend_from_slice(&lane.to_le_bytes());
            out.extend_from_slice(&wm.to_le_bytes());
        }
        ExchangeMsg::LaneDone { lane } => {
            out.push(2);
            out.extend_from_slice(&lane.to_le_bytes());
        }
    }
}

fn decode(payload: &[u8]) -> ExchangeMsg {
    let lane = u32::from_le_bytes(payload[1..5].try_into().unwrap());
    match payload[0] {
        0 => ExchangeMsg::Data {
            lane,
            records: payload[5..].to_vec(),
        },
        1 => ExchangeMsg::Watermark {
            lane,
            wm: u64::from_le_bytes(payload[5..13].try_into().unwrap()),
        },
        2 => ExchangeMsg::LaneDone { lane },
        other => panic!("corrupt exchange message kind {other}"),
    }
}

/// Per-message wire overhead of the exchange framing.
pub const EXCHANGE_HEADER: usize = 5;

/// Sending half of an exchange edge. RDMA senders are shared by all
/// sender threads of a node (one channel per `(node, consumer)`), hence
/// the `Rc<RefCell<…>>`.
#[derive(Clone)]
pub enum TxChan {
    /// Credit-based one-sided RDMA channel.
    Rdma(Rc<RefCell<ChannelSender>>),
    /// Socket-style channel.
    Socket(Rc<RefCell<SocketSender>>),
}

impl TxChan {
    /// Maximum record bytes per data message.
    pub fn data_capacity(&self) -> usize {
        match self {
            TxChan::Rdma(c) => c.borrow().payload_capacity() - EXCHANGE_HEADER,
            // Sockets have no slot bound; use the paper's default buffer.
            TxChan::Socket(_) => 64 * 1024 - EXCHANGE_HEADER,
        }
    }

    /// Try to send a message. Returns false on backpressure (no credit /
    /// full socket buffer).
    pub fn try_send(&self, sim: &mut Sim, msg: &ExchangeMsg, scratch: &mut Vec<u8>) -> bool {
        encode(msg, scratch);
        match self {
            TxChan::Rdma(c) => c
                .borrow_mut()
                .try_send(sim, MsgFlags::DATA, scratch)
                .expect("exchange channel failure"),
            TxChan::Socket(c) => c.borrow_mut().try_send(sim, scratch),
        }
    }

    /// CPU time the transport consumed since the last call (socket
    /// syscalls and copies; zero for RDMA, whose costs the engine charges
    /// explicitly as work-request posts).
    pub fn take_cpu_cost(&self) -> SimTime {
        match self {
            TxChan::Rdma(_) => SimTime::ZERO,
            TxChan::Socket(c) => c.borrow_mut().take_cpu_cost(),
        }
    }
}

/// Receiving half of an exchange edge; owned by exactly one receiver
/// thread.
pub enum RxChan {
    /// Credit-based one-sided RDMA channel.
    Rdma(ChannelReceiver),
    /// Socket-style channel.
    Socket(SocketReceiver),
}

impl RxChan {
    /// Try to receive one message.
    pub fn try_recv(&mut self, sim: &mut Sim) -> Option<ExchangeMsg> {
        match self {
            RxChan::Rdma(c) => c
                .try_recv(sim)
                .expect("exchange channel failure")
                .map(|(_flags, payload)| decode(&payload)),
            RxChan::Socket(c) => match c.try_recv(sim) {
                Some(Some(payload)) => Some(decode(&payload)),
                // Socket EOS is unused: lanes signal LaneDone explicitly.
                Some(None) | None => None,
            },
        }
    }

    /// CPU time the transport consumed since the last call.
    pub fn take_cpu_cost(&mut self) -> SimTime {
        match self {
            RxChan::Rdma(_) => SimTime::ZERO,
            RxChan::Socket(c) => c.take_cpu_cost(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_roundtrip() {
        let mut buf = Vec::new();
        for msg in [
            ExchangeMsg::Data {
                lane: 7,
                records: vec![1, 2, 3],
            },
            ExchangeMsg::Watermark { lane: 3, wm: 999 },
            ExchangeMsg::LaneDone { lane: 12 },
        ] {
            encode(&msg, &mut buf);
            assert_eq!(decode(&buf), msg);
        }
    }

    #[test]
    fn exchange_over_rdma_channel() {
        use slash_net::{create_channel, ChannelConfig};
        use slash_rdma::{Fabric, FabricConfig};

        let mut sim = Sim::new();
        let fabric = Fabric::new(FabricConfig::default());
        let a = fabric.add_node();
        let b = fabric.add_node();
        let (tx, rx) = create_channel(&fabric, a, b, ChannelConfig::default());
        let tx = TxChan::Rdma(Rc::new(RefCell::new(tx)));
        let mut rx = RxChan::Rdma(rx);

        let mut scratch = Vec::new();
        assert!(tx.try_send(
            &mut sim,
            &ExchangeMsg::Data {
                lane: 1,
                records: vec![9; 32],
            },
            &mut scratch,
        ));
        assert!(tx.try_send(&mut sim, &ExchangeMsg::Watermark { lane: 1, wm: 5 }, &mut scratch));
        sim.run();
        assert_eq!(
            rx.try_recv(&mut sim),
            Some(ExchangeMsg::Data {
                lane: 1,
                records: vec![9; 32],
            })
        );
        assert_eq!(
            rx.try_recv(&mut sim),
            Some(ExchangeMsg::Watermark { lane: 1, wm: 5 })
        );
        assert_eq!(rx.try_recv(&mut sim), None);
    }

    #[test]
    fn exchange_over_socket() {
        use slash_net::{socket_pair, SocketConfig};
        use slash_rdma::{Fabric, FabricConfig};

        let mut sim = Sim::new();
        let fabric = Fabric::new(FabricConfig::default());
        let a = fabric.add_node();
        let b = fabric.add_node();
        let (tx, rx) = socket_pair(&fabric, a, b, SocketConfig::default());
        let tx = TxChan::Socket(Rc::new(RefCell::new(tx)));
        let mut rx = RxChan::Socket(rx);

        let mut scratch = Vec::new();
        assert!(tx.try_send(&mut sim, &ExchangeMsg::LaneDone { lane: 2 }, &mut scratch));
        assert!(tx.take_cpu_cost() > SimTime::ZERO, "sockets cost CPU");
        sim.run();
        assert_eq!(rx.try_recv(&mut sim), Some(ExchangeMsg::LaneDone { lane: 2 }));
    }
}
