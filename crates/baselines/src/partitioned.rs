//! The generic partitioned scale-out engine (UpPar and Flink share it).
//!
//! Classic exchange-based execution (paper §2.2, "scale-out execution"):
//! on every node, half the worker threads run the stateless pipeline
//! prefix and **hash-re-partition** records across the cluster; the other
//! half receive partitioned records, keep *local* co-partitioned window
//! state, and trigger windows on per-lane watermarks. This is exactly the
//! design whose costs the paper dissects: partitioning instructions,
//! queue handovers, data-dependent staging writes, incast at the
//! receivers, and skew-induced load imbalance.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use slash_core::worker::instr;
use slash_core::{CostCategory, CostModel, EngineMetrics, QueryPlan, Sink, SinkResult};
use slash_desim::{Link, ProcId, Process, Sim, SimTime, Step};
use slash_net::{create_channel, socket_pair, ChannelConfig, SocketConfig};
use slash_rdma::{Fabric, FabricConfig, NodeId};
use slash_state::backend::TriggeredData;
use slash_state::hash::hash_u64;
use slash_state::{pack_key, Partition};

use crate::exchange::{ExchangeMsg, RxChan, TxChan};
use crate::sut::CommonReport;

/// Which transport the exchange runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// One-sided RDMA channels — the lightweight integration (UpPar).
    Rdma,
    /// Socket/IPoIB channels — the plug-and-play integration (Flink).
    Socket,
}

/// Configuration of a partitioned-engine run.
#[derive(Debug, Clone, Copy)]
pub struct PartitionedConfig {
    /// Executor nodes.
    pub nodes: usize,
    /// Threads per node; split evenly into senders and receivers (the
    /// paper: "they use half the threads to execute the filter and
    /// projection and the second half for the window operator").
    pub workers_per_node: usize,
    /// Cost model (shared with Slash for apples-to-apples comparison).
    pub cost: CostModel,
    /// Fabric configuration.
    pub fabric: FabricConfig,
    /// RDMA exchange channel configuration.
    pub channel: ChannelConfig,
    /// Socket configuration.
    pub socket: SocketConfig,
    /// Transport selection.
    pub transport: Transport,
    /// Multiplier on every CPU cost (1.0 native; >1 managed runtime).
    pub runtime_factor: f64,
    /// Records per scheduling batch on the senders.
    pub batch_records: usize,
    /// Retain full results.
    pub collect_results: bool,
    /// Virtual-time safety valve.
    pub max_virtual_time: SimTime,
}

impl PartitionedConfig {
    /// Defaults for `nodes × workers`.
    pub fn new(nodes: usize, workers_per_node: usize, transport: Transport) -> Self {
        assert!(workers_per_node >= 2, "need at least 1 sender + 1 receiver");
        PartitionedConfig {
            nodes,
            workers_per_node,
            cost: CostModel::default(),
            fabric: FabricConfig::default(),
            channel: ChannelConfig::default(),
            socket: SocketConfig::default(),
            transport,
            runtime_factor: 1.0,
            batch_records: 512,
            collect_results: false,
            max_virtual_time: SimTime::from_secs(3600),
        }
    }

    fn senders_per_node(&self) -> usize {
        (self.workers_per_node / 2).max(1)
    }

    fn receivers_per_node(&self) -> usize {
        (self.workers_per_node - self.senders_per_node()).max(1)
    }
}

/// Node-shared state.
struct NodeShared {
    sender_metrics: EngineMetrics,
    receiver_metrics: EngineMetrics,
    mem: Link,
    sink: Sink,
    records: u64,
    last_ingest: SimTime,
    receivers_done: usize,
    receivers_total: usize,
}

impl NodeShared {
    fn finished(&self) -> bool {
        self.receivers_done == self.receivers_total
    }
}

// ---------------------------------------------------------------------
// Sender (partitioner) thread.
// ---------------------------------------------------------------------

struct SenderProc {
    lane: u32,
    shared: Rc<RefCell<NodeShared>>,
    tx: Rc<Vec<TxChan>>, // indexed by global consumer
    source: slash_core::MemorySource,
    plan: Rc<QueryPlan>,
    cost: CostModel,
    rf: f64,
    consumers: usize,
    staging: Vec<Vec<u8>>,
    staging_cap: usize,
    pending: VecDeque<(usize, ExchangeMsg)>,
    scratch: Vec<u8>,
    last_bucket: u64,
    done: bool,
}

impl SenderProc {
    fn flush_staging(&mut self, consumer: usize) {
        if self.staging[consumer].is_empty() {
            return;
        }
        let records = std::mem::take(&mut self.staging[consumer]);
        self.pending.push_back((
            consumer,
            ExchangeMsg::Data {
                lane: self.lane,
                records,
            },
        ));
    }

    fn flush_all(&mut self) {
        for c in 0..self.consumers {
            self.flush_staging(c);
        }
    }

    /// Try to push pending messages; returns CPU ns spent and whether the
    /// backlog drained.
    fn drain_pending(&mut self, sim: &mut Sim) -> (f64, bool) {
        let mut cpu = 0.0;
        while let Some((c, msg)) = self.pending.front() {
            let chan = &self.tx[*c];
            if chan.try_send(sim, msg, &mut self.scratch) {
                cpu += self.cost.post_wr_ns * self.rf;
                cpu += chan.take_cpu_cost().as_nanos() as f64;
                self.pending.pop_front();
            } else {
                return (cpu, false);
            }
        }
        (cpu, true)
    }
}

impl Process for SenderProc {
    fn step(&mut self, sim: &mut Sim, _me: ProcId) -> Step {
        if self.done {
            return Step::Done;
        }
        let shared = Rc::clone(&self.shared);
        let mut sh = shared.borrow_mut();
        let mut cpu = 0.0;
        let mut mem_bytes = 0u64;

        // Backpressure: nothing new until the backlog drains.
        let (c, drained) = self.drain_pending(sim);
        cpu += c;
        if !drained {
            // The whole stall is pause-loop waiting (core-bound time in
            // the paper's top-down terms).
            sh.sender_metrics.charge(CostCategory::CoreBound, 1_500.0);
            sh.sender_metrics.instr(instr::POLL * 8);
            return Step::Yield(SimTime::from_nanos(1_500));
        }

        if let Some((a, b)) = self.source.next_range() {
            let data = Rc::clone(self.source.data());
            let batch = &data[a..b];
            let input = self.plan.input().clone();
            let schema = input.schema;
            let window = self.plan.window();
            let rf = self.rf;
            let mut n = 0u64;
            let mut staged_bytes = 0u64;
            let mut last_ts = 0;
            for rec in batch.chunks_exact(schema.size) {
                n += 1;
                let ts = schema.ts(rec);
                last_ts = ts;
                cpu += self.cost.record_pipeline_ns * rf;
                sh.sender_metrics.instr(instr::PIPELINE);
                // Watermark cadence: flush + broadcast on bucket crossing.
                let bucket = window.assign(ts);
                if bucket > self.last_bucket {
                    self.last_bucket = bucket;
                    self.flush_all();
                    let wm = bucket * window.granule();
                    for cc in 0..self.consumers {
                        self.pending.push_back((
                            cc,
                            ExchangeMsg::Watermark {
                                lane: self.lane,
                                wm,
                            },
                        ));
                    }
                }
                if !input.keep(rec) {
                    continue;
                }
                // The partitioning step: hash + destination select.
                let consumer = (hash_u64(schema.key(rec)) % self.consumers as u64) as usize;
                cpu += self.cost.partition_ns * rf;
                sh.sender_metrics.instr(instr::PARTITION);
                // Data-dependent staging write (the scattered writes the
                // paper blames for the sender's back-end stalls).
                self.staging[consumer].extend_from_slice(rec);
                cpu += schema.size as f64 * self.cost.copy_per_byte_ns * rf
                    + self.cost.queue_op_ns * rf;
                sh.sender_metrics.instr(instr::QUEUE_OP);
                staged_bytes += schema.size as u64;
                if self.staging[consumer].len() + schema.size > self.staging_cap {
                    self.flush_staging(consumer);
                }
            }
            let _ = last_ts;
            sh.records += n;
            mem_bytes += (b - a) as u64 + 2 * staged_bytes; // read + copy
            // Top-down attribution per the paper's Fig. 9 discussion:
            // partitioning is front-end-heavy with branch mispredictions.
            let part_ns = self.cost.partition_ns * rf * n as f64;
            sh.sender_metrics
                .charge(CostCategory::FrontEnd, part_ns * 0.6);
            sh.sender_metrics
                .charge(CostCategory::BadSpeculation, part_ns * 0.25);
            sh.sender_metrics
                .charge(CostCategory::Retiring, self.cost.record_pipeline_ns * rf * n as f64 + part_ns * 0.15);
            sh.sender_metrics.charge(
                CostCategory::MemoryBound,
                (self.cost.copy_per_byte_ns * rf) * staged_bytes as f64,
            );
            sh.sender_metrics.add_records(n);
            let (c2, _) = self.drain_pending(sim);
            cpu += c2;
        } else {
            // End of stream: flush everything, announce lane completion.
            self.flush_all();
            for cc in 0..self.consumers {
                self.pending
                    .push_back((cc, ExchangeMsg::LaneDone { lane: self.lane }));
            }
            let (c2, drained) = self.drain_pending(sim);
            cpu += c2;
            if drained {
                self.done = true;
                return Step::Done;
            }
        }

        let cpu_time = CostModel::to_time(cpu);
        let busy = if mem_bytes > 0 {
            sh.sender_metrics.add_mem_bytes(mem_bytes);
            let now = sim.now();
            let (_s, end) = sh.mem.reserve(now, mem_bytes);
            let mem_time = end - now;
            if mem_time > cpu_time {
                sh.sender_metrics.charge(
                    CostCategory::MemoryBound,
                    (mem_time - cpu_time).as_nanos() as f64,
                );
                mem_time
            } else {
                cpu_time
            }
        } else {
            cpu_time
        };
        Step::Yield(busy.max(SimTime::from_nanos(1)))
    }

    fn name(&self) -> &str {
        "partitioned-sender"
    }
}

// ---------------------------------------------------------------------
// Receiver (processor) thread.
// ---------------------------------------------------------------------

struct ReceiverProc {
    shared: Rc<RefCell<NodeShared>>,
    rx: Vec<RxChan>,
    plan: Rc<QueryPlan>,
    cost: CostModel,
    rf: f64,
    state: Partition,
    lane_wm: Vec<u64>,
    done_lanes: usize,
    total_lanes: usize,
    done: bool,
}

impl ReceiverProc {
    fn process_records(
        &mut self,
        sh: &mut NodeShared,
        records: &[u8],
    ) -> (f64, u64) {
        let plan = Rc::clone(&self.plan);
        let schema = plan.input().schema;
        let window = plan.window();
        let ws = self.state.resident_bytes() as u64;
        let access = self.cost.cache.random_access(ws);
        let mut cpu = 0.0;
        let mut n = 0u64;
        match &*plan {
            QueryPlan::Aggregate { agg, .. } => {
                for rec in records.chunks_exact(schema.size) {
                    n += 1;
                    let key = pack_key(window.assign(schema.ts(rec)), schema.key(rec));
                    self.state.rmw(key, |v| agg.update(&schema, rec, v));
                    cpu += (self.cost.queue_op_ns + self.cost.rmw_base_ns) * self.rf
                        + access.penalty_ns;
                    sh.receiver_metrics.instr(instr::QUEUE_OP + instr::RMW);
                }
            }
            QueryPlan::Join {
                side_off,
                retain_bytes,
                ..
            } => {
                let mut elem = vec![0u8; 1 + retain_bytes];
                for rec in records.chunks_exact(schema.size) {
                    n += 1;
                    let side = schema.field_u64(rec, *side_off);
                    elem[0] = side as u8;
                    let take = (*retain_bytes).min(schema.size);
                    elem[1..1 + take].copy_from_slice(&rec[..take]);
                    let key = pack_key(window.assign(schema.ts(rec)), schema.key(rec));
                    self.state.append(key, &elem[..1 + take]);
                    cpu += (self.cost.queue_op_ns + self.cost.append_base_ns) * self.rf
                        + access.penalty_ns;
                    sh.receiver_metrics.instr(instr::QUEUE_OP + instr::APPEND);
                }
            }
        }
        sh.receiver_metrics.add_cache_misses(
            access.l1_miss * n as f64,
            access.l2_miss * n as f64,
            access.llc_miss * n as f64,
        );
        sh.receiver_metrics.add_records(n);
        sh.receiver_metrics.charge(
            CostCategory::MemoryBound,
            (self.cost.rmw_base_ns * self.rf + access.penalty_ns) * n as f64,
        );
        sh.receiver_metrics
            .charge(CostCategory::Retiring, self.cost.queue_op_ns * self.rf * n as f64);
        let mem = records.len() as u64 + (access.mem_bytes() * n as f64) as u64;
        (cpu, mem)
    }

    fn run_triggers(&mut self, sh: &mut NodeShared) -> f64 {
        let wm = *self.lane_wm.iter().min().expect("lanes > 0");
        let plan = Rc::clone(&self.plan);
        let window = plan.window();
        let mut ready_keys = Vec::new();
        self.state.for_each_key(|key, _| {
            let wid = (key >> 64) as u64;
            if window.ready(wid, wm) {
                ready_keys.push(key);
            }
        });
        let mut cpu = 0.0;
        for key in ready_keys {
            let wid = (key >> 64) as u64;
            let gkey = key as u64;
            let data = if self.state.descriptor().is_appended() {
                let mut elems = Vec::new();
                self.state.for_each_element(key, |e| elems.push(e.to_vec()));
                TriggeredData::Elements(elems)
            } else {
                TriggeredData::Fixed(self.state.get(key).expect("listed").to_vec())
            };
            self.state.remove(key);
            cpu += self.cost.merge_entry_ns * self.rf;
            match (&*plan, data) {
                (QueryPlan::Aggregate { agg, .. }, TriggeredData::Fixed(v)) => {
                    sh.sink.push(SinkResult::Agg {
                        window_id: wid,
                        key: gkey,
                        value: agg.render(&v),
                    });
                }
                (QueryPlan::Join { .. }, TriggeredData::Elements(elems)) => {
                    cpu += 2.0 * self.rf * elems.len() as f64;
                    sh.sink.push(SinkResult::Join {
                        window_id: wid,
                        key: gkey,
                        pairs: slash_core::join::pair_count(&elems, &window),
                    });
                }
                _ => unreachable!("plan/state mismatch"),
            }
        }
        cpu
    }
}

impl Process for ReceiverProc {
    fn step(&mut self, sim: &mut Sim, _me: ProcId) -> Step {
        if self.done {
            return Step::Done;
        }
        let shared = Rc::clone(&self.shared);
        let mut sh = shared.borrow_mut();
        let mut cpu = 0.0;
        let mut mem_bytes = 0u64;
        let mut got_data = false;
        let mut progress = false;

        // Poll every inbound channel (the multi-channel polling the paper
        // identifies as the receivers' core-bound time). Consumption per
        // step is CPU-budget-bounded: credits only return for what the
        // receiver actually keeps up with, so backpressure — and skewed
        // hot-receiver collapse — propagates to the senders for real.
        const STEP_BUDGET_NS: f64 = 12_000.0;
        'sweep: loop {
            let mut any = false;
            for ch in 0..self.rx.len() {
                if cpu >= STEP_BUDGET_NS {
                    break 'sweep;
                }
                let msg = self.rx[ch].try_recv(sim);
                cpu += self.rx[ch].take_cpu_cost().as_nanos() as f64;
                match msg {
                    Some(ExchangeMsg::Data { records, .. }) => {
                        let (c, m) = self.process_records(&mut sh, &records);
                        cpu += c;
                        mem_bytes += m;
                        got_data = true;
                        progress = true;
                        any = true;
                    }
                    Some(ExchangeMsg::Watermark { lane, wm }) => {
                        let e = &mut self.lane_wm[lane as usize];
                        *e = (*e).max(wm);
                        progress = true;
                        any = true;
                    }
                    Some(ExchangeMsg::LaneDone { lane }) => {
                        if self.lane_wm[lane as usize] != u64::MAX {
                            self.lane_wm[lane as usize] = u64::MAX;
                            self.done_lanes += 1;
                        }
                        progress = true;
                        any = true;
                    }
                    None => {
                        cpu += self.cost.poll_empty_ns;
                        sh.receiver_metrics
                            .charge(CostCategory::CoreBound, self.cost.poll_empty_ns);
                        sh.receiver_metrics.instr(instr::POLL);
                    }
                }
            }
            if !any {
                break;
            }
        }

        cpu += self.run_triggers(&mut sh);

        if got_data {
            sh.last_ingest = sim.now().max(sh.last_ingest);
        }
        if self.done_lanes == self.total_lanes && self.state.key_count() == 0 {
            self.done = true;
            sh.receivers_done += 1;
            return Step::Done;
        }

        let cpu_time = CostModel::to_time(cpu);
        let busy = if mem_bytes > 0 {
            sh.receiver_metrics.add_mem_bytes(mem_bytes);
            let now = sim.now();
            let (_s, end) = sh.mem.reserve(now, mem_bytes);
            (end - now).max(cpu_time)
        } else {
            cpu_time
        };
        if !progress {
            // Idle poll loop: the receiver spins on its channels waiting
            // for the (slower) senders — core-bound time.
            let idle = busy.max(SimTime::from_nanos(1_500));
            sh.receiver_metrics
                .charge(CostCategory::CoreBound, idle.as_nanos() as f64);
            return Step::Yield(idle);
        }
        Step::Yield(busy.max(SimTime::from_nanos(1)))
    }

    fn name(&self) -> &str {
        "partitioned-receiver"
    }
}

// ---------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------

/// Run a query on the partitioned engine. Partitions are node-major per
/// *sender* thread: `partitions[node * senders_per_node + s]`.
pub fn run_partitioned(
    plan: QueryPlan,
    partitions: Vec<Rc<Vec<u8>>>,
    cfg: PartitionedConfig,
) -> CommonReport {
    let senders = cfg.senders_per_node();
    let receivers = cfg.receivers_per_node();
    assert_eq!(
        partitions.len(),
        cfg.nodes * senders,
        "one partition per sender thread"
    );
    let n_consumers = cfg.nodes * receivers;
    let n_lanes = cfg.nodes * senders;

    let mut sim = Sim::new();
    let fabric = Fabric::new(cfg.fabric);
    let node_ids: Vec<NodeId> = fabric.add_nodes(cfg.nodes);
    let plan = Rc::new(plan);
    let desc = plan.descriptor();

    // Channels: one per (source node, global consumer).
    let mut rx_chans: Vec<Vec<RxChan>> = (0..n_consumers).map(|_| Vec::new()).collect();
    let mut tx_chans: Vec<Vec<TxChan>> = (0..cfg.nodes).map(|_| Vec::new()).collect();
    for src in 0..cfg.nodes {
        for (consumer, rx_lanes) in rx_chans.iter_mut().enumerate() {
            let dst = consumer / receivers;
            match cfg.transport {
                Transport::Rdma => {
                    let (tx, rx) =
                        create_channel(&fabric, node_ids[src], node_ids[dst], cfg.channel);
                    tx_chans[src].push(TxChan::Rdma(Rc::new(RefCell::new(tx))));
                    rx_lanes.push(RxChan::Rdma(rx));
                }
                Transport::Socket => {
                    let (tx, rx) = socket_pair(&fabric, node_ids[src], node_ids[dst], cfg.socket);
                    tx_chans[src].push(TxChan::Socket(Rc::new(RefCell::new(tx))));
                    rx_lanes.push(RxChan::Socket(rx));
                }
            }
        }
    }

    let shareds: Vec<Rc<RefCell<NodeShared>>> = (0..cfg.nodes)
        .map(|_| {
            Rc::new(RefCell::new(NodeShared {
                sender_metrics: EngineMetrics::default(),
                receiver_metrics: EngineMetrics::default(),
                mem: Link::new(cfg.cost.mem_bandwidth),
                sink: if cfg.collect_results {
                    Sink::collecting()
                } else {
                    Sink::counting()
                },
                records: 0,
                last_ingest: SimTime::ZERO,
                receivers_done: 0,
                receivers_total: receivers,
            }))
        })
        .collect();

    for (node, txs) in tx_chans.into_iter().enumerate() {
        let txs = Rc::new(txs);
        for s in 0..senders {
            let lane = (node * senders + s) as u32;
            let part = Rc::clone(&partitions[node * senders + s]);
            let source =
                slash_core::MemorySource::new(part, plan.input().schema, cfg.batch_records);
            let staging_cap = txs[0]
                .data_capacity()
                .min(64 * 1024)
                / plan.record_size()
                * plan.record_size();
            sim.spawn(SenderProc {
                lane,
                shared: Rc::clone(&shareds[node]),
                tx: Rc::clone(&txs),
                source,
                plan: Rc::clone(&plan),
                cost: cfg.cost,
                rf: cfg.runtime_factor,
                consumers: n_consumers,
                staging: (0..n_consumers).map(|_| Vec::new()).collect(),
                staging_cap: staging_cap.max(plan.record_size()),
                pending: VecDeque::new(),
                scratch: Vec::new(),
                last_bucket: 0,
                done: false,
            });
        }
    }
    for (consumer, rx) in rx_chans.into_iter().enumerate() {
        let node = consumer / receivers;
        sim.spawn(ReceiverProc {
            shared: Rc::clone(&shareds[node]),
            rx,
            plan: Rc::clone(&plan),
            cost: cfg.cost,
            rf: cfg.runtime_factor,
            state: Partition::new(consumer, desc),
            lane_wm: vec![0; n_lanes],
            done_lanes: 0,
            total_lanes: n_lanes,
            done: false,
        });
    }

    loop {
        if shareds.iter().all(|s| s.borrow().finished()) {
            break;
        }
        assert!(
            sim.now() <= cfg.max_virtual_time,
            "partitioned run exceeded the virtual-time budget"
        );
        assert!(
            sim.pending_events() > 0,
            "partitioned engine deadlocked (likely exchange backpressure cycle)"
        );
        let horizon = sim.now() + SimTime::from_millis(10);
        sim.run_until(horizon);
    }

    let mut report = CommonReport {
        completion_time: sim.now(),
        net_tx_bytes: fabric.total_tx_bytes(),
        ..Default::default()
    };
    for sh in &shareds {
        let sh = sh.borrow();
        report.records += sh.records;
        report.processing_time = report.processing_time.max(sh.last_ingest);
        report.emitted += sh.sink.emitted;
        report.total_pairs += sh.sink.total_pairs;
        report.results.extend(sh.sink.results.iter().cloned());
        report.sender_metrics.absorb(&sh.sender_metrics);
        report.receiver_metrics.absorb(&sh.receiver_metrics);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use slash_core::{AggSpec, RecordSchema, StreamDef, WindowAssigner};

    fn gen(n: u64, dt: u64, keys: u64) -> Rc<Vec<u8>> {
        let mut buf = Vec::with_capacity((n * 16) as usize);
        for i in 0..n {
            buf.extend_from_slice(&(1 + i * dt).to_le_bytes());
            buf.extend_from_slice(&(i % keys).to_le_bytes());
        }
        Rc::new(buf)
    }

    fn count_plan(window: u64) -> QueryPlan {
        QueryPlan::Aggregate {
            input: StreamDef::new(RecordSchema::plain(16)),
            window: WindowAssigner::Tumbling { size: window },
            agg: AggSpec::Count,
        }
    }

    fn check_counts(report: &CommonReport, expected_total: u64) {
        let total: f64 = report
            .results
            .iter()
            .map(|r| match r {
                SinkResult::Agg { value, .. } => *value,
                _ => 0.0,
            })
            .sum();
        assert_eq!(total as u64, expected_total);
        let mut seen = std::collections::HashSet::new();
        for r in &report.results {
            if let SinkResult::Agg { window_id, key, .. } = r {
                assert!(seen.insert((*window_id, *key)), "duplicate trigger");
            }
        }
    }

    #[test]
    fn uppar_counts_match_sequential_semantics() {
        let mut cfg = PartitionedConfig::new(2, 2, Transport::Rdma);
        cfg.collect_results = true;
        let report = run_partitioned(
            count_plan(100),
            vec![gen(1000, 1, 8), gen(1000, 1, 8)],
            cfg,
        );
        assert_eq!(report.records, 2000);
        check_counts(&report, 2000);
        assert!(report.net_tx_bytes > 2000 * 16, "records must cross the wire");
    }

    #[test]
    fn flink_counts_match_sequential_semantics() {
        let mut cfg = PartitionedConfig::new(2, 2, Transport::Socket);
        cfg.runtime_factor = 3.5;
        cfg.collect_results = true;
        let report = run_partitioned(
            count_plan(100),
            vec![gen(500, 1, 8), gen(500, 1, 8)],
            cfg,
        );
        assert_eq!(report.records, 1000);
        check_counts(&report, 1000);
    }

    #[test]
    fn flink_is_slower_than_uppar_on_identical_input() {
        let run = |transport, rf| {
            let mut cfg = PartitionedConfig::new(2, 4, transport);
            cfg.runtime_factor = rf;
            run_partitioned(count_plan(1000), vec![gen(3000, 1, 64); 4], cfg).throughput()
        };
        let uppar = run(Transport::Rdma, 1.0);
        let flink = run(Transport::Socket, 3.5);
        assert!(
            uppar > 2.0 * flink,
            "uppar {uppar:.0} rec/s vs flink {flink:.0} rec/s"
        );
    }

    #[test]
    fn join_pairs_on_partitioned_engine() {
        let mk = |n: u64, side: u64| -> Rc<Vec<u8>> {
            let mut buf = Vec::new();
            for i in 0..n {
                buf.extend_from_slice(&(1 + i * 10).to_le_bytes());
                buf.extend_from_slice(&(i % 2).to_le_bytes());
                buf.extend_from_slice(&side.to_le_bytes());
                buf.extend_from_slice(&0u64.to_le_bytes());
            }
            Rc::new(buf)
        };
        let plan = QueryPlan::Join {
            input: StreamDef::new(RecordSchema::plain(32)),
            side_off: 16,
            window: WindowAssigner::Tumbling { size: 1 << 40 },
            retain_bytes: 16,
        };
        let mut cfg = PartitionedConfig::new(2, 2, Transport::Rdma);
        cfg.collect_results = true;
        let report = run_partitioned(plan, vec![mk(10, 0), mk(10, 1)], cfg);
        // Per key: 5 lefts × 5 rights = 25 pairs; 2 keys.
        assert_eq!(report.total_pairs, 50);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let cfg = PartitionedConfig::new(2, 4, Transport::Rdma);
            let r = run_partitioned(count_plan(200), vec![gen(800, 2, 32); 4], cfg);
            (r.records, r.emitted, r.completion_time, r.net_tx_bytes)
        };
        assert_eq!(run(), run());
    }
}
