//! Query plans — the public query model.
//!
//! Slash's evaluation queries all share one of two shapes (paper §5.2):
//! a pipeline of stateless stages (filter/projection) terminated by a
//! windowed **aggregation**, or by a windowed **join**. Joined streams are
//! delivered as one unified physical flow whose records carry a side tag
//! (the workload generators interleave the logical streams by timestamp,
//! matching the paper's pre-generated in-memory datasets).

use std::rc::Rc;

use slash_state::descriptor::appended_descriptor;
use slash_state::StateDescriptor;

use crate::agg::AggSpec;
use crate::record::RecordSchema;
use crate::window::WindowAssigner;

/// Which logical stream a unified join record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinSide {
    /// Build side (e.g. NEXMark auctions).
    Left,
    /// Probe side (e.g. NEXMark persons/sellers).
    Right,
}

/// A filter predicate over one physical record (true = keep).
pub type FilterFn = Rc<dyn Fn(&RecordSchema, &[u8]) -> bool>;

/// A stream with its stateless pipeline prefix.
#[derive(Clone)]
pub struct StreamDef {
    /// Physical record layout.
    pub schema: RecordSchema,
    /// Optional filter predicate (fused into the pipeline; YSB's
    /// event-type filter).
    pub filter: Option<FilterFn>,
}

impl StreamDef {
    /// A stream with no filter.
    pub fn new(schema: RecordSchema) -> Self {
        StreamDef {
            schema,
            filter: None,
        }
    }

    /// Attach a filter predicate.
    pub fn with_filter(mut self, f: impl Fn(&RecordSchema, &[u8]) -> bool + 'static) -> Self {
        self.filter = Some(Rc::new(f));
        self
    }

    /// Apply the filter (true = keep).
    #[inline]
    pub fn keep(&self, rec: &[u8]) -> bool {
        match &self.filter {
            Some(f) => f(&self.schema, rec),
            None => true,
        }
    }
}

impl std::fmt::Debug for StreamDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamDef")
            .field("schema", &self.schema)
            .field("filtered", &self.filter.is_some())
            .finish()
    }
}

/// A streaming query.
#[derive(Clone, Debug)]
pub enum QueryPlan {
    /// Stateless prefix + windowed hash aggregation (YSB, NB7, CM, RO).
    Aggregate {
        /// Input stream.
        input: StreamDef,
        /// Window assignment.
        window: WindowAssigner,
        /// Aggregation function.
        agg: AggSpec,
    },
    /// Stateless prefix + windowed hash join (NB8, NB11). Records carry a
    /// side tag at `side_off` (u64: 0 = left, 1 = right); at trigger time
    /// the engine emits per-key pairwise combinations.
    Join {
        /// Unified input stream (both sides interleaved).
        input: StreamDef,
        /// Byte offset of the u64 side tag.
        side_off: usize,
        /// Window assignment.
        window: WindowAssigner,
        /// How many payload bytes of each record to retain in state (the
        /// projection the join carries; affects state size like the
        /// paper's tuple-size discussion for NB8 vs NB11).
        retain_bytes: usize,
    },
}

impl QueryPlan {
    /// The SSB state descriptor this plan needs.
    pub fn descriptor(&self) -> StateDescriptor {
        match self {
            QueryPlan::Aggregate { agg, .. } => agg.descriptor(),
            QueryPlan::Join { .. } => appended_descriptor(),
        }
    }

    /// The window assigner.
    pub fn window(&self) -> WindowAssigner {
        match self {
            QueryPlan::Aggregate { window, .. } | QueryPlan::Join { window, .. } => *window,
        }
    }

    /// The input stream definition.
    pub fn input(&self) -> &StreamDef {
        match self {
            QueryPlan::Aggregate { input, .. } | QueryPlan::Join { input, .. } => input,
        }
    }

    /// Record size of the input stream.
    pub fn record_size(&self) -> usize {
        self.input().schema.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_defaults_to_keep_all() {
        let s = StreamDef::new(RecordSchema::plain(16));
        assert!(s.keep(&[0u8; 16]));
        let f = StreamDef::new(RecordSchema::plain(16))
            .with_filter(|sch, r| sch.key(r) % 2 == 0);
        let mut rec = [0u8; 16];
        rec[8..16].copy_from_slice(&3u64.to_le_bytes());
        assert!(!f.keep(&rec));
        rec[8..16].copy_from_slice(&4u64.to_le_bytes());
        assert!(f.keep(&rec));
    }

    #[test]
    fn plan_accessors() {
        let plan = QueryPlan::Aggregate {
            input: StreamDef::new(RecordSchema::plain(78)),
            window: WindowAssigner::Tumbling { size: 1000 },
            agg: AggSpec::Count,
        };
        assert_eq!(plan.record_size(), 78);
        assert_eq!(plan.window(), WindowAssigner::Tumbling { size: 1000 });
        assert!(!plan.descriptor().is_appended());

        let join = QueryPlan::Join {
            input: StreamDef::new(RecordSchema::plain(32)),
            side_off: 16,
            window: WindowAssigner::Tumbling { size: 1000 },
            retain_bytes: 16,
        };
        assert!(join.descriptor().is_appended());
    }
}
