//! Property-based end-to-end tests: random streams, random window sizes,
//! random cluster shapes — the Slash engine must always match a
//! sequential fold (property P2 at engine level), never double-fire a
//! window, and never lose a record. Cases are drawn from seeded `DetRng`
//! loops so the suite runs fully offline and failures reproduce from
//! their seed.

use std::collections::HashMap;
use std::rc::Rc;

use slash::core::{
    AggSpec, QueryPlan, RecordSchema, RunConfig, SinkResult, SlashCluster, StreamDef,
    WindowAssigner,
};
use slash::desim::DetRng;

/// A randomly generated partition: (ts, key) records with strictly
/// monotone timestamps.
fn random_partition(rng: &mut DetRng, max_records: usize) -> Vec<(u64, u64)> {
    let n = 1 + rng.next_below(max_records as u64 - 1) as usize;
    let mut ts = 1 + rng.next_below(99);
    (0..n)
        .map(|_| {
            ts += 1 + rng.next_below(49);
            (ts, rng.next_below(12))
        })
        .collect()
}

fn encode(partition: &[(u64, u64)]) -> Rc<Vec<u8>> {
    let mut buf = Vec::with_capacity(partition.len() * 16);
    for (ts, key) in partition {
        buf.extend_from_slice(&ts.to_le_bytes());
        buf.extend_from_slice(&key.to_le_bytes());
    }
    Rc::new(buf)
}

#[test]
fn random_streams_match_sequential_counts() {
    for seed in 0..24u64 {
        let mut rng = DetRng::new(0xE2E ^ seed.wrapping_mul(0x9E3779B9));
        let n_parts = 2 + rng.next_below(5) as usize;
        let parts: Vec<Vec<(u64, u64)>> =
            (0..n_parts).map(|_| random_partition(&mut rng, 300)).collect();
        let window = 50 + rng.next_below(1950);
        let nodes = 1 + rng.next_below(3) as usize;

        // Shape the partition list to nodes × workers.
        let nodes = nodes.min(parts.len());
        let workers = parts.len() / nodes;
        let parts = &parts[..nodes * workers];

        // Sequential oracle.
        let mut expected: HashMap<(u64, u64), u64> = HashMap::new();
        for p in parts {
            for (ts, key) in p {
                *expected.entry((ts / window, *key)).or_default() += 1;
            }
        }

        let plan = QueryPlan::Aggregate {
            input: StreamDef::new(RecordSchema::plain(16)),
            window: WindowAssigner::Tumbling { size: window },
            agg: AggSpec::Count,
        };
        let mut cfg = RunConfig::new(nodes, workers);
        cfg.collect_results = true;
        cfg.epoch_bytes = 1024; // aggressive epochs
        let report = SlashCluster::run(
            plan,
            parts.iter().map(|p| encode(p)).collect(),
            cfg,
        );

        let mut got: HashMap<(u64, u64), u64> = HashMap::new();
        for r in &report.results {
            if let SinkResult::Agg { window_id, key, value } = r {
                let prev = got.insert((*window_id, *key), *value as u64);
                assert!(
                    prev.is_none(),
                    "double trigger {window_id}/{key}, seed {seed}"
                );
            }
        }
        assert_eq!(got, expected, "seed {seed}");
    }
}

/// Straggler resilience: one worker gets a much longer stream than the
/// others. Watermarks must hold results back until the straggler catches
/// up, and nothing may be lost or double-counted.
#[test]
fn stragglers_delay_but_never_corrupt() {
    for seed in 0..16u64 {
        let mut rng = DetRng::new(0x57A6 ^ seed.wrapping_mul(0x9E3779B9));
        let short_len = 10 + rng.next_below(90) as usize;
        let long_factor = 5 + rng.next_below(15) as usize;
        let window = 100 + rng.next_below(900);

        let short: Vec<(u64, u64)> = (0..short_len)
            .map(|i| (1 + i as u64 * 7, i as u64 % 4))
            .collect();
        let long: Vec<(u64, u64)> = (0..short_len * long_factor)
            .map(|i| (1 + i as u64 * 3, i as u64 % 4))
            .collect();
        let total = (short.len() + long.len()) as u64;

        let plan = QueryPlan::Aggregate {
            input: StreamDef::new(RecordSchema::plain(16)),
            window: WindowAssigner::Tumbling { size: window },
            agg: AggSpec::Count,
        };
        let mut cfg = RunConfig::new(2, 1);
        cfg.collect_results = true;
        cfg.epoch_bytes = 512;
        let report = SlashCluster::run(plan, vec![encode(&short), encode(&long)], cfg);
        let sum: f64 = report
            .results
            .iter()
            .map(|r| match r {
                SinkResult::Agg { value, .. } => *value,
                _ => 0.0,
            })
            .sum();
        assert_eq!(sum as u64, total, "seed {seed}");
    }
}
