//! Wire format of state-delta chunks (§7.2.2 step ③).
//!
//! A closed epoch's delta is shipped to its leader as a sequence of chunks,
//! each fitting one RDMA channel buffer. Chunks of one epoch are FIFO on
//! the channel; the last carries `fin = 1` together with the helper's
//! watermark, which is the piggybacked vector-clock update.
//!
//! ```text
//! chunk := header | entry*
//! header (32 B) := partition u32 | n_entries u32 | epoch u64 |
//!                  watermark u64 | fin u8 | sent_us u40 | pad[2]
//! entry := key u128 | len u32 | kind u8 | pad[3] | value[len]
//! ```
//!
//! `sent_us` is the virtual time (microseconds, 40 bits — same stamp
//! format as the channel footer) at which the helper closed the epoch; the
//! leader uses it to measure epoch-merge latency end to end.

use crate::entry::EntryKind;
use crate::hash::StateKey;

/// Chunk header size.
pub const DELTA_HEADER_SIZE: usize = 32;
/// Per-entry wire overhead.
pub const ENTRY_OVERHEAD: usize = 24;

/// Decoded chunk header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaHeader {
    /// Target partition.
    pub partition: u32,
    /// Entries in this chunk.
    pub n_entries: u32,
    /// Epoch being shipped.
    pub epoch: u64,
    /// Sender's low watermark at epoch close.
    pub watermark: u64,
    /// Whether this is the epoch's final chunk.
    pub fin: bool,
    /// Virtual epoch-close time in microseconds (40-bit stamp; 0 when the
    /// producer has no clock, e.g. snapshot chunks).
    pub sent_us: u64,
}

/// Copy `N` little-endian bytes starting at `at`, zero-filling past the end
/// of `bytes` so decoding is total (chunk framing is enforced by the channel
/// layer; short reads only happen on corrupt input).
fn le_bytes<const N: usize>(bytes: &[u8], at: usize) -> [u8; N] {
    let mut out = [0u8; N];
    for (i, dst) in out.iter_mut().enumerate() {
        if let Some(b) = bytes.get(at + i) {
            *dst = *b;
        }
    }
    out
}

impl DeltaHeader {
    /// Append the encoded header to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.partition.to_le_bytes());
        out.extend_from_slice(&self.n_entries.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.watermark.to_le_bytes());
        out.push(u8::from(self.fin));
        out.extend_from_slice(&self.sent_us.to_le_bytes()[..5]);
        out.extend_from_slice(&[0u8; 2]);
    }

    /// Decode from the first [`DELTA_HEADER_SIZE`] bytes.
    pub fn decode(bytes: &[u8]) -> DeltaHeader {
        let mut us = [0u8; 8];
        us[..5].copy_from_slice(&le_bytes::<5>(bytes, 25));
        DeltaHeader {
            partition: u32::from_le_bytes(le_bytes(bytes, 0)),
            n_entries: u32::from_le_bytes(le_bytes(bytes, 4)),
            epoch: u64::from_le_bytes(le_bytes(bytes, 8)),
            watermark: u64::from_le_bytes(le_bytes(bytes, 16)),
            fin: bytes.get(24).copied().unwrap_or(0) != 0,
            sent_us: u64::from_le_bytes(us),
        }
    }

    /// Patch the `n_entries` and `fin` fields of a header already written
    /// at `offset` in `buf` (chunks are built incrementally).
    pub fn patch(buf: &mut [u8], offset: usize, n_entries: u32, fin: bool) {
        buf[offset + 4..offset + 8].copy_from_slice(&n_entries.to_le_bytes());
        buf[offset + 24] = u8::from(fin);
    }
}

/// Append one entry to a chunk under construction.
pub fn push_entry(out: &mut Vec<u8>, key: StateKey, kind: EntryKind, value: &[u8]) {
    // Entries are bounded by the chunk capacity (see `ChunkBuilder::push`),
    // which is far below 4 GiB, so the conversion never saturates.
    debug_assert!(u32::try_from(value.len()).is_ok(), "entry value too large");
    let len = u32::try_from(value.len()).unwrap_or(u32::MAX);
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&len.to_le_bytes());
    out.push(match kind {
        EntryKind::Fixed => 0,
        EntryKind::Appended => 1,
    });
    out.extend_from_slice(&[0u8; 3]);
    out.extend_from_slice(value);
}

/// Wire size of an entry with a `len`-byte value.
#[inline]
pub fn entry_wire_size(len: usize) -> usize {
    ENTRY_OVERHEAD + len
}

/// Why a delta chunk failed strict validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaDecodeError {
    /// The chunk is shorter than its own framing claims.
    Truncated {
        /// Byte offset the decoder needed to reach.
        need: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// An entry carried an unknown kind byte.
    BadKind(u8),
    /// Bytes remained after the declared entries.
    TrailingBytes {
        /// Offset where decoding stopped.
        at: usize,
        /// Total payload length.
        len: usize,
    },
}

impl std::fmt::Display for DeltaDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaDecodeError::Truncated { need, have } => {
                write!(f, "delta chunk truncated: need {need} bytes, have {have}")
            }
            DeltaDecodeError::BadKind(k) => write!(f, "delta entry has unknown kind byte {k}"),
            DeltaDecodeError::TrailingBytes { at, len } => {
                write!(f, "delta chunk has trailing bytes: entries end at {at}, payload is {len}")
            }
        }
    }
}

/// Strictly parse a chunk: validates framing before touching entry bytes,
/// returning the header and calling `f` per entry. Entries decoded before
/// an error is detected will already have been passed to `f`.
pub fn try_parse_chunk(
    payload: &[u8],
    mut f: impl FnMut(StateKey, EntryKind, &[u8]),
) -> Result<DeltaHeader, DeltaDecodeError> {
    if payload.len() < DELTA_HEADER_SIZE {
        return Err(DeltaDecodeError::Truncated {
            need: DELTA_HEADER_SIZE,
            have: payload.len(),
        });
    }
    let header = DeltaHeader::decode(payload);
    let mut off = DELTA_HEADER_SIZE;
    for _ in 0..header.n_entries {
        let key = StateKey::from_le_bytes(le_bytes(payload, off));
        let len = u32::from_le_bytes(le_bytes(payload, off + 16)) as usize;
        let kind_byte = payload.get(off + 20).copied().unwrap_or(0);
        let kind = match kind_byte {
            0 => EntryKind::Fixed,
            1 => EntryKind::Appended,
            other => return Err(DeltaDecodeError::BadKind(other)),
        };
        off += ENTRY_OVERHEAD;
        let value = payload
            .get(off..off + len)
            .ok_or(DeltaDecodeError::Truncated {
                need: off + len,
                have: payload.len(),
            })?;
        f(key, kind, value);
        off += len;
    }
    if off != payload.len() {
        return Err(DeltaDecodeError::TrailingBytes {
            at: off,
            len: payload.len(),
        });
    }
    Ok(header)
}

/// Parse a chunk: returns the header and calls `f` per entry.
///
/// Total variant of [`try_parse_chunk`] for inputs already known to be
/// well-formed (e.g. snapshot chunks produced locally): a corrupt chunk
/// trips a debug assertion and yields the header with whatever entries
/// decoded cleanly.
pub fn parse_chunk(payload: &[u8], f: impl FnMut(StateKey, EntryKind, &[u8])) -> DeltaHeader {
    match try_parse_chunk(payload, f) {
        Ok(header) => header,
        Err(e) => {
            debug_assert!(false, "corrupt delta chunk: {e}");
            DeltaHeader::decode(payload)
        }
    }
}

/// Incrementally build delta chunks no larger than `max_chunk` bytes.
pub struct ChunkBuilder {
    partition: u32,
    epoch: u64,
    watermark: u64,
    sent_us: u64,
    max_chunk: usize,
    current: Vec<u8>,
    n_entries: u32,
    chunks: Vec<Vec<u8>>,
}

impl ChunkBuilder {
    /// Start building chunks for one closed epoch. `sent_us` is the
    /// virtual close time in microseconds (0 when not applicable).
    pub fn new(partition: u32, epoch: u64, watermark: u64, sent_us: u64, max_chunk: usize) -> Self {
        assert!(
            max_chunk >= DELTA_HEADER_SIZE + ENTRY_OVERHEAD + 8,
            "chunk size too small for even one entry"
        );
        let mut b = ChunkBuilder {
            partition,
            epoch,
            watermark,
            sent_us,
            max_chunk,
            current: Vec::with_capacity(max_chunk),
            n_entries: 0,
            chunks: Vec::new(),
        };
        b.begin_chunk();
        b
    }

    fn begin_chunk(&mut self) {
        self.current.clear();
        DeltaHeader {
            partition: self.partition,
            n_entries: 0,
            epoch: self.epoch,
            watermark: self.watermark,
            fin: false,
            sent_us: self.sent_us,
        }
        .encode_into(&mut self.current);
        self.n_entries = 0;
    }

    /// Add one entry, sealing the current chunk if it would overflow.
    pub fn push(&mut self, key: StateKey, kind: EntryKind, value: &[u8]) {
        let need = entry_wire_size(value.len());
        assert!(
            DELTA_HEADER_SIZE + need <= self.max_chunk,
            "single entry of {need} bytes exceeds chunk capacity {}",
            self.max_chunk
        );
        if self.current.len() + need > self.max_chunk {
            self.seal(false);
        }
        push_entry(&mut self.current, key, kind, value);
        self.n_entries += 1;
    }

    fn seal(&mut self, fin: bool) {
        DeltaHeader::patch(&mut self.current, 0, self.n_entries, fin);
        self.chunks.push(std::mem::take(&mut self.current));
        if !fin {
            self.begin_chunk();
        }
    }

    /// Seal the final chunk (sent even when empty: it carries the
    /// watermark the leader needs for its vector clock).
    pub fn finish(mut self) -> Vec<Vec<u8>> {
        self.seal(true);
        self.chunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = DeltaHeader {
            partition: 3,
            n_entries: 17,
            epoch: 42,
            watermark: 123_456_789,
            fin: true,
            sent_us: (1u64 << 40) - 7, // full 40-bit stamp survives
        };
        let mut buf = Vec::new();
        h.encode_into(&mut buf);
        assert_eq!(buf.len(), DELTA_HEADER_SIZE);
        assert_eq!(DeltaHeader::decode(&buf), h);
    }

    #[test]
    fn single_chunk_roundtrip() {
        let mut b = ChunkBuilder::new(1, 5, 999, 1234, 4096);
        b.push(100, EntryKind::Fixed, &7u64.to_le_bytes());
        b.push(200, EntryKind::Appended, b"elem");
        let chunks = b.finish();
        assert_eq!(chunks.len(), 1);
        let mut got = Vec::new();
        let h = parse_chunk(&chunks[0], |k, kind, v| got.push((k, kind, v.to_vec())));
        assert_eq!(h.partition, 1);
        assert_eq!(h.epoch, 5);
        assert_eq!(h.watermark, 999);
        assert_eq!(h.sent_us, 1234);
        assert!(h.fin);
        assert_eq!(h.n_entries, 2);
        assert_eq!(got[0], (100, EntryKind::Fixed, 7u64.to_le_bytes().to_vec()));
        assert_eq!(got[1], (200, EntryKind::Appended, b"elem".to_vec()));
    }

    #[test]
    fn large_deltas_split_into_chunks_with_single_fin() {
        let max = 256;
        let mut b = ChunkBuilder::new(0, 1, 10, 0, max);
        for k in 0..100u128 {
            b.push(k, EntryKind::Fixed, &(k as u64).to_le_bytes());
        }
        let chunks = b.finish();
        assert!(chunks.len() > 1);
        let mut total = 0;
        let mut fins = 0;
        for (i, c) in chunks.iter().enumerate() {
            assert!(c.len() <= max, "chunk {i} too big: {}", c.len());
            let h = parse_chunk(c, |_, _, _| total += 1);
            if h.fin {
                fins += 1;
                assert_eq!(i, chunks.len() - 1, "fin must be last");
            }
        }
        assert_eq!(total, 100);
        assert_eq!(fins, 1);
    }

    #[test]
    fn empty_epoch_still_produces_a_fin_chunk() {
        let chunks = ChunkBuilder::new(2, 9, 555, 0, 1024).finish();
        assert_eq!(chunks.len(), 1);
        let h = parse_chunk(&chunks[0], |_, _, _| panic!("no entries"));
        assert!(h.fin);
        assert_eq!(h.n_entries, 0);
        assert_eq!(h.watermark, 555);
    }

    #[test]
    fn strict_parse_rejects_corruption() {
        let mut b = ChunkBuilder::new(0, 1, 10, 0, 4096);
        b.push(7, EntryKind::Fixed, &1u64.to_le_bytes());
        let chunks = b.finish();
        let good = &chunks[0];
        assert!(try_parse_chunk(good, |_, _, _| {}).is_ok());

        // Truncated: chop the value bytes off.
        let truncated = &good[..good.len() - 4];
        assert!(matches!(
            try_parse_chunk(truncated, |_, _, _| {}),
            Err(DeltaDecodeError::Truncated { .. })
        ));

        // Bad kind byte on the first entry.
        let mut bad_kind = good.clone();
        bad_kind[DELTA_HEADER_SIZE + 20] = 9;
        assert!(matches!(
            try_parse_chunk(&bad_kind, |_, _, _| {}),
            Err(DeltaDecodeError::BadKind(9))
        ));

        // Trailing garbage after the declared entries.
        let mut trailing = good.clone();
        trailing.push(0xFF);
        assert!(matches!(
            try_parse_chunk(&trailing, |_, _, _| {}),
            Err(DeltaDecodeError::TrailingBytes { .. })
        ));

        // Too short for even a header.
        assert!(matches!(
            try_parse_chunk(&[0u8; 4], |_, _, _| {}),
            Err(DeltaDecodeError::Truncated { need: 32, have: 4 })
        ));
    }
}
