//! Sim-vs-threaded equivalence smoke: for the same seed and workload,
//! both backends must converge to bit-identical per-node state digests
//! and result multisets. This is the contract that lets the threaded
//! runtime exist at all — the deterministic simulator stays the
//! reference semantics, threads only change the wall-clock story.
//!
//! CI runs this file in release mode (2 seeds × 2 workloads; see
//! `scripts/ci.sh`).

use std::rc::Rc;

use slash_core::RunConfig;
use slash_exec::{results_fingerprint, JobSpec, Scheduler, SimBackend, ThreadBackend};
use slash_workloads::{nb7, ysb_hot, GenConfig, Workload};

/// Unwrap a workload's freshly generated partitions into owned buffers.
fn owned_partitions(w: Workload) -> Vec<Vec<u8>> {
    w.partitions
        .into_iter()
        .map(|p| Rc::try_unwrap(p).unwrap_or_else(|p| (*p).clone()))
        .collect()
}

fn smoke_cfg(nodes: usize, workers: usize) -> RunConfig {
    let mut cfg = RunConfig::new(nodes, workers);
    cfg.collect_results = true;
    // Small epochs so plenty of delta traffic crosses the links.
    cfg.epoch_bytes = 64 * 1024;
    cfg
}

/// Run one (workload, seed) configuration under both backends and assert
/// state digests and result multisets match bit-for-bit.
fn assert_backends_agree(
    name: &str,
    seed: u64,
    gen: impl Fn(&GenConfig) -> Workload,
    plan: impl Fn() -> slash_core::QueryPlan + Send + Sync + Clone + 'static,
) {
    let nodes = 2;
    let workers = 2;
    let mut gc = GenConfig::new(nodes * workers, 10_000);
    gc.seed = seed;
    let cfg = smoke_cfg(nodes, workers);

    let parts = owned_partitions(gen(&gc));
    let sim = SimBackend.run(JobSpec::new(plan.clone(), parts.clone(), cfg));
    let thr = ThreadBackend::new().run(JobSpec::new(plan, parts, cfg));

    assert_eq!(sim.records, thr.records, "{name}/{seed:#x}: records");
    assert_eq!(sim.emitted, thr.emitted, "{name}/{seed:#x}: emitted");
    assert_eq!(
        sim.total_pairs, thr.total_pairs,
        "{name}/{seed:#x}: join pairs"
    );
    assert_eq!(
        sim.state_digests, thr.state_digests,
        "{name}/{seed:#x}: per-node state digests must be bit-identical"
    );
    assert_eq!(
        results_fingerprint(&sim.results),
        results_fingerprint(&thr.results),
        "{name}/{seed:#x}: result multisets must be identical"
    );
    assert!(thr.records > 0 && thr.emitted > 0, "{name}: trivial run");
    assert!(
        thr.net_tx_bytes > 0,
        "{name}: threaded deltas must cross the SPSC links"
    );
}

#[test]
fn ysb_hot_digests_match_seed_a() {
    assert_backends_agree("ysb_hot", 0x5145, ysb_hot, || {
        ysb_hot(&GenConfig::new(1, 1)).plan
    });
}

#[test]
fn ysb_hot_digests_match_seed_b() {
    assert_backends_agree("ysb_hot", 0xBEEF, ysb_hot, || {
        ysb_hot(&GenConfig::new(1, 1)).plan
    });
}

#[test]
fn nb7_digests_match_seed_a() {
    assert_backends_agree("nb7", 0x5145, nb7, || nb7(&GenConfig::new(1, 1)).plan);
}

#[test]
fn nb7_digests_match_seed_b() {
    assert_backends_agree("nb7", 0xBEEF, nb7, || nb7(&GenConfig::new(1, 1)).plan);
}

#[test]
fn threaded_backend_is_self_consistent_across_repeats() {
    // Two threaded runs of the same job: schedules differ (real thread
    // interleaving), digests must not.
    let mut gc = GenConfig::new(4, 5_000);
    gc.seed = 0x0DDB;
    let cfg = smoke_cfg(2, 2);
    let parts = owned_partitions(ysb_hot(&gc));
    let plan = || ysb_hot(&GenConfig::new(1, 1)).plan;
    let a = ThreadBackend::new().run(JobSpec::new(plan, parts.clone(), cfg));
    let b = ThreadBackend::new().run(JobSpec::new(plan, parts, cfg));
    assert_eq!(a.state_digests, b.state_digests);
    assert_eq!(
        results_fingerprint(&a.results),
        results_fingerprint(&b.results)
    );
}
