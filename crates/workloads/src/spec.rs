//! Workload specifications: a query plan plus pre-generated partitions.

use std::rc::Rc;

use slash_core::QueryPlan;

/// Generation parameters shared by all workloads.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of partitions to generate (one per executor thread; the
    /// paper's weak scaling grows this with the cluster).
    pub partitions: usize,
    /// Records per partition (the paper uses 1 GB per thread; benchmarks
    /// here scale this down — virtual-time throughput is load-invariant
    /// once steady state is reached).
    pub records_per_partition: u64,
    /// RNG seed; every partition derives an independent stream from it.
    pub seed: u64,
}

impl GenConfig {
    /// A config for `partitions` partitions of `records_per_partition`.
    pub fn new(partitions: usize, records_per_partition: u64) -> Self {
        GenConfig {
            partitions,
            records_per_partition,
            seed: 0x5145_u64,
        }
    }

    /// Total records across partitions.
    pub fn total_records(&self) -> u64 {
        self.partitions as u64 * self.records_per_partition
    }
}

/// A ready-to-run workload: the query and its input partitions.
pub struct Workload {
    /// Human-readable name (experiment labels).
    pub name: &'static str,
    /// The query.
    pub plan: QueryPlan,
    /// One pre-generated buffer per executor thread.
    pub partitions: Vec<Rc<Vec<u8>>>,
    /// Total records.
    pub records: u64,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("partitions", &self.partitions.len())
            .field("records", &self.records)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let g = GenConfig::new(4, 1000);
        assert_eq!(g.total_records(), 4000);
    }
}
