//! Cross-crate integration test: the paper's headline result must hold —
//! on identical workloads over the identical fabric, Slash outperforms
//! RDMA UpPar, which outperforms Flink-sim (Fig. 6).


use slash::baselines::partitioned::PartitionedConfig;
use slash::baselines::{run_flink, run_uppar};
use slash::core::{RunConfig, SlashCluster};
use slash::workloads::{ysb, GenConfig};

#[test]
fn slash_beats_uppar_beats_flink_on_ysb() {
    let nodes = 2;
    let workers = 4;
    let rec_per_part = 20_000;

    // Slash: all threads process.
    let w = ysb(&GenConfig::new(nodes * workers, rec_per_part));
    let slash_cfg = RunConfig::new(nodes, workers);
    let slash = SlashCluster::run(w.plan, w.partitions, slash_cfg);
    let slash_tp = slash.throughput();

    // Partitioned SUTs: half the threads are senders, so the same input
    // volume is spread over `nodes * workers/2` source partitions.
    let w = ysb(&GenConfig::new(nodes * workers / 2, rec_per_part * 2));
    let uppar = run_uppar(
        w.plan,
        w.partitions,
        slash::baselines::uppar::uppar_config(nodes, workers),
    );
    let uppar_tp = uppar.throughput();

    let w = ysb(&GenConfig::new(nodes * workers / 2, rec_per_part * 2));
    let flink_cfg: PartitionedConfig = slash::baselines::flinksim::flink_config(nodes, workers);
    let flink = run_flink(w.plan, w.partitions, flink_cfg);
    let flink_tp = flink.throughput();

    println!("YSB @2 nodes: slash={slash_tp:.3e} uppar={uppar_tp:.3e} flink={flink_tp:.3e}");
    println!(
        "ratios: slash/uppar={:.1} slash/flink={:.1}",
        slash_tp / uppar_tp,
        slash_tp / flink_tp
    );
    assert!(slash_tp > uppar_tp, "slash {slash_tp:.3e} <= uppar {uppar_tp:.3e}");
    assert!(uppar_tp > flink_tp, "uppar {uppar_tp:.3e} <= flink {flink_tp:.3e}");
}
