//! The Yahoo! Streaming Benchmark on a 4-node Slash cluster, with the
//! RDMA UpPar and Flink-sim baselines run on the identical workload for
//! comparison — a miniature of the paper's Fig. 6a.
//!
//! The Slash run is fully traced: a Chrome trace-event JSON (load it at
//! <https://ui.perfetto.dev>) is written to `results/ysb_trace.json`
//! (override with `SLASH_TRACE_OUT=path`), and the `slash-top` summary —
//! tail latencies included — is printed after the run. Same seed, same
//! bytes: the trace is deterministic.
//!
//! ```sh
//! cargo run --release --example ysb_pipeline
//! ```

use slash::baselines::flinksim::flink_config;
use slash::baselines::partitioned::run_partitioned;
use slash::baselines::uppar::uppar_config;
use slash::core::{RunConfig, SlashCluster};
use slash::obs::{Histogram, Obs};
use slash::workloads::{ysb, GenConfig};

/// Merge every registry histogram called `name` (across node/channel
/// labels) into one distribution for the headline quantiles.
fn merged_hist(obs: &Obs, name: &str) -> Histogram {
    obs.with_registry(|reg| {
        let mut all = Histogram::new();
        for (n, _, h) in reg.hists() {
            if n == name {
                all.merge(h);
            }
        }
        all
    })
    .unwrap_or_default()
}

fn print_quantiles(what: &str, h: &Histogram) {
    match (h.quantile(0.5), h.quantile(0.99), h.quantile(0.999)) {
        (Some(p50), Some(p99), Some(p999)) => println!(
            "{what}: p50 {p50} ns   p99 {p99} ns   p99.9 {p999} ns   ({} samples)",
            h.count()
        ),
        _ => println!("{what}: no samples recorded"),
    }
}

fn main() {
    let nodes = 4;
    let workers = 4;
    let records_per_worker = 25_000u64;

    // --- Slash: every thread runs filter → project → window-update. ---
    let w = ysb(&GenConfig::new(nodes * workers, records_per_worker));
    println!(
        "YSB: {} records ({} MB), filter(1/3) -> project -> 10min tumbling count per campaign",
        w.records,
        w.records * 78 / 1_000_000
    );
    let obs = Obs::enabled(65_536);
    let slash =
        SlashCluster::run_with_obs(w.plan, w.partitions, RunConfig::new(nodes, workers), obs.clone());
    println!(
        "\nSlash      @{nodes} nodes: {:>8.1} M records/s   ({} windows emitted, {} KiB state traffic)",
        slash.throughput() / 1e6,
        slash.emitted,
        slash.net_tx_bytes / 1024
    );

    // --- RDMA UpPar: half the threads partition, half process. ---
    let senders = workers / 2;
    let w = ysb(&GenConfig::new(
        nodes * senders,
        records_per_worker * workers as u64 / senders as u64,
    ));
    let uppar = run_partitioned(w.plan, w.partitions, uppar_config(nodes, workers));
    println!(
        "RDMA UpPar @{nodes} nodes: {:>8.1} M records/s   ({} windows emitted, {} MiB re-partitioned)",
        uppar.throughput() / 1e6,
        uppar.emitted,
        uppar.net_tx_bytes / 1024 / 1024
    );

    // --- Flink-sim: same topology over IPoIB sockets + managed runtime. ---
    let w = ysb(&GenConfig::new(
        nodes * senders,
        records_per_worker * workers as u64 / senders as u64,
    ));
    let flink = run_partitioned(w.plan, w.partitions, flink_config(nodes, workers));
    println!(
        "Flink-sim  @{nodes} nodes: {:>8.1} M records/s   ({} windows emitted)",
        flink.throughput() / 1e6,
        flink.emitted
    );

    println!(
        "\nSlash vs UpPar: {:.1}x    Slash vs Flink: {:.1}x",
        slash.throughput() / uppar.throughput(),
        slash.throughput() / flink.throughput()
    );
    assert!(slash.throughput() > uppar.throughput());
    assert!(uppar.throughput() > flink.throughput());

    // --- Observability artifacts from the traced Slash run. ---
    println!("\n{}", obs.summary());
    print_quantiles("record latency ", &merged_hist(&obs, "record_latency_ns"));
    print_quantiles("epoch merge    ", &merged_hist(&obs, "epoch_merge_latency_ns"));

    let out = std::env::var("SLASH_TRACE_OUT").unwrap_or_else(|_| "results/ysb_trace.json".into());
    let json = obs.chrome_trace_json();
    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&out, &json) {
        Ok(()) => println!(
            "\ntrace: {} events -> {out} ({} KiB, load at https://ui.perfetto.dev)",
            obs.events().len(),
            json.len() / 1024
        ),
        Err(e) => eprintln!("trace: failed to write {out}: {e}"),
    }
}
