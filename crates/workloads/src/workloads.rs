//! The concrete benchmark generators.

use std::rc::Rc;

use slash_core::{AggSpec, QueryPlan, RecordSchema, StreamDef, WindowAssigner};
use slash_desim::DetRng;
use slash_state::hash::partition_of;
use slash_state::pack_key;

use crate::dist::{Pareto, Uniform, Zipf};
use crate::spec::{GenConfig, Workload};

/// Key-distribution choice for generators that support a skew sweep.
enum KeyDist {
    Uniform(Uniform),
    Zipf(Zipf),
    Pareto(Pareto),
}

impl KeyDist {
    fn sample(&self, rng: &mut DetRng) -> u64 {
        match self {
            KeyDist::Uniform(d) => d.sample(rng),
            KeyDist::Zipf(d) => d.sample(rng),
            KeyDist::Pareto(d) => d.sample(rng),
        }
    }
}

/// Build one partition of fixed-size records: `fill(rng, i, rec)` writes
/// the record body; timestamps are strictly monotone (paper §2.2's data
/// model) with the given step.
fn gen_partition(
    cfg: &GenConfig,
    part: usize,
    size: usize,
    ts_step: u64,
    mut fill: impl FnMut(&mut DetRng, u64, &mut [u8]),
) -> Rc<Vec<u8>> {
    let mut root = DetRng::new(cfg.seed);
    let mut rng = root.fork(part as u64);
    let n = cfg.records_per_partition;
    let mut buf = vec![0u8; (n as usize) * size];
    for i in 0..n {
        let rec = &mut buf[(i as usize) * size..(i as usize + 1) * size];
        let ts = 1 + i * ts_step;
        rec[0..8].copy_from_slice(&ts.to_le_bytes());
        fill(&mut rng, i, rec);
    }
    Rc::new(buf)
}

// ---------------------------------------------------------------------
// YSB — Yahoo! Streaming Benchmark (78-byte ad events).
// ---------------------------------------------------------------------

/// YSB record layout: ts(0) | campaign(8) | event_type(16) | 54 B attrs.
pub const YSB_SCHEMA: RecordSchema = RecordSchema::plain(78);
/// YSB window: 10-minute event-time tumbling count (paper §8.1.2), in ms.
pub const YSB_WINDOW_MS: u64 = 600_000;
/// YSB campaign-key domain (paper: uniform from a 10 M-wide range).
pub const YSB_KEYS: u64 = 10_000_000;

fn ysb_with(cfg: &GenConfig, dist_of: impl Fn() -> KeyDist) -> Workload {
    // Cover ~3 windows so triggers fire mid-run.
    let span = 3 * YSB_WINDOW_MS;
    let ts_step = (span / cfg.records_per_partition).max(1);
    let partitions = (0..cfg.partitions)
        .map(|p| {
            let dist = dist_of();
            gen_partition(cfg, p, YSB_SCHEMA.size, ts_step, |rng, _i, rec| {
                let key = dist.sample(rng);
                rec[8..16].copy_from_slice(&key.to_le_bytes());
                // Three event types; the filter keeps "view" (0): the
                // benchmark's 1/3 selectivity.
                let ev = rng.next_below(3);
                rec[16..24].copy_from_slice(&ev.to_le_bytes());
            })
        })
        .collect();
    Workload {
        name: "ysb",
        plan: QueryPlan::Aggregate {
            input: StreamDef::new(YSB_SCHEMA)
                .with_filter(|s, r| s.field_u64(r, 16) == 0),
            window: WindowAssigner::Tumbling { size: YSB_WINDOW_MS },
            agg: AggSpec::Count,
        },
        partitions,
        records: cfg.total_records(),
    }
}

/// YSB with uniform campaign keys (Fig. 6a).
pub fn ysb(cfg: &GenConfig) -> Workload {
    ysb_with(cfg, || KeyDist::Uniform(Uniform::new(YSB_KEYS)))
}

/// YSB with Zipf(z) campaign keys — the skew sweep of Fig. 8d.
pub fn ysb_zipf(cfg: &GenConfig, z: f64) -> Workload {
    ysb_with(cfg, move || KeyDist::Zipf(Zipf::new(YSB_KEYS, z)))
}

/// Campaign domain of the keyed-ingress skew sweep: small enough that a
/// capacity-64 SpaceSaving sketch provably identifies the head of the
/// distribution, large enough that the tail still spreads over every
/// node.
pub const YSB_ZIPF_KEYS: u64 = 10_000;

/// YSB with Zipf(θ) campaign keys and **keyed ingress**: one global
/// monotone stream whose records are routed to partitions by
/// `partition_of(key)` — the deployment shape where upstream sharding is
/// key-hashed, so a hot key concentrates both pipeline *and* state work
/// on one node. θ = 0 degenerates to uniform. This is the workload the
/// hot-key splitting sweep (`hotpath-bench --zipf`) runs on; the plain
/// [`ysb_zipf`] keeps the paper's balanced-ingress shape.
///
/// `cfg.partitions` must equal the node count (keyed ingress has one
/// stream per node). Partition sizes are intentionally *uneven* under
/// skew — that imbalance is what splitting exists to fix.
pub fn ysb_zipf_keyed(cfg: &GenConfig, theta: f64) -> Workload {
    let parts = cfg.partitions;
    assert!(parts > 0);
    let total = cfg.total_records();
    let span = 3 * YSB_WINDOW_MS;
    let ts_step = (span / total.max(1)).max(1);
    let dist = if theta > 0.0 {
        KeyDist::Zipf(Zipf::new(YSB_ZIPF_KEYS, theta))
    } else {
        KeyDist::Uniform(Uniform::new(YSB_ZIPF_KEYS))
    };
    let mut root = DetRng::new(cfg.seed);
    let mut rng = root.fork(0);
    let mut bufs: Vec<Vec<u8>> = vec![Vec::new(); parts];
    let mut rec = [0u8; 78];
    for i in 0..total {
        let ts = 1 + i * ts_step;
        let key = dist.sample(&mut rng);
        let ev = rng.next_below(3);
        rec[0..8].copy_from_slice(&ts.to_le_bytes());
        rec[8..16].copy_from_slice(&key.to_le_bytes());
        rec[16..24].copy_from_slice(&ev.to_le_bytes());
        // Route by the same hash the SSB partitions state with: the
        // node that receives a key's records is also that key's leader.
        let dest = partition_of(pack_key(0, key), parts);
        bufs[dest].extend_from_slice(&rec);
    }
    Workload {
        name: "ysb_zipf_keyed",
        plan: QueryPlan::Aggregate {
            input: StreamDef::new(YSB_SCHEMA)
                .with_filter(|s, r| s.field_u64(r, 16) == 0),
            window: WindowAssigner::Tumbling { size: YSB_WINDOW_MS },
            agg: AggSpec::Count,
        },
        partitions: bufs.into_iter().map(Rc::new).collect(),
        records: total,
    }
}

/// Campaign domain of the classic YSB setup: ~100 active campaigns.
pub const YSB_HOT_KEYS: u64 = 100;

/// YSB with the benchmark's classic ~100-campaign domain (`ysb` above
/// follows the paper's 10 M-wide uniform range). Each batch's updates
/// collapse onto a handful of distinct `(window, campaign)` keys, making
/// this the write combiner's best case — `hotpath-bench`'s headline row
/// and the CI perf gate's subject.
pub fn ysb_hot(cfg: &GenConfig) -> Workload {
    let mut w = ysb_with(cfg, || KeyDist::Uniform(Uniform::new(YSB_HOT_KEYS)));
    w.name = "ysb_hot";
    w
}

// ---------------------------------------------------------------------
// NEXMark.
// ---------------------------------------------------------------------

/// NB7 bid record: ts | auction key | price | pad = 32 B (paper: bids are
/// 32 bytes).
pub const NB7_SCHEMA: RecordSchema = RecordSchema::plain(32);
/// NB7 window: 60 s, in ms.
pub const NB7_WINDOW_MS: u64 = 60_000;
/// NB7 key domain.
pub const NB7_KEYS: u64 = 1_000_000;

/// NB7: windowed maximum bid price, Pareto-skewed keys with heavy hitters
/// (Fig. 6c). Small state, RMW update pattern.
pub fn nb7(cfg: &GenConfig) -> Workload {
    let span = 3 * NB7_WINDOW_MS;
    let ts_step = (span / cfg.records_per_partition).max(1);
    let partitions = (0..cfg.partitions)
        .map(|p| {
            let dist = KeyDist::Pareto(Pareto::heavy_hitters(NB7_KEYS));
            gen_partition(cfg, p, NB7_SCHEMA.size, ts_step, |rng, _i, rec| {
                let key = dist.sample(rng);
                rec[8..16].copy_from_slice(&key.to_le_bytes());
                let price = 100 + rng.next_below(10_000);
                rec[16..24].copy_from_slice(&price.to_le_bytes());
            })
        })
        .collect();
    Workload {
        name: "nb7",
        plan: QueryPlan::Aggregate {
            input: StreamDef::new(NB7_SCHEMA),
            window: WindowAssigner::Tumbling { size: NB7_WINDOW_MS },
            agg: AggSpec::MaxU64 { off: 16 },
        },
        partitions,
        records: cfg.total_records(),
    }
}

/// NB8 unified record: ts | seller key | side | 248 B payload = 272 B
/// (auctions are 269 B in the paper; the unified stream pads both sides
/// to the larger size).
pub const NB8_SCHEMA: RecordSchema = RecordSchema::plain(272);
/// NB8 window: 12-hour tumbling join, in ms.
pub const NB8_WINDOW_MS: u64 = 12 * 3600 * 1000;

/// NB8: 12 h tumbling join of auctions ⋈ sellers (4:1 ratio, every
/// auction references a valid seller). Large state from the append
/// pattern and large tuples (Fig. 6d).
pub fn nb8(cfg: &GenConfig) -> Workload {
    // The whole run fits one window: state grows until the final trigger.
    let ts_step = (NB8_WINDOW_MS / 2 / cfg.records_per_partition).max(1);
    let sellers = (cfg.records_per_partition / 5).max(16);
    let partitions = (0..cfg.partitions)
        .map(|p| {
            let dist = Uniform::new(sellers);
            gen_partition(cfg, p, NB8_SCHEMA.size, ts_step, |rng, i, rec| {
                // 4 auctions : 1 seller.
                let side = u64::from(i % 5 == 4);
                let key = if side == 1 {
                    i / 5 % sellers // sellers enumerate the domain
                } else {
                    dist.sample(rng)
                };
                rec[8..16].copy_from_slice(&key.to_le_bytes());
                rec[16..24].copy_from_slice(&side.to_le_bytes());
            })
        })
        .collect();
    Workload {
        name: "nb8",
        plan: QueryPlan::Join {
            input: StreamDef::new(NB8_SCHEMA),
            side_off: 16,
            window: WindowAssigner::Tumbling { size: NB8_WINDOW_MS },
            retain_bytes: 64,
        },
        partitions,
        records: cfg.total_records(),
    }
}

/// NB11 unified record: ts | seller key | side | pad = 32 B (bids are
/// 32 B; the small-tuple join of Fig. 6e).
pub const NB11_SCHEMA: RecordSchema = RecordSchema::plain(32);
/// NB11 session gap, in ms.
pub const NB11_GAP_MS: u64 = 10_000;

/// NB11: session-window join of bids ⋈ sellers (small tuples).
pub fn nb11(cfg: &GenConfig) -> Workload {
    let span = 6 * NB11_GAP_MS;
    let ts_step = (span / cfg.records_per_partition).max(1);
    let sellers = (cfg.records_per_partition / 50).max(16);
    let partitions = (0..cfg.partitions)
        .map(|p| {
            let dist = Uniform::new(sellers);
            gen_partition(cfg, p, NB11_SCHEMA.size, ts_step, |rng, i, rec| {
                let side = u64::from(i % 5 == 4);
                let key = dist.sample(rng);
                rec[8..16].copy_from_slice(&key.to_le_bytes());
                rec[16..24].copy_from_slice(&side.to_le_bytes());
            })
        })
        .collect();
    Workload {
        name: "nb11",
        plan: QueryPlan::Join {
            input: StreamDef::new(NB11_SCHEMA),
            side_off: 16,
            window: WindowAssigner::Session { gap: NB11_GAP_MS },
            retain_bytes: 16,
        },
        partitions,
        records: cfg.total_records(),
    }
}

// ---------------------------------------------------------------------
// CM — Cluster Monitoring.
// ---------------------------------------------------------------------

/// CM record: ts | job key | cpu f64 | 40 B attrs = 64 B.
pub const CM_SCHEMA: RecordSchema = RecordSchema::plain(64);
/// CM window: 2 s tumbling mean, in ms.
pub const CM_WINDOW_MS: u64 = 2_000;
/// CM job-id domain (the trace has hundreds of thousands of jobs).
pub const CM_JOBS: u64 = 100_000;

/// CM: mean CPU utilization per job over 2 s tumbling windows, on a
/// synthesized Google-trace-shaped stream (Fig. 6b).
pub fn cm(cfg: &GenConfig) -> Workload {
    let span = 10 * CM_WINDOW_MS;
    let ts_step = (span / cfg.records_per_partition).max(1);
    let partitions = (0..cfg.partitions)
        .map(|p| {
            // Job popularity in the trace is itself long-tailed.
            let dist = Zipf::new(CM_JOBS, 0.9);
            gen_partition(cfg, p, CM_SCHEMA.size, ts_step, |rng, _i, rec| {
                let key = dist.sample(rng);
                rec[8..16].copy_from_slice(&key.to_le_bytes());
                let cpu = rng.next_f64();
                rec[16..24].copy_from_slice(&cpu.to_le_bytes());
            })
        })
        .collect();
    Workload {
        name: "cm",
        plan: QueryPlan::Aggregate {
            input: StreamDef::new(CM_SCHEMA),
            window: WindowAssigner::Tumbling { size: CM_WINDOW_MS },
            agg: AggSpec::MeanF64 { off: 16 },
        },
        partitions,
        records: cfg.total_records(),
    }
}

// ---------------------------------------------------------------------
// RO — the drill-down read-only benchmark.
// ---------------------------------------------------------------------

/// RO record: ts | key = 16 B.
pub const RO_SCHEMA: RecordSchema = RecordSchema::plain(16);
/// RO key domain (paper: uniform over a 100 M-wide range).
pub const RO_KEYS: u64 = 100_000_000;

fn ro_with(cfg: &GenConfig, dist_of: impl Fn() -> KeyDist) -> Workload {
    let partitions = (0..cfg.partitions)
        .map(|p| {
            let dist = dist_of();
            gen_partition(cfg, p, RO_SCHEMA.size, 1, |rng, _i, rec| {
                let key = dist.sample(rng);
                rec[8..16].copy_from_slice(&key.to_le_bytes());
            })
        })
        .collect();
    Workload {
        name: "ro",
        plan: QueryPlan::Aggregate {
            input: StreamDef::new(RO_SCHEMA),
            // One unbounded window: pure per-key counting, no triggers
            // during the run.
            window: WindowAssigner::Tumbling { size: u64::MAX / 4 },
            agg: AggSpec::Count,
        },
        partitions,
        records: cfg.total_records(),
    }
}

/// RO with uniform keys (§8.3 drill-down).
pub fn ro(cfg: &GenConfig) -> Workload {
    ro_with(cfg, || KeyDist::Uniform(Uniform::new(RO_KEYS)))
}

/// RO with Zipf(z) keys — the skew sweep of Fig. 8d.
pub fn ro_zipf(cfg: &GenConfig, z: f64) -> Workload {
    ro_with(cfg, move || KeyDist::Zipf(Zipf::new(RO_KEYS, z)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GenConfig {
        GenConfig::new(2, 1000)
    }

    #[test]
    fn ysb_shape() {
        let w = ysb(&small());
        assert_eq!(w.partitions.len(), 2);
        assert_eq!(w.partitions[0].len(), 1000 * 78);
        // Timestamps strictly monotone, keys in range, event types 0..3.
        let schema = YSB_SCHEMA;
        let mut last = 0;
        let mut views = 0;
        schema.for_each(&w.partitions[0], |r| {
            let ts = schema.ts(r);
            assert!(ts > last);
            last = ts;
            assert!(schema.key(r) < YSB_KEYS);
            let ev = schema.field_u64(r, 16);
            assert!(ev < 3);
            if ev == 0 {
                views += 1;
            }
        });
        // ~1/3 selectivity.
        assert!((250..450).contains(&views), "views = {views}");
        // Spans about 3 windows.
        assert!(last <= 3 * YSB_WINDOW_MS + 1);
        assert!(last > 2 * YSB_WINDOW_MS);
    }

    #[test]
    fn ysb_hot_collapses_the_key_domain() {
        let w = ysb_hot(&small());
        assert_eq!(w.name, "ysb_hot");
        let mut keys = std::collections::HashSet::new();
        YSB_SCHEMA.for_each(&w.partitions[0], |r| {
            keys.insert(YSB_SCHEMA.key(r));
        });
        assert!(keys.len() <= YSB_HOT_KEYS as usize);
        // 1000 draws over 100 campaigns touch most of them.
        assert!(keys.len() > 50, "distinct campaigns: {}", keys.len());
    }

    #[test]
    fn partitions_are_non_disjoint_but_distinct_streams() {
        let w = ro(&GenConfig::new(2, 2000));
        assert_ne!(
            w.partitions[0], w.partitions[1],
            "partitions must be independent streams"
        );
    }

    #[test]
    fn nb7_prices_and_pareto_keys() {
        let w = nb7(&small());
        let schema = NB7_SCHEMA;
        let mut hot = 0;
        schema.for_each(&w.partitions[0], |r| {
            let price = schema.field_u64(r, 16);
            assert!((100..10_100).contains(&price));
            if schema.key(r) < 10 {
                hot += 1;
            }
        });
        assert!(hot > 200, "Pareto heavy hitters expected: {hot}");
    }

    #[test]
    fn nb8_ratio_and_valid_sellers() {
        let cfg = GenConfig::new(1, 5000);
        let w = nb8(&cfg);
        let schema = NB8_SCHEMA;
        let sellers = 5000 / 5;
        let mut n_sellers = 0u64;
        let mut n_auctions = 0u64;
        schema.for_each(&w.partitions[0], |r| {
            let side = schema.field_u64(r, 16);
            assert!(schema.key(r) < sellers);
            if side == 1 {
                n_sellers += 1;
            } else {
                n_auctions += 1;
            }
        });
        assert_eq!(n_auctions, 4 * n_sellers, "4:1 auction:seller ratio");
    }

    #[test]
    fn cm_cpu_in_unit_interval() {
        let w = cm(&small());
        let schema = CM_SCHEMA;
        schema.for_each(&w.partitions[0], |r| {
            let cpu = schema.field_f64(r, 16);
            assert!((0.0..1.0).contains(&cpu));
            assert!(schema.key(r) < CM_JOBS);
        });
    }

    #[test]
    fn generators_are_deterministic() {
        let a = ysb(&small());
        let b = ysb(&small());
        assert_eq!(a.partitions[0], b.partitions[0]);
        assert_eq!(a.partitions[1], b.partitions[1]);
        let mut cfg = small();
        cfg.seed = 99;
        let c = ysb(&cfg);
        assert_ne!(a.partitions[0], c.partitions[0]);
    }

    #[test]
    fn zipf_keyed_routes_by_state_hash_and_stays_monotone() {
        let cfg = GenConfig::new(4, 2000);
        let w = ysb_zipf_keyed(&cfg, 0.9);
        assert_eq!(w.partitions.len(), 4);
        assert_eq!(w.records, 8000);
        let total: usize = w.partitions.iter().map(|p| p.len()).sum();
        assert_eq!(total, 8000 * 78, "keyed routing must not drop records");
        for (p, part) in w.partitions.iter().enumerate() {
            let mut last = 0;
            YSB_SCHEMA.for_each(part, |r| {
                let ts = YSB_SCHEMA.ts(r);
                assert!(ts > last, "subsequence of a monotone stream");
                last = ts;
                let key = YSB_SCHEMA.key(r);
                assert!(key < YSB_ZIPF_KEYS);
                assert_eq!(
                    partition_of(pack_key(0, key), 4),
                    p,
                    "record for key {key} landed off its leader"
                );
            });
        }
    }

    #[test]
    fn zipf_keyed_skew_concentrates_load_on_one_node() {
        let cfg = GenConfig::new(4, 5000);
        let imbalance = |theta: f64| {
            let w = ysb_zipf_keyed(&cfg, theta);
            let sizes: Vec<usize> = w.partitions.iter().map(|p| p.len() / 78).collect();
            let max = *sizes.iter().max().unwrap_or(&0) as f64;
            max / (w.records as f64 / sizes.len() as f64)
        };
        let flat = imbalance(0.0);
        let hot = imbalance(1.5);
        assert!(flat < 1.2, "uniform keyed ingress is balanced: {flat}");
        assert!(
            hot > 1.5,
            "zipf 1.5 must overload the hot key's node: {hot}"
        );
    }

    #[test]
    fn zipf_variant_is_hotter_than_uniform() {
        let cfg = GenConfig::new(1, 5000);
        let distinct = |w: &Workload| {
            let mut set = std::collections::HashSet::new();
            RO_SCHEMA.for_each(&w.partitions[0], |r| {
                set.insert(RO_SCHEMA.key(r));
            });
            set.len()
        };
        let u = distinct(&ro(&cfg));
        let z = distinct(&ro_zipf(&cfg, 1.5));
        assert!(z < u / 4, "zipf 1.5 distinct {z} vs uniform {u}");
    }
}
