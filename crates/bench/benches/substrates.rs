//! Criterion micro-benchmarks of the substrate data structures: the LSS,
//! the FASTER-style hash index, CRDT merges, and window assignment. These
//! measure *host* performance of the real data structures (not simulated
//! time) — the state backend does real work in the reproduction, so its
//! efficiency bounds how fast experiments run.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use slash_state::crdts::{CounterCrdt, MeanCrdt};
use slash_state::entry::EntryKind;
use slash_state::hash::{hash_key, pack_key};
use slash_state::index::HashIndex;
use slash_state::log::Lss;
use slash_state::Partition;

fn bench_lss_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("lss_append");
    for value_size in [8usize, 64, 256] {
        g.throughput(Throughput::Bytes(value_size as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(value_size),
            &value_size,
            |b, &sz| {
                let value = vec![0xABu8; sz];
                b.iter_batched(
                    Lss::new,
                    |mut log| {
                        for i in 0..1000u64 {
                            log.append(
                                i as u128,
                                slash_state::entry::NO_PREV,
                                EntryKind::Fixed,
                                black_box(&value),
                            );
                        }
                        log
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    g.finish();
}

fn bench_index_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_probe");
    for n in [1_000u64, 100_000] {
        // Build a partition with n keys, then measure lookups.
        let mut part = Partition::new(0, CounterCrdt::descriptor());
        for k in 0..n {
            part.rmw(pack_key(1, k), |v| CounterCrdt::add(v, 1));
        }
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 7919) % n;
                black_box(part.get(pack_key(1, k)))
            });
        });
    }
    g.finish();
}

fn bench_rmw_hot_path(c: &mut Criterion) {
    // Slash's per-record hot path: hash + index probe + in-place RMW.
    let mut g = c.benchmark_group("state_rmw");
    for keys in [256u64, 65_536] {
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::from_parameter(keys), &keys, |b, &keys| {
            let mut part = Partition::new(0, CounterCrdt::descriptor());
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 31) % keys;
                part.rmw(pack_key(1, k), |v| CounterCrdt::add(v, 1));
            });
        });
    }
    g.finish();
}

fn bench_crdt_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("crdt_merge");
    g.throughput(Throughput::Elements(1));
    g.bench_function("counter", |b| {
        let d = CounterCrdt::descriptor();
        let mut dst = vec![0u8; 8];
        let src = 42u64.to_le_bytes();
        b.iter(|| (d.merge)(black_box(&mut dst), black_box(&src)));
    });
    g.bench_function("mean", |b| {
        let d = MeanCrdt::descriptor();
        let mut dst = vec![0u8; 16];
        let mut src = vec![0u8; 16];
        MeanCrdt::observe(&mut src, 1.5);
        b.iter(|| (d.merge)(black_box(&mut dst), black_box(&src)));
    });
    g.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    g.throughput(Throughput::Elements(1));
    g.bench_function("hash_key", |b| {
        let mut k = 0u128;
        b.iter(|| {
            k = k.wrapping_add(0x9E37_79B9);
            black_box(hash_key(k))
        });
    });
    g.finish();
}

fn bench_index_growth(c: &mut Criterion) {
    c.bench_function("index_insert_100k_with_growth", |b| {
        b.iter_batched(
            || HashIndex::with_capacity(64),
            |mut idx| {
                // Addresses stand in for log positions; keys are implicit
                // in the verify closure (always-miss: all distinct).
                for a in 0..100_000u64 {
                    idx.upsert(
                        slash_state::hash::hash_u64(a),
                        a,
                        |_| false,
                        |addr| slash_state::hash::hash_u64(addr),
                    );
                }
                idx
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_lss_append,
    bench_index_probe,
    bench_rmw_hot_path,
    bench_crdt_merge,
    bench_hashing,
    bench_index_growth
);
criterion_main!(benches);
