//! Property tests of the CRDT algebraic laws (paper §5.1).
//!
//! The epoch protocol's convergence proof rests on each state's merge
//! being a commutative, associative operation with the init value as
//! identity. These tests check the laws for every shipped CRDT over
//! arbitrary update sequences.

use proptest::prelude::*;
use slash_state::descriptor::StateDescriptor;
use slash_state::{CounterCrdt, MaxCrdt, MeanCrdt, MinCrdt, SumF64Crdt};

fn zeroed(d: &StateDescriptor) -> Vec<u8> {
    let mut v = vec![0u8; d.fixed_size()];
    (d.init)(&mut v);
    v
}

/// Check merge laws for a descriptor given three arbitrary states.
fn check_laws(d: &StateDescriptor, a: &[u8], b: &[u8], c: &[u8], approx: bool) {
    let eq = |x: &[u8], y: &[u8]| {
        if approx {
            // f64 payloads: compare numerically to tolerate association
            // rounding.
            let fx = f64::from_le_bytes(x[..8].try_into().unwrap());
            let fy = f64::from_le_bytes(y[..8].try_into().unwrap());
            (fx - fy).abs() <= 1e-9 * fx.abs().max(fy.abs()).max(1.0) && x[8..] == y[8..]
        } else {
            x == y
        }
    };

    // Commutativity: a ⊔ b == b ⊔ a.
    let mut ab = a.to_vec();
    (d.merge)(&mut ab, b);
    let mut ba = b.to_vec();
    (d.merge)(&mut ba, a);
    assert!(eq(&ab, &ba), "merge not commutative: {ab:?} vs {ba:?}");

    // Associativity: (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c).
    let mut ab_c = ab.clone();
    (d.merge)(&mut ab_c, c);
    let mut bc = b.to_vec();
    (d.merge)(&mut bc, c);
    let mut a_bc = a.to_vec();
    (d.merge)(&mut a_bc, &bc);
    assert!(eq(&ab_c, &a_bc), "merge not associative");

    // Identity: a ⊔ 0 == a.
    let mut a0 = a.to_vec();
    (d.merge)(&mut a0, &zeroed(d));
    assert!(eq(&a0, a), "init is not the merge identity");
}

proptest! {
    #[test]
    fn counter_laws(xs in proptest::collection::vec(0u64..1 << 40, 3)) {
        let d = CounterCrdt::descriptor();
        let mk = |x: u64| {
            let mut v = zeroed(&d);
            CounterCrdt::add(&mut v, x);
            v
        };
        check_laws(&d, &mk(xs[0]), &mk(xs[1]), &mk(xs[2]), false);
    }

    #[test]
    fn sum_f64_laws(xs in proptest::collection::vec(-1e12f64..1e12, 3)) {
        let d = SumF64Crdt::descriptor();
        let mk = |x: f64| {
            let mut v = zeroed(&d);
            SumF64Crdt::add(&mut v, x);
            v
        };
        check_laws(&d, &mk(xs[0]), &mk(xs[1]), &mk(xs[2]), true);
    }

    #[test]
    fn max_laws(xs in proptest::collection::vec(any::<u64>(), 3)) {
        let d = MaxCrdt::descriptor();
        let mk = |x: u64| {
            let mut v = zeroed(&d);
            MaxCrdt::update(&mut v, x);
            v
        };
        check_laws(&d, &mk(xs[0]), &mk(xs[1]), &mk(xs[2]), false);
    }

    #[test]
    fn min_laws(xs in proptest::collection::vec(any::<u64>(), 3)) {
        let d = MinCrdt::descriptor();
        let mk = |x: u64| {
            let mut v = zeroed(&d);
            MinCrdt::update(&mut v, x);
            v
        };
        check_laws(&d, &mk(xs[0]), &mk(xs[1]), &mk(xs[2]), false);
    }

    #[test]
    fn mean_laws(
        xs in proptest::collection::vec(proptest::collection::vec(-1e6f64..1e6, 0..8), 3)
    ) {
        let d = MeanCrdt::descriptor();
        let mk = |obs: &Vec<f64>| {
            let mut v = zeroed(&d);
            for &x in obs {
                MeanCrdt::observe(&mut v, x);
            }
            v
        };
        check_laws(&d, &mk(&xs[0]), &mk(&xs[1]), &mk(&xs[2]), true);
    }

    /// Merging k partial counters in any grouping equals a sequential fold
    /// — the late-merge correctness statement (property P2) at the CRDT
    /// level.
    #[test]
    fn partials_merge_to_sequential_total(
        updates in proptest::collection::vec((0usize..4, 1u64..1000), 1..100),
    ) {
        let d = CounterCrdt::descriptor();
        let mut partials: Vec<Vec<u8>> = (0..4).map(|_| zeroed(&d)).collect();
        let mut sequential: u64 = 0;
        for (who, x) in &updates {
            CounterCrdt::add(&mut partials[*who], *x);
            sequential += x;
        }
        let mut acc = zeroed(&d);
        for p in &partials {
            (d.merge)(&mut acc, p);
        }
        prop_assert_eq!(CounterCrdt::get(&acc), sequential);
    }
}
