//! Central metrics registry: counters, gauges, and histograms, labeled by
//! node / operator / channel.
//!
//! The registry absorbs what used to be scattered across `EngineMetrics`,
//! `ChannelStats`, and ad-hoc report fields into one queryable namespace.
//! Storage is `BTreeMap`-keyed by `(name, label)` so iteration order — and
//! therefore every export — is deterministic.

use crate::heat::{HeatEntry, HeatSketch, HEAT_CAPACITY};
use crate::hist::Histogram;
use std::collections::BTreeMap;

type Key = (String, String);

/// Deterministic store of named, labeled metrics.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    hists: BTreeMap<Key, Histogram>,
    heats: BTreeMap<Key, HeatSketch>,
}

fn key(name: &str, label: &str) -> Key {
    (name.to_string(), label.to_string())
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `v` to the counter `(name, label)`, creating it at zero.
    pub fn counter_add(&mut self, name: &str, label: &str, v: u64) {
        *self.counters.entry(key(name, label)).or_insert(0) += v;
    }

    /// Read a counter.
    pub fn counter(&self, name: &str, label: &str) -> u64 {
        self.counters.get(&key(name, label)).copied().unwrap_or(0)
    }

    /// Set the gauge `(name, label)` to `v` (last write wins).
    pub fn gauge_set(&mut self, name: &str, label: &str, v: f64) {
        self.gauges.insert(key(name, label), v);
    }

    /// Read a gauge.
    pub fn gauge(&self, name: &str, label: &str) -> Option<f64> {
        self.gauges.get(&key(name, label)).copied()
    }

    /// Record one value into the histogram `(name, label)`.
    pub fn hist_record(&mut self, name: &str, label: &str, v: u64) {
        self.hists.entry(key(name, label)).or_default().record(v);
    }

    /// Merge a whole histogram into `(name, label)`.
    pub fn hist_merge(&mut self, name: &str, label: &str, h: &Histogram) {
        self.hists.entry(key(name, label)).or_default().merge(h);
    }

    /// Read a histogram.
    pub fn hist(&self, name: &str, label: &str) -> Option<&Histogram> {
        self.hists.get(&key(name, label))
    }

    /// Quantile of a histogram, if present and non-empty.
    pub fn quantile(&self, name: &str, label: &str, q: f64) -> Option<u64> {
        self.hist(name, label).and_then(|h| h.quantile(q))
    }

    /// Record `weight` observations of `key` into the heat sketch
    /// `(name, label)`, creating it with [`HEAT_CAPACITY`] slots.
    pub fn heat_observe(&mut self, name: &str, label: &str, k: u64, weight: u64) {
        self.heats
            .entry(key(name, label))
            .or_insert_with(|| HeatSketch::new(HEAT_CAPACITY))
            .observe(k, weight);
    }

    /// Merge a whole heat sketch into `(name, label)`.
    pub fn heat_merge(&mut self, name: &str, label: &str, sketch: &HeatSketch) {
        self.heats
            .entry(key(name, label))
            .or_insert_with(|| HeatSketch::new(HEAT_CAPACITY))
            .merge(sketch);
    }

    /// Read a heat sketch.
    pub fn heat(&self, name: &str, label: &str) -> Option<&HeatSketch> {
        self.heats.get(&key(name, label))
    }

    /// The hottest `n` entries of the sketch `(name, label)`, if present.
    pub fn heat_top(&self, name: &str, label: &str, n: usize) -> Vec<HeatEntry> {
        self.heat(name, label).map(|s| s.top(n)).unwrap_or_default()
    }

    /// Iterate heat sketches in deterministic `(name, label)` order.
    pub fn heats(&self) -> impl Iterator<Item = (&str, &str, &HeatSketch)> {
        self.heats
            .iter()
            .map(|((n, l), s)| (n.as_str(), l.as_str(), s))
    }

    /// Iterate counters in deterministic `(name, label)` order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.counters
            .iter()
            .map(|((n, l), &v)| (n.as_str(), l.as_str(), v))
    }

    /// Iterate gauges in deterministic `(name, label)` order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &str, f64)> {
        self.gauges
            .iter()
            .map(|((n, l), &v)| (n.as_str(), l.as_str(), v))
    }

    /// Iterate histograms in deterministic `(name, label)` order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &str, &Histogram)> {
        self.hists
            .iter()
            .map(|((n, l), h)| (n.as_str(), l.as_str(), h))
    }

    /// Merge every series of `other` into this registry: counters add,
    /// gauges take `other`'s value (last write wins, as if the writes had
    /// been issued here), histograms and heat sketches merge.
    ///
    /// This is the single synchronization point of the threaded executor's
    /// observability design: each worker thread records into its own
    /// registry with zero locking, and the driver absorbs the per-thread
    /// registries after the final epoch closes. Absorbing N disjoint
    /// per-thread registries loses no counts and — because histogram and
    /// sketch merges are exact over their bucketed representations —
    /// yields the same quantiles as recording everything into one
    /// registry, in any absorb order.
    pub fn absorb(&mut self, other: &MetricsRegistry) {
        for ((n, l), v) in &other.counters {
            *self.counters.entry((n.clone(), l.clone())).or_insert(0) += v;
        }
        for ((n, l), v) in &other.gauges {
            self.gauges.insert((n.clone(), l.clone()), *v);
        }
        for ((n, l), h) in &other.hists {
            self.hists
                .entry((n.clone(), l.clone()))
                .or_default()
                .merge(h);
        }
        for ((n, l), s) in &other.heats {
            self.heats
                .entry((n.clone(), l.clone()))
                .or_insert_with(|| HeatSketch::new(HEAT_CAPACITY))
                .merge(s);
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.heats.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("records", "node=0", 10);
        reg.counter_add("records", "node=0", 5);
        reg.counter_add("records", "node=1", 1);
        assert_eq!(reg.counter("records", "node=0"), 15);
        assert_eq!(reg.counter("records", "node=1"), 1);
        assert_eq!(reg.counter("records", "node=2"), 0);
        reg.gauge_set("ipc", "node=0", 0.5);
        reg.gauge_set("ipc", "node=0", 0.75);
        assert_eq!(reg.gauge("ipc", "node=0"), Some(0.75));
    }

    #[test]
    fn hist_record_and_merge_share_namespace() {
        let mut reg = MetricsRegistry::new();
        reg.hist_record("lat", "chan=0->1", 100);
        let mut extra = Histogram::new();
        extra.record(200);
        extra.record(300);
        reg.hist_merge("lat", "chan=0->1", &extra);
        assert_eq!(reg.hist("lat", "chan=0->1").unwrap().count(), 3);
        assert!(reg.quantile("lat", "chan=0->1", 1.0).unwrap() >= 300);
    }

    /// Merging under the same `(name, label)` accumulates; a different
    /// label — even one that concatenates to the same bytes as another
    /// `(name, label)` pair — stays a distinct series (satellite:
    /// hist_merge label collisions).
    #[test]
    fn hist_merge_keeps_labels_distinct() {
        let mut reg = MetricsRegistry::new();
        let mut a = Histogram::new();
        a.record(10);
        a.record(20);
        let mut b = Histogram::new();
        b.record(1_000);
        // Same name, two labels: no cross-talk.
        reg.hist_merge("lat", "node0", &a);
        reg.hist_merge("lat", "node1", &b);
        assert_eq!(reg.hist("lat", "node0").unwrap().count(), 2);
        assert_eq!(reg.hist("lat", "node1").unwrap().count(), 1);
        // Tuple keying, not string concatenation: ("lat.x", "y") and
        // ("lat", "x.y") must not collide.
        reg.hist_merge("lat.x", "y", &a);
        reg.hist_merge("lat", "x.y", &b);
        assert_eq!(reg.hist("lat.x", "y").unwrap().count(), 2);
        assert_eq!(reg.hist("lat", "x.y").unwrap().count(), 1);
        // Repeated merges under one key accumulate.
        reg.hist_merge("lat", "node0", &b);
        reg.hist_merge("lat", "node0", &a);
        assert_eq!(reg.hist("lat", "node0").unwrap().count(), 5);
        assert_eq!(reg.quantile("lat", "node0", 1.0).unwrap(), 1_000);
    }

    #[test]
    fn heat_sketches_are_labeled_and_merge() {
        let mut reg = MetricsRegistry::new();
        reg.heat_observe("key_heat", "node0", 7, 5);
        reg.heat_observe("key_heat", "node0", 7, 5);
        reg.heat_observe("key_heat", "node1", 9, 1);
        let mut sketch = crate::heat::HeatSketch::new(4);
        sketch.observe(7, 3);
        reg.heat_merge("key_heat", "node0", &sketch);
        let top = reg.heat_top("key_heat", "node0", 1);
        assert_eq!(top[0].key, 7);
        assert_eq!(top[0].count, 13);
        assert_eq!(reg.heat_top("key_heat", "node1", 1)[0].count, 1);
        assert!(reg.heat_top("key_heat", "node2", 1).is_empty());
        assert!(!reg.is_empty());
        let labels: Vec<&str> = reg.heats().map(|(_, l, _)| l).collect();
        assert_eq!(labels, vec!["node0", "node1"]);
    }

    #[test]
    fn absorb_merges_every_series_kind() {
        let mut a = MetricsRegistry::new();
        a.counter_add("records", "node=0", 10);
        a.gauge_set("ipc", "node=0", 0.5);
        a.hist_record("lat", "node=0", 100);
        a.heat_observe("heat", "node=0", 7, 2);

        let mut b = MetricsRegistry::new();
        b.counter_add("records", "node=0", 5);
        b.counter_add("records", "node=1", 3);
        b.gauge_set("ipc", "node=0", 0.75);
        b.hist_record("lat", "node=0", 300);
        b.hist_record("lat", "node=1", 1);
        b.heat_observe("heat", "node=0", 7, 4);

        a.absorb(&b);
        assert_eq!(a.counter("records", "node=0"), 15);
        assert_eq!(a.counter("records", "node=1"), 3);
        assert_eq!(a.gauge("ipc", "node=0"), Some(0.75));
        assert_eq!(a.hist("lat", "node=0").unwrap().count(), 2);
        assert_eq!(a.hist("lat", "node=1").unwrap().count(), 1);
        assert!(a.quantile("lat", "node=0", 1.0).unwrap() >= 300);
        assert_eq!(a.heat_top("heat", "node=0", 1)[0].count, 6);
    }

    #[test]
    fn absorbing_disjoint_registries_equals_single_threaded_recording() {
        // The exactness claim the threaded Obs design rests on: splitting
        // a recording across per-thread registries and absorbing them
        // reproduces the single-registry result bit for bit.
        let mut reference = MetricsRegistry::new();
        let mut parts: Vec<MetricsRegistry> = (0..4).map(|_| MetricsRegistry::new()).collect();
        for i in 0..1000u64 {
            let v = (i * 37) % 900 + 1;
            reference.hist_record("lat", "x", v);
            reference.counter_add("n", "x", 1);
            parts[(i % 4) as usize].hist_record("lat", "x", v);
            parts[(i % 4) as usize].counter_add("n", "x", 1);
        }
        let mut merged = MetricsRegistry::new();
        for p in &parts {
            merged.absorb(p);
        }
        assert_eq!(merged.counter("n", "x"), reference.counter("n", "x"));
        let (mh, rh) = (
            merged.hist("lat", "x").unwrap(),
            reference.hist("lat", "x").unwrap(),
        );
        assert_eq!(mh.count(), rh.count());
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(mh.quantile(q), rh.quantile(q), "quantile {q}");
        }
    }

    #[test]
    fn iteration_is_sorted() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("b", "x", 1);
        reg.counter_add("a", "y", 2);
        reg.counter_add("a", "x", 3);
        let names: Vec<(String, String)> = reg
            .counters()
            .map(|(n, l, _)| (n.to_string(), l.to_string()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("a".to_string(), "x".to_string()),
                ("a".to_string(), "y".to_string()),
                ("b".to_string(), "x".to_string())
            ]
        );
    }
}
