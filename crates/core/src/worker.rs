//! The Slash worker: one simulated executor thread.
//!
//! Each worker is a `slash-desim` process that cooperatively interleaves
//! (paper §5.3):
//!
//! 1. **RDMA coroutines** — pumping the SSB's delta channels (shipping own
//!    deltas, merging inbound ones);
//! 2. **compute coroutines** — processing one batch of records through the
//!    fused pipeline, updating SSB state eagerly;
//! 3. **trigger duty** (worker 0 of each node) — scanning the primary
//!    partition for windows the vector clock has released.
//!
//! All costs are charged in virtual time from the [`CostModel`]; state
//! accesses additionally consume the node's shared memory-bandwidth link,
//! so a node's aggregate throughput saturates at the memory wall exactly
//! like the paper's Table 1 measures.

use std::cell::RefCell;
use std::rc::Rc;

use slash_desim::{Link, ProcId, Process, Sim, SimTime, Step};
use slash_obs::{Cat, Obs, Stage};
use slash_state::backend::{SsbNode, TriggeredData, TriggeredValue};
use slash_state::pack_key;

use crate::cost::CostModel;
use crate::hotpath::HotPath;
use crate::metrics::{CostCategory, EngineMetrics};
use crate::query::QueryPlan;
use crate::sink::{Sink, SinkResult};
use crate::source::MemorySource;

/// Instruction-count proxies per operation class (anchored to Table 1:
/// Slash ≈ 42 instructions/record ≈ pipeline + RMW; UpPar sender ≈ 166).
pub mod instr {
    /// Parse + filter + project + window-assign.
    pub const PIPELINE: u64 = 18;
    /// Hash-index probe + in-place RMW.
    pub const RMW: u64 = 24;
    /// Write-combiner fold: L1-resident probe + in-place CRDT update.
    /// Much cheaper than [`RMW`] — no full index walk, no key-compare
    /// chain, the table fits in one cache level.
    pub const COMBINE: u64 = 6;
    /// Log append.
    pub const APPEND: u64 = 30;
    /// Hash partitioning, destination select, staging-buffer management
    /// and serialization bookkeeping (UpPar/Flink sender). Dominates the
    /// sender's large code footprint (Table 1: 166 instr/record overall).
    pub const PARTITION: u64 = 300;
    /// Queue handover.
    pub const QUEUE_OP: u64 = 35;
    /// Merging one delta entry.
    pub const MERGE: u64 = 28;
    /// One empty poll iteration.
    pub const POLL: u64 = 4;
}

/// State shared by all workers of one node.
pub struct NodeShared {
    /// The node's SSB instance.
    pub ssb: SsbNode,
    /// Query output.
    pub sink: Sink,
    /// Software performance counters.
    pub metrics: EngineMetrics,
    /// Shared memory-bandwidth link. Behind an `Rc` so co-located
    /// partitions (elastic runs packing several logical nodes onto one
    /// physical host) genuinely contend for one host's bandwidth — and
    /// migrating a partition to its own host genuinely frees it.
    pub mem: Rc<RefCell<Link>>,
    /// Per-worker high-water event times (node watermark = min).
    pub worker_wm: Vec<u64>,
    /// Per-worker source read positions (bytes), refreshed after every
    /// batch; checkpoints capture them so a replacement node resumes
    /// ingest exactly at the last epoch boundary.
    pub worker_pos: Vec<usize>,
    /// Set by the trigger worker once the distributed query is complete.
    pub finished: bool,
    /// Set by the chaos driver when this node's process is killed; every
    /// worker observes it at its next step and terminates.
    pub crashed: bool,
    /// Set by the elastic driver at a planned-handoff cutover: workers
    /// stop cleanly at their next step (no batch is half-applied, state
    /// mutations happen synchronously inside a step), so the checkpoint
    /// the driver captures right after setting this flag is exact.
    pub halted: bool,
    /// Fault-tolerance hooks (checkpoint store); `None` outside
    /// [`crate::SlashCluster::run_chaos`] runs so the fault-free fast
    /// path stays untouched.
    pub(crate) ft: Option<crate::recovery::FtState>,
    /// Virtual time when this node consumed its last source record.
    pub last_ingest: SimTime,
    /// Source records fully processed on this node.
    pub records: u64,
    /// Observability handle (disabled unless the driver instruments it).
    pub obs: Obs,
    /// Metric label for this node (e.g. `node3`).
    pub obs_label: String,
    /// Record-forwarding plane for hot-key splitting; `None` outside
    /// [`crate::SlashCluster::run_split`] runs with forwarding enabled,
    /// so the ordinary ingest path stays untouched.
    pub fwd: Option<Rc<crate::split::ForwardFabric>>,
}

impl NodeShared {
    /// Build the shared state for a node with `workers` threads.
    pub fn new(ssb: SsbNode, workers: usize, mem_bandwidth: u64, collect: bool) -> Self {
        NodeShared {
            ssb,
            sink: if collect {
                Sink::collecting()
            } else {
                Sink::counting()
            },
            metrics: EngineMetrics::default(),
            mem: Rc::new(RefCell::new(Link::new(mem_bandwidth))),
            worker_wm: vec![0; workers],
            worker_pos: vec![0; workers],
            finished: false,
            crashed: false,
            halted: false,
            ft: None,
            last_ingest: SimTime::ZERO,
            records: 0,
            obs: Obs::disabled(),
            obs_label: String::new(),
            fwd: None,
        }
    }

    /// Attach an observability handle; workers then emit batch spans and
    /// record-latency samples, and the SSB node traces its channels.
    pub fn instrument(&mut self, obs: Obs, node: usize) {
        self.obs_label = format!("node{node}");
        self.ssb.instrument(obs.clone());
        self.obs = obs;
    }

    fn node_watermark(&self) -> u64 {
        // Empty only if misconfigured with zero workers; MAX then means
        // "no ingest pending", which is the inert interpretation.
        self.worker_wm.iter().min().copied().unwrap_or(u64::MAX)
    }
}

/// One simulated Slash executor thread.
pub struct SlashWorker {
    node: usize,
    widx: usize,
    shared: Rc<RefCell<NodeShared>>,
    source: MemorySource,
    plan: Rc<QueryPlan>,
    cost: CostModel,
    /// Batch-vectorized record loop (write combining, batched appends).
    hotpath: HotPath,
    source_done: bool,
    is_trigger: bool,
    /// Last window bucket for which an ahead-of-time epoch was signalled.
    last_epoch_bucket: u64,
    /// Split-ledger version the forward key list was built from (the
    /// sender-side twin of the hot path's salt-map cache).
    fwd_version: u64,
    /// Sorted canonical split keys whose records this worker forwards.
    fwd_keys: Vec<u64>,
    /// Round-robin destination cursor for forwarded records.
    fwd_rr: usize,
    /// Whether this worker told the forward fabric its source is done.
    fwd_done_noted: bool,
}

impl SlashWorker {
    /// The node this worker belongs to.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Create a worker. Worker 0 of each node doubles as the trigger task.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        node: usize,
        widx: usize,
        shared: Rc<RefCell<NodeShared>>,
        source: MemorySource,
        plan: Rc<QueryPlan>,
        cost: CostModel,
        combine: bool,
        combiner_slots: usize,
    ) -> Self {
        let hotpath = HotPath::new(Rc::clone(&plan), combine, combiner_slots);
        SlashWorker {
            node,
            widx,
            shared,
            source,
            plan,
            cost,
            hotpath,
            source_done: false,
            is_trigger: widx == 0,
            last_epoch_bucket: 0,
            fwd_version: 0,
            fwd_keys: Vec::new(),
            fwd_rr: 0,
            fwd_done_noted: false,
        }
    }

    /// Process one batch; returns (pipeline_ns, apply_ns, mem_bytes,
    /// records, last_ts). The cpu cost is split into its source-pipeline
    /// and SSB-apply components so the caller can attribute each to its
    /// latency stage.
    fn process_batch(
        &mut self,
        sh: &mut NodeShared,
        range: (usize, usize),
    ) -> (f64, f64, u64, u64, u64) {
        let data = Rc::clone(self.source.data());
        self.process_bytes(sh, &data[range.0..range.1])
    }

    /// The batch body of [`Self::process_batch`], factored over raw bytes
    /// so forwarded record batches (which arrive outside this worker's
    /// source) run the exact same pipeline, costs, and accounting.
    fn process_bytes(&mut self, sh: &mut NodeShared, batch: &[u8]) -> (f64, f64, u64, u64, u64) {
        let cost = &self.cost;
        // Working-set–dependent access cost, computed once per batch.
        let ws = sh.ssb.resident_bytes() as u64;
        let access = cost.cache.random_access(ws);

        // Run the record loop, then convert its outcome into vectorized
        // charges — one `instr`/`charge` call per batch, not per record.
        let out = self.hotpath.process(&mut sh.ssb, batch);
        let n = out.records;
        let pipeline_ns = cost.record_pipeline_ns * n as f64;
        let mut apply_ns = 0.0;
        sh.metrics.instr(instr::PIPELINE * n);
        sh.metrics.add_state_updates(out.survivors);
        let mut mem = batch.len() as u64 + out.value_bytes; // streaming + state writes

        let state_ops = if self.hotpath.combined() {
            // Every survivor folds into the L1-resident combiner; only the
            // flushed distinct-key partials walk the SSB index.
            apply_ns += cost.combine_hit_ns * out.survivors as f64
                + (cost.rmw_base_ns + access.penalty_ns) * out.flushed as f64;
            sh.metrics
                .instr(instr::COMBINE * out.survivors + instr::RMW * out.flushed);
            sh.metrics.charge(
                CostCategory::Retiring,
                cost.combine_hit_ns * out.survivors as f64,
            );
            sh.metrics.add_combiner_ops(out.survivors, out.flushed);
            out.flushed
        } else {
            match &*self.plan {
                QueryPlan::Aggregate { .. } => {
                    apply_ns += (cost.rmw_base_ns + access.penalty_ns) * out.survivors as f64;
                    sh.metrics.instr(instr::RMW * out.survivors);
                }
                QueryPlan::Join { .. } => {
                    apply_ns += (cost.append_base_ns + access.penalty_ns) * out.survivors as f64;
                    sh.metrics.instr(instr::APPEND * out.survivors);
                }
            }
            out.survivors
        };
        let last_ts = out.last_ts;
        // Cache-miss accounting for the state accesses of this batch.
        sh.metrics.add_cache_misses(
            access.l1_miss * state_ops as f64,
            access.l2_miss * state_ops as f64,
            access.llc_miss * state_ops as f64,
        );
        mem += (access.mem_bytes() * state_ops as f64) as u64;

        sh.metrics
            .charge(CostCategory::Retiring, cost.record_pipeline_ns * n as f64);
        sh.metrics.charge(
            CostCategory::MemoryBound,
            (cost.rmw_base_ns + access.penalty_ns) * state_ops as f64,
        );
        (pipeline_ns, apply_ns, mem, n, last_ts)
    }

    /// Source-batch processing with the forwarding pre-pass: records of
    /// split keys are round-robined across nodes (self-destined ones stay
    /// local), everything else is processed in place. The sender charges
    /// only the cheap handoff ([`CostModel::forward_record_ns`]) per
    /// forwarded record — the receiver runs the full pipeline — and its
    /// watermark still advances over the *original* batch's last
    /// timestamp: custody of the forwarded timestamps is the fabric
    /// floor's job, not the sender watermark's.
    fn process_batch_forwarding(
        &mut self,
        sh: &mut NodeShared,
        range: (usize, usize),
    ) -> (f64, f64, u64, u64, u64) {
        if sh.ssb.split_version() != self.fwd_version {
            self.fwd_version = sh.ssb.split_version();
            self.fwd_keys = sh.ssb.split_keys();
        }
        if self.fwd_keys.is_empty() {
            return self.process_batch(sh, range);
        }
        let data = Rc::clone(self.source.data());
        let batch = &data[range.0..range.1];
        let schema = self.plan.input().schema;
        let nodes = sh.fwd.as_ref().map_or(1, |f| f.nodes());
        let mut kept: Vec<u8> = Vec::with_capacity(batch.len());
        let mut outs: Vec<Vec<u8>> = vec![Vec::new(); nodes];
        let mut outs_min = vec![u64::MAX; nodes];
        let mut outs_n = vec![0u64; nodes];
        let mut last_ts = 0u64;
        for rec in batch.chunks_exact(schema.size) {
            last_ts = schema.ts(rec);
            if self.fwd_keys.binary_search(&schema.key(rec)).is_ok() {
                let dest = self.fwd_rr % nodes;
                self.fwd_rr = (self.fwd_rr + 1) % nodes;
                if dest != self.node {
                    outs[dest].extend_from_slice(rec);
                    outs_min[dest] = outs_min[dest].min(schema.ts(rec));
                    outs_n[dest] += 1;
                    continue;
                }
            }
            kept.extend_from_slice(rec);
        }
        let mut fwd_n = 0u64;
        let mut fwd_bytes = 0u64;
        if let Some(f) = &sh.fwd {
            for dest in 0..nodes {
                if outs_n[dest] == 0 {
                    continue;
                }
                fwd_n += outs_n[dest];
                fwd_bytes += outs[dest].len() as u64;
                f.enqueue(
                    dest,
                    crate::split::FwdBatch {
                        min_ts: outs_min[dest],
                        records: outs_n[dest],
                        data: std::mem::take(&mut outs[dest]),
                    },
                );
            }
        }
        let (mut pipeline_ns, apply_ns, mut mem, mut n, _kept_last) = if kept.is_empty() {
            (0.0, 0.0, 0, 0, 0)
        } else {
            self.process_bytes(sh, &kept)
        };
        let fwd_cost = self.cost.forward_record_ns * fwd_n as f64;
        pipeline_ns += fwd_cost;
        sh.metrics.charge(CostCategory::Retiring, fwd_cost);
        sh.metrics.instr(instr::QUEUE_OP * (fwd_n > 0) as u64);
        mem += fwd_bytes;
        // Forwarded records are counted where they were ingested (here);
        // the receiver charges their processing but not their count.
        n += fwd_n;
        (pipeline_ns, apply_ns, mem, n, last_ts)
    }

    /// Drain forwarded batches from this node's inbox through the normal
    /// hot path, returning `(cpu_pipeline, cpu_apply, mem, records)`.
    /// The window memo's assignment is exact for any timestamp order, so
    /// out-of-order forwarded batches reuse the same machinery.
    fn drain_forwarded(&mut self, sh: &mut NodeShared) -> (f64, f64, u64, u64) {
        const DRAIN_BATCHES: usize = 4;
        let Some(f) = sh.fwd.clone() else {
            return (0.0, 0.0, 0, 0);
        };
        let mut pipeline_ns = 0.0;
        let mut apply_ns = 0.0;
        let mut mem = 0u64;
        let mut records = 0u64;
        for _ in 0..DRAIN_BATCHES {
            let Some(batch) = f.pop(self.node) else {
                break;
            };
            let (p, a, m, n, _last) = self.process_bytes(sh, &batch.data);
            pipeline_ns += p;
            apply_ns += a;
            mem += m;
            records += n;
            // Custody handoff: queued → unshipped (applied to fragments).
            f.note_processed(self.node, batch.min_ts);
        }
        (pipeline_ns, apply_ns, mem, records)
    }

    /// After any successful epoch close on a forwarding run, hand custody
    /// of this node's unshipped forwarded timestamps to the in-flight
    /// stage (the epoch's chunks carry them; see [`crate::split`]).
    fn note_fwd_close(&self, sh: &NodeShared) {
        if let Some(f) = &sh.fwd {
            f.note_epoch_closed(self.node, sh.ssb.vclock().get(self.node));
        }
    }

    /// Trigger-task duty: fire every window the vector clock has released.
    fn run_triggers(&mut self, sh: &mut NodeShared) -> f64 {
        let plan = Rc::clone(&self.plan);
        let window = plan.window();
        // Forwarding runs release windows on min(vclock, floor): the
        // floor covers forwarded records whose contributions have not yet
        // merged at their leader (see [`crate::split`]).
        let wm = match &sh.fwd {
            Some(f) => sh.ssb.vclock().min().min(f.floor()),
            None => sh.ssb.vclock().min(),
        };
        let mut drained: Vec<TriggeredValue> = Vec::new();
        sh.ssb
            .drain_triggered(|wid| window.ready(wid, wm), |tv| drained.push(tv));
        if drained.is_empty() {
            return 0.0;
        }
        let mut cpu = 0.0;
        let slices = window.slices_per_window();
        let NodeShared {
            ssb, sink, metrics, ..
        } = sh;
        // Sliding windows: a window is its first slice merged with the
        // k-1 following ones. Later slices may retire in the *same*
        // sweep (and are then gone from the state), so look them up in
        // the drained batch first and fall back to peeking live state.
        let drained_values: std::collections::BTreeMap<(u64, u64), Vec<u8>> = if slices > 1 {
            drained
                .iter()
                .filter_map(|tv| match &tv.data {
                    TriggeredData::Fixed(v) => {
                        Some(((tv.window_id, tv.key), v.clone()))
                    }
                    TriggeredData::Elements(_) => None,
                })
                .collect()
        } else {
            std::collections::BTreeMap::new()
        };
        for tv in drained {
            match (&*plan, tv.data) {
                (QueryPlan::Aggregate { agg, .. }, TriggeredData::Fixed(mut value)) => {
                    if slices > 1 {
                        let desc = agg.descriptor();
                        for s in 1..slices {
                            let sibling = (tv.window_id + s, tv.key);
                            if let Some(other) = drained_values
                                .get(&sibling)
                                .map(|v| v.as_slice())
                                .or_else(|| ssb.local_get(pack_key(sibling.0, sibling.1)))
                            {
                                (desc.merge)(&mut value, other);
                                cpu += self.cost.merge_entry_ns;
                            }
                        }
                    }
                    sink.push(SinkResult::Agg {
                        window_id: tv.window_id,
                        key: tv.key,
                        value: agg.render(&value),
                    });
                    cpu += self.cost.merge_entry_ns;
                    metrics.instr(instr::MERGE);
                }
                (QueryPlan::Join { .. }, TriggeredData::Elements(elems)) => {
                    cpu += 2.0 * elems.len() as f64; // probe per element
                    metrics.instr(instr::MERGE * elems.len() as u64);
                    sink.push(SinkResult::Join {
                        window_id: tv.window_id,
                        key: tv.key,
                        pairs: crate::join::pair_count(&elems, &window),
                    });
                }
                (plan, data) => unreachable!("plan/state mismatch: {plan:?} vs {data:?}"),
            }
        }
        cpu
    }
}

impl Process for SlashWorker {
    fn step(&mut self, sim: &mut Sim, _me: ProcId) -> Step {
        let shared = Rc::clone(&self.shared);
        let mut sh = shared.borrow_mut();
        if sh.finished || sh.crashed || sh.halted {
            return Step::Done;
        }
        let mut cpu = 0.0;
        let mut mem_bytes = 0u64;
        let mut batch_records = 0u64;
        // Named cost segments of this step's busy window, for stage
        // attribution (Stage::Source / SsbApply / WindowClose /
        // EpochMerge / ResultEmit). They sum to `cpu`.
        let mut seg_source = 0.0;
        let mut seg_apply = 0.0;
        let mut seg_close = 0.0;
        let mut seg_merge = 0.0;
        let mut seg_emit = 0.0;

        // (1) RDMA coroutine: ship/merge state deltas.
        let (sent, merged) = match sh.ssb.pump(sim) {
            Ok(v) => v,
            Err(e) => {
                // Faulted channels are already filtered inside the SSB;
                // anything surfacing here is a decode bug. Flight-record
                // it and keep the worker alive so the run stays
                // inspectable instead of tearing down the simulation.
                sh.obs
                    .record_failure("delta channel failure", &format!("{e:?}"));
                (0, 0)
            }
        };
        if sent + merged > 0 {
            seg_merge =
                sent as f64 * self.cost.post_wr_ns + merged as f64 * self.cost.merge_entry_ns;
            cpu += seg_merge;
            sh.metrics.instr(instr::MERGE * merged + instr::QUEUE_OP * sent);
            sh.metrics.charge(
                CostCategory::MemoryBound,
                merged as f64 * self.cost.merge_entry_ns,
            );
            sh.metrics
                .charge(CostCategory::Retiring, sent as f64 * self.cost.post_wr_ns);
        }

        // (2) Compute coroutine: one input batch. A paced source may
        // withhold records (the curve has not released them yet); the
        // worker then idles until the next release instant.
        let mut mem_bytes_extra = 0u64;
        let mut paced_wait: Option<SimTime> = None;
        let poll = self.source.poll_range(sim.now());
        if let crate::source::SourcePoll::Batch(range) = poll {
            // Task acquisition (shared-queue contention for engines that
            // configure it; zero for Slash's per-worker queues).
            if self.cost.task_queue_ns > 0.0 {
                cpu += self.cost.task_queue_ns;
                seg_source += self.cost.task_queue_ns;
                sh.metrics
                    .charge(CostCategory::CoreBound, self.cost.task_queue_ns);
                sh.metrics.instr(instr::QUEUE_OP);
            }
            let (pipeline_ns, apply_ns, m, n, last_ts) = if sh.fwd.is_some() {
                self.process_batch_forwarding(&mut sh, range)
            } else {
                self.process_batch(&mut sh, range)
            };
            cpu += pipeline_ns + apply_ns;
            seg_source += pipeline_ns;
            seg_apply += apply_ns;
            mem_bytes += m;
            batch_records = n;
            sh.records += n;
            sh.worker_wm[self.widx] = sh.worker_wm[self.widx].max(last_ts);
            sh.worker_pos[self.widx] = self.source.position();
            let wm = sh.node_watermark();
            sh.ssb.note_progress(wm);
            // Epoch pacing: by update volume, plus ahead-of-time when the
            // node watermark crosses a window boundary (§7.2.2).
            let bucket = self.plan.window().assign(wm);
            let closed = if self.is_trigger && bucket > self.last_epoch_bucket {
                self.last_epoch_bucket = bucket;
                sh.ssb.close_epoch(sim).map(Some)
            } else {
                sh.ssb.maybe_close_epoch(sim)
            };
            let closed_delta = match closed {
                Ok(d) => d,
                Err(e) => {
                    sh.obs.record_failure("epoch close", &format!("{e:?}"));
                    None
                }
            };
            if let Some(delta) = closed_delta {
                // Closing an epoch scans the fragments' delta regions and
                // encodes chunks (§7.2.2 step ② — mark + read the log).
                let close_ns = 800.0 + delta as f64 * 0.05;
                cpu += close_ns;
                seg_close += close_ns;
                sh.metrics.charge(CostCategory::MemoryBound, close_ns);
                mem_bytes_extra += delta;
                crate::recovery::on_epoch_closed(&mut sh);
                self.note_fwd_close(&sh);
            }
            mem_bytes += mem_bytes_extra;
        } else if let crate::source::SourcePoll::NotReady(at) = poll {
            paced_wait = Some(at);
        } else if !self.source_done {
            // On forwarding runs the end-of-stream watermark is deferred:
            // peers may still forward records here until every source is
            // done and this inbox has drained, so advertising MAX now
            // would be a lie the floor could not fully retract.
            let fwd_quiesced = match &sh.fwd {
                None => true,
                Some(f) => {
                    if !self.fwd_done_noted {
                        self.fwd_done_noted = true;
                        f.note_source_done(self.node);
                    }
                    f.all_sources_done() && f.inbox_empty(self.node)
                }
            };
            if fwd_quiesced {
                self.source_done = true;
                sh.worker_wm[self.widx] = u64::MAX;
                let wm = sh.node_watermark();
                sh.ssb.note_progress(wm);
                sh.last_ingest = sim.now();
                if wm == u64::MAX {
                    // Last worker of this node: final epoch releases all
                    // remaining windows.
                    match sh.ssb.close_epoch(sim) {
                        Ok(_) => crate::recovery::on_epoch_closed(&mut sh),
                        Err(e) => sh.obs.record_failure("final epoch", &format!("{e:?}")),
                    }
                    self.note_fwd_close(&sh);
                }
            }
        }

        // (2b) Forwarded-record inbox: drain a few batches through the
        // same hot path (receivers salt split keys to their own replica
        // sub-keys, so contributions still route to the canonical
        // leader). Byte-threshold epochs may come due from the applied
        // updates.
        let mut fwd_records = 0u64;
        if sh.fwd.is_some() {
            let (p, a, m, n) = self.drain_forwarded(&mut sh);
            if n > 0 {
                cpu += p + a;
                seg_source += p;
                seg_apply += a;
                mem_bytes += m;
                batch_records += n;
                fwd_records = n;
                let closed = match sh.ssb.maybe_close_epoch(sim) {
                    Ok(d) => d,
                    Err(e) => {
                        sh.obs.record_failure("epoch close", &format!("{e:?}"));
                        None
                    }
                };
                if let Some(delta) = closed {
                    let close_ns = 800.0 + delta as f64 * 0.05;
                    cpu += close_ns;
                    seg_close += close_ns;
                    sh.metrics.charge(CostCategory::MemoryBound, close_ns);
                    mem_bytes += delta;
                    crate::recovery::on_epoch_closed(&mut sh);
                    self.note_fwd_close(&sh);
                }
            }
        }

        // (3) Trigger duty.
        if self.is_trigger {
            seg_emit += self.run_triggers(&mut sh);
            // Completion: every executor reached the end-of-stream
            // watermark, all our deltas are out, and (forwarding runs)
            // every forwarded contribution is confirmed merged.
            if sh.ssb.vclock().min() == u64::MAX
                && sh.ssb.flushed()
                && !sh.ssb.dirty()
                && sh.fwd.as_ref().is_none_or(|f| f.floor() == u64::MAX)
            {
                seg_emit += self.run_triggers(&mut sh); // final sweep
                sh.finished = true;
            }
            cpu += seg_emit;
        }

        if (self.source_done || self.fwd_done_noted) && cpu == 0.0 {
            if sh.finished {
                return Step::Done;
            }
            // End-of-stream drain: waiting for peers' final epochs. Only
            // the poll instructions are charged — this phase is not part
            // of the steady-state execution the paper's breakdown samples.
            sh.metrics
                .charge(CostCategory::CoreBound, self.cost.poll_empty_ns * 16.0);
            sh.metrics.instr(instr::POLL * 16);
            return Step::Yield(SimTime::from_nanos(2_000));
        }
        if cpu == 0.0 {
            if let Some(at) = paced_wait {
                // Rate-limited idle: sleep until the curve releases the
                // next record. Only poll instructions are charged — the
                // worker is genuinely idle, not busy-waiting.
                sh.metrics
                    .charge(CostCategory::CoreBound, self.cost.poll_empty_ns * 4.0);
                sh.metrics.instr(instr::POLL * 4);
                let wait = at
                    .max(sim.now() + SimTime::from_nanos(500))
                    - sim.now();
                return Step::Yield(wait);
            }
        }

        // Memory-bandwidth pacing: the batch's memory traffic must fit
        // through the node's shared link.
        let now = sim.now();
        let cpu_time = CostModel::to_time(cpu);
        let busy = if mem_bytes > 0 {
            sh.metrics.add_mem_bytes(mem_bytes);
            let (_start, end) = sh.mem.borrow_mut().reserve(now, mem_bytes);
            let mem_time = end - now;
            if mem_time > cpu_time {
                // The extra wait is a memory stall.
                sh.metrics.charge(
                    CostCategory::MemoryBound,
                    (mem_time - cpu_time).as_nanos() as f64,
                );
                mem_time
            } else {
                cpu_time
            }
        } else {
            cpu_time
        };
        if !self.source_done || fwd_records > 0 {
            // Forwarded batches processed after our own source drained
            // are still ingest work: completion-time honesty for the
            // throughput the bench reports.
            sh.last_ingest = now + busy;
        }
        // Trace the batch as an operator-pipeline span and sample the
        // per-record latency it implies (virtual time, so deterministic).
        if batch_records > 0 && sh.obs.is_enabled() {
            let pid = self.node as u32;
            let tid = self.widx as u32;
            sh.obs.span(
                Cat::Operator,
                "batch",
                pid,
                tid,
                now,
                now + busy,
                &[("records", batch_records), ("mem_bytes", mem_bytes)],
            );
            sh.obs.hist_record(
                "record_latency_ns",
                &sh.obs_label,
                busy.as_nanos() / batch_records.max(1),
            );
            // Stage-segmented attribution: partition the busy window into
            // its named cost components, in record-lifecycle order. The
            // memory-stall remainder (busy - cpu) is charged to the SSB
            // apply stage, whose state traffic dominates the link. The
            // segments partition [now, now+busy] exactly, so the sum of
            // the per-record stage values never exceeds the end-to-end
            // record latency (integer truncation only).
            let stall = busy.as_nanos().saturating_sub(cpu_time.as_nanos()) as f64;
            let segs = [
                (Stage::Source, seg_source),
                (Stage::SsbApply, seg_apply + stall),
                (Stage::WindowClose, seg_close),
                (Stage::EpochMerge, seg_merge),
                (Stage::ResultEmit, seg_emit),
            ];
            let mut acc = 0.0;
            let mut start = now;
            let last = segs.len() - 1;
            for (i, (stage, ns)) in segs.iter().enumerate() {
                acc += ns;
                let end = if i == last {
                    now + busy
                } else {
                    (now + CostModel::to_time(acc)).min(now + busy)
                };
                if *stage == Stage::SsbApply {
                    // The SSB apply span belongs to the state layer: the
                    // backend emits it so apply attribution stays next to
                    // the code being attributed.
                    sh.ssb.record_apply_span(tid, start, end, batch_records);
                } else {
                    sh.obs.span_open(*stage, pid, tid, start);
                    sh.obs.span_close(*stage, pid, tid, end, batch_records);
                }
                start = end;
            }
        }
        Step::Yield(busy.max(SimTime::from_nanos(1)))
    }

    fn name(&self) -> &str {
        "slash-worker"
    }
}

/// Records-processed accessor used by the cluster driver.
pub fn node_records(shared: &Rc<RefCell<NodeShared>>) -> u64 {
    shared.borrow().records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instr_constants_match_table1_anchors() {
        // Slash hot path: pipeline + RMW ≈ 42 instructions (Table 1).
        assert_eq!(instr::PIPELINE + instr::RMW, 42);
        // UpPar sender on YSB: every record runs the pipeline, one third
        // survive the filter and get partitioned; Table 1 reports ~166
        // instructions per record on that path.
        let per_source_record =
            instr::PIPELINE as f64 + (instr::PARTITION + instr::QUEUE_OP) as f64 / 3.0;
        assert!(
            (110.0..=170.0).contains(&per_source_record),
            "{per_source_record}"
        );
    }

    #[test]
    fn count_render_via_counter() {
        use slash_state::CounterCrdt;
        let mut v = vec![0u8; 8];
        CounterCrdt::add(&mut v, 7);
        assert_eq!(CounterCrdt::get(&v), 7);
    }
}
