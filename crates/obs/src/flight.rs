//! Flight recorder: on an invariant failure or decode error, snapshot the
//! last N trace events together with the schedule fingerprint and any
//! vector-clock context, so the failing schedule can be replayed and the
//! moments leading up to the failure inspected offline.
//!
//! Library code never prints; dumps are stored on the [`crate::Obs`]
//! handle and retrieved by the harness (`slash-race`, examples) which
//! decides where to render them.

use crate::trace::TraceEvent;

/// Number of trailing trace events captured per dump.
pub const FLIGHT_TAIL: usize = 64;

/// A captured failure: reason, context, the trailing event window, and a
/// snapshot of the metrics registry at capture time.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// What went wrong (invariant name or decode error).
    pub reason: String,
    /// Schedule fingerprint and vector-clock context, if known.
    pub context: String,
    /// The last events recorded before the failure, oldest first.
    pub events: Vec<TraceEvent>,
    /// Rendered `slash-top` registry snapshot (all histograms at
    /// p50..p99.99 plus heat top-k) so a breach dump is self-contained.
    pub registry: String,
}

impl FlightDump {
    /// Render the dump as indented plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("flight-recorder dump: {}\n", self.reason));
        if !self.context.is_empty() {
            out.push_str(&format!("  context: {}\n", self.context));
        }
        out.push_str(&format!("  last {} events:\n", self.events.len()));
        for ev in &self.events {
            out.push_str(&format!(
                "    [{:>12} ns] seq={:<6} {}/{} pid={} tid={}",
                ev.ts.as_nanos(),
                ev.seq,
                ev.cat.name(),
                ev.name,
                ev.pid,
                ev.tid
            ));
            if ev.dur > 0 {
                out.push_str(&format!(" dur={}ns", ev.dur));
            }
            for (k, v) in ev.args() {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push('\n');
        }
        if !self.registry.is_empty() {
            out.push_str("  registry snapshot:\n");
            for line in self.registry.lines() {
                out.push_str("    ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Cat, TraceRing};
    use slash_desim::SimTime;

    #[test]
    fn render_includes_reason_context_and_events() {
        let mut ring = TraceRing::new(8);
        ring.record(
            Cat::Epoch,
            "epoch-merge",
            1,
            0,
            SimTime::from_micros(5),
            1_000,
            &[("watermark", 42)],
        );
        let dump = FlightDump {
            reason: "vclock regressed".to_string(),
            context: "fingerprint=0xabc vclock=[3, 2]".to_string(),
            events: ring.tail(FLIGHT_TAIL),
            registry: "histograms (ns):\n  record_latency_ns node0 ...".to_string(),
        };
        let text = dump.render();
        assert!(text.contains("flight-recorder dump: vclock regressed"));
        assert!(text.contains("fingerprint=0xabc"));
        assert!(text.contains("epoch-merge"));
        assert!(text.contains("watermark=42"));
        assert!(text.contains("registry snapshot:"));
        assert!(text.contains("    histograms (ns):"));
    }

    #[test]
    fn empty_registry_snapshot_is_omitted() {
        let dump = FlightDump {
            reason: "x".to_string(),
            context: String::new(),
            events: Vec::new(),
            registry: String::new(),
        };
        assert!(!dump.render().contains("registry snapshot"));
    }
}
