//! Socket-style (TCP over IPoIB) channel — the *plug-and-play* integration.
//!
//! Used by the Flink baseline. Compared to the RDMA channel it models the
//! structural costs the paper attributes to socket networking on RDMA
//! hardware (§2.1, §3.1):
//!
//! * **Reduced goodput**: IPoIB does not saturate the link; achievable
//!   bandwidth is an `efficiency` fraction of the verbs bandwidth.
//! * **Syscall overhead**: every send/recv charges CPU time for the
//!   user/kernel transition.
//! * **Data copies**: payloads are copied between user and kernel space on
//!   both sides, charged at a memcpy bandwidth.
//!
//! CPU costs accrue on the endpoint and must be drained with
//! [`SocketSender::take_cpu_cost`] / [`SocketReceiver::take_cpu_cost`] by
//! the engine that owns the thread, which charges them to its virtual CPU.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use slash_desim::{ProcId, Sim, SimTime};
use slash_rdma::{Fabric, NodeId};

/// Socket stack parameters.
#[derive(Debug, Clone, Copy)]
pub struct SocketConfig {
    /// Fraction of the verbs bandwidth IPoIB achieves (the paper cites
    /// prior work measuring well under half on small messages).
    pub efficiency: f64,
    /// CPU cost of one send or recv syscall.
    pub syscall_overhead: SimTime,
    /// Memcpy bandwidth for the user/kernel copy, bytes/second.
    pub copy_bandwidth: u64,
    /// Socket buffer capacity in messages (backpressure bound).
    pub capacity: usize,
}

impl Default for SocketConfig {
    fn default() -> Self {
        SocketConfig {
            efficiency: 0.45,
            syscall_overhead: SimTime::from_nanos(2_000),
            copy_bandwidth: 8_000_000_000,
            capacity: 64,
        }
    }
}

enum SockMsg {
    Data(Vec<u8>),
    Eos,
}

struct SocketShared {
    queue: VecDeque<SockMsg>,
    capacity: usize,
    /// Messages in flight (sent, not yet delivered) — count toward the
    /// backpressure bound so an infinite pipe cannot form.
    in_flight: usize,
    recv_waiter: Option<ProcId>,
    send_waiter: Option<ProcId>,
    eos: bool,
}

/// Sending half of a socket-style channel.
pub struct SocketSender {
    fabric: Fabric,
    shared: Rc<RefCell<SocketShared>>,
    local: NodeId,
    peer: NodeId,
    cfg: SocketConfig,
    cpu_cost: SimTime,
    /// Payload bytes pushed.
    pub bytes_sent: u64,
    /// Sends rejected due to a full socket buffer.
    pub backpressure_stalls: u64,
}

/// Receiving half of a socket-style channel.
pub struct SocketReceiver {
    shared: Rc<RefCell<SocketShared>>,
    cfg: SocketConfig,
    cpu_cost: SimTime,
    /// Payload bytes drained.
    pub bytes_received: u64,
}

/// Create a socket-style channel between two nodes.
pub fn socket_pair(
    fabric: &Fabric,
    producer: NodeId,
    consumer: NodeId,
    cfg: SocketConfig,
) -> (SocketSender, SocketReceiver) {
    assert!(cfg.efficiency > 0.0 && cfg.efficiency <= 1.0);
    let shared = Rc::new(RefCell::new(SocketShared {
        queue: VecDeque::new(),
        capacity: cfg.capacity,
        in_flight: 0,
        recv_waiter: None,
        send_waiter: None,
        eos: false,
    }));
    (
        SocketSender {
            fabric: fabric.clone(),
            shared: Rc::clone(&shared),
            local: producer,
            peer: consumer,
            cfg,
            cpu_cost: SimTime::ZERO,
            bytes_sent: 0,
            backpressure_stalls: 0,
        },
        SocketReceiver {
            shared,
            cfg,
            cpu_cost: SimTime::ZERO,
            bytes_received: 0,
        },
    )
}

impl SocketSender {
    /// Try to send a payload. Returns false (and charges nothing but a
    /// failed syscall) when the socket buffer is full.
    pub fn try_send(&mut self, sim: &mut Sim, data: &[u8]) -> bool {
        let mut sh = self.shared.borrow_mut();
        if sh.queue.len() + sh.in_flight >= sh.capacity {
            self.backpressure_stalls += 1;
            // A would-block send still pays the syscall.
            self.cpu_cost += self.cfg.syscall_overhead;
            return false;
        }
        sh.in_flight += 1;
        drop(sh);
        // Syscall + user->kernel copy on the sender.
        self.cpu_cost += self.cfg.syscall_overhead
            + slash_desim::clock::transfer_time(data.len() as u64, self.cfg.copy_bandwidth);
        self.bytes_sent += data.len() as u64;
        // Goodput degradation: inflate the wire size.
        let wire_bytes = (data.len() as f64 / self.cfg.efficiency).ceil() as u64;
        let deliver_at = self.fabric.plan(sim.now(), self.local, self.peer, wire_bytes);
        let shared = Rc::clone(&self.shared);
        let payload = data.to_vec();
        let label = slash_desim::EventLabel::channel(self.local.0, self.peer.0);
        sim.schedule_at_labeled(deliver_at, label, move |sim| {
            let mut sh = shared.borrow_mut();
            sh.in_flight -= 1;
            sh.queue.push_back(SockMsg::Data(payload));
            if let Some(pid) = sh.recv_waiter.take() {
                sim.wake(pid);
            }
        });
        true
    }

    /// Send end-of-stream (always fits: EOS is not subject to capacity).
    pub fn send_eos(&mut self, sim: &mut Sim) {
        self.cpu_cost += self.cfg.syscall_overhead;
        let deliver_at = self.fabric.plan(sim.now(), self.local, self.peer, 1);
        let shared = Rc::clone(&self.shared);
        let label = slash_desim::EventLabel::channel(self.local.0, self.peer.0);
        sim.schedule_at_labeled(deliver_at, label, move |sim| {
            let mut sh = shared.borrow_mut();
            sh.queue.push_back(SockMsg::Eos);
            if let Some(pid) = sh.recv_waiter.take() {
                sim.wake(pid);
            }
        });
    }

    /// Park `pid` until buffer space frees up.
    pub fn arm(&self, pid: ProcId) {
        self.shared.borrow_mut().send_waiter = Some(pid);
    }

    /// Drain the CPU time this endpoint consumed since the last call.
    pub fn take_cpu_cost(&mut self) -> SimTime {
        std::mem::take(&mut self.cpu_cost)
    }
}

impl SocketReceiver {
    /// Try to pop the next message. `None` means nothing available yet;
    /// `Some(None)` means end-of-stream.
    #[allow(clippy::option_option)]
    pub fn try_recv(&mut self, sim: &mut Sim) -> Option<Option<Vec<u8>>> {
        let mut sh = self.shared.borrow_mut();
        let msg = sh.queue.pop_front()?;
        if let Some(pid) = sh.send_waiter.take() {
            sim.wake(pid);
        }
        drop(sh);
        self.cpu_cost += self.cfg.syscall_overhead;
        match msg {
            SockMsg::Data(d) => {
                // Kernel->user copy on the receiver.
                self.cpu_cost +=
                    slash_desim::clock::transfer_time(d.len() as u64, self.cfg.copy_bandwidth);
                self.bytes_received += d.len() as u64;
                Some(Some(d))
            }
            SockMsg::Eos => {
                self.shared.borrow_mut().eos = true;
                Some(None)
            }
        }
    }

    /// Whether end-of-stream has been observed.
    pub fn eos(&self) -> bool {
        self.shared.borrow().eos
    }

    /// Park `pid` until a message arrives.
    pub fn arm(&self, pid: ProcId) {
        self.shared.borrow_mut().recv_waiter = Some(pid);
    }

    /// Drain the CPU time this endpoint consumed since the last call.
    pub fn take_cpu_cost(&mut self) -> SimTime {
        std::mem::take(&mut self.cpu_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slash_rdma::FabricConfig;

    fn setup(cfg: SocketConfig) -> (Sim, SocketSender, SocketReceiver) {
        let sim = Sim::new();
        let fabric = Fabric::new(FabricConfig::default());
        let a = fabric.add_node();
        let b = fabric.add_node();
        let (tx, rx) = socket_pair(&fabric, a, b, cfg);
        (sim, tx, rx)
    }

    #[test]
    fn roundtrip_and_eos() {
        let (mut sim, mut tx, mut rx) = setup(SocketConfig::default());
        assert!(tx.try_send(&mut sim, b"flink record"));
        tx.send_eos(&mut sim);
        sim.run();
        assert_eq!(rx.try_recv(&mut sim), Some(Some(b"flink record".to_vec())));
        assert_eq!(rx.try_recv(&mut sim), Some(None));
        assert!(rx.eos());
        assert_eq!(rx.try_recv(&mut sim), None);
    }

    #[test]
    fn backpressure_bounds_the_pipe() {
        let cfg = SocketConfig {
            capacity: 4,
            ..SocketConfig::default()
        };
        let (mut sim, mut tx, _rx) = setup(cfg);
        let mut accepted = 0;
        for _ in 0..100 {
            if tx.try_send(&mut sim, b"x") {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 4);
        assert_eq!(tx.backpressure_stalls, 96);
    }

    #[test]
    fn cpu_costs_accrue_and_drain() {
        let (mut sim, mut tx, mut rx) = setup(SocketConfig::default());
        assert!(tx.try_send(&mut sim, &vec![0u8; 8192]));
        let cost = tx.take_cpu_cost();
        // Syscall (2µs) + 8KiB at 8GB/s (1µs) ≈ 3µs.
        assert!(cost.as_nanos() >= 3_000, "{cost}");
        assert_eq!(tx.take_cpu_cost(), SimTime::ZERO);
        sim.run();
        rx.try_recv(&mut sim).unwrap();
        assert!(rx.take_cpu_cost().as_nanos() >= 3_000);
    }

    #[test]
    fn socket_is_slower_than_rdma_for_same_bytes() {
        // The structural claim behind the paper's IPoIB comparison.
        let (mut sim, mut tx, mut rx) = setup(SocketConfig::default());
        let payload = vec![7u8; 256 * 1024];
        assert!(tx.try_send(&mut sim, &payload));
        let t_sock = sim.run();

        let mut sim2 = Sim::new();
        let fabric = Fabric::new(FabricConfig::default());
        let a = fabric.add_node();
        let b = fabric.add_node();
        let (mut rtx, mut rrx) =
            crate::channel::create_channel(&fabric, a, b, crate::ChannelConfig {
                buffer_size: 512 * 1024,
                ..Default::default()
            });
        assert!(rtx
            .try_send(&mut sim2, crate::MsgFlags::DATA, &payload)
            .unwrap());
        let t_rdma = sim2.run();
        assert!(
            t_sock.as_nanos() > 2 * t_rdma.as_nanos(),
            "socket {t_sock} vs rdma {t_rdma}"
        );
        assert!(rx.try_recv(&mut sim).is_some());
        assert!(rrx.try_recv(&mut sim2).unwrap().is_some());
    }
}
