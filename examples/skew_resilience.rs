//! Skew resilience — the paper's headline robustness claim (Fig. 8d):
//! hash re-partitioning collapses under skewed keys because the hot key's
//! receiver becomes the bottleneck, while Slash's shared state is
//! skew-agnostic (and windowed aggregation actually gets *faster*: fewer
//! distinct keys = smaller working set = better cache behaviour).
//!
//! ```sh
//! cargo run --release --example skew_resilience
//! ```

use slash::baselines::partitioned::run_partitioned;
use slash::baselines::uppar::uppar_config;
use slash::core::{RunConfig, SlashCluster};
use slash::workloads::{ysb_zipf, GenConfig};

fn main() {
    let nodes = 2;
    let workers = 4;
    let records = 20_000u64;

    println!("YSB at {nodes} nodes, Zipf-skewed campaign keys\n");
    println!("   z   | Slash (M rec/s) | UpPar (M rec/s) | Slash/UpPar");
    println!("-------+-----------------+-----------------+------------");

    let mut first: Option<(f64, f64)> = None;
    let mut last = (0.0, 0.0);
    for z in [0.2, 0.8, 1.4, 2.0] {
        // Slash: all workers ingest + process; shared state via SSB.
        let w = ysb_zipf(&GenConfig::new(nodes * workers, records), z);
        let slash = SlashCluster::run(w.plan, w.partitions, RunConfig::new(nodes, workers))
            .throughput();

        // UpPar: hash partition on the campaign key.
        let senders = workers / 2;
        let w = ysb_zipf(
            &GenConfig::new(nodes * senders, records * workers as u64 / senders as u64),
            z,
        );
        let uppar =
            run_partitioned(w.plan, w.partitions, uppar_config(nodes, workers)).throughput();

        println!(
            " {z:>5.1} | {:>15.1} | {:>15.1} | {:>9.1}x",
            slash / 1e6,
            uppar / 1e6,
            slash / uppar
        );
        if first.is_none() {
            first = Some((slash, uppar));
        }
        last = (slash, uppar);
    }

    let (slash_lo, uppar_lo) = first.unwrap();
    let (slash_hi, uppar_hi) = last;
    println!(
        "\nfrom z=0.2 to z=2.0: Slash {}{:.0}%, UpPar {}{:.0}%",
        if slash_hi >= slash_lo { "+" } else { "-" },
        (slash_hi / slash_lo - 1.0).abs() * 100.0,
        if uppar_hi >= uppar_lo { "+" } else { "-" },
        (uppar_hi / uppar_lo - 1.0).abs() * 100.0,
    );
    assert!(
        slash_hi > slash_lo,
        "skew should help Slash (smaller working set)"
    );
    assert!(
        uppar_hi < uppar_lo,
        "skew should hurt UpPar (hot-receiver imbalance)"
    );
    println!("Slash is skew-agnostic; re-partitioning is not — the paper's guideline #2.");
}
