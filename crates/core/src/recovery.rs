//! Fault-tolerant execution: checkpointing, failure detection, and
//! epoch-aligned recovery.
//!
//! The fault-free engine ([`SlashCluster::run`]) assumes a perfect
//! fabric. [`SlashCluster::run_chaos`] drops that assumption: it arms a
//! deterministic [`slash_chaos::FaultPlan`] against the simulated fabric and layers a
//! recovery protocol on top of the epoch coherence machinery:
//!
//! * **Checkpoints.** At every epoch close a node captures its primary
//!   partition snapshot, vector clock, per-channel commit horizons, the
//!   retained (replayable) epochs it has shipped, per-worker source
//!   positions and the sink — everything needed to resurrect the node at
//!   that epoch boundary. The checkpoint is shipped to a buddy node over
//!   the same fabric (paying transfer time) and only counts as *durable*
//!   once it lands.
//! * **Durability gate.** A leader merges epoch `e` from helper `h` only
//!   once `h`'s durable checkpoint covers `e`
//!   ([`slash_state::DeltaReceiver`]'s `durable_epochs` gate). Everything
//!   merged anywhere is therefore replayable verbatim from stable
//!   storage, which is what makes recovery *exact* rather than
//!   best-effort: replayed epochs are deduplicated by epoch id, so even
//!   non-idempotent CRDT merges (counters add!) are applied exactly once.
//! * **Detection.** The driver watches, per node, the progress token its
//!   peers have observed (the remote vector-clock entries). A token that
//!   stalls past `detect_timeout` triggers a diagnosis: dead node →
//!   promotion; link restored after a flap → channel reset + replay;
//!   merely degraded → wait, the run completes on its own.
//! * **Copy placement.** Each checkpoint is shipped to up to
//!   [`slash_chaos::FtConfig::ckpt_copies`] distinct buddy ports (placement
//!   diversity), and a copy is usable only while its holder port answers.
//!   Losing a holder drops the copy, which triggers buddy re-selection and
//!   re-shipping; losing *every* real copy falls back to the epoch-0 seed
//!   copy (reprocess from scratch), which is durable by fiat.
//! * **Promotion.** A crashed node's partition is resurrected on a buddy
//!   host from the newest valid durable copy. Promotion is a *re-entrant
//!   state machine*, not an instantaneous act: a `Restore` phase (copy
//!   chunks stream to the host, integrity-checked against the checkpoint
//!   digest) and a `Reconnect` phase (replacement channels handshake to
//!   ready) run over virtual time and mutate nothing but the promotion
//!   record, so a further fault killing the chosen host or the copy holder
//!   mid-flight simply restarts the machine against re-selected ones. All
//!   cluster-visible effects — snapshot restore, vector-clock restore,
//!   fragment fast-forward, channel replacement with commit-horizon
//!   handshakes, retained-epoch replay, respawn of *every* worker at its
//!   checkpointed source position — commit atomically at one virtual
//!   instant. A fault after commit is a fresh failure handled by a new
//!   detect → promote cycle. Concurrent promotions (distinct victims) run
//!   independently; a committing node installs retaining endpoints even
//!   toward still-dead peers so their own later promotions find a complete
//!   replay history.
//!
//! Exactness is validated by comparing window results and state digests
//! against a same-seed fault-free run (`tests/chaos.rs`,
//! `examples/failover.rs`, and `repro -- recovery`); the full protocol
//! specification, including the fault × phase outcome matrix, is
//! `DESIGN.md` §15.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use slash_chaos::{ChaosConfig, FaultKind};
use slash_chaos::Injector;
use slash_desim::{Sim, SimTime};
use slash_net::{create_channel, RECONNECT_HANDSHAKE_MSGS};
use slash_obs::{Cat, Obs};
use slash_rdma::{Fabric, NodeId};
use slash_state::backend::{build_cluster_obs, SsbConfig, SsbNode};
use slash_state::{chunks_digest, DeltaReceiver, DeltaSender, RetainedEpoch};

use crate::cluster::{assemble_report, spawn_node_workers, RunConfig, RunReport, SlashCluster};
use crate::query::QueryPlan;
use crate::sink::{Sink, SinkResult};
use crate::worker::NodeShared;

/// Everything a node needs to be resurrected at an epoch boundary.
#[derive(Debug, Clone)]
pub(crate) struct Checkpoint {
    /// Epochs this node had closed (fragment epoch high-water mark).
    epochs_closed: u64,
    /// Primary partition snapshot (delta-format chunks).
    snapshot: Vec<Vec<u8>>,
    /// Vector clock at the epoch boundary.
    vclock: Vec<u64>,
    /// Per-helper commit horizon: epochs `< receiver_next[h]` from helper
    /// `h` are merged into [`Self::snapshot`].
    receiver_next: Vec<u64>,
    /// Per-leader retained epochs, replayable verbatim.
    retained: Vec<Vec<RetainedEpoch>>,
    /// Per-worker source byte positions at the boundary.
    worker_pos: Vec<usize>,
    /// Per-worker watermarks.
    worker_wm: Vec<u64>,
    /// Source records processed so far.
    records: u64,
    /// Sink contents (already-emitted results survive the crash).
    sink: Sink,
    /// Content digest of [`Self::snapshot`] at capture time; recovery
    /// verifies the copy it restores against it (checksum stand-in).
    digest: u64,
}

impl Checkpoint {
    /// Epoch boundary this checkpoint captures (fragment high-water mark).
    pub(crate) fn epochs_closed(&self) -> u64 {
        self.epochs_closed
    }

    pub(crate) fn payload_bytes(&self) -> u64 {
        let snap: usize = self.snapshot.iter().map(Vec::len).sum();
        let retained: usize = self
            .retained
            .iter()
            .flatten()
            .flat_map(|r| r.chunks.iter())
            .map(Vec::len)
            .sum();
        (snap + retained) as u64 + 256
    }
}

/// One durable copy of a node's checkpoint, tied to the fabric port it
/// physically lives on: the copy is usable only while that port answers.
/// `holder_port == None` marks the epoch-0 seed copy — it models
/// re-reading the source from scratch and is durable by fiat, so it never
/// becomes invalid.
#[derive(Clone)]
pub(crate) struct DurableCopy {
    holder_port: Option<NodeId>,
    ckpt: Rc<Checkpoint>,
}

impl DurableCopy {
    fn valid(&self, fabric: &Fabric) -> bool {
        self.holder_port.is_none_or(|p| fabric.node_alive(p))
    }
}

/// A checkpoint transfer on the wire toward a buddy port.
struct InFlight {
    arrival: SimTime,
    buddy_port: NodeId,
    ckpt: Rc<Checkpoint>,
}

/// One node's checkpoint lifecycle: the newest captured boundary, the
/// durable copies placed on buddy ports (newest-first; the seed copy is
/// always last), and at most one transfer in flight.
#[derive(Default)]
pub(crate) struct CkptSlot {
    latest: Option<Rc<Checkpoint>>,
    copies: Vec<DurableCopy>,
    in_flight: Option<InFlight>,
    /// Set by a planned handoff: the cutover epoch boundary. Once a
    /// *real* durable copy covering it lands, the eternal epoch-0 seed
    /// copy is released (see [`Self::maybe_release_seed`]) — the §15.3
    /// retention fix, so a migrated partition stops pinning every peer's
    /// retained history at epoch 0 forever.
    handoff_boundary: Option<u64>,
}

impl CkptSlot {
    /// Drop copies whose holder port has died (the seed copy never does).
    fn gc(&mut self, fabric: &Fabric) {
        self.copies.retain(|c| c.valid(fabric));
    }

    /// Newest usable copy — the restore candidate (call [`Self::gc`]
    /// first).
    fn newest_copy(&self) -> Option<&DurableCopy> {
        self.copies.first()
    }

    /// Epoch horizon peers may treat as durable: the newest copy's
    /// boundary.
    fn durable_horizon(&self) -> u64 {
        self.newest_copy().map_or(0, |c| c.ckpt.epochs_closed)
    }

    /// Highest epoch helper `l` may prune its retained deltas below: the
    /// *oldest* surviving copy's commit horizon from `l`, so whichever
    /// copy promotion falls back to can still be caught up by replay.
    /// While the seed copy exists this floor is 0 — scratch recovery
    /// keeps the whole retained history replayable.
    fn prune_floor(&self, l: usize) -> u64 {
        self.copies
            .iter()
            .map(|c| c.ckpt.receiver_next.get(l).copied().unwrap_or(0))
            .min()
            .unwrap_or(0)
    }

    /// The newest captured boundary (not necessarily durable yet).
    pub(crate) fn latest_ckpt(&self) -> Option<Rc<Checkpoint>> {
        self.latest.clone()
    }

    /// Record a planned-handoff cutover at `boundary`: the next real
    /// durable copy covering it retires the epoch-0 seed copy.
    pub(crate) fn mark_handoff(&mut self, boundary: u64) {
        self.handoff_boundary = Some(boundary);
    }

    /// Release the eternal seed copy once the post-handoff owner has a
    /// real durable checkpoint covering the cutover boundary. From then
    /// on the recovery floor is the oldest surviving *real* copy — peers
    /// may finally prune retained epochs below its commit horizons
    /// instead of keeping the full history replayable-from-scratch.
    /// Returns whether a seed copy was released by this call.
    pub(crate) fn maybe_release_seed(&mut self) -> bool {
        let Some(boundary) = self.handoff_boundary else {
            return false;
        };
        let covered = self
            .copies
            .iter()
            .any(|c| c.holder_port.is_some() && c.ckpt.epochs_closed >= boundary);
        if !covered {
            return false;
        }
        self.handoff_boundary = None;
        let before = self.copies.len();
        self.copies.retain(|c| c.holder_port.is_some());
        before != self.copies.len()
    }

    /// Install the epoch-0 seed copy from the freshly captured seed
    /// checkpoint: durable by fiat (`holder_port == None`), it models
    /// re-reading the source from scratch and guarantees recovery always
    /// has a fallback even before the first real copy lands.
    pub(crate) fn seed_from_latest(&mut self) {
        if let Some(seed) = self.latest.clone() {
            self.copies.push(DurableCopy {
                holder_port: None,
                ckpt: seed,
            });
        }
    }

    /// Install a landed copy, newest-first. A buddy keeps one slot per
    /// node (same-port copies are overwritten) and *real* copies are
    /// capped at `cap`; the seed copy rides along uncapped.
    fn insert_copy(&mut self, copy: DurableCopy, cap: usize) {
        if let Some(p) = copy.holder_port {
            self.copies.retain(|c| c.holder_port != Some(p));
        }
        self.copies.insert(0, copy);
        let mut real = 0;
        self.copies.retain(|c| {
            if c.holder_port.is_none() {
                return true;
            }
            real += 1;
            real <= cap
        });
    }
}

pub(crate) type CkptStore = Vec<CkptSlot>;

/// Pick the host that resurrects dead logical node `d`: the first peer in
/// ring order whose port is alive. `d` itself is never a candidate (a
/// node cannot host its own recovery), and `None` means every peer is
/// dead — the unrecoverable all-buddies-dead error path, surfaced to the
/// driver rather than panicking.
pub(crate) fn select_promotion_host(
    d: usize,
    n: usize,
    alive: impl Fn(usize) -> bool,
) -> Option<usize> {
    (1..n).map(|k| (d + k) % n).find(|&j| alive(j))
}

/// Pick the buddy to ship node `i`'s next checkpoint copy to: the first
/// alive ring peer *not* already holding a current copy (placement
/// diversity), falling back to any alive peer when all of them hold one.
pub(crate) fn select_ship_buddy(
    i: usize,
    n: usize,
    alive: impl Fn(usize) -> bool,
    holds_copy: impl Fn(usize) -> bool,
) -> Option<usize> {
    let ring = || (1..n).map(move |k| (i + k) % n);
    ring()
        .find(|&j| alive(j) && !holds_copy(j))
        .or_else(|| ring().find(|&j| alive(j)))
}

/// Pre-commit phases of an in-flight promotion. Both phases mutate
/// nothing but the [`Promotion`] record, so a fault arriving mid-phase
/// restarts the machine against a re-selected host and copy; cluster
/// state changes only at the atomic commit that follows `Reconnect`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PromoPhase {
    /// Checkpoint chunks stream from the copy holder to the new host.
    Restore,
    /// Replacement channels to every survivor handshake to ready-to-send.
    Reconnect,
}

/// A promotion in flight: dead logical node `node` is being resurrected
/// on `host`'s port from the durable copy on `copy_port`.
pub(crate) struct Promotion {
    pub(crate) node: usize,
    pub(crate) detected_at: SimTime,
    pub(crate) phase: PromoPhase,
    pub(crate) phase_done_at: SimTime,
    pub(crate) host: usize,
    pub(crate) host_port: NodeId,
    pub(crate) copy_port: Option<NodeId>,
    pub(crate) ckpt: Rc<Checkpoint>,
    pub(crate) restarts: u32,
}

/// Fault-tolerance hooks handed to each node's shared state; present
/// only in [`SlashCluster::run_chaos`] runs.
pub(crate) struct FtState {
    pub(crate) store: Rc<RefCell<CkptStore>>,
    pub(crate) node: usize,
    pub(crate) max_chunk: usize,
}

/// Called by workers right after a successful epoch close: capture a
/// checkpoint of this node at the fresh epoch boundary.
pub(crate) fn on_epoch_closed(sh: &mut NodeShared) {
    let Some(ft) = sh.ft.as_ref() else { return };
    let n = ft.store.borrow().len();
    let node = ft.node;
    let ssb = &sh.ssb;
    let snapshot = ssb.snapshot_primary(ft.max_chunk);
    let ckpt = Checkpoint {
        epochs_closed: ssb.epochs_closed(),
        digest: chunks_digest(&snapshot),
        snapshot,
        vclock: ssb.vclock().snapshot(),
        receiver_next: (0..n)
            .map(|h| if h == node { 0 } else { ssb.receiver_next_epoch(h) })
            .collect(),
        retained: (0..n)
            .map(|l| ssb.retained_for(l).map(<[_]>::to_vec).unwrap_or_default())
            .collect(),
        worker_pos: sh.worker_pos.clone(),
        worker_wm: sh.worker_wm.clone(),
        records: sh.records,
        sink: sh.sink.clone(),
    };
    ft.store.borrow_mut()[node].latest = Some(Rc::new(ckpt));
}

/// What the driver did to bring a stalled node back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryAction {
    /// The node was dead; its partition was promoted onto `host` from a
    /// durable checkpoint copy.
    Promoted {
        /// Logical node now hosting the resurrected partition.
        host: usize,
        /// Times the promotion was interrupted by a further fault and
        /// restarted against a re-selected host/copy before committing.
        restarts: u32,
    },
    /// The node survived a link outage; `channels` errored channel
    /// endpoints were reset and their uncommitted epochs replayed.
    ChannelsReset {
        /// Directed channels that needed a reset.
        channels: usize,
    },
}

/// One detected-and-repaired fault.
#[derive(Debug, Clone)]
pub struct RecoveryEvent {
    /// Kebab-case fault name from the plan (e.g. `node-crash`).
    pub fault: &'static str,
    /// Logical node the fault hit.
    pub node: usize,
    /// When the plan injected the fault.
    pub injected_at: SimTime,
    /// When the driver noticed the stall.
    pub detected_at: SimTime,
    /// When the repair finished (virtual time; processing resumes here).
    pub recovered_at: SimTime,
    /// The repair performed.
    pub action: RecoveryAction,
}

impl RecoveryEvent {
    /// Injection-to-repair latency.
    pub fn time_to_recover(&self) -> SimTime {
        self.recovered_at - self.injected_at
    }
}

/// Recovery-side outcome of a chaos run, alongside the [`RunReport`].
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Detected faults and their repairs, in detection order.
    pub events: Vec<RecoveryEvent>,
    /// Checkpoints that became durable during the run.
    pub checkpoints_durable: u64,
    /// Per-node primary-state digests at completion (exactness witness).
    pub state_digests: Vec<u64>,
    /// Order-independent digest of the emitted results.
    pub results_digest: u64,
}

impl RecoveryReport {
    /// Worst-case time-to-recover across all repaired faults.
    pub fn max_time_to_recover(&self) -> Option<SimTime> {
        self.events.iter().map(RecoveryEvent::time_to_recover).max()
    }
}

fn splitmix_fold(h: &mut u64, v: u64) {
    let mut z = h.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(v);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    *h = z ^ (z >> 31);
}

/// Order-independent digest of a result set: two runs emitting the same
/// `(window, key, value)` multiset digest equal regardless of emission
/// order or node placement.
pub fn results_digest(results: &[SinkResult]) -> u64 {
    let mut keyed: Vec<(u64, u64, u64)> = results
        .iter()
        .map(|r| match *r {
            SinkResult::Agg {
                window_id,
                key,
                value,
            } => (window_id, key, value.to_bits()),
            SinkResult::Join {
                window_id,
                key,
                pairs,
            } => (window_id, key, pairs),
        })
        .collect();
    keyed.sort_unstable();
    let mut h: u64 = 0xD16E_57ED_FA17_0000;
    for (w, k, v) in keyed {
        splitmix_fold(&mut h, w);
        splitmix_fold(&mut h, k);
        splitmix_fold(&mut h, v);
    }
    h
}

/// Trace pid used for driver-side recovery events (fault injection uses
/// `slash_chaos::inject::FAULT_TID` on the victim's pid; repairs land on
/// the victim's pid too, under this tid).
pub(crate) const RECOVERY_TID: u32 = 901;

impl SlashCluster {
    /// Run `plan` under a deterministic fault plan with fault tolerance
    /// enabled: epoch-boundary checkpoints shipped to a buddy node,
    /// durability-gated delta commits, stall detection, and epoch-aligned
    /// recovery (leader promotion or channel reset + replay).
    ///
    /// Returns the usual [`RunReport`] plus a [`RecoveryReport`]. With an
    /// empty plan this is the fault-tolerant no-fault baseline: same
    /// checkpoint and gating overheads, no faults — the reference for
    /// exactness comparisons. When `cfg.collect_results` is set, results
    /// are deduplicated by `(window, key)` in deterministic order.
    pub fn run_chaos(
        plan: QueryPlan,
        partitions: Vec<Rc<Vec<u8>>>,
        cfg: RunConfig,
        chaos: &ChaosConfig,
        obs: Obs,
    ) -> (RunReport, RecoveryReport) {
        let n = cfg.nodes;
        assert_eq!(
            partitions.len(),
            n * cfg.workers_per_node,
            "need one partition per worker"
        );
        let mut sim = Sim::new();
        let fabric = Fabric::new(cfg.fabric);
        let node_ids = fabric.add_nodes(n);
        let ssb_cfg = SsbConfig {
            nodes: n,
            epoch_bytes: cfg.epoch_bytes,
            channel: cfg.channel,
        };
        let desc = plan.descriptor();
        let ssb_nodes = build_cluster_obs(&fabric, &node_ids, desc, ssb_cfg, obs.clone());

        let store: Rc<RefCell<CkptStore>> =
            Rc::new(RefCell::new((0..n).map(|_| CkptSlot::default()).collect()));
        let plan = Rc::new(plan);
        let schema = plan.input().schema;

        // Shareds sit behind one more cell so crash closures and the
        // detector see promotions (the slot is *replaced* on promotion).
        let shareds: Rc<RefCell<Vec<Rc<RefCell<NodeShared>>>>> =
            Rc::new(RefCell::new(Vec::with_capacity(n)));
        for (node, ssb) in ssb_nodes.into_iter().enumerate() {
            let shared = Rc::new(RefCell::new(NodeShared::new(
                ssb,
                cfg.workers_per_node,
                cfg.cost.mem_bandwidth,
                cfg.collect_results,
            )));
            {
                let mut sh = shared.borrow_mut();
                sh.metrics.set_clock_ghz(cfg.cost.clock_ghz);
                if obs.is_enabled() {
                    sh.instrument(obs.clone(), node);
                }
                sh.ssb.set_retention(true);
                // Gate commits on durability: nothing from helper `h`
                // merges until `h`'s checkpoint covering it has landed on
                // the buddy.
                for h in 0..n {
                    if h != node {
                        sh.ssb.set_durable_epochs(h, 0);
                    }
                }
                sh.ft = Some(FtState {
                    store: Rc::clone(&store),
                    node,
                    max_chunk: chaos.ft.ckpt_max_chunk,
                });
                if !chaos.pre_split.is_empty() {
                    sh.ssb.split_enable();
                    for &gk in &chaos.pre_split {
                        sh.ssb.split_activate(gk);
                    }
                }
                // Seed checkpoint: an empty epoch-0 boundary, durable by
                // fiat, so even a crash before the first real checkpoint
                // recovers (to a from-scratch reprocess).
                on_epoch_closed(&mut sh);
            }
            spawn_node_workers(
                &mut sim, node, &shared, &partitions, schema, &plan, &cfg, None,
            );
            shareds.borrow_mut().push(shared);
        }
        store.borrow_mut().iter_mut().for_each(CkptSlot::seed_from_latest);

        // Arm the fault plan against the fabric, and mirror node crashes
        // into the engine: the victim's workers observe the flag at their
        // next step and die with the node.
        Injector::arm(&mut sim, &fabric, &node_ids, &obs, &chaos.plan);
        for ev in chaos.plan.events() {
            if let FaultKind::NodeCrash { node } = ev.kind {
                if node < n {
                    let sh_vec = Rc::clone(&shareds);
                    sim.schedule_at(ev.at, move |_| {
                        sh_vec.borrow()[node].borrow_mut().crashed = true;
                    });
                }
            }
        }

        // host[i] = logical node whose fabric port hosts partition i's
        // current leader (identity until a promotion relocates one).
        let mut host: Vec<usize> = (0..n).collect();
        let mut last_token = vec![0u64; n];
        let mut last_change = vec![SimTime::ZERO; n];
        let mut promos: BTreeMap<usize, Promotion> = BTreeMap::new();
        let mut rec = RecoveryReport::default();

        // Drive in slices of a quarter detection timeout so stalls are
        // noticed promptly without rescanning the cluster too often.
        let slice =
            SimTime::from_nanos((chaos.ft.detect_timeout.as_nanos() / 4).max(100_000));
        loop {
            if shareds.borrow().iter().all(|s| s.borrow().finished) {
                break;
            }
            assert!(
                sim.now() <= cfg.max_virtual_time,
                "query did not complete within the virtual-time budget \
                 (possible protocol livelock)"
            );
            // An empty event queue is not a deadlock while recovery work
            // is outstanding driver-side: `run_until` still advances
            // virtual time, which is all an in-flight promotion (or a
            // dead partition awaiting detection) needs to make progress —
            // e.g. every surviving worker already finished and the cluster
            // is only waiting out a restore transfer.
            let recovery_outstanding = !promos.is_empty()
                || (0..n).any(|l| !fabric.node_alive(node_ids[host[l]]));
            assert!(
                sim.pending_events() > 0 || recovery_outstanding,
                "simulation quiesced before the query completed (deadlock)"
            );
            let horizon = sim.now() + slice;
            sim.run_until(horizon);
            let now = sim.now();

            // A dead port kills every partition it currently hosts —
            // including partitions promoted onto it by an earlier recovery
            // (cascading failure). Direct victims are flagged at the fault
            // instant by the armed plan; this sweep catches re-homed ones.
            {
                let sh_vec = shareds.borrow();
                for l in 0..n {
                    if !fabric.node_alive(node_ids[host[l]]) {
                        sh_vec[l].borrow_mut().crashed = true;
                    }
                }
            }

            // A finished node's port keeps serving state traffic: a
            // promotion can commit after a survivor's workers already
            // completed, and the replay epochs requeued on that survivor
            // still have to reach the restored partition. The SSB is a
            // node service, not a query task — the driver pumps it once
            // the workers are gone.
            {
                let sh_vec = shareds.borrow();
                for l in 0..n {
                    if fabric.node_alive(node_ids[host[l]]) {
                        let mut sh = sh_vec[l].borrow_mut();
                        if sh.finished {
                            let _ = sh.ssb.pump(&mut sim);
                        }
                    }
                }
            }

            ft_tick(
                now, n, &fabric, &node_ids, &host, &store, &shareds, &cfg, chaos, &obs,
                &mut rec,
            );

            for d in promo_tick(
                now, &mut promos, &mut sim, &fabric, &node_ids, &mut host, &shareds, &store,
                &partitions, &plan, schema, &cfg, chaos, &obs, &mut rec,
            ) {
                // Fresh off a commit the restored node's token is still
                // stale; re-arm its stall timer so it gets a full timeout
                // to publish progress before being re-diagnosed.
                last_change[d] = sim.now();
            }

            if n < 2 {
                continue; // nothing to detect against
            }
            // Stall detection: per node, the most advanced view any peer
            // holds of its progress. Crashes and outages freeze it.
            for i in 0..n {
                if promos.contains_key(&i) {
                    continue; // the promotion machine owns this node
                }
                let token = {
                    let sh_vec = shareds.borrow();
                    (0..n)
                        .filter(|&j| j != i)
                        .map(|j| sh_vec[j].borrow().ssb.vclock().get(i))
                        .max()
                        .unwrap_or(0)
                };
                if token != last_token[i] {
                    last_token[i] = token;
                    last_change[i] = now;
                    continue;
                }
                if now - last_change[i] < chaos.ft.detect_timeout {
                    continue;
                }
                last_change[i] = now; // re-arm the timer either way
                let fab_i = node_ids[host[i]];
                if !fabric.node_alive(fab_i) {
                    // Dead port: start the promotion state machine. It
                    // advances (and may restart) on subsequent ticks and
                    // commits atomically once Reconnect completes. `None`
                    // means every peer is dead — retry after another
                    // timeout; the livelock guard bounds a hopeless wait.
                    if let Some(p) = promo_begin(
                        i, now, now, 0, n, &fabric, &node_ids, &store, &cfg,
                    ) {
                        obs.instant(
                            Cat::Fault,
                            "promotion-begin",
                            i as u32,
                            RECOVERY_TID,
                            now,
                            &[("host", p.host as u64), ("epochs", p.ckpt.epochs_closed)],
                        );
                        promos.insert(i, p);
                    }
                } else if fabric.link_up(fab_i) {
                    // Alive with a live link: if the outage errored any
                    // channel endpoints, re-establish and replay; if the
                    // node is merely slow (degraded link, lagging
                    // completions), there is nothing to repair.
                    let fixed = reset_errored_channels(i, n, &shareds, &fabric, &node_ids, &host);
                    if fixed > 0 {
                        push_event(
                            &mut rec,
                            chaos,
                            i,
                            now,
                            sim.now(),
                            RecoveryAction::ChannelsReset { channels: fixed },
                            &obs,
                        );
                    }
                }
                // else: link still down — wait for it to come back.
            }
        }
        let completion_time = sim.now();

        let shareds_v = shareds.borrow();
        let mut report = assemble_report(&shareds_v, &fabric, &obs, completion_time);
        if cfg.collect_results {
            // Deduplicate by (window, key) in deterministic order: a
            // window triggered right around a checkpoint boundary may be
            // re-fired by the resurrected leader.
            let mut dedup: BTreeMap<(u64, u64), SinkResult> = BTreeMap::new();
            for r in report.results.drain(..) {
                let k = match r {
                    SinkResult::Agg { window_id, key, .. }
                    | SinkResult::Join { window_id, key, .. } => (window_id, key),
                };
                dedup.entry(k).or_insert(r);
            }
            report.results = dedup.into_values().collect();
            report.emitted = report.results.len() as u64;
            report.total_pairs = report
                .results
                .iter()
                .map(|r| match r {
                    SinkResult::Join { pairs, .. } => *pairs,
                    SinkResult::Agg { .. } => 0,
                })
                .sum();
        }
        rec.results_digest = results_digest(&report.results);
        rec.state_digests = shareds_v
            .iter()
            .map(|s| s.borrow().ssb.state_digest())
            .collect();
        (report, rec)
    }
}

/// Record a repair, both in the report and as a Perfetto span covering
/// the detected→repaired window.
#[allow(clippy::too_many_arguments)]
pub(crate) fn push_event(
    rec: &mut RecoveryReport,
    chaos: &ChaosConfig,
    node: usize,
    detected_at: SimTime,
    recovered_at: SimTime,
    action: RecoveryAction,
    obs: &Obs,
) {
    let (injected_at, fault) = chaos
        .plan
        .events()
        .iter()
        .filter(|e| e.kind.node() == node && e.at <= detected_at)
        .map(|e| (e.at, e.kind.name()))
        .next_back()
        .unwrap_or((SimTime::ZERO, "stall"));
    obs.span(
        Cat::Fault,
        "recovery",
        node as u32,
        RECOVERY_TID,
        detected_at,
        recovered_at.max(detected_at + SimTime::from_nanos(1)),
        &[("injected_ns", injected_at.as_nanos())],
    );
    rec.events.push(RecoveryEvent {
        fault,
        node,
        injected_at,
        detected_at,
        recovered_at,
        action,
    });
}

/// Checkpoint lifecycle: GC copies whose holder port died, complete
/// in-flight transfers (durability-gate and prune propagation), and ship
/// the newest boundary toward its next copy holder. Buddy re-selection is
/// implicit: whenever the current copy set lost a holder or lags the
/// newest boundary, a fresh buddy is picked (preferring ports without a
/// current copy) and the checkpoint is re-shipped.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ft_tick(
    now: SimTime,
    n: usize,
    fabric: &Fabric,
    node_ids: &[NodeId],
    host: &[usize],
    store: &Rc<RefCell<CkptStore>>,
    shareds: &Rc<RefCell<Vec<Rc<RefCell<NodeShared>>>>>,
    cfg: &RunConfig,
    chaos: &ChaosConfig,
    obs: &Obs,
    rec: &mut RecoveryReport,
) {
    let sh_vec = shareds.borrow();
    let mut st = store.borrow_mut();
    for i in 0..n {
        let fab_i = node_ids[host[i]];
        st[i].gc(fabric);
        // Complete an in-flight transfer whose arrival time has passed.
        if let Some(fl) = st[i]
            .in_flight
            .take_if(|fl| now >= fl.arrival)
        {
            let landed = fabric.node_alive(fab_i) && fabric.path_up(fab_i, fl.buddy_port);
            if landed {
                st[i].insert_copy(
                    DurableCopy {
                        holder_port: Some(fl.buddy_port),
                        ckpt: Rc::clone(&fl.ckpt),
                    },
                    chaos.ft.ckpt_copies.max(1),
                );
                rec.checkpoints_durable += 1;
                obs.instant(
                    Cat::Fault,
                    "checkpoint-durable",
                    i as u32,
                    RECOVERY_TID,
                    now,
                    &[
                        ("epochs", fl.ckpt.epochs_closed),
                        ("holder", fl.buddy_port.0 as u64),
                    ],
                );
                if st[i].maybe_release_seed() {
                    // Post-handoff retention fix (§15.3): the new owner's
                    // checkpoint is durable, the from-scratch floor goes.
                    obs.instant(
                        Cat::Fault,
                        "seed-released",
                        i as u32,
                        RECOVERY_TID,
                        now,
                        &[("epochs", fl.ckpt.epochs_closed)],
                    );
                }
                let horizon = st[i].durable_horizon();
                for l in 0..n {
                    if l != i {
                        let mut sl = sh_vec[l].borrow_mut();
                        // Leaders may now commit i's epochs below the
                        // durable horizon...
                        sl.ssb.set_durable_epochs(i, horizon);
                        // ...and helpers may drop retained epochs every
                        // surviving copy of i has durably merged.
                        sl.ssb.prune_retained(i, st[i].prune_floor(l));
                    }
                }
            }
            // A transfer interrupted by a fault is simply dropped; the
            // re-ship below retries once the path heals.
        }
        // Ship the newest boundary until `ckpt_copies` distinct holders
        // carry it.
        if st[i].in_flight.is_none() {
            if let Some(latest) = st[i].latest.clone() {
                let current_ports: Vec<NodeId> = st[i]
                    .copies
                    .iter()
                    .filter(|c| c.ckpt.epochs_closed >= latest.epochs_closed)
                    .filter_map(|c| c.holder_port)
                    .collect();
                let wants_copy = latest.epochs_closed > 0
                    && current_ports.len() < chaos.ft.ckpt_copies.max(1);
                if wants_copy && fabric.node_alive(fab_i) && fabric.link_up(fab_i) {
                    let buddy = select_ship_buddy(
                        i,
                        n,
                        |j| fabric.node_alive(node_ids[host[j]]),
                        |j| current_ports.contains(&node_ids[host[j]]),
                    );
                    if let Some(b) = buddy {
                        let nic = &cfg.fabric.nic;
                        let bytes = latest.payload_bytes();
                        let xfer = nic.latency
                            + SimTime::from_nanos(
                                bytes.saturating_mul(1_000_000_000) / nic.bandwidth.max(1),
                            );
                        st[i].in_flight = Some(InFlight {
                            arrival: now + xfer,
                            buddy_port: node_ids[host[b]],
                            ckpt: latest,
                        });
                    }
                }
            }
        }
    }
}

/// Re-establish every errored channel touching node `i` (both
/// directions), then replay the epochs the receiving side never
/// committed. Returns how many directed channels needed a reset.
pub(crate) fn reset_errored_channels(
    i: usize,
    n: usize,
    shareds: &Rc<RefCell<Vec<Rc<RefCell<NodeShared>>>>>,
    fabric: &Fabric,
    node_ids: &[NodeId],
    host: &[usize],
) -> usize {
    let sh_vec = shareds.borrow();
    let mut fixed = 0;
    for s in 0..n {
        if s == i || !fabric.node_alive(node_ids[host[s]]) {
            continue;
        }
        let mut si = sh_vec[i].borrow_mut();
        let mut ss = sh_vec[s].borrow_mut();
        // i → s: i ships deltas of partition s.
        if si.ssb.sender_error(s) || ss.ssb.receiver_error(i) {
            si.ssb.reset_channel_to(s);
            ss.ssb.reset_channel_from(i); // drops uncommitted stages
            let resume = ss.ssb.receiver_next_epoch(i);
            si.ssb.requeue_to(s, resume);
            fixed += 1;
        }
        // s → i: s ships deltas of partition i.
        if ss.ssb.sender_error(i) || si.ssb.receiver_error(s) {
            ss.ssb.reset_channel_to(i);
            si.ssb.reset_channel_from(s);
            let resume = si.ssb.receiver_next_epoch(s);
            ss.ssb.requeue_to(i, resume);
            fixed += 1;
        }
    }
    fixed
}

/// Start (or restart) the promotion machine for dead logical node `d`:
/// select the host port and the newest valid durable copy, then enter
/// `Restore`. Returns `None` when every peer is dead (unrecoverable; the
/// caller retries until the livelock guard bounds the wait). The seed
/// copy guarantees a copy always exists, so only host selection can fail.
#[allow(clippy::too_many_arguments)]
pub(crate) fn promo_begin(
    d: usize,
    now: SimTime,
    detected_at: SimTime,
    restarts: u32,
    n: usize,
    fabric: &Fabric,
    node_ids: &[NodeId],
    store: &Rc<RefCell<CkptStore>>,
    cfg: &RunConfig,
) -> Option<Promotion> {
    // Candidates are judged by their *own* port: committing sets
    // `host[d] = h`, so partition `d` will live on `node_ids[h]` — a
    // logical node whose port died (and was itself re-homed elsewhere)
    // must never be picked, even though its partition is healthy.
    let h = select_promotion_host(d, n, |j| fabric.node_alive(node_ids[j]))?;
    let host_port = node_ids[h];
    let mut st = store.borrow_mut();
    st[d].gc(fabric);
    let copy = st[d].newest_copy()?.clone();
    let nic = &cfg.fabric.nic;
    let restore_time = match copy.holder_port {
        // Stream the copy's chunks from its holder to the host.
        Some(_) => {
            nic.latency
                + SimTime::from_nanos(
                    copy.ckpt.payload_bytes().saturating_mul(1_000_000_000)
                        / nic.bandwidth.max(1),
                )
        }
        // Seed copy: the source is re-read locally, control latency only.
        None => nic.latency,
    };
    Some(Promotion {
        node: d,
        detected_at,
        phase: PromoPhase::Restore,
        phase_done_at: now + restore_time,
        host: h,
        host_port,
        copy_port: copy.holder_port,
        ckpt: copy.ckpt,
        restarts,
    })
}

/// Advance every in-flight promotion one driver tick: restart machines
/// whose chosen host (or, during `Restore`, copy holder) died — recovery
/// re-entrancy — move `Restore` to `Reconnect` when the copy has fully
/// streamed, and atomically commit machines whose handshakes completed.
/// Returns the nodes committed this tick so the driver can re-arm their
/// stall timers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn promo_tick(
    now: SimTime,
    promos: &mut BTreeMap<usize, Promotion>,
    sim: &mut Sim,
    fabric: &Fabric,
    node_ids: &[NodeId],
    host: &mut [usize],
    shareds: &Rc<RefCell<Vec<Rc<RefCell<NodeShared>>>>>,
    store: &Rc<RefCell<CkptStore>>,
    partitions: &[Rc<Vec<u8>>],
    plan: &Rc<QueryPlan>,
    schema: crate::record::RecordSchema,
    cfg: &RunConfig,
    chaos: &ChaosConfig,
    obs: &Obs,
    rec: &mut RecoveryReport,
) -> Vec<usize> {
    let mut committed = Vec::new();
    let nodes: Vec<usize> = promos.keys().copied().collect();
    for d in nodes {
        let Some(p) = promos.get_mut(&d) else { continue };
        // Interruption check: the chosen host died, or the copy being
        // streamed lost its holder mid-restore. Pre-commit phases touched
        // nothing but this record, so restart it against a re-selected
        // host and copy. (Once Restore completes the chunks live on the
        // host; only the host's death matters during Reconnect.)
        let host_dead = !fabric.node_alive(p.host_port);
        let copy_dead = p.phase == PromoPhase::Restore
            && p.copy_port.is_some_and(|port| !fabric.node_alive(port));
        if host_dead || copy_dead {
            let restarts = p.restarts + 1;
            if let Some(fresh) = promo_begin(
                d, now, p.detected_at, restarts, cfg.nodes, fabric, node_ids, store, cfg,
            ) {
                obs.instant(
                    Cat::Fault,
                    "promotion-restart",
                    d as u32,
                    RECOVERY_TID,
                    now,
                    &[("restarts", restarts as u64), ("host", fresh.host as u64)],
                );
                *p = fresh;
            }
            // No candidate right now: leave the stale record in place;
            // its dead host keeps this arm retrying every tick.
            continue;
        }
        if now < p.phase_done_at {
            continue;
        }
        match p.phase {
            PromoPhase::Restore => {
                // Integrity gate: the streamed copy must match the digest
                // recorded at capture before it may become primary state.
                debug_assert_eq!(
                    chunks_digest(&p.ckpt.snapshot),
                    p.ckpt.digest,
                    "durable copy failed its checksum"
                );
                p.phase = PromoPhase::Reconnect;
                p.phase_done_at = now
                    + SimTime::from_nanos(
                        RECONNECT_HANDSHAKE_MSGS * 2 * fabric.ack_latency().as_nanos(),
                    );
            }
            PromoPhase::Reconnect => {
                let Some(p) = promos.remove(&d) else { continue };
                commit_promotion(
                    &p, sim, fabric, node_ids, host, shareds, store, partitions, plan,
                    schema, cfg, chaos, obs,
                );
                push_event(
                    rec,
                    chaos,
                    d,
                    p.detected_at,
                    sim.now(),
                    RecoveryAction::Promoted {
                        host: p.host,
                        restarts: p.restarts,
                    },
                    obs,
                );
                committed.push(d);
            }
        }
    }
    committed
}

/// Atomically commit a completed promotion: install the restored SSB of
/// logical node `d` on the new host port, re-establish every channel with
/// commit-horizon handshakes, and respawn *all* of the node's workers at
/// their checkpointed source positions. Everything before this point ran
/// against the promotion record only; from the cluster's view the
/// replacement node appears at one virtual instant.
#[allow(clippy::too_many_arguments)]
pub(crate) fn commit_promotion(
    p: &Promotion,
    sim: &mut Sim,
    fabric: &Fabric,
    node_ids: &[NodeId],
    host: &mut [usize],
    shareds: &Rc<RefCell<Vec<Rc<RefCell<NodeShared>>>>>,
    store: &Rc<RefCell<CkptStore>>,
    partitions: &[Rc<Vec<u8>>],
    plan: &Rc<QueryPlan>,
    schema: crate::record::RecordSchema,
    cfg: &RunConfig,
    chaos: &ChaosConfig,
    obs: &Obs,
) {
    let n = cfg.nodes;
    let d = p.node;
    let ckpt = &p.ckpt;
    {
        let mut st = store.borrow_mut();
        // Whatever was newer than the restored boundary died with the
        // node; in-flight transfers from it are void and stale copies
        // whose holders died are gone.
        st[d].gc(fabric);
        st[d].latest = Some(Rc::clone(ckpt));
        st[d].in_flight = None;
    }
    host[d] = p.host;
    let host_fab = p.host_port;

    let ssb_cfg = SsbConfig {
        nodes: n,
        epoch_bytes: cfg.epoch_bytes,
        channel: cfg.channel,
    };
    let mut ssb = SsbNode::detached(d, plan.descriptor(), ssb_cfg);
    ssb.restore_primary(&ckpt.snapshot);
    ssb.restore_vclock(&ckpt.vclock);
    ssb.resume_fragments_at(ckpt.epochs_closed);
    // The split ledger is deterministic replicated control state: every
    // node holds an identical copy, so the replacement adopts any
    // survivor's. (Exactness never depends on the copy — the leader-side
    // fold merges whatever sub-key entries exist — but the replacement
    // must keep *diverting* hot-key updates like its predecessor did.)
    if let Some(ledger) = shareds
        .borrow()
        .iter()
        .enumerate()
        .filter(|&(s, _)| s != d)
        .find_map(|(_, sh)| sh.borrow().ssb.split_ledger().cloned())
    {
        ssb.set_split_ledger(ledger);
    }

    // Re-establish channels with every peer, handshaking commit horizons
    // so replay is exact and nothing is merged twice.
    {
        let sh_vec = shareds.borrow();
        let st = store.borrow();
        for s in 0..n {
            if s == d {
                continue;
            }
            let s_fab = node_ids[host[s]];
            if fabric.node_alive(s_fab) {
                let mut sv = sh_vec[s].borrow_mut();

                // d → s: the replacement re-ships the retained epochs the
                // survivor's receiver has not committed.
                let (tx, rx) = create_channel(fabric, host_fab, s_fab, cfg.channel);
                let mut sender = DeltaSender::new(tx);
                sender.restore_retained(ckpt.retained[s].clone());
                let resume = sv.ssb.receiver_next_epoch(d);
                sender.requeue_from(resume);
                ssb.replace_sender(s, sender);
                sv.ssb.replace_receiver(d, DeltaReceiver::new(rx, d));
                sv.ssb.seed_receiver(d, resume);
                sv.ssb.set_durable_epochs(d, ckpt.epochs_closed);

                // s → d: the survivor re-ships from the checkpoint's
                // commit horizon; its retained list still covers that
                // suffix because pruning floors at the oldest surviving
                // copy of d.
                let (tx2, rx2) = create_channel(fabric, s_fab, host_fab, cfg.channel);
                let mut sender2 = DeltaSender::new(tx2);
                sender2.restore_retained(
                    sv.ssb
                        .retained_for(d)
                        .map(<[_]>::to_vec)
                        .unwrap_or_default(),
                );
                sender2.requeue_from(ckpt.receiver_next[s]);
                sv.ssb.replace_sender(d, sender2);
                ssb.replace_receiver(s, DeltaReceiver::new(rx2, s));
                ssb.seed_receiver(s, ckpt.receiver_next[s]);
                ssb.set_durable_epochs(s, st[s].durable_horizon());

                if obs.is_enabled() {
                    sv.ssb.instrument(obs.clone());
                }
            } else {
                // Concurrent crash: `s` is down too, its own promotion
                // still pending. Install endpoints toward its dead port
                // anyway: the sender keeps *retaining* every epoch closed
                // from here on (sends error out and are dropped by the
                // fabric), so `s`'s eventual promotion finds a complete
                // replay history in `retained_for(s)`; the seeded
                // receiver records the commit horizon `s`'s promotion
                // must resume our replay from. Both directions are
                // replaced with live channels when `s` commits.
                let (tx, _rx) = create_channel(fabric, host_fab, s_fab, cfg.channel);
                let mut sender = DeltaSender::new(tx);
                sender.restore_retained(ckpt.retained[s].clone());
                ssb.replace_sender(s, sender);
                let (_tx2, rx2) = create_channel(fabric, s_fab, host_fab, cfg.channel);
                ssb.replace_receiver(s, DeltaReceiver::new(rx2, s));
                ssb.seed_receiver(s, ckpt.receiver_next[s]);
                ssb.set_durable_epochs(s, st[s].durable_horizon());
            }
        }
    }
    ssb.set_retention(true);

    // Fresh shared state seeded from the checkpoint; the crashed slot's
    // workers are already dead (crashed flag), replace it.
    let mut shared = NodeShared::new(
        ssb,
        cfg.workers_per_node,
        cfg.cost.mem_bandwidth,
        cfg.collect_results,
    );
    shared.metrics.set_clock_ghz(cfg.cost.clock_ghz);
    shared.sink = ckpt.sink.clone();
    shared.records = ckpt.records;
    shared.worker_wm = ckpt.worker_wm.clone();
    shared.worker_pos = ckpt.worker_pos.clone();
    shared.ft = Some(FtState {
        store: Rc::clone(store),
        node: d,
        max_chunk: chaos.ft.ckpt_max_chunk,
    });
    if obs.is_enabled() {
        shared.instrument(obs.clone(), d);
    }
    let shared = Rc::new(RefCell::new(shared));
    shareds.borrow_mut()[d] = Rc::clone(&shared);

    // Respawn every worker of the node at its checkpointed source
    // position: everything past it was lost with the open fragments and
    // is reprocessed; everything before it is in the snapshot or in
    // replayable epochs.
    spawn_node_workers(
        sim,
        d,
        &shared,
        partitions,
        schema,
        plan,
        cfg,
        Some(&ckpt.worker_pos),
    );
    obs.instant(
        Cat::Fault,
        "promoted",
        d as u32,
        RECOVERY_TID,
        sim.now(),
        &[
            ("host", p.host as u64),
            ("epochs", ckpt.epochs_closed),
            ("restarts", p.restarts as u64),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggSpec;
    use crate::query::StreamDef;
    use crate::record::RecordSchema;
    use crate::window::WindowAssigner;
    use slash_chaos::{ChaosConfig, FaultPlan, FtConfig};

    fn gen(n: u64, dt: u64, keys: u64) -> Rc<Vec<u8>> {
        let mut buf = Vec::with_capacity((n * 16) as usize);
        for i in 0..n {
            buf.extend_from_slice(&(i * dt).to_le_bytes());
            buf.extend_from_slice(&(i % keys).to_le_bytes());
        }
        Rc::new(buf)
    }

    fn count_plan(window: u64) -> QueryPlan {
        QueryPlan::Aggregate {
            input: StreamDef::new(RecordSchema::plain(16)),
            window: WindowAssigner::Tumbling { size: window },
            agg: AggSpec::Count,
        }
    }

    fn cfg(nodes: usize) -> RunConfig {
        let mut cfg = RunConfig::new(nodes, 1);
        cfg.collect_results = true;
        cfg.epoch_bytes = 16 * 1024;
        cfg
    }

    fn chaos(plan: FaultPlan) -> ChaosConfig {
        ChaosConfig {
            plan,
            ft: FtConfig {
                detect_timeout: SimTime::from_micros(300),
                ckpt_max_chunk: 16 * 1024,
                ckpt_copies: 2,
            },
            pre_split: Vec::new(),
        }
    }

    fn run(faults: FaultPlan, nodes: usize) -> (RunReport, RecoveryReport) {
        let parts: Vec<Rc<Vec<u8>>> = (0..nodes).map(|_| gen(60_000, 1, 32)).collect();
        SlashCluster::run_chaos(
            count_plan(4_000),
            parts,
            cfg(nodes),
            &chaos(faults),
            Obs::disabled(),
        )
    }

    #[test]
    fn ft_baseline_matches_fault_free_engine() {
        let (ft, rec) = run(FaultPlan::new(), 2);
        assert!(rec.events.is_empty(), "{:?}", rec.events);
        assert!(rec.checkpoints_durable > 0, "checkpoints must ship");
        let parts: Vec<Rc<Vec<u8>>> = (0..2).map(|_| gen(60_000, 1, 32)).collect();
        let plain = SlashCluster::run(count_plan(4_000), parts, cfg(2));
        assert_eq!(ft.records, plain.records);
        assert_eq!(
            results_digest(&ft.results),
            results_digest(&plain.results),
            "gating and checkpoints must not change query results"
        );
    }

    #[test]
    fn node_crash_promotes_and_recovers_exactly() {
        let (base, base_rec) = run(FaultPlan::new(), 3);
        let plan = FaultPlan::new().crash(SimTime::from_micros(200), 1);
        let (faulted, rec) = run(plan, 3);
        assert!(
            rec.events
                .iter()
                .any(|e| matches!(e.action, RecoveryAction::Promoted { .. })
                    && e.fault == "node-crash"),
            "{:?}",
            rec.events
        );
        assert_eq!(faulted.records, base.records, "every record exactly once");
        assert_eq!(rec.results_digest, base_rec.results_digest);
        assert_eq!(rec.state_digests, base_rec.state_digests);
        let ttr = rec.max_time_to_recover();
        assert!(ttr.is_some_and(|t| t > SimTime::ZERO), "{ttr:?}");
    }

    /// Hot-key splitting commutes with crash promotion: the same fault
    /// plan, run with and without pre-split keys, yields bit-identical
    /// results and final state digests — sub-key deltas restore from the
    /// checkpoint, the replacement adopts a survivor's ledger copy, and
    /// the leader-side fold reconciles everything at window close.
    #[test]
    fn pre_split_commutes_with_crash_promotion() {
        let nodes = 3;
        let faults = FaultPlan::new().crash(SimTime::from_micros(200), 1);
        let (base, base_rec) = run(faults.clone(), nodes);
        let parts: Vec<Rc<Vec<u8>>> = (0..nodes).map(|_| gen(60_000, 1, 32)).collect();
        let mut c = chaos(faults);
        c.pre_split = vec![5, 17];
        let (split, rec) =
            SlashCluster::run_chaos(count_plan(4_000), parts, cfg(nodes), &c, Obs::disabled());
        assert!(
            rec.events
                .iter()
                .any(|e| matches!(e.action, RecoveryAction::Promoted { .. })),
            "{:?}",
            rec.events
        );
        assert_eq!(split.records, base.records);
        assert_eq!(
            rec.results_digest, base_rec.results_digest,
            "split + crash must match unsplit + crash results"
        );
        assert_eq!(
            rec.state_digests, base_rec.state_digests,
            "no sub-key residue may survive in final state"
        );
    }

    #[test]
    fn link_flap_resets_channels_and_recovers_exactly() {
        let (base, base_rec) = run(FaultPlan::new(), 2);
        let plan =
            FaultPlan::new().link_flap(SimTime::from_micros(200), 1, SimTime::from_micros(100));
        let (faulted, rec) = run(plan, 2);
        assert!(
            rec.events
                .iter()
                .any(|e| matches!(e.action, RecoveryAction::ChannelsReset { .. })),
            "{:?}",
            rec.events
        );
        assert_eq!(faulted.records, base.records);
        assert_eq!(rec.results_digest, base_rec.results_digest);
        assert_eq!(rec.state_digests, base_rec.state_digests);
    }

    #[test]
    fn degraded_fabric_completes_exactly_without_repairs() {
        let (base, base_rec) = run(FaultPlan::new(), 2);
        let plan = FaultPlan::new()
            .degrade(
                SimTime::from_micros(100),
                0,
                SimTime::from_micros(50),
                SimTime::from_micros(400),
            )
            .delay_completions(
                SimTime::from_micros(150),
                1,
                SimTime::from_micros(80),
                SimTime::from_micros(400),
            );
        let (faulted, rec) = run(plan, 2);
        // Slowdowns are not failures: nothing to promote or reset.
        assert!(
            !rec.events
                .iter()
                .any(|e| matches!(e.action, RecoveryAction::Promoted { .. })),
            "{:?}",
            rec.events
        );
        assert_eq!(faulted.records, base.records);
        assert_eq!(rec.results_digest, base_rec.results_digest);
        assert_eq!(rec.state_digests, base_rec.state_digests);
    }

    #[test]
    fn promotion_host_skips_dead_nodes_and_self() {
        // Ring order from d+1; the crashed node is never its own host.
        assert_eq!(select_promotion_host(1, 4, |j| j != 1), Some(2));
        // The designated ring buddy is itself dead: re-select the next.
        assert_eq!(select_promotion_host(1, 4, |j| j != 1 && j != 2), Some(3));
        // Selection wraps around the ring.
        assert_eq!(select_promotion_host(3, 4, |j| j == 0), Some(0));
    }

    #[test]
    fn promotion_with_all_buddies_dead_is_unrecoverable() {
        assert_eq!(select_promotion_host(1, 4, |_| false), None);
        // A single-node cluster has no peer to promote onto.
        assert_eq!(select_promotion_host(0, 1, |_| true), None);
    }

    #[test]
    fn ship_buddy_prefers_ports_without_a_current_copy() {
        // Node 2 already holds the newest copy: diversity picks node 3.
        assert_eq!(select_ship_buddy(1, 4, |_| true, |j| j == 2), Some(3));
        // Every alive peer holds a copy: fall back to ring order.
        assert_eq!(select_ship_buddy(1, 4, |_| true, |_| true), Some(2));
        // No peer alive at all: nowhere to ship.
        assert_eq!(select_ship_buddy(1, 4, |_| false, |_| false), None);
    }

    #[test]
    fn long_degrade_trips_detector_but_never_promotes() {
        let (base, base_rec) = run(FaultPlan::new(), 2);
        // Degradation far longer than the detection timeout: the stall
        // detector fires, finds the node alive with its link up and no
        // errored channels, and has nothing to repair. No promotion, no
        // reset — the run completes exactly on its own.
        let plan = FaultPlan::new().degrade(
            SimTime::from_micros(150),
            1,
            SimTime::from_micros(400),
            SimTime::from_millis(2),
        );
        let (faulted, rec) = run(plan, 2);
        assert!(
            !rec.events
                .iter()
                .any(|e| matches!(e.action, RecoveryAction::Promoted { .. })),
            "{:?}",
            rec.events
        );
        assert_eq!(faulted.records, base.records);
        assert_eq!(rec.results_digest, base_rec.results_digest);
        assert_eq!(rec.state_digests, base_rec.state_digests);
    }

    fn ckpt_at(epochs: u64) -> Rc<Checkpoint> {
        Rc::new(Checkpoint {
            epochs_closed: epochs,
            snapshot: vec![],
            vclock: vec![],
            receiver_next: vec![],
            retained: vec![],
            worker_pos: vec![],
            worker_wm: vec![],
            records: 0,
            sink: Sink::counting(),
            digest: 0,
        })
    }

    #[test]
    fn seed_copy_survives_until_handoff_boundary_is_durably_covered() {
        // §15.3: the epoch-0 seed copy pins every peer's prune floor at 0
        // forever. After a planned handoff, the first *real* durable copy
        // covering the cutover boundary retires it.
        let mut slot = CkptSlot {
            latest: Some(ckpt_at(0)),
            ..CkptSlot::default()
        };
        slot.seed_from_latest();
        assert_eq!(slot.copies.len(), 1);

        // No handoff recorded: real copies land, the seed stays (a plain
        // chaos run keeps scratch recovery available forever).
        slot.insert_copy(
            DurableCopy { holder_port: Some(NodeId(7)), ckpt: ckpt_at(3) },
            2,
        );
        assert!(!slot.maybe_release_seed());
        assert_eq!(slot.copies.len(), 2);

        // Handoff cut over at epoch 5: the epoch-3 copy does not cover
        // it, so the seed is still required.
        slot.mark_handoff(5);
        assert!(!slot.maybe_release_seed());
        assert!(slot.copies.iter().any(|c| c.holder_port.is_none()));

        // A real copy at the boundary lands: the seed is released and
        // only real copies remain.
        slot.insert_copy(
            DurableCopy { holder_port: Some(NodeId(8)), ckpt: ckpt_at(5) },
            2,
        );
        assert!(slot.maybe_release_seed());
        assert!(slot.copies.iter().all(|c| c.holder_port.is_some()));
        // Release is one-shot: the boundary is cleared.
        assert!(!slot.maybe_release_seed());
    }

    #[test]
    fn seed_release_lifts_the_prune_floor() {
        // While the seed copy exists the prune floor is 0 (replay must
        // reach back to scratch); after release it rises to the oldest
        // surviving real copy's commit horizon.
        let mut slot = CkptSlot::default();
        let seed = ckpt_at(0);
        slot.latest = Some(seed);
        slot.seed_from_latest();
        let mut real = ckpt_at(6);
        Rc::get_mut(&mut real).unwrap().receiver_next = vec![4, 9];
        slot.insert_copy(
            DurableCopy { holder_port: Some(NodeId(3)), ckpt: real },
            2,
        );
        assert_eq!(slot.prune_floor(0), 0, "seed pins the floor");
        slot.mark_handoff(6);
        assert!(slot.maybe_release_seed());
        assert_eq!(slot.prune_floor(0), 4, "floor rises to the real copy");
        assert_eq!(slot.prune_floor(1), 9);
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let go = || {
            let plan = FaultPlan::new().crash(SimTime::from_micros(250), 0);
            let (r, rec) = run(plan, 3);
            (
                r.records,
                r.completion_time,
                r.net_tx_bytes,
                rec.results_digest,
                rec.state_digests.clone(),
                rec.events.len(),
            )
        };
        assert_eq!(go(), go(), "same seed + same plan ⇒ identical run");
    }
}
