#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # slash-scale — the load-reactive scale controller
//!
//! Policy layer for elastic rescaling: [`ScaleController`] implements
//! [`slash_core::ScaleDirector`] by watching the cluster
//! telemetry stream ([`slash_core::ClusterTelemetry`]) and emitting
//! migration plans that grow the cluster onto parked hosts under load and
//! pack it back when the load recedes. The *mechanism* — planned
//! handoffs, cutover checkpoints, channel re-targeting — lives in
//! `slash_core::elastic`; this crate only decides *when* and *what* to
//! move.
//!
//! The control signal is **utilization**, not raw backlog: the measured
//! arrival rate (differentiated from the pacing curve's released-records
//! counter) divided by provisioned capacity
//! (`hosts_in_use × host_capacity_rps`). A backlog-only policy flaps: at
//! a sustained high-rate plateau the cluster catches up, the backlog
//! drains to zero, and backlog-only logic scales in — straight back into
//! overload. Utilization stays high through the plateau, so hysteresis on
//! it is stable. Backlog still participates asymmetrically: a large
//! backlog forces scale-*out* even at modest instantaneous rates
//! (catch-up), and a non-drained backlog vetoes scale-*in*.
//!
//! Flap resistance is layered: dual thresholds (`high_util`/`low_util`
//! with a dead band between), `confirm_ticks` consecutive samples beyond
//! a threshold before acting, a `cooldown` between actions, and no
//! decisions at all while migrations are in flight.
//!
//! Placement is heat-aware: scale-out spreads the hottest partition (by
//! the SpaceSaving-backed `partition_updates` telemetry) of the most
//! crowded host onto the lowest-numbered parked host; scale-in packs the
//! partitions of the coldest in-use host onto the least crowded survivor.
//! With telemetry disabled all heat is zero and ties break by index, so
//! the controller stays fully deterministic either way.

use std::collections::VecDeque;

use slash_core::{ClusterTelemetry, MigrationCmd, ScaleDirector};
use slash_desim::SimTime;

/// Tuning for [`ScaleController`]. Thresholds are fractions of
/// provisioned capacity (1.0 = every in-use host saturated).
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Never pack below this many hosts.
    pub min_hosts: usize,
    /// Never spread beyond this many hosts (≤ provisioned ports).
    pub max_hosts: usize,
    /// Sustainable per-host service rate, records/second — calibrated
    /// from an unpaced probe run (see `slash-bench`'s rescale experiment)
    /// or set from capacity planning.
    pub host_capacity_rps: f64,
    /// Scale out when utilization exceeds this for `confirm_ticks`.
    pub high_util: f64,
    /// Scale in when utilization is below this (and the backlog is
    /// drained) for `confirm_ticks`. Must sit well under `high_util`
    /// after accounting for the capacity removed by packing, or the
    /// controller oscillates.
    pub low_util: f64,
    /// Backlog (records) that forces scale-out regardless of the
    /// instantaneous rate — the catch-up path.
    pub backlog_high: u64,
    /// Backlog that must be drained before scale-in is considered.
    pub backlog_low: u64,
    /// Consecutive out-of-band samples required before acting.
    pub confirm_ticks: u32,
    /// Minimum virtual time between consecutive scaling actions.
    pub cooldown: SimTime,
    /// Partitions moved per scaling action.
    pub step_partitions: usize,
}

impl ControllerConfig {
    /// A reasonable starting point: thresholds 0.85/0.35, three
    /// confirming samples, 1 ms cooldown, one partition per step.
    pub fn new(min_hosts: usize, max_hosts: usize, host_capacity_rps: f64) -> Self {
        assert!(min_hosts >= 1 && min_hosts <= max_hosts);
        assert!(host_capacity_rps > 0.0);
        ControllerConfig {
            min_hosts,
            max_hosts,
            host_capacity_rps,
            high_util: 0.85,
            low_util: 0.35,
            backlog_high: 50_000,
            backlog_low: 2_000,
            confirm_ticks: 3,
            cooldown: SimTime::from_millis(1),
            step_partitions: 1,
        }
    }
}

/// One scaling decision, kept for post-run inspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Spread partitions onto parked hosts.
    Out {
        /// Virtual time of the decision.
        at: SimTime,
        /// Hosts in use when it was taken.
        hosts: usize,
    },
    /// Pack partitions off the coldest host.
    In {
        /// Virtual time of the decision.
        at: SimTime,
        /// Hosts in use when it was taken.
        hosts: usize,
    },
}

/// The utilization-hysteresis controller. Create with
/// [`ScaleController::new`], hand to
/// [`slash_core::SlashCluster::run_elastic`] as the director.
#[derive(Debug)]
pub struct ScaleController {
    cfg: ControllerConfig,
    /// Sliding telemetry window: (time, released records) samples, most
    /// recent last; sized `confirm_ticks + 1` so the measured rate spans
    /// exactly the confirmation interval.
    window: VecDeque<(SimTime, u64)>,
    high_streak: u32,
    low_streak: u32,
    last_action_at: Option<SimTime>,
    decisions: Vec<Decision>,
}

impl ScaleController {
    /// A fresh controller with no history.
    pub fn new(cfg: ControllerConfig) -> Self {
        assert!(cfg.low_util < cfg.high_util, "dead band required");
        assert!(cfg.step_partitions >= 1);
        ScaleController {
            cfg,
            window: VecDeque::new(),
            high_streak: 0,
            low_streak: 0,
            last_action_at: None,
            decisions: Vec::new(),
        }
    }

    /// Every scaling decision taken so far, in order.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// Arrival rate (records/second) measured across the sample window;
    /// 0 until two samples with distinct times exist.
    fn measured_rate(&self) -> f64 {
        let (Some(&(t0, r0)), Some(&(t1, r1))) = (self.window.front(), self.window.back())
        else {
            return 0.0;
        };
        let dt = t1.as_nanos().saturating_sub(t0.as_nanos());
        if dt == 0 {
            return 0.0;
        }
        (r1.saturating_sub(r0)) as f64 * 1.0e9 / dt as f64
    }

    /// Per-host partition load: heat when telemetry is live, partition
    /// count otherwise (all-zero heat degrades to count-balancing).
    fn host_load(t: &ClusterTelemetry, h: usize) -> (u64, usize) {
        let mut heat = 0;
        let mut parts = 0;
        for (p, &hp) in t.host_of.iter().enumerate() {
            if hp == h {
                heat += t.partition_updates.get(p).copied().unwrap_or(0);
                parts += 1;
            }
        }
        (heat, parts)
    }

    /// Spread: move the hottest partitions of the most crowded hosts onto
    /// the lowest-numbered parked hosts, one partition per parked host.
    fn plan_out(&self, t: &ClusterTelemetry) -> Vec<MigrationCmd> {
        let n = t.host_of.len();
        let mut parked: Vec<usize> =
            (0..n).filter(|h| !t.host_of.contains(h)).collect();
        parked.truncate(
            self.cfg
                .max_hosts
                .saturating_sub(t.hosts_in_use)
                .min(self.cfg.step_partitions),
        );
        let mut host_of = t.host_of.clone();
        let mut cmds = Vec::new();
        for target in parked {
            // Most crowded host by (partition count, heat); only hosts
            // with at least two partitions can donate one.
            let Some(donor) = (0..n)
                .filter(|&h| host_of.iter().filter(|&&hp| hp == h).count() >= 2)
                .max_by_key(|&h| {
                    let heat: u64 = host_of
                        .iter()
                        .enumerate()
                        .filter(|&(_, &hp)| hp == h)
                        .map(|(p, _)| t.partition_updates.get(p).copied().unwrap_or(0))
                        .sum();
                    let parts = host_of.iter().filter(|&&hp| hp == h).count();
                    // Tie-break toward the lowest host index (max_by_key
                    // keeps the *last* max, so invert the index).
                    (parts, heat, n - h)
                })
            else {
                break;
            };
            // Hottest partition on the donor (ties toward lowest index).
            let Some(victim) = host_of
                .iter()
                .enumerate()
                .filter(|&(_, &hp)| hp == donor)
                .max_by_key(|&(p, _)| {
                    (t.partition_updates.get(p).copied().unwrap_or(0), n - p)
                })
                .map(|(p, _)| p)
            else {
                break;
            };
            host_of[victim] = target;
            cmds.push(MigrationCmd { partition: victim, to_host: target });
        }
        cmds
    }

    /// Pack: move the partitions of the coldest in-use host onto the
    /// least crowded survivors, up to `step_partitions` per action (a
    /// bigger host drains over successive actions).
    fn plan_in(&self, t: &ClusterTelemetry) -> Option<Vec<MigrationCmd>> {
        let n = t.host_of.len();
        let in_use: Vec<usize> = (0..n).filter(|h| t.host_of.contains(h)).collect();
        // Coldest host by (heat, partition count); ties toward the
        // highest index so packing converges onto low-numbered hosts.
        let victim_host = in_use
            .iter()
            .copied()
            .min_by_key(|&h| {
                let (heat, parts) = Self::host_load(t, h);
                (heat, parts, n - h)
            })?;
        let mut host_of = t.host_of.clone();
        let mut cmds = Vec::new();
        for _ in 0..self.cfg.step_partitions {
            let Some(part) = host_of
                .iter()
                .enumerate()
                .filter(|&(_, &hp)| hp == victim_host)
                .map(|(p, _)| p)
                .next()
            else {
                break;
            };
            let Some(target) = (0..n)
                .filter(|&h| h != victim_host && host_of.contains(&h))
                .min_by_key(|&h| {
                    let parts = host_of.iter().filter(|&&hp| hp == h).count();
                    (parts, h)
                })
            else {
                break;
            };
            host_of[part] = target;
            cmds.push(MigrationCmd { partition: part, to_host: target });
        }
        Some(cmds).filter(|c| !c.is_empty())
    }
}

// `plan_in` returns Option for the ?-operator over empty clusters.
impl ScaleDirector for ScaleController {
    fn tick(&mut self, t: &ClusterTelemetry) -> Vec<MigrationCmd> {
        // Sample the released-records counter and measure the arrival
        // rate across the confirmation window.
        if self.window.back().is_none_or(|&(at, _)| at < t.now) {
            self.window.push_back((t.now, t.released_records));
            while self.window.len() > self.cfg.confirm_ticks as usize + 1 {
                self.window.pop_front();
            }
        }
        let rate = self.measured_rate();
        let capacity = t.hosts_in_use as f64 * self.cfg.host_capacity_rps;
        let util = if capacity > 0.0 { rate / capacity } else { 0.0 };
        let backlog = t.backlog();

        // Streak accounting runs every tick, even when actions are
        // blocked, so a long migration does not reset the evidence.
        if util > self.cfg.high_util || backlog > self.cfg.backlog_high {
            self.high_streak += 1;
            self.low_streak = 0;
        } else if util < self.cfg.low_util && backlog < self.cfg.backlog_low {
            self.low_streak += 1;
            self.high_streak = 0;
        } else {
            self.high_streak = 0;
            self.low_streak = 0;
        }

        // One decision at a time: in-flight migrations must land before
        // their effect on utilization can be judged.
        if t.migrations_in_flight > 0 {
            return Vec::new();
        }
        if let Some(last) = self.last_action_at {
            if t.now < last + self.cfg.cooldown {
                return Vec::new();
            }
        }

        let cmds = if self.high_streak >= self.cfg.confirm_ticks
            && t.hosts_in_use < self.cfg.max_hosts
        {
            let cmds = self.plan_out(t);
            if !cmds.is_empty() {
                self.decisions.push(Decision::Out { at: t.now, hosts: t.hosts_in_use });
            }
            cmds
        } else if self.low_streak >= self.cfg.confirm_ticks
            && t.hosts_in_use > self.cfg.min_hosts
        {
            let cmds = self.plan_in(t).unwrap_or_default();
            if !cmds.is_empty() {
                self.decisions.push(Decision::In { at: t.now, hosts: t.hosts_in_use });
            }
            cmds
        } else {
            Vec::new()
        };
        if !cmds.is_empty() {
            self.last_action_at = Some(t.now);
            self.high_streak = 0;
            self.low_streak = 0;
        }
        cmds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Telemetry fabricator: a cluster of 8 partitions over 8 hosts,
    /// `released` records released by `now`, everything processed unless
    /// stated (zero backlog).
    struct World {
        host_of: Vec<usize>,
        released: u64,
        processed: u64,
        heat: Vec<u64>,
        in_flight: usize,
    }

    impl World {
        fn packed(hosts: usize) -> Self {
            World {
                host_of: (0..8).map(|p| p % hosts).collect(),
                released: 0,
                processed: 0,
                heat: vec![0; 8],
                in_flight: 0,
            }
        }

        fn telemetry(&self, now: SimTime) -> ClusterTelemetry {
            let mut seen = vec![false; self.host_of.len()];
            let mut hosts = 0;
            for &h in &self.host_of {
                if !seen[h] {
                    seen[h] = true;
                    hosts += 1;
                }
            }
            ClusterTelemetry {
                now,
                released_records: self.released,
                processed_records: self.processed,
                total_records: u64::MAX,
                host_of: self.host_of.clone(),
                hosts_in_use: hosts,
                partition_updates: self.heat.clone(),
                migrations_in_flight: self.in_flight,
            }
        }

        /// Apply migrations as the driver would (instant commit).
        fn apply(&mut self, cmds: &[MigrationCmd]) {
            for c in cmds {
                self.host_of[c.partition] = c.to_host;
            }
        }
    }

    fn cfg() -> ControllerConfig {
        // 1000 records/sec per host, 1 ms ticks.
        let mut c = ControllerConfig::new(2, 8, 1000.0);
        c.cooldown = SimTime::from_millis(2);
        c
    }

    fn tick_ms(w: &World, c: &mut ScaleController, ms: u64) -> Vec<MigrationCmd> {
        c.tick(&w.telemetry(SimTime::from_millis(ms)))
    }

    #[test]
    fn sustained_overload_scales_out_to_parked_hosts() {
        let mut w = World::packed(2);
        let mut c = ScaleController::new(cfg());
        // 2 hosts × 1000 rps capacity; arrive at 3000 rps (u = 1.5).
        let mut cmds = Vec::new();
        for ms in 0..10 {
            w.released += 3;
            w.processed = w.released; // keeps backlog out of the signal
            let out = tick_ms(&w, &mut c, ms);
            if !out.is_empty() {
                cmds = out.clone();
                w.apply(&out);
                break;
            }
        }
        assert_eq!(cmds.len(), 1, "{:?}", c.decisions());
        let cmd = cmds[0];
        assert!(
            !(0..8).map(|p| p % 2).any(|h| h == cmd.to_host),
            "target must be a parked host: {cmd:?}"
        );
        assert!(matches!(c.decisions(), [Decision::Out { hosts: 2, .. }]));
    }

    #[test]
    fn plateau_at_capacity_does_not_flap() {
        // Backlog-only policies scale in once caught up at a plateau;
        // utilization must hold the fleet. Arrive at 0.6 × capacity of 3
        // hosts — between low (0.35) and high (0.85): no action ever.
        let mut w = World::packed(3);
        let mut c = ScaleController::new(cfg());
        for i in 0..50 {
            w.released += 9; // 9 records / 5 ms = 1800 rps, u = 0.6
            w.processed = w.released;
            assert!(tick_ms(&w, &mut c, i * 5).is_empty(), "tick {i}");
        }
        assert!(c.decisions().is_empty());
    }

    #[test]
    fn one_high_sample_is_not_confirmation() {
        let mut w = World::packed(2);
        let mut c = ScaleController::new(cfg());
        // Two quiet samples, one spike, quiet again. The windowed rate
        // sees the spike for a while, but only the spike tick itself
        // clears `high_util` — the streak never reaches confirm_ticks.
        let rates = [1, 1, 3, 1, 1, 1, 1];
        for (ms, r) in rates.iter().enumerate() {
            w.released += r;
            w.processed = w.released;
            assert!(tick_ms(&w, &mut c, ms as u64).is_empty());
        }
    }

    #[test]
    fn big_backlog_forces_catchup_scale_out() {
        let mut w = World::packed(2);
        let mut c = ScaleController::new(cfg());
        w.released = 200_000; // far over backlog_high
        w.processed = 10_000;
        let mut fired = false;
        for ms in 0..10 {
            let out = tick_ms(&w, &mut c, ms);
            if !out.is_empty() {
                fired = true;
                break;
            }
        }
        assert!(fired, "backlog pressure must scale out");
    }

    #[test]
    fn idle_cluster_packs_back_to_min_hosts() {
        let mut w = World::packed(4);
        let mut c = ScaleController::new(cfg());
        // No arrivals at all: scale in step by step, never below
        // min_hosts = 2, one action per cooldown window.
        let mut hosts_seen = Vec::new();
        for ms in 0..200 {
            let out = tick_ms(&w, &mut c, ms);
            if !out.is_empty() {
                w.apply(&out);
                hosts_seen.push(w.telemetry(SimTime::ZERO).hosts_in_use);
            }
        }
        // One partition moves per action, so draining a two-partition
        // host takes two actions before hosts_in_use drops.
        assert_eq!(hosts_seen, vec![4, 3, 3, 2], "pack 4 -> 3 -> 2, then hold");
        assert!(c
            .decisions()
            .iter()
            .all(|d| matches!(d, Decision::In { .. })));
    }

    #[test]
    fn undrained_backlog_vetoes_scale_in() {
        let mut w = World::packed(4);
        let mut c = ScaleController::new(cfg());
        w.released = 100_000;
        w.processed = w.released - 50_000; // rate 0 but huge backlog
        for ms in 0..20 {
            let out = tick_ms(&w, &mut c, ms);
            // Backlog > backlog_high actually *grows* the fleet here —
            // it must never shrink it.
            assert!(
                out.iter().all(|cmd| !w.host_of.contains(&cmd.to_host)),
                "{out:?}"
            );
            w.apply(&out);
        }
    }

    #[test]
    fn no_decisions_while_migrations_in_flight() {
        let mut w = World::packed(2);
        let mut c = ScaleController::new(cfg());
        w.in_flight = 1;
        for ms in 0..20 {
            w.released += 9; // wildly over capacity
            w.processed = w.released;
            assert!(tick_ms(&w, &mut c, ms).is_empty());
        }
        // The evidence kept accumulating: the moment the migration lands,
        // the next tick may act.
        w.in_flight = 0;
        w.released += 9;
        w.processed = w.released;
        assert!(!tick_ms(&w, &mut c, 20).is_empty());
    }

    #[test]
    fn cooldown_spaces_consecutive_actions() {
        let mut w = World::packed(2);
        let mut c = ScaleController::new(cfg());
        let mut action_times = Vec::new();
        for ms in 0..20 {
            w.released += 30; // overload throughout
            w.processed = w.released;
            let out = tick_ms(&w, &mut c, ms);
            if !out.is_empty() {
                action_times.push(ms);
                w.apply(&out);
            }
        }
        assert!(action_times.len() >= 2, "{action_times:?}");
        for pair in action_times.windows(2) {
            assert!(pair[1] - pair[0] >= 2, "cooldown = 2 ms: {action_times:?}");
        }
    }

    #[test]
    fn spread_picks_the_hottest_partition_of_the_crowded_host() {
        let mut w = World::packed(2);
        w.heat = vec![5, 0, 9, 0, 90, 0, 7, 0]; // partition 4 is hottest on host 0
        let mut c = ScaleController::new(cfg());
        let mut cmds = Vec::new();
        for ms in 0..10 {
            w.released += 3;
            w.processed = w.released;
            let out = tick_ms(&w, &mut c, ms);
            if !out.is_empty() {
                cmds = out;
                break;
            }
        }
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].partition, 4, "hottest even-partition lives on host 0");
    }

    #[test]
    fn max_hosts_clamps_scale_out() {
        let mut c = ControllerConfig::new(2, 2, 1000.0);
        c.cooldown = SimTime::from_millis(2);
        let mut ctl = ScaleController::new(c);
        let mut w = World::packed(2);
        for ms in 0..20 {
            w.released += 30;
            w.processed = w.released;
            assert!(tick_ms(&w, &mut ctl, ms).is_empty(), "already at max");
        }
    }
}
